// Command rstknn-datagen generates synthetic geo-textual collections in
// the library's CSV format (id,x,y,"term:weight ..."), with profiles
// matching the shapes of the paper's evaluation collections.
//
// Usage:
//
//	rstknn-datagen -profile gn -n 100000 -o gn.csv
//	rstknn-datagen -profile sb -n 20000 -seed 7 -o sb.csv
//	rstknn-datagen -profile gn -n 1000 -queries 50 -o data.csv -qo queries.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstknn-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rstknn-datagen", flag.ContinueOnError)
	var (
		profile  = fs.String("profile", "gn", "dataset profile: gn|sb|uniform")
		n        = fs.Int("n", 10000, "number of objects")
		seed     = fs.Int64("seed", 1, "generation seed")
		out      = fs.String("o", "", "output CSV path (required)")
		queries  = fs.Int("queries", 0, "also generate this many query objects")
		queryOut = fs.String("qo", "", "query output CSV path (required with -queries)")
		vocab    = fs.Int("vocab", 0, "vocabulary size override (0 = profile default)")
		maxTerms = fs.Int("max-terms", 0, "max terms per object override")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		return err
	}
	col := dataset.Generate(p, dataset.Params{
		N: *n, Seed: *seed, Vocab: *vocab, MaxTerms: *maxTerms,
	})
	voc := dataset.SyntheticVocabulary(col.Params.Vocab)
	if err := dataset.SaveFile(*out, col.Objects, voc); err != nil {
		return err
	}
	st := col.ComputeStats()
	fmt.Fprintf(w, "wrote %d objects to %s (%d unique terms, %.2f terms/object)\n",
		st.Objects, *out, st.UniqueTerms, st.AvgTermsPerObj)

	if *queries > 0 {
		if *queryOut == "" {
			return fmt.Errorf("-qo is required with -queries")
		}
		qs := col.Queries(*queries, *seed+1)
		qObjs := make([]iurtree.Object, len(qs))
		for i, q := range qs {
			qObjs[i] = iurtree.Object{ID: int32(i), Loc: q.Loc, Doc: q.Doc}
		}
		if err := dataset.SaveFile(*queryOut, qObjs, voc); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d queries to %s\n", len(qs), *queryOut)
	}
	return nil
}
