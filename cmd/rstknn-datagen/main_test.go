package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rstknn/internal/dataset"
	"rstknn/internal/textual"
)

func TestRunGeneratesLoadableCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "objs.csv")
	var buf bytes.Buffer
	err := run([]string{"-profile", "sb", "-n", "200", "-seed", "7", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 200 objects") {
		t.Errorf("missing summary:\n%s", buf.String())
	}
	objs, err := dataset.LoadFile(out, textual.NewVocabulary())
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 200 {
		t.Errorf("loaded %d objects", len(objs))
	}
}

func TestRunGeneratesQueries(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "objs.csv")
	qout := filepath.Join(dir, "queries.csv")
	var buf bytes.Buffer
	err := run([]string{"-profile", "gn", "-n", "100", "-o", out, "-queries", "10", "-qo", qout}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.LoadFile(qout, textual.NewVocabulary())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Errorf("loaded %d queries", len(qs))
	}
}

func TestRunOverrides(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "objs.csv")
	var buf bytes.Buffer
	err := run([]string{"-profile", "uniform", "-n", "50", "-o", out,
		"-vocab", "30", "-max-terms", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := dataset.LoadFile(out, textual.NewVocabulary())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if o.Doc.Len() > 3 {
			t.Fatalf("object %d has %d terms, max-terms 3", o.ID, o.Doc.Len())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "gn", "-n", "10"}, &buf); err == nil {
		t.Error("missing -o should fail")
	}
	if err := run([]string{"-profile", "nope", "-o", "x.csv"}, &buf); err == nil {
		t.Error("unknown profile should fail")
	}
	if err := run([]string{"-profile", "gn", "-n", "10", "-o", filepath.Join(t.TempDir(), "x.csv"),
		"-queries", "5"}, &buf); err == nil {
		t.Error("missing -qo with -queries should fail")
	}
}
