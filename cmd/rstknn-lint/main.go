// Command rstknn-lint is the project's vettool: a go-vet-compatible
// driver for the domain analyzers in internal/analysis (trackedio,
// ctxflow, locksafe, floatcmp, hotalloc, sharedmut, errlost, the
// path-sensitive lifecycle analyzers pinsafe, retirepub, lockorder, and
// the SSA-lite taint analyzer untrustedlen).
//
// It is not run directly; build it and hand it to go vet:
//
//	go build -o /tmp/rstknn-lint ./cmd/rstknn-lint
//	go vet -vettool=/tmp/rstknn-lint ./...
//
// or simply `make lint`. The driver summarizes every package it
// typechecks into per-function facts (allocation, I/O, lock,
// shared-write, and untrusted-taint behavior) and propagates them
// between packages through go vet's .vetx fact files, so the
// cross-function analyzers (hotalloc, sharedmut, errlost, locksafe's
// transitive rule, and untrustedlen's source/sink summaries) see
// through package boundaries.
//
// Flags (pass via go vet): -json emits machine-readable diagnostics
// (schema_version 2: per-analyzer finding counts, elapsed_us timings,
// and suppression counts); -baseline <file> filters out known findings
// listed one per line as `file:line:col: message`. Intentional
// exceptions are annotated in source with
// //rstknn:allow <analyzer> <reason>, hot-path roots with
// //rstknn:hotpath <reason>, and proven-in-bounds decode values with
// //rstknn:validated <reason> (see internal/analysis).
package main

import "rstknn/internal/analysis"

func main() {
	analysis.VetMain(analysis.All()...)
}
