// Command rstknn-lint is the project's vettool: a go-vet-compatible
// driver for the domain analyzers in internal/analysis (trackedio,
// ctxflow, locksafe, floatcmp, hotalloc, sharedmut, errlost, and the
// path-sensitive lifecycle analyzers pinsafe, retirepub, lockorder).
//
// It is not run directly; build it and hand it to go vet:
//
//	go build -o /tmp/rstknn-lint ./cmd/rstknn-lint
//	go vet -vettool=/tmp/rstknn-lint ./...
//
// or simply `make lint`. The driver summarizes every package it
// typechecks into per-function facts (allocation, I/O, lock, and
// shared-write behavior) and propagates them between packages through
// go vet's .vetx fact files, so the cross-function analyzers (hotalloc,
// sharedmut, errlost, and locksafe's transitive rule) see through
// package boundaries.
//
// Flags (pass via go vet): -json emits machine-readable diagnostics
// plus per-analyzer suppression counts; -baseline <file> filters out
// known findings listed one per line as `file:line:col: message`.
// Intentional exceptions are annotated in source with
// //rstknn:allow <analyzer> <reason>, and hot-path roots with
// //rstknn:hotpath <reason> (see internal/analysis).
package main

import "rstknn/internal/analysis"

func main() {
	analysis.VetMain(analysis.All()...)
}
