// Command rstknn-lint is the project's vettool: a go-vet-compatible
// driver for the domain analyzers in internal/analysis (trackedio,
// ctxflow, locksafe, floatcmp).
//
// It is not run directly; build it and hand it to go vet:
//
//	go build -o /tmp/rstknn-lint ./cmd/rstknn-lint
//	go vet -vettool=/tmp/rstknn-lint ./...
//
// or simply `make lint`. Intentional exceptions are annotated in source
// with //rstknn:allow <analyzer> <reason> (see internal/analysis).
package main

import "rstknn/internal/analysis"

func main() {
	analysis.VetMain(analysis.All()...)
}
