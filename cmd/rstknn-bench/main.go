// Command rstknn-bench runs the experiment suite that regenerates the
// tables and figures of the RSTkNN paper's evaluation (see DESIGN.md §4
// for the per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	rstknn-bench                 # run every experiment at full scale
//	rstknn-bench -exp F1,F2      # run selected experiments
//	rstknn-bench -scale 0.1      # 10% of the paper-scale dataset sizes
//	rstknn-bench -queries 50     # average over more queries per point
//	rstknn-bench -profile sb     # SB-shaped collection
//
// The -json mode runs the intra-query scaling benchmark instead of the
// experiment tables and writes a machine-readable BENCH_<label>.json
// (sequential vs parallel ns/op, allocs/op, node reads per worker count):
//
//	rstknn-bench -json baseline -seed 7              # BENCH_baseline.json
//	rstknn-bench -json pr42 -workers 1,4 -benchiters 5
//
// The -mutate mode benchmarks the copy-on-write update path instead
// (insert/delete ns/op, blob writes and pages written per op, nodes
// retired per op, and the live-vs-total footprint after reclamation):
//
//	rstknn-bench -mutate baseline -seed 7            # BENCH_baseline.json
//	rstknn-bench -mutate pr42 -scale 0.1 -churn 500
//
// The -batch mode runs the shared-traversal batch benchmark (DESIGN.md
// §11): the same query workload answered independently and through
// core.MultiRSTkNN at several batch sizes, recording physical nodes read
// per query and the shared-hit amortization:
//
//	rstknn-bench -batch batch -seed 7                # BENCH_batch.json
//	rstknn-bench -batch pr42 -batchsizes 1,16 -sharedbatch=false
//
// The -compare mode diffs two previously written benchmarks (scaling or
// batch records — detected from the file's mode field) and exits
// non-zero when any cost metric regressed by more than -threshold
// percent (default 10; flags must precede the positional NEW.json):
//
//	rstknn-bench -compare BENCH_baseline.json BENCH_pr42.json
//	rstknn-bench -compare BENCH_batch.json -threshold 25 BENCH_pr42.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rstknn/internal/bench"
	"rstknn/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstknn-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn-bench", flag.ContinueOnError)
	var (
		exps     = fs.String("exp", "all", "comma-separated experiment IDs (T1,T2,F1..F9) or 'all'")
		scale    = fs.Float64("scale", 1.0, "dataset scale factor (1.0 = paper-shaped full run)")
		queries  = fs.Int("queries", 20, "queries averaged per data point")
		seed     = fs.Int64("seed", 1, "dataset and query seed")
		profile  = fs.String("profile", "gn", "dataset profile: gn|sb|uniform")
		parallel = fs.Int("parallel", 0, "worker count for the parallel-throughput experiment (F13); 0 = GOMAXPROCS")
		list     = fs.Bool("list", false, "list experiments and exit")

		jsonLabel  = fs.String("json", "", "write the intra-query scaling benchmark to BENCH_<label>.json instead of running experiments")
		jsonDir    = fs.String("benchdir", ".", "directory the BENCH_<label>.json is written to")
		workers    = fs.String("workers", "1,2,4,8", "comma-separated worker counts for -json (1 = sequential)")
		benchiters = fs.Int("benchiters", 3, "timed passes over the workload per worker count in -json mode")

		mutateLabel = fs.String("mutate", "", "write the copy-on-write mutation benchmark to BENCH_<label>.json instead of running experiments")
		mutateOps   = fs.Int("churn", 0, "steady-state delete+insert rounds in -mutate mode (0 = dataset size)")

		batchLabel  = fs.String("batch", "", "write the shared-traversal batch benchmark to BENCH_<label>.json instead of running experiments")
		batchSizes  = fs.String("batchsizes", "1,4,16,64", "comma-separated batch sizes for -batch mode")
		sharedBatch = fs.Bool("sharedbatch", true, "measure the shared traversal in -batch mode; false records only the independent ablation")

		comparePath = fs.String("compare", "", "compare two scaling benchmarks: -compare OLD.json NEW.json prints per-row deltas and exits non-zero on regressions past -threshold")
		threshold   = fs.Float64("threshold", 10, "regression threshold in percent for -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *comparePath != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-compare needs exactly two files: -compare OLD.json NEW.json")
		}
		return runCompare(out, *comparePath, fs.Arg(0), *threshold)
	}
	if *list {
		for _, e := range bench.Experiments {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	p, err := dataset.ProfileByName(*profile)
	if err != nil {
		return err
	}
	cfg := bench.Config{
		Out:         out,
		Scale:       *scale,
		Queries:     *queries,
		Seed:        *seed,
		Profile:     p,
		Parallelism: *parallel,
	}
	if *jsonLabel != "" {
		return runJSON(cfg, out, *jsonLabel, *jsonDir, *workers, *benchiters)
	}
	if *mutateLabel != "" {
		return runMutate(cfg, out, *mutateLabel, *jsonDir, *mutateOps)
	}
	if *batchLabel != "" {
		return runBatch(cfg, out, *batchLabel, *jsonDir, *batchSizes, *sharedBatch, *benchiters)
	}
	fmt.Fprintf(out, "rstknn-bench: scale=%g queries=%d seed=%d profile=%s\n",
		*scale, *queries, *seed, p)
	start := time.Now()
	if strings.EqualFold(*exps, "all") {
		if err := bench.RunAll(cfg); err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e := bench.ByID(strings.TrimSpace(id))
			if e == nil {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
	}
	fmt.Fprintf(out, "\ntotal: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runJSON executes the intra-query scaling benchmark and writes
// BENCH_<label>.json, echoing a human-readable summary to out.
func runJSON(cfg bench.Config, out io.Writer, label, dir, workerList string, iters int) error {
	var counts []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -workers element %q", f)
		}
		counts = append(counts, n)
	}
	fmt.Fprintf(out, "rstknn-bench: json label=%s scale=%g queries=%d seed=%d workers=%v iters=%d\n",
		label, cfg.Scale, cfg.Queries, cfg.Seed, counts, iters)
	b, err := bench.RunBaseline(cfg, label, counts, iters)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+label+".json")
	if err := b.WriteFile(path); err != nil {
		return err
	}
	for _, r := range b.Rows {
		fmt.Fprintf(out, "workers=%d  %12d ns/op  %8d allocs/op  %10.1f nodes/query  speedup %.2fx\n",
			r.Workers, r.NsPerOp, r.AllocsPerOp, r.NodesRead, r.Speedup)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// runBatch executes the shared-traversal batch benchmark and writes
// BENCH_<label>.json, echoing a human-readable summary to out.
func runBatch(cfg bench.Config, out io.Writer, label, dir, sizeList string, shared bool, iters int) error {
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("invalid -batchsizes element %q", f)
		}
		sizes = append(sizes, n)
	}
	fmt.Fprintf(out, "rstknn-bench: batch label=%s scale=%g queries=%d seed=%d sizes=%v shared=%v iters=%d\n",
		label, cfg.Scale, cfg.Queries, cfg.Seed, sizes, shared, iters)
	b, err := bench.RunBatchBench(cfg, label, sizes, shared, iters)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+label+".json")
	if err := b.WriteFile(path); err != nil {
		return err
	}
	for _, r := range b.Rows {
		mode := "independent"
		if r.Shared {
			mode = "shared"
		}
		fmt.Fprintf(out, "batch=%-3d %-11s %10d ns/query  %8.1f nodes/query  %8.1f shared-hits/query  %.2fx fewer reads\n",
			r.BatchSize, mode, r.NsPerQuery, r.NodesRead, r.SharedHitsPerQuery, r.Reduction)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// runCompare diffs two BENCH json files (scaling baselines or batch
// records, detected from the mode field) and fails on regressions past
// the threshold (in percent).
func runCompare(out io.Writer, oldPath, newPath string, thresholdPct float64) error {
	mode, err := bench.BenchFileMode(oldPath)
	if err != nil {
		return err
	}
	newMode, err := bench.BenchFileMode(newPath)
	if err != nil {
		return err
	}
	if mode != newMode {
		return fmt.Errorf("cannot compare a %q record with a %q record", modeName(mode), modeName(newMode))
	}
	var cmp *bench.Comparison
	if mode == "batch" {
		oldB, err := bench.ReadBatchBenchFile(oldPath)
		if err != nil {
			return err
		}
		newB, err := bench.ReadBatchBenchFile(newPath)
		if err != nil {
			return err
		}
		cmp, err = bench.CompareBatch(oldB, newB, thresholdPct)
		if err != nil {
			return err
		}
	} else {
		oldB, err := bench.ReadBaselineFile(oldPath)
		if err != nil {
			return err
		}
		newB, err := bench.ReadBaselineFile(newPath)
		if err != nil {
			return err
		}
		cmp, err = bench.Compare(oldB, newB, thresholdPct)
		if err != nil {
			return err
		}
	}
	cmp.Render(out)
	if len(cmp.Regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed more than %g%%:\n  %s",
			len(cmp.Regressions), thresholdPct, strings.Join(cmp.Regressions, "\n  "))
	}
	fmt.Fprintf(out, "no regressions past %g%%\n", thresholdPct)
	return nil
}

// modeName renders a BENCH file's mode field for error messages.
func modeName(mode string) string {
	if mode == "" {
		return "scaling"
	}
	return mode
}

// runMutate executes the copy-on-write mutation benchmark and writes
// BENCH_<label>.json, echoing a human-readable summary to out.
func runMutate(cfg bench.Config, out io.Writer, label, dir string, churn int) error {
	fmt.Fprintf(out, "rstknn-bench: mutate label=%s scale=%g seed=%d churn=%d\n",
		label, cfg.Scale, cfg.Seed, churn)
	m, err := bench.RunMutate(cfg, label, churn)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+label+".json")
	if err := m.WriteFile(path); err != nil {
		return err
	}
	for _, r := range m.Rows {
		fmt.Fprintf(out, "%-8s %6d ops  %10d ns/op  %6.2f writes/op  %6.2f pages/op  %6.2f retired/op\n",
			r.Op, r.Ops, r.NsPerOp, r.WritesPerOp, r.PagesPerOp, r.RetiredPerOp)
	}
	fmt.Fprintf(out, "storage: %d bytes total, %d live, %d nodes freed, %d pending\n",
		m.Storage.TotalBytes, m.Storage.LiveBytes, m.Storage.Freed, m.Storage.Pending)
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
