package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rstknn/internal/bench"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"T1", "T2", "F1", "F9", "F10", "F11", "F12"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "T1,t2", "-scale", "0.01", "-queries", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== T1") || !strings.Contains(out, "== T2") {
		t.Errorf("selected experiments missing:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Error("missing total runtime line")
	}
}

func TestRunProfileFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "T1", "-scale", "0.01", "-queries", "2", "-profile", "topical"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "profile=topical") {
		t.Errorf("profile flag not reflected:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "F99"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-profile", "flickr"}, &buf); err == nil {
		t.Error("unknown profile should fail")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunJSONBaseline(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-json", "smoke", "-benchdir", dir,
		"-scale", "0.01", "-queries", "3", "-seed", "7",
		"-workers", "1,2", "-benchiters", "1",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_smoke.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	var b bench.Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if b.Label != "smoke" || b.Schema != 1 {
		t.Errorf("label/schema = %q/%d, want smoke/1", b.Label, b.Schema)
	}
	if b.Machine.NumCPU < 1 || b.Machine.GoVersion == "" {
		t.Errorf("machine metadata incomplete: %+v", b.Machine)
	}
	if len(b.Rows) != 2 || b.Rows[0].Workers != 1 || b.Rows[1].Workers != 2 {
		t.Fatalf("rows = %+v, want worker counts 1,2", b.Rows)
	}
	for _, r := range b.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("workers=%d: ns/op = %d, want > 0", r.Workers, r.NsPerOp)
		}
		if r.NodesRead != b.Rows[0].NodesRead {
			t.Errorf("workers=%d: nodes read %v differ from sequential %v",
				r.Workers, r.NodesRead, b.Rows[0].NodesRead)
		}
	}
	if !strings.Contains(buf.String(), "wrote "+path) {
		t.Errorf("summary missing written path:\n%s", buf.String())
	}
	if err := run([]string{"-json", "x", "-benchdir", dir, "-workers", "1,zero"}, &buf); err == nil {
		t.Error("bad -workers list should fail")
	}
}

func TestRunMutateBench(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-mutate", "churn-smoke", "-benchdir", dir,
		"-scale", "0.01", "-seed", "7", "-churn", "30",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_churn-smoke.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("mutate report not written: %v", err)
	}
	var m bench.MutateReport
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("mutate report is not valid JSON: %v", err)
	}
	if m.Label != "churn-smoke" || m.Schema != 1 {
		t.Errorf("label/schema = %q/%d, want churn-smoke/1", m.Label, m.Schema)
	}
	if len(m.Rows) != 2 {
		t.Fatalf("rows = %+v, want insert and churn", m.Rows)
	}
	out := buf.String()
	for _, want := range []string{"insert", "churn", "storage:", "wrote " + path} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
