package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"T1", "T2", "F1", "F9", "F10", "F11", "F12"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "T1,t2", "-scale", "0.01", "-queries", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== T1") || !strings.Contains(out, "== T2") {
		t.Errorf("selected experiments missing:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Error("missing total runtime line")
	}
}

func TestRunProfileFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "T1", "-scale", "0.01", "-queries", "2", "-profile", "topical"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "profile=topical") {
		t.Errorf("profile flag not reflected:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "F99"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-profile", "flickr"}, &buf); err == nil {
		t.Error("unknown profile should fail")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
