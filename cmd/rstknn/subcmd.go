// Subcommands operating on saved index directories (rstknn.Save/Open):
//
//	rstknn build   -dir IDX -data raw.csv [-index ciur] [-alpha A] ...
//	rstknn query   -dir IDX -query "x,y,text" -k 10
//	rstknn insert  -dir IDX -id 42 -x 3 -y 4 -text "sushi bar"
//	rstknn delete  -dir IDX -id 42
//	rstknn compact -dir IDX
//	rstknn stats   -dir IDX
//
// build creates the directory from a raw-text CSV (id,x,y,free text);
// insert/delete run one live update through the copy-on-write engine and
// persist the successor snapshot; compact rewrites the node log dropping
// superseded blobs. Flag-only invocations keep the original in-memory
// behavior (see main.go).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rstknn"
)

func runSub(cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "build":
		return runBuild(args, out)
	case "query":
		return runQuerySub(args, out)
	case "insert":
		return runInsert(args, out)
	case "delete":
		return runDelete(args, out)
	case "compact":
		return runCompact(args, out)
	case "stats":
		return runStatsSub(args, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want build|query|insert|delete|compact|stats)", cmd)
	}
}

// loadRawObjects reads "id,x,y,free text" lines (the -raw CSV layout)
// into API objects, keeping the text raw so Build can weigh it.
func loadRawObjects(path string) ([]rstknn.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var objs []rstknn.Object
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, ",", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("%s:%d: want id,x,y,text", path, line)
		}
		id, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad id: %w", path, line, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad x: %w", path, line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad y: %w", path, line, err)
		}
		o := rstknn.Object{ID: int32(id), X: x, Y: y}
		if len(parts) == 4 {
			o.Text = parts[3]
		}
		objs = append(objs, o)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return objs, nil
}

func runBuild(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn build", flag.ContinueOnError)
	var (
		dir      = fs.String("dir", "", "index directory to create (required)")
		data     = fs.String("data", "", "raw CSV collection: id,x,y,free text (required)")
		index    = fs.String("index", "iur", "index kind: iur|ciur")
		clusters = fs.Int("clusters", 16, "CIUR cluster count")
		alpha    = fs.Float64("alpha", 0.5, "spatial/textual preference in [0,1]")
		measure  = fs.String("measure", "ej", "text similarity: ej|cosine")
		seed     = fs.Int64("seed", 1, "clustering seed")
		stats    = fs.Bool("stats", false, "print index statistics after building")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *data == "" {
		return fmt.Errorf("build: -dir and -data are required")
	}
	objs, err := loadRawObjects(*data)
	if err != nil {
		return err
	}
	opt := rstknn.Options{Alpha: *alpha, AlphaSet: true, Measure: *measure,
		Clusters: *clusters, Seed: *seed}
	switch *index {
	case "iur":
		opt.Index = rstknn.IUR
	case "ciur":
		opt.Index = rstknn.CIUR
	default:
		return fmt.Errorf("unknown index %q", *index)
	}
	e, err := rstknn.Build(objs, opt)
	if err != nil {
		return err
	}
	if err := e.Save(*dir); err != nil {
		return err
	}
	fmt.Fprintf(out, "built %s index over %d objects in %s\n", *index, e.Len(), *dir)
	if *stats {
		printEngineStats(out, e.Stats())
	}
	return nil
}

// saveOver persists the engine next to dir and swaps the directories, so
// the open FileStore under e is never truncated while it is still read.
func saveOver(e *rstknn.Engine, dir string) error {
	tmp := dir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := e.Save(tmp); err != nil {
		return err
	}
	if err := e.Close(); err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.Rename(tmp, dir)
}

// parseXYText splits "x,y,free text" for engine-level queries.
func parseXYText(s string) (x, y float64, text string, err error) {
	parts := strings.SplitN(s, ",", 3)
	if len(parts) < 2 {
		return 0, 0, "", fmt.Errorf("query must be \"x,y,text\": %q", s)
	}
	x, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, "", fmt.Errorf("bad x in query %q: %w", s, err)
	}
	y, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, "", fmt.Errorf("bad y in query %q: %w", s, err)
	}
	if len(parts) == 3 {
		text = parts[2]
	}
	return x, y, text, nil
}

func runQuerySub(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn query", flag.ContinueOnError)
	var (
		dir   = fs.String("dir", "", "index directory (required)")
		query = fs.String("query", "", `reverse query: "x,y,term term ..." (required)`)
		k     = fs.Int("k", 10, "rank cutoff")
		check = fs.Bool("check", false, "verify against the naive oracle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *query == "" {
		return fmt.Errorf("query: -dir and -query are required")
	}
	x, y, text, err := parseXYText(*query)
	if err != nil {
		return err
	}
	e, err := rstknn.Open(*dir)
	if err != nil {
		return err
	}
	defer e.Close()
	res, err := e.Query(x, y, text, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "RSTkNN(k=%d, alpha=%g): %d objects would rank the query in their top-%d\n",
		*k, e.Alpha(), len(res.IDs), *k)
	for _, id := range res.IDs {
		fmt.Fprintf(out, "  object %d\n", id)
	}
	fmt.Fprintf(out, "cost: %d node reads, %d page accesses, %d exact sims\n",
		res.Stats.NodesRead, res.Stats.PageAccesses, res.Stats.ExactSims)
	if *check {
		want, err := e.NaiveQuery(x, y, text, *k)
		if err != nil {
			return err
		}
		if fmt.Sprint(want) != fmt.Sprint(res.IDs) {
			return fmt.Errorf("check FAILED: naive oracle returned %v", want)
		}
		fmt.Fprintln(out, "check: matches naive oracle ✓")
	}
	return nil
}

func printUpdateStats(out io.Writer, st *rstknn.UpdateStats) {
	fmt.Fprintf(out, "update: %d blob writes (%d pages), %d node reads (%d pages), %d retired, %v\n",
		st.Writes, st.PagesWritten, st.Reads, st.PagesRead, st.Retired, st.Duration)
}

func runInsert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn insert", flag.ContinueOnError)
	var (
		dir   = fs.String("dir", "", "index directory (required)")
		id    = fs.Int("id", -1, "object ID (required)")
		x     = fs.Float64("x", 0, "object x coordinate")
		y     = fs.Float64("y", 0, "object y coordinate")
		text  = fs.String("text", "", "object description")
		stats = fs.Bool("stats", false, "print index statistics after the update")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *id < 0 {
		return fmt.Errorf("insert: -dir and -id are required")
	}
	e, err := rstknn.Open(*dir)
	if err != nil {
		return err
	}
	st, err := e.Insert(rstknn.Object{ID: int32(*id), X: *x, Y: *y, Text: *text})
	if err != nil {
		e.Close()
		return err
	}
	fmt.Fprintf(out, "inserted object %d (%d objects total)\n", *id, e.Len())
	printUpdateStats(out, st)
	if *stats {
		printEngineStats(out, e.Stats())
	}
	return saveOver(e, *dir)
}

func runDelete(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn delete", flag.ContinueOnError)
	var (
		dir   = fs.String("dir", "", "index directory (required)")
		id    = fs.Int("id", -1, "object ID (required)")
		stats = fs.Bool("stats", false, "print index statistics after the update")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *id < 0 {
		return fmt.Errorf("delete: -dir and -id are required")
	}
	e, err := rstknn.Open(*dir)
	if err != nil {
		return err
	}
	found, st, err := e.Delete(int32(*id))
	if err != nil {
		e.Close()
		return err
	}
	if !found {
		fmt.Fprintf(out, "object %d not in the index; nothing to do\n", *id)
		return e.Close()
	}
	fmt.Fprintf(out, "deleted object %d (%d objects remain)\n", *id, e.Len())
	printUpdateStats(out, st)
	if *stats {
		printEngineStats(out, e.Stats())
	}
	return saveOver(e, *dir)
}

func runCompact(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn compact", flag.ContinueOnError)
	var (
		dir   = fs.String("dir", "", "index directory (required)")
		stats = fs.Bool("stats", false, "print index statistics after compaction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("compact: -dir is required")
	}
	logPath := func() int64 {
		fi, err := os.Stat(fmt.Sprintf("%s%cindex.log", *dir, os.PathSeparator))
		if err != nil {
			return 0
		}
		return fi.Size()
	}
	before := logPath()
	e, err := rstknn.Open(*dir)
	if err != nil {
		return err
	}
	freed := e.Compact()
	if *stats {
		printEngineStats(out, e.Stats())
	}
	if err := saveOver(e, *dir); err != nil {
		return err
	}
	fmt.Fprintf(out, "compacted: %d retired nodes reclaimed, node log %d -> %d bytes\n",
		freed, before, logPath())
	return nil
}

func runStatsSub(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstknn stats", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("stats: -dir is required")
	}
	e, err := rstknn.Open(*dir)
	if err != nil {
		return err
	}
	defer e.Close()
	printEngineStats(out, e.Stats())
	return nil
}

func printEngineStats(out io.Writer, s rstknn.IndexStats) {
	fmt.Fprintf(out, "index: %s, %d objects, height %d, %d node slots, %d vocabulary terms\n",
		s.Kind, s.Objects, s.Height, s.Nodes, s.VocabSize)
	fmt.Fprintf(out, "storage: %d pages / %.2f MiB total, %d pages / %.2f MiB live, %d retired pending reclaim\n",
		s.Pages, float64(s.Bytes)/(1<<20), s.LivePages, float64(s.LiveBytes)/(1<<20), s.PendingReclaim)
	fmt.Fprintf(out, "write i/o: %d blob writes, %d pages written\n", s.Writes, s.PagesWritten)
	fmt.Fprintf(out, "caches: buffer pool %.1f%% hit (%d/%d), bound cache %.1f%% hit (%d/%d)\n",
		100*s.BufferPoolHitRatio(), s.BufferPoolHits, s.BufferPoolHits+s.BufferPoolMisses,
		100*s.BoundCacheHitRatio(), s.BoundCacheHits, s.BoundCacheHits+s.BoundCacheMisses)
	if s.Clusters > 0 {
		fmt.Fprintf(out, "clusters: %d\n", s.Clusters)
	}
	fmt.Fprintf(out, "maxD: %.2f\n", s.MaxDistance)
}
