package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rstknn/internal/textual"
)

func TestRunGenerateAndQuery(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-gen", "gn", "-n", "500", "-stats",
		"-query", "500,500,t1 t2 t7", "-k", "5", "-check",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"generated 500 objects",
		"collection: 500 objects",
		"RSTkNN(k=5, alpha=0.5)",
		"matches naive oracle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCIURWithAllFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-gen", "topical", "-n", "400", "-index", "ciur", "-clusters", "8",
		"-outlier", "0.1", "-entropy", "-alpha", "0.3", "-measure", "cosine",
		"-query", "500,500,t5 t6", "-k", "3", "-check",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matches naive oracle") {
		t.Errorf("CIUR query did not verify:\n%s", buf.String())
	}
}

func TestRunCheckIndex(t *testing.T) {
	for _, index := range []string{"iur", "ciur"} {
		var buf bytes.Buffer
		err := run([]string{
			"-gen", "gn", "-n", "400", "-index", index, "-checkindex",
		}, &buf)
		if err != nil {
			t.Fatalf("index %s: %v", index, err)
		}
		if !strings.Contains(buf.String(), "checkindex: all structural invariants hold") {
			t.Errorf("index %s: missing checkindex confirmation:\n%s", index, buf.String())
		}
	}
}

func TestRunTopK(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-gen", "uniform", "-n", "300",
		"-topk", "500,500,t1 t2", "-k", "4",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "top-4 most similar objects") {
		t.Errorf("missing top-k header:\n%s", out)
	}
	if got := strings.Count(out, ". object "); got != 4 {
		t.Errorf("expected 4 top-k lines, got %d:\n%s", got, out)
	}
}

func TestRunLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "objs.csv")
	csv := "1,10,10,sushi:1 seafood:2\n2,20,20,noodles:1\n3,12,9,sushi:2\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-data", path, "-query", "11,11,sushi", "-k", "1", "-check"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded 3 objects") {
		t.Errorf("load header missing:\n%s", buf.String())
	}
}

func TestRunLoadRawCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "raw.csv")
	csv := "1,10,10,fresh sushi and seafood\n2,20,20,hand pulled noodles\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-data", path, "-raw", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded 2 objects") {
		t.Errorf("raw load failed:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                 // neither -data nor -gen
		{"-gen", "flickr"}, // unknown profile
		{"-gen", "gn", "-n", "50", "-index", "btree"},   // unknown index
		{"-gen", "gn", "-n", "50", "-measure", "tfidf"}, // unknown measure
		{"-gen", "gn", "-n", "50", "-query", "oops"},    // bad query syntax
		{"-data", "/does/not/exist.csv"},                // missing file
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestParseQuery(t *testing.T) {
	vocab := textual.NewVocabulary()
	q, err := parseQuery("1.5, 2.5, sushi seafood", vocab)
	if err != nil {
		t.Fatal(err)
	}
	if q.Loc.X != 1.5 || q.Loc.Y != 2.5 || q.Doc.Len() != 2 {
		t.Errorf("parsed query: %+v doc=%v", q.Loc, q.Doc)
	}
	// Location-only queries are allowed.
	q, err = parseQuery("3,4", vocab)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Doc.IsEmpty() {
		t.Error("two-field query should have empty doc")
	}
	for _, bad := range []string{"", "5", "x,2,t", "2,y,t"} {
		if _, err := parseQuery(bad, vocab); err == nil {
			t.Errorf("parseQuery(%q) should fail", bad)
		}
	}
}

func TestSubcommandLifecycle(t *testing.T) {
	dir := t.TempDir()
	idx := filepath.Join(dir, "idx")
	csvPath := filepath.Join(dir, "raw.csv")
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, fmt.Sprintf("%d,%d,%d,dish number %d with sushi", i, i%10*7, i/10*9, i))
	}
	if err := os.WriteFile(csvPath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"build", "-dir", idx, "-data", csvPath, "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"built iur index over 60 objects", "write i/o:", "live"} {
		if !strings.Contains(out, want) {
			t.Errorf("build output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"insert", "-dir", idx, "-id", "100", "-x", "35", "-y", "27", "-text", "midtown sushi"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inserted object 100 (61 objects total)") ||
		!strings.Contains(buf.String(), "update:") {
		t.Errorf("insert output:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"query", "-dir", idx, "-query", "35,27,midtown sushi", "-k", "3", "-check"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "object 100") ||
		!strings.Contains(buf.String(), "matches naive oracle") {
		t.Errorf("query after insert:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"delete", "-dir", idx, "-id", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deleted object 100 (60 objects remain)") {
		t.Errorf("delete output:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"delete", "-dir", idx, "-id", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not in the index") {
		t.Errorf("double delete output:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"compact", "-dir", idx}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compacted:") {
		t.Errorf("compact output:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"stats", "-dir", idx}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "60 objects") {
		t.Errorf("stats output:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"query", "-dir", idx, "-query", "35,27,midtown sushi", "-k", "3", "-check"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "object 100") {
		t.Errorf("deleted object still reported:\n%s", buf.String())
	}

	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"insert", "-dir", idx}, &buf); err == nil {
		t.Error("insert without -id should fail")
	}
}
