// Command rstknn is the interactive front door of the library: it
// generates or loads a geo-textual collection, builds an IUR-/CIUR-tree,
// and answers reverse spatial-textual kNN, top-k, and influence queries
// from the command line.
//
// Usage:
//
//	rstknn -data objects.csv -query "x,y,text..." -k 10 [flags]
//	rstknn -gen gn -n 20000 -query "500,500,sushi bar" -k 5
//	rstknn -data objects.csv -stats
//
// The CSV format is id,x,y,"term:weight term:weight ..." (see
// internal/dataset). With -raw the fourth field is free text, tokenized
// and TF-IDF weighted on load.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/geom"
	"rstknn/internal/textual"
	"rstknn/internal/vector"

	"rstknn/internal/baseline"
	"rstknn/internal/cluster"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstknn:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// A bare first word dispatches to the persistent-index subcommands
	// (build/query/insert/delete/compact/stats — see subcmd.go); plain
	// flags keep the original one-shot in-memory behavior.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return runSub(args[0], args[1:], out)
	}
	fs := flag.NewFlagSet("rstknn", flag.ContinueOnError)
	var (
		dataPath = fs.String("data", "", "CSV collection to load (id,x,y,terms)")
		raw      = fs.Bool("raw", false, "treat the CSV text field as free text (tokenize + TF-IDF)")
		gen      = fs.String("gen", "", "generate a synthetic collection instead: gn|sb|uniform")
		n        = fs.Int("n", 10000, "synthetic collection size")
		seed     = fs.Int64("seed", 1, "generation seed")
		index    = fs.String("index", "iur", "index kind: iur|ciur")
		clusters = fs.Int("clusters", 16, "CIUR cluster count")
		outlier  = fs.Float64("outlier", 0, "O-CIUR outlier threshold (0 disables)")
		entropy  = fs.Bool("entropy", false, "E-CIUR entropy refinement at query time")
		alpha    = fs.Float64("alpha", 0.5, "spatial/textual preference in [0,1]")
		k        = fs.Int("k", 10, "rank cutoff")
		measure  = fs.String("measure", "ej", "text similarity: ej|cosine")
		query    = fs.String("query", "", `reverse query: "x,y,term term ..."`)
		topk     = fs.String("topk", "", `top-k query: "x,y,term term ..."`)
		stats    = fs.Bool("stats", false, "print collection and index statistics")
		check    = fs.Bool("check", false, "verify the reverse query against the naive oracle")
		checkIdx = fs.Bool("checkindex", false, "verify the IUR-tree structural invariants after building")
		timeout  = fs.Duration("timeout", 0, "abort queries after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// 1. Load or generate the collection.
	var objs []iurtree.Object
	vocab := textual.NewVocabulary()
	switch {
	case *gen != "":
		profile, err := dataset.ProfileByName(*gen)
		if err != nil {
			return err
		}
		col := dataset.Generate(profile, dataset.Params{N: *n, Seed: *seed})
		objs = col.Objects
		vocab = dataset.SyntheticVocabulary(col.Params.Vocab)
		fmt.Fprintf(out, "generated %d objects (profile %s, seed %d)\n", len(objs), profile, *seed)
	case *dataPath != "":
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if *raw {
			objs, vocab, err = dataset.ReadRawCSV(f, textual.TFIDF)
		} else {
			objs, err = dataset.ReadCSV(f, vocab)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %d objects from %s\n", len(objs), *dataPath)
	default:
		return fmt.Errorf("need -data or -gen (see -h)")
	}

	sim := vector.ByName(*measure)
	if sim == nil {
		return fmt.Errorf("unknown measure %q", *measure)
	}

	// 2. Build the index.
	store := storage.NewStore()
	cfg := iurtree.Config{Store: store}
	switch *index {
	case "iur":
	case "ciur":
		docs := make([]vector.Vector, len(objs))
		for i := range objs {
			docs[i] = objs[i].Doc
		}
		cfg.Clustering = cluster.Run(docs, cluster.Config{
			K: *clusters, Seed: *seed, OutlierThreshold: *outlier,
		})
	default:
		return fmt.Errorf("unknown index %q", *index)
	}
	tree, err := iurtree.Build(objs, cfg)
	if err != nil {
		return err
	}
	store.ResetStats()

	if *stats {
		printStats(out, objs, tree, vocab)
	}

	if *checkIdx {
		var tracker storage.Tracker
		if err := tree.CheckInvariantsTracked(&tracker); err != nil {
			return fmt.Errorf("checkindex FAILED: %w", err)
		}
		fmt.Fprintf(out, "checkindex: all structural invariants hold (%d node reads, %d cache hits)\n",
			tracker.Reads(), tracker.CacheHits())
	}

	strategy := core.RefineByMaxUpper
	if *entropy {
		strategy = core.RefineByEntropy
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// 3. Answer queries.
	if *query != "" {
		q, err := parseQuery(*query, vocab)
		if err != nil {
			return err
		}
		var tracker storage.Tracker
		res, err := core.RSTkNN(tree, q, core.Options{
			K: *k, Alpha: *alpha, Sim: sim, Strategy: strategy,
			Ctx: ctx, Tracker: &tracker,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "RSTkNN(k=%d, alpha=%g): %d objects would rank the query in their top-%d\n",
			*k, *alpha, len(res.Results), *k)
		for _, id := range res.Results {
			fmt.Fprintf(out, "  object %d\n", id)
		}
		fmt.Fprintf(out, "cost: %d node reads, %d page accesses, %d exact sims, %d bound evals\n",
			res.Metrics.NodesRead, tracker.PagesRead(), res.Metrics.ExactSims, res.Metrics.BoundEvals)
		if *check {
			want, err := baseline.Naive(objs, q, *k, *alpha, tree.MaxD(), sim)
			if err != nil {
				return err
			}
			if fmt.Sprint(want) == fmt.Sprint(res.Results) {
				fmt.Fprintln(out, "check: matches naive oracle ✓")
			} else {
				return fmt.Errorf("check FAILED: naive oracle returned %v", want)
			}
		}
	}

	if *topk != "" {
		q, err := parseQuery(*topk, vocab)
		if err != nil {
			return err
		}
		nbs, _, err := core.TopK(tree, q, core.TopKOptions{
			K: *k, Alpha: *alpha, Sim: sim, Exclude: -1, Ctx: ctx,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "top-%d most similar objects:\n", *k)
		for i, nb := range nbs {
			fmt.Fprintf(out, "  %2d. object %d (sim %.4f)\n", i+1, nb.ID, nb.Sim)
		}
	}
	return nil
}

// parseQuery parses "x,y,term term term" into a core.Query, weighting
// terms as binary presence against the vocabulary (unknown terms are
// interned so a query can mention new words; they simply match nothing).
func parseQuery(s string, vocab *textual.Vocabulary) (core.Query, error) {
	parts := strings.SplitN(s, ",", 3)
	if len(parts) < 2 {
		return core.Query{}, fmt.Errorf("query must be \"x,y,text\": %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return core.Query{}, fmt.Errorf("bad x in query %q: %w", s, err)
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return core.Query{}, fmt.Errorf("bad y in query %q: %w", s, err)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return core.Query{}, fmt.Errorf("query location (%g, %g) must be finite", x, y)
	}
	w := make(map[vector.TermID]float64)
	if len(parts) == 3 {
		for _, tok := range textual.Tokenize(parts[2]) {
			w[vocab.ID(tok)] = 1
		}
	}
	return core.Query{Loc: geom.Point{X: x, Y: y}, Doc: vector.New(w)}, nil
}

func printStats(out io.Writer, objs []iurtree.Object, tree *iurtree.Snapshot, vocab *textual.Vocabulary) {
	var totalTerms int64
	seen := map[vector.TermID]bool{}
	for _, o := range objs {
		totalTerms += int64(o.Doc.Len())
		for i := 0; i < o.Doc.Len(); i++ {
			seen[o.Doc.Term(i)] = true
		}
	}
	fmt.Fprintf(out, "collection: %d objects, %d unique terms, %.2f terms/object\n",
		len(objs), len(seen), float64(totalTerms)/float64(max(1, len(objs))))
	fmt.Fprintf(out, "index: height %d, %d nodes, %d pages, %.2f MiB (%.2f MiB live)",
		tree.Height(), tree.Store().Len(), tree.Store().TotalPages(),
		float64(tree.Store().TotalBytes())/(1<<20),
		float64(tree.Store().LiveBytes())/(1<<20))
	if tree.Clustered() {
		fmt.Fprintf(out, ", %d clusters", tree.NumClusters())
	}
	fmt.Fprintf(out, "\nspace: %v (maxD %.2f)\n", tree.Space(), tree.MaxD())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
