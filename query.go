package rstknn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rstknn/internal/baseline"
	"rstknn/internal/core"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Result is the outcome of one reverse query.
type Result struct {
	// IDs lists the objects that would rank the query within their
	// top-k, ascending.
	IDs []int32
	// Stats describes the work performed.
	Stats QueryStats
}

// QueryStats describes the cost of one query under the simulated I/O
// model (one node read = ceil(nodeBytes/pageSize) page accesses). The
// I/O counters come from the query's own execution tracker — never from
// deltas of store-global counters — so they are exact even when many
// queries run concurrently.
type QueryStats struct {
	// Duration is the query's wall time. For queries answered by a
	// shared batch traversal it is the whole batch's wall time — the
	// per-query share of a fused traversal is not separable.
	Duration     time.Duration
	NodesRead    int
	PageAccesses int64
	CacheHits    int64
	// SharedReads counts the node reads served by a shared batch
	// traversal's once-per-batch physical fetch (always 0 outside
	// BatchQuery's shared mode; equal to NodesRead inside it). The
	// physical I/O those reads amortize is reported on BatchStats, not
	// here — see the tracker attribution rule in DESIGN.md §11.
	SharedReads   int64
	ExactSims     int64
	BoundEvals    int64
	GroupPruned   int
	GroupReported int
	Candidates    int
	Refinements   int
}

// CacheHitRatio returns the fraction of this query's node reads that
// paid no simulated page I/O — buffer-pool/node-cache hits plus
// batch-shared reads over all reads — or 0 when the query read nothing.
func (s QueryStats) CacheHitRatio() float64 {
	if s.NodesRead == 0 {
		return 0
	}
	return float64(s.CacheHits+s.SharedReads) / float64(s.NodesRead)
}

// validateQuery rejects the inputs that would otherwise give undefined
// behavior: non-positive k and NaN/Inf coordinates.
func validateQuery(x, y float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("rstknn: k must be positive, got %d", k)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("rstknn: query location (%g, %g) must be finite", x, y)
	}
	return nil
}

// Query answers the RSTkNN query for a prospective object at (x, y) with
// the given text: which indexed objects would rank it within their top-k?
func (e *Engine) Query(x, y float64, text string, k int) (*Result, error) {
	return e.QueryCtx(context.Background(), x, y, text, k)
}

// QueryCtx is Query with cancellation: the context is checked before
// every node read and the query aborts with ctx.Err() once it is done.
func (e *Engine) QueryCtx(ctx context.Context, x, y float64, text string, k int) (*Result, error) {
	return e.QueryVectorCtx(ctx, x, y, e.vectorize(text), k)
}

// QueryVector is Query with a pre-built term vector (advanced use: the
// vector must be weighted against this engine's vocabulary).
func (e *Engine) QueryVector(x, y float64, doc vector.Vector, k int) (*Result, error) {
	return e.QueryVectorCtx(context.Background(), x, y, doc, k)
}

// QueryVectorCtx is QueryVector with cancellation.
func (e *Engine) QueryVectorCtx(ctx context.Context, x, y float64, doc vector.Vector, k int) (*Result, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	st, release := e.pin()
	defer release()
	return e.queryVector(ctx, st, x, y, doc, k)
}

// queryVector runs one reverse query against an already-pinned state.
func (e *Engine) queryVector(ctx context.Context, st *engineState, x, y float64, doc vector.Vector, k int) (*Result, error) {
	strategy := core.RefineByMaxUpper
	if e.opt.EntropyRefinement {
		strategy = core.RefineByEntropy
	}
	// The tracker is this query's execution context: all simulated I/O
	// of this query — and only this query — lands on it.
	var tracker storage.Tracker
	start := time.Now()
	out, err := core.RSTkNN(st.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: doc}, core.Options{
		K:           k,
		Alpha:       e.opt.Alpha,
		Sim:         e.measure,
		Strategy:    strategy,
		GroupRefine: e.opt.GroupRefine,
		Workers:     e.opt.Workers,
		Ctx:         ctx,
		Tracker:     &tracker,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		IDs: out.Results,
		Stats: QueryStats{
			Duration:      time.Since(start),
			NodesRead:     out.Metrics.NodesRead,
			PageAccesses:  tracker.PagesRead(),
			CacheHits:     tracker.CacheHits(),
			ExactSims:     out.Metrics.ExactSims,
			BoundEvals:    out.Metrics.BoundEvals,
			GroupPruned:   out.Metrics.GroupPruned,
			GroupReported: out.Metrics.GroupReported,
			Candidates:    out.Metrics.Candidates,
			Refinements:   out.Metrics.Refinements,
		},
	}, nil
}

// QueryByID answers the reverse query for an object already in the
// index: which *other* indexed objects would rank object id within their
// top-k? The object itself (which trivially ranks the query, similarity
// 1) is excluded from the result.
func (e *Engine) QueryByID(id int32, k int) (*Result, error) {
	return e.QueryByIDCtx(context.Background(), id, k)
}

// QueryByIDCtx is QueryByID with cancellation.
func (e *Engine) QueryByIDCtx(ctx context.Context, id int32, k int) (*Result, error) {
	st, release := e.pin()
	defer release()
	i, ok := st.byID[id]
	if !ok {
		return nil, fmt.Errorf("rstknn: unknown object ID %d", id)
	}
	o := st.objects[i]
	if err := validateQuery(o.Loc.X, o.Loc.Y, k); err != nil {
		return nil, err
	}
	res, err := e.queryVector(ctx, st, o.Loc.X, o.Loc.Y, o.Doc, k)
	if err != nil {
		return nil, err
	}
	filtered := res.IDs[:0]
	for _, rid := range res.IDs {
		if rid != id {
			filtered = append(filtered, rid)
		}
	}
	res.IDs = filtered
	return res, nil
}

// TopK returns the k indexed objects most similar to the given location
// and text, by descending similarity.
func (e *Engine) TopK(x, y float64, text string, k int) ([]Neighbor, error) {
	return e.TopKCtx(context.Background(), x, y, text, k)
}

// TopKCtx is TopK with cancellation.
func (e *Engine) TopKCtx(ctx context.Context, x, y float64, text string, k int) ([]Neighbor, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	st, release := e.pin()
	defer release()
	nbs, _, err := core.TopK(st.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.TopKOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure, Exclude: -1, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, nb := range nbs {
		out[i] = Neighbor{ID: nb.ID, Similarity: nb.Sim}
	}
	return out, nil
}

// Neighbor is one top-k result.
type Neighbor struct {
	ID         int32
	Similarity float64
}

// Influence answers the bichromatic reverse query: which of the given
// users would rank a facility at (x, y) with the given text within their
// top-k among this engine's indexed objects (treated as the facility
// set)? User text is weighted against the engine's corpus.
func (e *Engine) Influence(users []Object, x, y float64, text string, k int) ([]int32, error) {
	return e.InfluenceCtx(context.Background(), users, x, y, text, k)
}

// InfluenceCtx is Influence with cancellation.
func (e *Engine) InfluenceCtx(ctx context.Context, users []Object, x, y float64, text string, k int) ([]int32, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	us := make([]iurtree.Object, len(users))
	for i, u := range users {
		us[i] = iurtree.Object{ID: u.ID, Loc: geom.Point{X: u.X, Y: u.Y}, Doc: e.vectorize(u.Text)}
	}
	st, release := e.pin()
	defer release()
	var tracker storage.Tracker
	out, err := core.BichromaticRSTkNN(st.tree, us,
		core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.BichromaticOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure,
			Workers: e.opt.Workers, Ctx: ctx, Tracker: &tracker})
	if err != nil {
		return nil, err
	}
	return out.UserIDs, nil
}

// QueryRequest is one unit of work for BatchQuery.
type QueryRequest struct {
	X, Y float64
	Text string
	K    int
}

// BatchResult pairs one BatchQuery answer with its error; exactly one of
// the two fields is meaningful.
type BatchResult struct {
	Result *Result
	Err    error
}

// BatchStats describes one BatchQuery invocation as a whole: the
// batch-level amortization numbers that per-request QueryStats cannot
// express once one physical node read serves many queries.
type BatchStats struct {
	// Requests is the batch size, Shared whether the shared-traversal
	// path answered it (see Options.SharedBatch).
	Requests int
	Shared   bool
	// Duration is the whole batch's wall time.
	Duration time.Duration
	// NodesRead counts physical node fetches: each distinct node once in
	// shared mode, the sum of per-query NodesRead in independent mode —
	// so shared-vs-ablation runs compare directly on this field.
	NodesRead int
	// SharedHits counts per-query logical reads served by a node the
	// batch had already fetched (0 in independent mode): the sum of
	// per-query NodesRead minus the physical NodesRead above.
	SharedHits int
	// NodesReadPerQuery is NodesRead divided by the number of requests —
	// the amortized I/O the shared traversal optimizes.
	NodesReadPerQuery float64
	// PageAccesses is the simulated page I/O the physical reads paid.
	PageAccesses int64
}

// batchParallelism resolves the caller's parallelism request for a batch
// of n requests: values <= 0 default to runtime.GOMAXPROCS(0) (matching
// the single-query Workers option), and the result is clamped to n so a
// small batch never spawns goroutines with no request to serve.
func batchParallelism(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// BatchQuery answers many reverse queries against one pinned snapshot:
// concurrent Insert/Delete/Apply calls do not affect the batch, and
// every request sees the same index version. Results are returned in
// request order, each with its own per-query QueryStats.
//
// With Options.SharedBatch enabled (the default), a multi-request batch
// runs as ONE shared branch-and-bound traversal: each tree node is
// physically read at most once per batch and scored against every query
// still active on it, so I/O per query shrinks as the batch grows while
// per-request results and QueryStats counters stay bit-identical to
// independent execution. parallelism then bounds the traversal's worker
// pool (values <= 0 default to runtime.GOMAXPROCS(0), values above it
// are clamped). With SharedBatch negative — or for single-request
// batches — requests fan out independently over a worker pool of
// min(parallelism, len(reqs)) goroutines, with <= 0 again defaulting to
// GOMAXPROCS.
func (e *Engine) BatchQuery(reqs []QueryRequest, parallelism int) []BatchResult {
	return e.BatchQueryCtx(context.Background(), reqs, parallelism)
}

// BatchQueryCtx is BatchQuery with cancellation: once the context is
// done, not-yet-started requests fail fast with ctx.Err() and running
// ones abort at their next node read.
func (e *Engine) BatchQueryCtx(ctx context.Context, reqs []QueryRequest, parallelism int) []BatchResult {
	out, _ := e.BatchQueryStatsCtx(ctx, reqs, parallelism)
	return out
}

// BatchQueryStatsCtx is BatchQueryCtx plus the batch-level BatchStats:
// the physical node reads, the shared-read amortization, and the
// per-query average that per-request QueryStats cannot express.
func (e *Engine) BatchQueryStatsCtx(ctx context.Context, reqs []QueryRequest, parallelism int) ([]BatchResult, BatchStats) {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out, BatchStats{}
	}
	st, release := e.pin()
	defer release()
	start := time.Now()
	var bs BatchStats
	if e.opt.SharedBatch >= 0 && len(reqs) > 1 {
		bs = e.batchShared(ctx, st, reqs, parallelism, out)
	} else {
		bs = e.batchIndependent(ctx, st, reqs, parallelism, out)
	}
	bs.Requests = len(reqs)
	bs.Duration = time.Since(start)
	bs.NodesReadPerQuery = float64(bs.NodesRead) / float64(len(reqs))
	return out, bs
}

// batchShared answers the batch with one shared traversal (see
// core.MultiRSTkNN). Invalid requests fail individually and are excluded
// from the traversal; a traversal error (cancellation, I/O) fails every
// participating request.
func (e *Engine) batchShared(ctx context.Context, st *engineState, reqs []QueryRequest, parallelism int, out []BatchResult) BatchStats {
	bs := BatchStats{Shared: true}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i] = BatchResult{Err: err}
		}
		return bs
	}
	items := make([]core.BatchItem, 0, len(reqs))
	idxs := make([]int, 0, len(reqs))
	trackers := make([]storage.Tracker, len(reqs))
	for i, r := range reqs {
		if err := validateQuery(r.X, r.Y, r.K); err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		items = append(items, core.BatchItem{
			Query:   core.Query{Loc: geom.Point{X: r.X, Y: r.Y}, Doc: e.vectorize(r.Text)},
			K:       r.K,
			Tracker: &trackers[i],
		})
		idxs = append(idxs, i)
	}
	if len(items) == 0 {
		return bs
	}
	strategy := core.RefineByMaxUpper
	if e.opt.EntropyRefinement {
		strategy = core.RefineByEntropy
	}
	// batchTracker is the batch's execution context: the once-per-node
	// physical I/O of the whole traversal — and only it — lands here.
	var batchTracker storage.Tracker
	start := time.Now()
	mo, err := core.MultiRSTkNN(st.tree, items, core.Options{
		Alpha:       e.opt.Alpha,
		Sim:         e.measure,
		Strategy:    strategy,
		GroupRefine: e.opt.GroupRefine,
		Workers:     parallelism,
		Ctx:         ctx,
		Tracker:     &batchTracker,
	})
	if err != nil {
		for _, i := range idxs {
			out[i] = BatchResult{Err: err}
		}
		return bs
	}
	elapsed := time.Since(start)
	for j, i := range idxs {
		o := mo.Outcomes[j]
		out[i] = BatchResult{Result: &Result{
			IDs: o.Results,
			Stats: QueryStats{
				Duration:      elapsed,
				NodesRead:     o.Metrics.NodesRead,
				PageAccesses:  trackers[i].PagesRead(),
				CacheHits:     trackers[i].CacheHits(),
				SharedReads:   trackers[i].SharedReads(),
				ExactSims:     o.Metrics.ExactSims,
				BoundEvals:    o.Metrics.BoundEvals,
				GroupPruned:   o.Metrics.GroupPruned,
				GroupReported: o.Metrics.GroupReported,
				Candidates:    o.Metrics.Candidates,
				Refinements:   o.Metrics.Refinements,
			},
		}}
	}
	bs.NodesRead = mo.Batch.NodesRead
	bs.SharedHits = mo.Batch.SharedHits
	bs.PageAccesses = batchTracker.PagesRead()
	return bs
}

// batchIndependent fans the requests over a worker pool, one standalone
// query each — the pre-shared-traversal behavior, kept as the
// SharedBatch ablation and the single-request path.
func (e *Engine) batchIndependent(ctx context.Context, st *engineState, reqs []QueryRequest, parallelism int, out []BatchResult) BatchStats {
	parallelism = batchParallelism(parallelism, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				r := reqs[i]
				if err := validateQuery(r.X, r.Y, r.K); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				res, err := e.queryVector(ctx, st, r.X, r.Y, e.vectorize(r.Text), r.K)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	bs := BatchStats{}
	for i := range out {
		if out[i].Result != nil {
			bs.NodesRead += out[i].Result.Stats.NodesRead
			bs.PageAccesses += out[i].Result.Stats.PageAccesses
		}
	}
	return bs
}

// NaiveQuery answers the same reverse query by exhaustive scan — the
// correctness oracle and the paper's comparison baseline. Exposed so
// downstream users can sanity-check and benchmark on their own data.
func (e *Engine) NaiveQuery(x, y float64, text string, k int) ([]int32, error) {
	st, release := e.pin()
	defer release()
	return baseline.Naive(st.objects, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		k, e.opt.Alpha, st.tree.MaxD(), e.measure)
}
