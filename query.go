package rstknn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rstknn/internal/baseline"
	"rstknn/internal/core"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Result is the outcome of one reverse query.
type Result struct {
	// IDs lists the objects that would rank the query within their
	// top-k, ascending.
	IDs []int32
	// Stats describes the work performed.
	Stats QueryStats
}

// QueryStats describes the cost of one query under the simulated I/O
// model (one node read = ceil(nodeBytes/pageSize) page accesses). The
// I/O counters come from the query's own execution tracker — never from
// deltas of store-global counters — so they are exact even when many
// queries run concurrently.
type QueryStats struct {
	Duration      time.Duration
	NodesRead     int
	PageAccesses  int64
	CacheHits     int64
	ExactSims     int64
	BoundEvals    int64
	GroupPruned   int
	GroupReported int
	Candidates    int
	Refinements   int
}

// validateQuery rejects the inputs that would otherwise give undefined
// behavior: non-positive k and NaN/Inf coordinates.
func validateQuery(x, y float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("rstknn: k must be positive, got %d", k)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("rstknn: query location (%g, %g) must be finite", x, y)
	}
	return nil
}

// Query answers the RSTkNN query for a prospective object at (x, y) with
// the given text: which indexed objects would rank it within their top-k?
func (e *Engine) Query(x, y float64, text string, k int) (*Result, error) {
	return e.QueryCtx(context.Background(), x, y, text, k)
}

// QueryCtx is Query with cancellation: the context is checked before
// every node read and the query aborts with ctx.Err() once it is done.
func (e *Engine) QueryCtx(ctx context.Context, x, y float64, text string, k int) (*Result, error) {
	return e.QueryVectorCtx(ctx, x, y, e.vectorize(text), k)
}

// QueryVector is Query with a pre-built term vector (advanced use: the
// vector must be weighted against this engine's vocabulary).
func (e *Engine) QueryVector(x, y float64, doc vector.Vector, k int) (*Result, error) {
	return e.QueryVectorCtx(context.Background(), x, y, doc, k)
}

// QueryVectorCtx is QueryVector with cancellation.
func (e *Engine) QueryVectorCtx(ctx context.Context, x, y float64, doc vector.Vector, k int) (*Result, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	st, release := e.pin()
	defer release()
	return e.queryVector(ctx, st, x, y, doc, k)
}

// queryVector runs one reverse query against an already-pinned state.
func (e *Engine) queryVector(ctx context.Context, st *engineState, x, y float64, doc vector.Vector, k int) (*Result, error) {
	strategy := core.RefineByMaxUpper
	if e.opt.EntropyRefinement {
		strategy = core.RefineByEntropy
	}
	// The tracker is this query's execution context: all simulated I/O
	// of this query — and only this query — lands on it.
	var tracker storage.Tracker
	start := time.Now()
	out, err := core.RSTkNN(st.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: doc}, core.Options{
		K:           k,
		Alpha:       e.opt.Alpha,
		Sim:         e.measure,
		Strategy:    strategy,
		GroupRefine: e.opt.GroupRefine,
		Workers:     e.opt.Workers,
		Ctx:         ctx,
		Tracker:     &tracker,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		IDs: out.Results,
		Stats: QueryStats{
			Duration:      time.Since(start),
			NodesRead:     out.Metrics.NodesRead,
			PageAccesses:  tracker.PagesRead(),
			CacheHits:     tracker.CacheHits(),
			ExactSims:     out.Metrics.ExactSims,
			BoundEvals:    out.Metrics.BoundEvals,
			GroupPruned:   out.Metrics.GroupPruned,
			GroupReported: out.Metrics.GroupReported,
			Candidates:    out.Metrics.Candidates,
			Refinements:   out.Metrics.Refinements,
		},
	}, nil
}

// QueryByID answers the reverse query for an object already in the
// index: which *other* indexed objects would rank object id within their
// top-k? The object itself (which trivially ranks the query, similarity
// 1) is excluded from the result.
func (e *Engine) QueryByID(id int32, k int) (*Result, error) {
	return e.QueryByIDCtx(context.Background(), id, k)
}

// QueryByIDCtx is QueryByID with cancellation.
func (e *Engine) QueryByIDCtx(ctx context.Context, id int32, k int) (*Result, error) {
	st, release := e.pin()
	defer release()
	i, ok := st.byID[id]
	if !ok {
		return nil, fmt.Errorf("rstknn: unknown object ID %d", id)
	}
	o := st.objects[i]
	if err := validateQuery(o.Loc.X, o.Loc.Y, k); err != nil {
		return nil, err
	}
	res, err := e.queryVector(ctx, st, o.Loc.X, o.Loc.Y, o.Doc, k)
	if err != nil {
		return nil, err
	}
	filtered := res.IDs[:0]
	for _, rid := range res.IDs {
		if rid != id {
			filtered = append(filtered, rid)
		}
	}
	res.IDs = filtered
	return res, nil
}

// TopK returns the k indexed objects most similar to the given location
// and text, by descending similarity.
func (e *Engine) TopK(x, y float64, text string, k int) ([]Neighbor, error) {
	return e.TopKCtx(context.Background(), x, y, text, k)
}

// TopKCtx is TopK with cancellation.
func (e *Engine) TopKCtx(ctx context.Context, x, y float64, text string, k int) ([]Neighbor, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	st, release := e.pin()
	defer release()
	nbs, _, err := core.TopK(st.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.TopKOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure, Exclude: -1, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, nb := range nbs {
		out[i] = Neighbor{ID: nb.ID, Similarity: nb.Sim}
	}
	return out, nil
}

// Neighbor is one top-k result.
type Neighbor struct {
	ID         int32
	Similarity float64
}

// Influence answers the bichromatic reverse query: which of the given
// users would rank a facility at (x, y) with the given text within their
// top-k among this engine's indexed objects (treated as the facility
// set)? User text is weighted against the engine's corpus.
func (e *Engine) Influence(users []Object, x, y float64, text string, k int) ([]int32, error) {
	return e.InfluenceCtx(context.Background(), users, x, y, text, k)
}

// InfluenceCtx is Influence with cancellation.
func (e *Engine) InfluenceCtx(ctx context.Context, users []Object, x, y float64, text string, k int) ([]int32, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	us := make([]iurtree.Object, len(users))
	for i, u := range users {
		us[i] = iurtree.Object{ID: u.ID, Loc: geom.Point{X: u.X, Y: u.Y}, Doc: e.vectorize(u.Text)}
	}
	st, release := e.pin()
	defer release()
	var tracker storage.Tracker
	out, err := core.BichromaticRSTkNN(st.tree, us,
		core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.BichromaticOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure,
			Workers: e.opt.Workers, Ctx: ctx, Tracker: &tracker})
	if err != nil {
		return nil, err
	}
	return out.UserIDs, nil
}

// QueryRequest is one unit of work for BatchQuery.
type QueryRequest struct {
	X, Y float64
	Text string
	K    int
}

// BatchResult pairs one BatchQuery answer with its error; exactly one of
// the two fields is meaningful.
type BatchResult struct {
	Result *Result
	Err    error
}

// BatchQuery answers many reverse queries over a worker pool sharing
// this engine. parallelism caps the number of concurrent workers; values
// <= 0 default to runtime.GOMAXPROCS(0). Results are returned in request
// order, each with its own per-query QueryStats. The whole batch runs
// against one pinned snapshot: concurrent Insert/Delete/Apply calls do
// not affect it, and every request sees the same index version.
func (e *Engine) BatchQuery(reqs []QueryRequest, parallelism int) []BatchResult {
	return e.BatchQueryCtx(context.Background(), reqs, parallelism)
}

// BatchQueryCtx is BatchQuery with cancellation: once the context is
// done, not-yet-started requests fail fast with ctx.Err() and running
// ones abort at their next node read.
func (e *Engine) BatchQueryCtx(ctx context.Context, reqs []QueryRequest, parallelism int) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(reqs) {
		parallelism = len(reqs)
	}
	st, release := e.pin()
	defer release()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				r := reqs[i]
				if err := validateQuery(r.X, r.Y, r.K); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				res, err := e.queryVector(ctx, st, r.X, r.Y, e.vectorize(r.Text), r.K)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// NaiveQuery answers the same reverse query by exhaustive scan — the
// correctness oracle and the paper's comparison baseline. Exposed so
// downstream users can sanity-check and benchmark on their own data.
func (e *Engine) NaiveQuery(x, y float64, text string, k int) ([]int32, error) {
	st, release := e.pin()
	defer release()
	return baseline.Naive(st.objects, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		k, e.opt.Alpha, st.tree.MaxD(), e.measure)
}
