package rstknn

import (
	"fmt"
	"time"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
)

// ErrClustered is returned by Insert, Delete, and Apply on CIUR engines:
// the per-cluster envelopes depend on an offline clustering that a
// single update cannot meaningfully extend. Rebuild the index in the
// background and swap the fresh engine in.
var ErrClustered = iurtree.ErrClustered

// UpdateStats describes the cost of one Insert, Delete, or Apply under
// the simulated I/O model. The counters come from the update's own
// tracker, so they are exact even with queries running concurrently.
type UpdateStats struct {
	Duration time.Duration
	// Writes/PagesWritten count the fresh node blobs the path copy
	// persisted.
	Writes       int64
	PagesWritten int64
	// Reads/PagesRead count the root-to-leaf descent.
	Reads     int64
	PagesRead int64
	// Retired is the number of superseded nodes handed to the
	// reclaimer; they are freed once no pinned reader can reach them.
	Retired int
}

// Batch groups deletions and insertions into one atomic snapshot swap.
type Batch struct {
	Insert []Object
	Delete []int32
}

func newUpdateStats(start time.Time, tr *storage.Tracker, retired int) *UpdateStats {
	return &UpdateStats{
		Duration:     time.Since(start),
		Writes:       tr.Writes(),
		PagesWritten: tr.PagesWritten(),
		Reads:        tr.Reads(),
		PagesRead:    tr.PagesRead(),
		Retired:      retired,
	}
}

// toIndexed weighs the object's text against the engine's frozen corpus
// statistics. Terms outside the build-time vocabulary are dropped: they
// could never match any query weighted against the same vocabulary.
func (e *Engine) toIndexed(o Object) iurtree.Object {
	return iurtree.Object{
		ID:  o.ID,
		Loc: geom.Point{X: o.X, Y: o.Y},
		Doc: e.vectorize(o.Text),
	}
}

// Insert adds one object to the index. It is safe to call with queries
// in flight: readers that pinned the previous snapshot keep it; later
// queries see the new object. Concurrent writers serialize. Returns
// ErrClustered on CIUR engines and an error for a duplicate ID.
func (e *Engine) Insert(o Object) (*UpdateStats, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()
	//rstknn:allow pinsafe writer path: holds writeMu, and only writeMu holders retire; the loaded snapshot cannot be reclaimed under the lock
	cur := e.state.Load()
	if _, dup := cur.byID[o.ID]; dup {
		return nil, fmt.Errorf("rstknn: duplicate object ID %d", o.ID)
	}
	io := e.toIndexed(o)
	var tracker storage.Tracker
	//rstknn:allow locksafe writers serialize on writeMu by design; COW node I/O happens under it
	tree, retired, err := cur.tree.Insert(io, &tracker)
	if err != nil {
		return nil, err
	}
	objects := make([]iurtree.Object, len(cur.objects), len(cur.objects)+1)
	copy(objects, cur.objects)
	objects = append(objects, io)
	byID := make(map[int32]int, len(objects))
	for i := range objects {
		byID[objects[i].ID] = i
	}
	e.publish(&engineState{tree: tree, objects: objects, byID: byID}, retired)
	return newUpdateStats(start, &tracker, len(retired)), nil
}

// Delete removes the object with the given ID. The boolean reports
// whether it existed; deleting an unknown ID is not an error. Readers
// that pinned an earlier snapshot still see the object until they
// finish.
func (e *Engine) Delete(id int32) (bool, *UpdateStats, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()
	//rstknn:allow pinsafe writer path: holds writeMu, and only writeMu holders retire; the loaded snapshot cannot be reclaimed under the lock
	cur := e.state.Load()
	if cur.tree.NumClusters() > 0 {
		return false, nil, ErrClustered
	}
	i, ok := cur.byID[id]
	if !ok {
		return false, nil, nil
	}
	var tracker storage.Tracker
	//rstknn:allow locksafe writers serialize on writeMu by design; COW node I/O happens under it
	tree, retired, found, err := cur.tree.Delete(id, cur.objects[i].Loc, &tracker)
	if err != nil {
		return false, nil, err
	}
	if !found {
		return false, nil, fmt.Errorf("rstknn: object %d in table but not in tree", id)
	}
	objects := make([]iurtree.Object, 0, len(cur.objects)-1)
	objects = append(objects, cur.objects[:i]...)
	objects = append(objects, cur.objects[i+1:]...)
	byID := make(map[int32]int, len(objects))
	for j := range objects {
		byID[objects[j].ID] = j
	}
	e.publish(&engineState{tree: tree, objects: objects, byID: byID}, retired)
	return true, newUpdateStats(start, &tracker, len(retired)), nil
}

// Apply runs the batch's deletions, then its insertions, and publishes
// the result as ONE snapshot swap: no reader ever observes a partially
// applied batch. Unknown delete IDs are skipped; duplicate insert IDs
// (within the batch, or colliding with an object the batch does not
// delete) fail upfront before anything is modified. On error the
// published snapshot is unchanged.
func (e *Engine) Apply(b Batch) (*UpdateStats, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()
	//rstknn:allow pinsafe writer path: holds writeMu, and only writeMu holders retire; the loaded snapshot cannot be reclaimed under the lock
	cur := e.state.Load()
	if cur.tree.NumClusters() > 0 {
		return nil, ErrClustered
	}
	deleting := make(map[int32]bool, len(b.Delete))
	for _, id := range b.Delete {
		deleting[id] = true
	}
	pending := make(map[int32]bool, len(b.Insert))
	for _, o := range b.Insert {
		if pending[o.ID] {
			return nil, fmt.Errorf("rstknn: duplicate object ID %d in batch", o.ID)
		}
		if _, exists := cur.byID[o.ID]; exists && !deleting[o.ID] {
			return nil, fmt.Errorf("rstknn: duplicate object ID %d", o.ID)
		}
		pending[o.ID] = true
	}

	var tracker storage.Tracker
	var retired []storage.NodeID
	tree := cur.tree
	objects := make([]iurtree.Object, len(cur.objects))
	copy(objects, cur.objects)
	byID := make(map[int32]int, len(objects)+len(b.Insert))
	for i := range objects {
		byID[objects[i].ID] = i
	}
	for _, id := range b.Delete {
		i, ok := byID[id]
		if !ok {
			continue
		}
		//rstknn:allow locksafe writers serialize on writeMu by design; COW node I/O happens under it
		next, rets, found, err := tree.Delete(id, objects[i].Loc, &tracker)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("rstknn: object %d in table but not in tree", id)
		}
		tree = next
		retired = append(retired, rets...)
		last := len(objects) - 1
		objects[i] = objects[last]
		objects = objects[:last]
		delete(byID, id)
		if i < len(objects) {
			byID[objects[i].ID] = i
		}
	}
	for _, o := range b.Insert {
		io := e.toIndexed(o)
		//rstknn:allow locksafe writers serialize on writeMu by design; COW node I/O happens under it
		next, rets, err := tree.Insert(io, &tracker)
		if err != nil {
			return nil, err
		}
		tree = next
		retired = append(retired, rets...)
		objects = append(objects, io)
		byID[io.ID] = len(objects) - 1
	}
	e.publish(&engineState{tree: tree, objects: objects, byID: byID}, retired)
	return newUpdateStats(start, &tracker, len(retired)), nil
}

// publish swaps in the successor snapshot and only THEN hands the
// superseded nodes to the reclaimer: a reader pinning after the swap
// loads the new state and can never reach a node retired here. Caller
// holds writeMu.
func (e *Engine) publish(next *engineState, retired []storage.NodeID) {
	e.state.Store(next)
	e.rec.Retire(retired)
}

// Compact frees every retired node no pinned reader can reach anymore
// and returns how many were reclaimed. Updates trigger the same sweep
// opportunistically; Compact exists for idle-time maintenance.
func (e *Engine) Compact() int { return e.rec.TryFree() }

// CheckInvariants verifies the full structural invariants of the current
// snapshot (bounding rectangles, counts, vector envelopes, leaf depth).
// It pins the snapshot like a query, so it is safe with writers running.
func (e *Engine) CheckInvariants() error {
	st, release := e.pin()
	defer release()
	return st.tree.CheckInvariants()
}
