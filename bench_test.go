// Benchmarks: one testing.B entry per paper table/figure (driving the
// same experiment harness as cmd/rstknn-bench, at a reduced scale so
// `go test -bench=.` terminates quickly) plus micro-benchmarks of the
// hot paths. Full-scale tables are produced by `go run ./cmd/rstknn-bench`.
package rstknn

import (
	"math/rand"
	"testing"

	"rstknn/internal/baseline"
	"rstknn/internal/bench"
	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// benchConfig is the reduced scale used inside testing.B: large enough to
// exercise multi-level trees, small enough for quick runs.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.05, Queries: 3, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1DatasetStats(b *testing.B)      { runExperiment(b, "T1") }
func BenchmarkT2IndexConstruction(b *testing.B) { runExperiment(b, "T2") }
func BenchmarkF1VaryK(b *testing.B)             { runExperiment(b, "F1") }
func BenchmarkF2PageAccess(b *testing.B)        { runExperiment(b, "F2") }
func BenchmarkF3VaryAlpha(b *testing.B)         { runExperiment(b, "F3") }
func BenchmarkF4Scalability(b *testing.B)       { runExperiment(b, "F4") }
func BenchmarkF5Pruning(b *testing.B)           { runExperiment(b, "F5") }
func BenchmarkF6Clusters(b *testing.B)          { runExperiment(b, "F6") }
func BenchmarkF7DocLength(b *testing.B)         { runExperiment(b, "F7") }
func BenchmarkF8Baselines(b *testing.B)         { runExperiment(b, "F8") }
func BenchmarkF9Measures(b *testing.B)          { runExperiment(b, "F9") }
func BenchmarkF10Profiles(b *testing.B)         { runExperiment(b, "F10") }
func BenchmarkF11Ablation(b *testing.B)         { runExperiment(b, "F11") }
func BenchmarkF12BufferPool(b *testing.B)       { runExperiment(b, "F12") }
func BenchmarkF13Parallel(b *testing.B)         { runExperiment(b, "F13") }

// ------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

func benchCollection(n int) (*dataset.Collection, []dataset.QueryObject) {
	col := dataset.Generate(dataset.GN, dataset.Params{N: n, Seed: 42})
	return col, col.Queries(64, 43)
}

func benchTree(b *testing.B, n int) (*iurtree.Snapshot, []dataset.QueryObject) {
	b.Helper()
	col, queries := benchCollection(n)
	tree, err := iurtree.Build(col.Objects, iurtree.Config{Store: storage.NewStore()})
	if err != nil {
		b.Fatal(err)
	}
	return tree, queries
}

func BenchmarkIndexBuild5k(b *testing.B) {
	col, _ := benchCollection(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iurtree.Build(col.Objects, iurtree.Config{Store: storage.NewStore()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSTkNNQuery5k(b *testing.B) {
	tree, queries := benchTree(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := core.RSTkNN(tree, core.Query{Loc: q.Loc, Doc: q.Doc},
			core.Options{K: 10, Alpha: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSTkNNQuery5kWorkers4 runs the same query workload through
// the intra-query parallel engine; comparing against BenchmarkRSTkNNQuery5k
// shows the fan-out overhead (1-CPU machines) or speedup (multi-core).
func BenchmarkRSTkNNQuery5kWorkers4(b *testing.B) {
	tree, queries := benchTree(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := core.RSTkNN(tree, core.Query{Loc: q.Loc, Doc: q.Doc},
			core.Options{K: 10, Alpha: 0.5, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorNew(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	maps := make([]map[vector.TermID]float64, 64)
	for i := range maps {
		m := make(map[vector.TermID]float64, 12)
		for j := 0; j < 12; j++ {
			m[vector.TermID(rng.Intn(200))] = rng.Float64() + 0.1
		}
		maps[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vector.New(maps[i%len(maps)])
	}
}

func BenchmarkTopKQuery5k(b *testing.B) {
	tree, queries := benchTree(b, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := core.TopK(tree, core.Query{Loc: q.Loc, Doc: q.Doc},
			core.TopKOptions{K: 10, Alpha: 0.5, Exclude: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveQuery2k(b *testing.B) {
	col, queries := benchCollection(2000)
	tree, err := iurtree.Build(col.Objects, iurtree.Config{Store: storage.NewStore()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := baseline.Naive(col.Objects, core.Query{Loc: q.Loc, Doc: q.Doc},
			10, 0.5, tree.MaxD(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEJExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vecs := make([]vector.Vector, 64)
	for i := range vecs {
		m := make(map[vector.TermID]float64)
		for j := 0; j < 8; j++ {
			m[vector.TermID(rng.Intn(100))] = rng.Float64() + 0.1
		}
		vecs[i] = vector.New(m)
	}
	ej := vector.EJ{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ej.Exact(vecs[i%64], vecs[(i+7)%64])
	}
}

func BenchmarkEJBounds(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	envs := make([]vector.Envelope, 64)
	for i := range envs {
		m1 := make(map[vector.TermID]float64)
		m2 := make(map[vector.TermID]float64)
		for j := 0; j < 8; j++ {
			t := vector.TermID(rng.Intn(100))
			m1[t] = rng.Float64() * 0.5
			m2[t] = 0.5 + rng.Float64()
		}
		envs[i] = vector.Envelope{Int: vector.New(m1), Uni: vector.New(m2)}
	}
	ej := vector.EJ{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ej.Bounds(envs[i%64], envs[(i+9)%64])
	}
}

func BenchmarkEngineBuildAndQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	objs := genRestaurants(rng, 2000)
	eng, err := Build(objs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(50, 50, "sushi seafood", 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery drives concurrent readers against one shared
// Engine via b.RunParallel. On a multi-core machine, throughput should
// scale past the sequential BenchmarkEngineBuildAndQuery because queries
// only share-lock the store and charge I/O to per-query trackers.
func BenchmarkParallelQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	objs := genRestaurants(rng, 2000)
	eng, err := Build(objs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	texts := []string{"sushi seafood", "noodles ramen", "pizza pasta", "steak grill"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			t := texts[i%len(texts)]
			i++
			if _, err := eng.Query(float64(10+i%80), float64(10+(i*7)%80), t, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchQuery measures the worker-pool batch API end to end.
func BenchmarkBatchQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	objs := genRestaurants(rng, 2000)
	eng, err := Build(objs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]QueryRequest, 32)
	for i := range reqs {
		reqs[i] = QueryRequest{X: float64(10 + i*2), Y: float64(10 + i*2), Text: "sushi seafood", K: 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.BatchQuery(reqs, 0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
