package rstknn

import (
	"fmt"

	"rstknn/internal/storage"
	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

// Object is one geo-textual object to index: an application ID, a planar
// location, and a raw text description (tokenized and weighted by the
// engine).
type Object struct {
	ID   int32
	X, Y float64
	Text string
}

// IndexKind selects the index structure.
type IndexKind int

const (
	// IUR builds the plain Intersection-Union R-tree.
	IUR IndexKind = iota
	// CIUR builds the cluster-enhanced IUR-tree: objects are clustered by
	// text and every node stores per-cluster envelopes for tighter bounds.
	CIUR
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IUR:
		return "iur"
	case CIUR:
		return "ciur"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Options configure an Engine. The zero value gives a sensible default:
// alpha 0.5, TF-IDF weighting, Extended Jaccard similarity, a plain
// IUR-tree with 4 KiB pages and no buffer pool (cold-query I/O counting).
type Options struct {
	// Alpha in [0,1] weighs spatial proximity against text similarity;
	// the conventional default is 0.5. Use AlphaSet to pass an explicit 0.
	Alpha float64
	// AlphaSet marks Alpha as intentionally 0 (pure text ranking).
	AlphaSet bool
	// Weighting is the term weighting scheme: "tfidf" (default), "tf", or
	// "binary" (binary + "ej" yields the keyword-overlap measure).
	Weighting string
	// Measure is the text similarity: "ej" (default) or "cosine".
	Measure string
	// Index picks IUR (default) or CIUR.
	Index IndexKind
	// Clusters is the CIUR cluster count (default 8).
	Clusters int
	// OutlierThreshold enables O-CIUR outlier extraction when positive.
	OutlierThreshold float64
	// EntropyRefinement enables the E-CIUR entropy-driven refinement
	// order at query time.
	EntropyRefinement bool
	// GroupRefine allows this many contributor refinements on internal
	// candidates before expansion (see the paper's lazy group pruning).
	GroupRefine int
	// PageSize overrides the simulated 4 KiB disk page.
	PageSize int
	// BufferPoolPages enables an LRU buffer pool of that many pages.
	// Large pools are sharded by node ID so concurrent queries do not
	// contend on one cache mutex.
	BufferPoolPages int
	// NodeCache enables an in-memory cache of up to that many decoded
	// tree nodes, shared by all queries: hot nodes skip both the
	// simulated page I/O and the per-read deserialization (hits count as
	// CacheHits in QueryStats). Enable it for serving throughput; leave
	// it off to reproduce the paper's cold I/O counts.
	NodeCache int
	// BoundCache sizes the per-node textual bound cache backing the
	// zero-copy read path: decoded envelopes and cluster summaries are
	// memoized by NodeID so repeated visits (across rounds, queries, and
	// BatchQuery fan-out) re-decode nothing. Unlike NodeCache, a bound
	// cache hit still pays the full simulated page I/O, so QueryStats
	// and the paper's I/O counts are unchanged at any setting. 0 keeps
	// the default capacity (iurtree.DefaultBoundCacheNodes), a negative
	// value disables the cache (every read decodes eagerly — the
	// DESIGN.md ablation), a positive value sets the capacity in nodes.
	BoundCache int
	// FanoutMin/FanoutMax override the R-tree fan-out.
	FanoutMin, FanoutMax int
	// Workers bounds intra-query parallelism: each query's
	// branch-and-bound frontier is processed in rounds fanned across
	// this many goroutines (and Influence fans its per-user loop the
	// same way). 0 defaults to runtime.GOMAXPROCS(0); 1 forces the
	// sequential path; values above GOMAXPROCS are clamped to it, and
	// rounds with fewer candidates than the fan-out threshold run inline,
	// so low-core machines never pay goroutine overhead for tiny rounds.
	// Results and QueryStats are identical at every
	// setting — parallelism only changes wall-clock time. Queries issued
	// through BatchQuery multiply this with the batch parallelism, so
	// consider Workers=1 for batch-heavy serving.
	Workers int
	// SharedBatch controls how BatchQuery answers multi-request batches.
	// 0 (the default) and positive values share one branch-and-bound
	// traversal across the whole batch: each tree node is physically
	// read at most once per batch and scored against every query still
	// active on it, so nodes-read-per-query shrinks as the batch grows
	// while per-query results and QueryStats counters stay bit-identical
	// to independent execution. A negative value forces the independent
	// per-query fan-out (the DESIGN.md §11 ablation, exposed as
	// -sharedbatch=false in rstknn-bench). Single-request batches always
	// run independently — there is nothing to share.
	SharedBatch int
	// Seed fixes clustering randomness.
	Seed int64
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Alpha == 0 && !out.AlphaSet {
		out.Alpha = 0.5
	}
	if out.Alpha < 0 || out.Alpha > 1 {
		return out, fmt.Errorf("rstknn: Alpha must be in [0,1], got %g", out.Alpha)
	}
	if out.Weighting == "" {
		out.Weighting = "tfidf"
	}
	if _, err := textual.SchemeByName(out.Weighting); err != nil {
		return out, err
	}
	if out.Measure == "" {
		out.Measure = "ej"
	}
	if vector.ByName(out.Measure) == nil {
		return out, fmt.Errorf("rstknn: unknown measure %q", out.Measure)
	}
	if out.Clusters == 0 {
		out.Clusters = 8
	}
	if out.PageSize == 0 {
		out.PageSize = storage.DefaultPageSize
	}
	return out, nil
}
