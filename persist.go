package rstknn

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

// Engine persistence. Save writes a directory:
//
//	meta.json     options, tree header blob ID, format version
//	vocab.csv     terms in ID order + corpus statistics
//	objects.csv   the indexed objects with their weighted vectors
//	index.log     every tree node blob, in a persistent FileStore
//
// Open reverses it without re-tokenizing, re-weighting, re-clustering, or
// rebuilding the tree: queries against a reopened engine return exactly
// what the original returned.

const persistVersion = 1

type persistMeta struct {
	Version   int           `json:"version"`
	Options   Options       `json:"options"`
	HeaderID  int32         `json:"header_id"`
	Objects   int           `json:"objects"`
	BuildTime time.Duration `json:"build_time_ns"`
}

// Save persists the engine into dir (created if missing). The directory
// is self-contained and can be reopened with Open. Save serializes with
// the write path and pins the snapshot it persists, so it is safe with
// queries and updates in flight.
func (e *Engine) Save(dir string) error {
	// Hold the writer lock: the store must not grow (or recycle slots)
	// while the blob copy walks it.
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	st, release := e.pin()
	defer release()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// 1. Tree header onto the live store, so the blob copy includes it.
	headerID := st.tree.Save()

	// 2. Node blobs into a fresh file store, preserving IDs. Freed slots
	// become empty tombstone records: unreachable from the header, but
	// they keep the IDs dense so the copy stays slot-for-slot.
	fs, err := storage.CreateFileStore(filepath.Join(dir, "index.log"),
		storage.WithPageSize(e.opt.PageSize))
	if err != nil {
		return err
	}
	n := e.store.Len()
	for id := 0; id < n; id++ {
		//rstknn:allow trackedio,locksafe maintenance copy outside any query, serialized on writeMu; stats are reset below
		blob, err := e.store.Get(storage.NodeID(id))
		if errors.Is(err, storage.ErrFreed) {
			blob = nil
		} else if err != nil {
			fs.Close()
			return fmt.Errorf("rstknn: copying node %d: %w", id, err)
		}
		if got := fs.Put(blob); got != storage.NodeID(id) {
			fs.Close()
			return fmt.Errorf("rstknn: blob ID drift: %d became %d", id, got)
		}
	}
	if err := fs.Close(); err != nil {
		return err
	}
	e.store.ResetStats() // the copy is maintenance, not query I/O

	// 3. Vocabulary.
	vf, err := os.Create(filepath.Join(dir, "vocab.csv"))
	if err != nil {
		return err
	}
	if err := e.vocab.Save(vf); err != nil {
		vf.Close()
		return err
	}
	if err := vf.Close(); err != nil {
		return err
	}

	// 4. Objects with their weighted vectors.
	if err := dataset.SaveFile(filepath.Join(dir, "objects.csv"), st.objects, e.vocab); err != nil {
		return err
	}

	// 5. Metadata.
	meta := persistMeta{
		Version:   persistVersion,
		Options:   e.opt,
		HeaderID:  int32(headerID),
		Objects:   len(st.objects),
		BuildTime: e.build,
	}
	buf, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), buf, 0o644)
}

// Open loads an engine previously written by Save. The node blobs stay on
// disk (the FileStore) and are read on demand, charging the same
// simulated I/O as the original engine.
func Open(dir string) (*Engine, error) {
	buf, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta persistMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("rstknn: parsing meta.json: %w", err)
	}
	if meta.Version != persistVersion {
		return nil, fmt.Errorf("rstknn: unsupported index version %d", meta.Version)
	}

	vf, err := os.Open(filepath.Join(dir, "vocab.csv"))
	if err != nil {
		return nil, err
	}
	vocab, err := textual.LoadVocabulary(vf)
	vf.Close()
	if err != nil {
		return nil, err
	}

	objs, err := dataset.LoadFile(filepath.Join(dir, "objects.csv"), vocab)
	if err != nil {
		return nil, err
	}
	if len(objs) != meta.Objects {
		return nil, fmt.Errorf("rstknn: objects.csv has %d objects, meta says %d",
			len(objs), meta.Objects)
	}

	var storeOpts []storage.Option
	storeOpts = append(storeOpts, storage.WithPageSize(meta.Options.PageSize))
	if meta.Options.BufferPoolPages > 0 {
		storeOpts = append(storeOpts, storage.WithBufferPool(meta.Options.BufferPoolPages))
	}
	fs, err := storage.OpenFileStore(filepath.Join(dir, "index.log"), storeOpts...)
	if err != nil {
		return nil, err
	}
	tree, err := iurtree.Open(fs, storage.NodeID(meta.HeaderID))
	if err != nil {
		fs.Close()
		return nil, err
	}
	// The header blob is only needed to decode the snapshot; free its
	// slot so the next Save's fresh header recycles it instead of
	// leaking one slot per save/open cycle.
	//rstknn:allow retirepub the store is private until Open returns: no snapshot pointer is published yet and no reader can hold a pin
	fs.Retire(storage.NodeID(meta.HeaderID))
	_ = fs.Free(storage.NodeID(meta.HeaderID)) //rstknn:allow errlost first free of a just-retired slot cannot fail
	if meta.Options.NodeCache > 0 {
		tree.SetNodeCache(meta.Options.NodeCache)
	}
	if meta.Options.BoundCache != 0 {
		tree.SetBoundCache(meta.Options.BoundCache)
	}
	fs.ResetStats()

	scheme, err := textual.SchemeByName(meta.Options.Weighting)
	if err != nil {
		fs.Close()
		return nil, err
	}
	measure := vector.ByName(meta.Options.Measure)
	if measure == nil {
		fs.Close()
		return nil, fmt.Errorf("rstknn: unknown measure %q in meta.json", meta.Options.Measure)
	}
	e := &Engine{
		opt:     meta.Options,
		scheme:  scheme,
		measure: measure,
		vocab:   vocab,
		store:   fs,
		build:   meta.BuildTime,
	}
	byID := make(map[int32]int, len(objs))
	for i := range objs {
		byID[objs[i].ID] = i
	}
	e.rec = storage.NewReclaimer(fs)
	e.rec.SetOnFree(tree.InvalidateNode)
	e.state.Store(&engineState{tree: tree, objects: objs, byID: byID})
	return e, nil
}

// Close releases the on-disk store of an engine loaded with Open. It is a
// no-op for engines built in memory.
func (e *Engine) Close() error {
	if fs, ok := e.store.(*storage.FileStore); ok {
		return fs.Close()
	}
	return nil
}
