module rstknn

go 1.22
