package vector

import "math"

// TextSim is a textual similarity measure together with envelope bounds.
// Implementations must guarantee, for any vectors x in e1 and y in e2:
//
//	lo, hi := Bounds(e1, e2)  =>  lo <= Exact(x, y) <= hi
//
// and Exact must be symmetric with range [0, 1].
type TextSim interface {
	// Name returns a short identifier ("ej", "cosine").
	Name() string
	// Exact returns the similarity of two concrete vectors.
	Exact(x, y Vector) float64
	// Bounds returns a lower and an upper bound of the similarity between
	// any member of e1 and any member of e2.
	Bounds(e1, e2 Envelope) (lo, hi float64)
}

// EJ is the Extended Jaccard similarity of the RSTkNN paper:
//
//	EJ(x, y) = <x,y> / (|x|^2 + |y|^2 - <x,y>)
//
// For binary-weighted vectors this reduces to set Jaccard (keyword
// overlap), so the paper's third measure is EJ over binary weights.
//
// Bound derivation. Write s = <x,y>, n = |x|^2 + |y|^2, f(s,n) = s/(n-s).
// By Cauchy-Schwarz and AM-GM, n >= 2|x||y| >= 2s, so n - s >= s >= 0 and
// f is in [0,1]. On that domain f is non-decreasing in s and non-increasing
// in n. With x in [i1,u1] and y in [i2,u2] coordinate-wise (all weights
// non-negative):
//
//	s in [<i1,i2>, <u1,u2>]   and   n in [|i1|^2+|i2|^2, |u1|^2+|u2|^2]
//
// hence f(<i1,i2>, |u1|^2+|u2|^2) <= EJ(x,y) <= f(<u1,u2>, |i1|^2+|i2|^2),
// with the upper bound clipped to 1 when the denominator is not positive
// (the envelope extremes need not be jointly attainable; the bound is
// still valid because EJ(x,y) <= 1 always).
type EJ struct{}

// Name implements TextSim.
func (EJ) Name() string { return "ej" }

// Exact implements TextSim.
//
//rstknn:hotpath exact similarity inside the accept/reject loop
func (EJ) Exact(x, y Vector) float64 {
	s := x.Dot(y)
	if s <= 0 {
		return 0
	}
	den := x.Norm2() + y.Norm2() - s
	if den <= 0 {
		// Only possible for x == y up to rounding; similarity is maximal.
		return 1
	}
	return s / den
}

// Bounds implements TextSim.
//
//rstknn:hotpath envelope bounds inside the branch-and-bound inner loop
func (EJ) Bounds(e1, e2 Envelope) (lo, hi float64) {
	// Disjoint unions are the common case on clustered trees: every
	// member similarity is 0 and no further arithmetic is needed.
	sMax := e1.Uni.Dot(e2.Uni)
	if sMax <= 0 {
		return 0, 0
	}
	sMin := e1.Int.Dot(e2.Int)
	if sMin > 0 {
		nMax := e1.Uni.Norm2() + e2.Uni.Norm2()
		lo = sMin / (nMax - sMin)
	}
	nMin := e1.Int.Norm2() + e2.Int.Norm2()
	if den := nMin - sMax; den > 0 {
		hi = math.Min(1, sMax/den)
	} else {
		hi = 1
	}
	if lo > hi { // guard against rounding inversions on degenerate envelopes
		lo = hi
	}
	return lo, hi
}

// Cosine is the cosine similarity <x,y> / (|x| |y|), an alternative SimT
// discussed by the paper. Empty vectors have similarity 0.
//
// Bound derivation mirrors EJ: cosine is non-decreasing in the dot product
// and non-increasing in each norm, so with the same envelope extremes:
//
//	<i1,i2> / (|u1| |u2|)  <=  cos(x,y)  <=  min(1, <u1,u2> / (|i1| |i2|))
//
// with the upper bound clipped to 1 when an intersection norm is 0.
type Cosine struct{}

// Name implements TextSim.
func (Cosine) Name() string { return "cosine" }

// Exact implements TextSim.
//
//rstknn:hotpath exact similarity inside the accept/reject loop
func (Cosine) Exact(x, y Vector) float64 {
	s := x.Dot(y)
	if s <= 0 {
		return 0
	}
	den := x.Norm() * y.Norm()
	if den <= 0 {
		return 0
	}
	return math.Min(1, s/den)
}

// Bounds implements TextSim.
//
//rstknn:hotpath envelope bounds inside the branch-and-bound inner loop
func (Cosine) Bounds(e1, e2 Envelope) (lo, hi float64) {
	sMax := e1.Uni.Dot(e2.Uni)
	if sMax <= 0 {
		return 0, 0
	}
	sMin := e1.Int.Dot(e2.Int)
	if sMin > 0 {
		if den := e1.Uni.Norm() * e2.Uni.Norm(); den > 0 {
			lo = math.Min(1, sMin/den)
		}
	}
	if den := e1.Int.Norm() * e2.Int.Norm(); den > 0 {
		hi = math.Min(1, sMax/den)
	} else {
		hi = 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ByName returns the TextSim registered under name, or nil when unknown.
// Recognized names: "ej", "cosine".
func ByName(name string) TextSim {
	switch name {
	case "ej":
		return EJ{}
	case "cosine":
		return Cosine{}
	default:
		return nil
	}
}
