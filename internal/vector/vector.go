// Package vector implements the sparse weighted term vectors used to
// represent object text descriptions, the textual similarity measures of
// the RSTkNN paper (Extended Jaccard, cosine, and keyword overlap as
// Extended Jaccard over binary weights), and — crucially — the
// intersection/union *envelopes* stored in IUR-tree nodes together with
// provably correct lower/upper bounds of the similarity between any two
// vectors drawn from two envelopes.
package vector

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TermID identifies a vocabulary term. IDs are dense and assigned by
// textual.Vocabulary.
type TermID = int32

// Vector is a sparse term vector: parallel slices of term IDs (strictly
// increasing) and positive weights. The zero Vector is the empty vector.
//
// Vectors are immutable by convention: operations return new vectors.
type Vector struct {
	terms   []TermID
	weights []float64
	norm2   float64 // cached squared norm; vectors are immutable
}

// New builds a vector from a term->weight map. Terms with non-positive
// weight are dropped. Construction is on the index-build hot path (one
// call per document plus one per node envelope merge), so the term sort
// avoids sort.Slice's closure/interface allocations.
func New(w map[TermID]float64) Vector {
	if len(w) == 0 {
		return Vector{}
	}
	terms := make([]TermID, 0, len(w))
	for t, wt := range w {
		if wt > 0 {
			terms = append(terms, t)
		}
	}
	sortTermIDs(terms)
	weights := make([]float64, len(terms))
	for i, t := range terms {
		weights[i] = w[t]
	}
	return newVector(terms, weights)
}

// sortTermIDs sorts term IDs ascending without the sort.Slice
// closure/reflection machinery: insertion sort for short runs, heapsort
// above that (IDs are map keys, hence distinct — stability is moot).
func sortTermIDs(a []TermID) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownTermIDs(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownTermIDs(a, 0, end)
	}
}

func siftDownTermIDs(a []TermID, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// newVector wraps pre-validated parallel slices, caching the norm.
func newVector(terms []TermID, weights []float64) Vector {
	var n2 float64
	for _, w := range weights {
		n2 += w * w
	}
	return Vector{terms: terms, weights: weights, norm2: n2}
}

// FromPairs builds a vector from pre-sorted (terms, weights) slices. It
// panics if the slices differ in length or terms are not strictly
// increasing, or any weight is non-positive: these invariants are relied on
// by every merge-based operation below.
func FromPairs(terms []TermID, weights []float64) Vector {
	if len(terms) != len(weights) {
		panic(fmt.Sprintf("vector: %d terms but %d weights", len(terms), len(weights)))
	}
	for i := range terms {
		if i > 0 && terms[i] <= terms[i-1] {
			panic(fmt.Sprintf("vector: terms not strictly increasing at %d", i))
		}
		if weights[i] <= 0 {
			panic(fmt.Sprintf("vector: non-positive weight %g for term %d", weights[i], terms[i]))
		}
	}
	return newVector(terms, weights)
}

// Len returns the number of distinct terms with positive weight.
func (v Vector) Len() int { return len(v.terms) }

// IsEmpty reports whether v has no terms.
func (v Vector) IsEmpty() bool { return len(v.terms) == 0 }

// Term returns the i-th term ID.
func (v Vector) Term(i int) TermID { return v.terms[i] }

// Weight returns the i-th weight.
func (v Vector) Weight(i int) float64 { return v.weights[i] }

// WeightOf returns the weight of term t, or 0 when absent.
func (v Vector) WeightOf(t TermID) float64 {
	i := sort.Search(len(v.terms), func(i int) bool { return v.terms[i] >= t })
	if i < len(v.terms) && v.terms[i] == t {
		return v.weights[i]
	}
	return 0
}

// Has reports whether term t has positive weight in v.
func (v Vector) Has(t TermID) bool { return v.WeightOf(t) > 0 }

// Terms returns a copy of the term IDs.
func (v Vector) Terms() []TermID {
	out := make([]TermID, len(v.terms))
	copy(out, v.terms)
	return out
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	t := make([]TermID, len(v.terms))
	w := make([]float64, len(v.weights))
	copy(t, v.terms)
	copy(w, v.weights)
	return Vector{terms: t, weights: w, norm2: v.norm2}
}

// Equal reports whether v and u contain exactly the same terms and weights.
func (v Vector) Equal(u Vector) bool {
	if len(v.terms) != len(u.terms) {
		return false
	}
	for i := range v.terms {
		if v.terms[i] != u.terms[i] || v.weights[i] != u.weights[i] {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and u. It never allocates, and the
// matched terms are always accumulated in ascending term order, so the
// summation order — hence the exact float64 result — is identical across
// both code paths below and deterministic for a given pair of vectors.
//
//rstknn:hotpath called once per bound evaluation in the scoring inner loop
func (v Vector) Dot(u Vector) float64 {
	// Disjoint term ranges (distinct topical vocabularies, a frequent
	// case on clustered trees) are detected in O(1).
	if len(v.terms) == 0 || len(u.terms) == 0 ||
		v.terms[len(v.terms)-1] < u.terms[0] || u.terms[len(u.terms)-1] < v.terms[0] {
		return 0
	}
	// Asymmetric fast path: a short query vector against a wide node
	// envelope (the dominant shape in entry bounds) binary-searches each
	// short-side term in the remaining long side instead of merging
	// through every long-side term.
	if len(v.terms)*8 < len(u.terms) {
		return dotAsymmetric(v, u)
	}
	if len(u.terms)*8 < len(v.terms) {
		return dotAsymmetric(u, v)
	}
	var s float64
	i, j := 0, 0
	for i < len(v.terms) && j < len(u.terms) {
		switch {
		case v.terms[i] == u.terms[j]:
			s += v.weights[i] * u.weights[j]
			i++
			j++
		case v.terms[i] < u.terms[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// dotAsymmetric computes the inner product when small has far fewer terms
// than large: O(|small| log |large|) via a shrinking binary-search window.
// Matches accumulate in ascending term order, like the merge loop.
func dotAsymmetric(small, large Vector) float64 {
	var s float64
	lo := 0
	for i := range small.terms {
		t := small.terms[i]
		// Binary search for t in large.terms[lo:].
		hi := len(large.terms)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if large.terms[mid] < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(large.terms) {
			break
		}
		if large.terms[lo] == t {
			s += small.weights[i] * large.weights[lo]
			lo++
		}
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v (cached at construction).
func (v Vector) Norm2() float64 { return v.norm2 }

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Min returns the coordinate-wise minimum of v and u: only terms present in
// both survive, with the smaller weight. This is the "intersection vector"
// combination rule of IUR-tree nodes.
func (v Vector) Min(u Vector) Vector {
	var terms []TermID
	var weights []float64
	i, j := 0, 0
	for i < len(v.terms) && j < len(u.terms) {
		switch {
		case v.terms[i] == u.terms[j]:
			terms = append(terms, v.terms[i])
			weights = append(weights, math.Min(v.weights[i], u.weights[j]))
			i++
			j++
		case v.terms[i] < u.terms[j]:
			i++
		default:
			j++
		}
	}
	return newVector(terms, weights)
}

// Max returns the coordinate-wise maximum of v and u: all terms of either,
// with the larger weight. This is the "union vector" combination rule of
// IUR-tree nodes.
func (v Vector) Max(u Vector) Vector {
	terms := make([]TermID, 0, len(v.terms)+len(u.terms))
	weights := make([]float64, 0, len(v.terms)+len(u.terms))
	i, j := 0, 0
	for i < len(v.terms) || j < len(u.terms) {
		switch {
		case j >= len(u.terms) || (i < len(v.terms) && v.terms[i] < u.terms[j]):
			terms = append(terms, v.terms[i])
			weights = append(weights, v.weights[i])
			i++
		case i >= len(v.terms) || u.terms[j] < v.terms[i]:
			terms = append(terms, u.terms[j])
			weights = append(weights, u.weights[j])
			j++
		default:
			terms = append(terms, v.terms[i])
			weights = append(weights, math.Max(v.weights[i], u.weights[j]))
			i++
			j++
		}
	}
	return newVector(terms, weights)
}

// CommonTerms returns the number of terms present in both vectors.
func (v Vector) CommonTerms(u Vector) int {
	n := 0
	i, j := 0, 0
	for i < len(v.terms) && j < len(u.terms) {
		switch {
		case v.terms[i] == u.terms[j]:
			n++
			i++
			j++
		case v.terms[i] < u.terms[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// DominatedBy reports whether v is coordinate-wise <= u (every term of v
// appears in u with at least v's weight). Envelope invariant checks use it.
func (v Vector) DominatedBy(u Vector) bool {
	i, j := 0, 0
	for i < len(v.terms) {
		for j < len(u.terms) && u.terms[j] < v.terms[i] {
			j++
		}
		if j >= len(u.terms) || u.terms[j] != v.terms[i] || u.weights[j] < v.weights[i] {
			return false
		}
		i++
	}
	return true
}

func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range v.terms {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.3g", v.terms[i], v.weights[i])
	}
	b.WriteByte('}')
	return b.String()
}
