package vector

import (
	"math/rand"
	"testing"
)

// randomVec builds a vector with n skewed random terms from the vocab.
func randomVec(rng *rand.Rand, n, vocab int) Vector {
	m := make(map[TermID]float64, n)
	for len(m) < n {
		t := TermID(int(float64(vocab) * rng.Float64() * rng.Float64()))
		m[t] = 0.5 + rng.Float64()*2
	}
	return New(m)
}

// The scoring hot path must not allocate: Dot, EJ.Exact, and EJ.Bounds
// are called once per bound evaluation inside the branch-and-bound inner
// loop, so a single allocation per call dominates query cost. These
// tests pin the zero-allocation property so regressions fail loudly.

func TestDotAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][2]Vector{
		{randomVec(rng, 8, 50), randomVec(rng, 8, 50)},     // merge path
		{randomVec(rng, 3, 400), randomVec(rng, 200, 400)}, // asymmetric path
		{randomVec(rng, 200, 400), randomVec(rng, 3, 400)}, // asymmetric, swapped
		{Vector{}, randomVec(rng, 8, 50)},                  // empty operand
	}
	var sink float64
	for i, c := range cases {
		allocs := testing.AllocsPerRun(100, func() {
			sink += c[0].Dot(c[1])
		})
		if allocs != 0 {
			t.Errorf("case %d: Dot allocates %v per run, want 0", i, allocs)
		}
	}
	_ = sink
}

func TestEJExactAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomVec(rng, 12, 60)
	y := randomVec(rng, 12, 60)
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += EJ{}.Exact(x, y)
	})
	if allocs != 0 {
		t.Errorf("EJ.Exact allocates %v per run, want 0", allocs)
	}
	_ = sink
}

func TestEJBoundsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e1 := Merge(Exact(randomVec(rng, 10, 60)), Exact(randomVec(rng, 10, 60)))
	e2 := Merge(Exact(randomVec(rng, 10, 60)), Exact(randomVec(rng, 10, 60)))
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		lo, hi := EJ{}.Bounds(e1, e2)
		sink += lo + hi
	})
	if allocs != 0 {
		t.Errorf("EJ.Bounds allocates %v per run, want 0", allocs)
	}
	_ = sink
}
