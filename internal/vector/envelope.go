package vector

// Envelope is the textual summary an IUR-tree node stores for its subtree:
// the intersection vector Int (per-term minimum weight over all member
// documents; a term missing from any member has minimum 0 and is dropped)
// and the union vector Uni (per-term maximum weight). Every member vector x
// of the subtree satisfies Int <= x <= Uni coordinate-wise, which is the
// property all textual bounds rely on.
type Envelope struct {
	Int Vector
	Uni Vector
}

// Exact returns the degenerate envelope of a single document: both bounds
// equal the document vector.
func Exact(v Vector) Envelope { return Envelope{Int: v, Uni: v} }

// EmptyEnvelope returns the identity element for Merge: merging it with an
// envelope e yields e. Int is nil (treated as "all terms at +inf" is what a
// true identity would need, so Merge special-cases emptiness via the count
// argument instead — see Merge).
func EmptyEnvelope() Envelope { return Envelope{} }

// Merge combines two envelopes that each summarize a non-empty set of
// documents: the intersection vectors are intersected (coordinate-wise
// min), the union vectors are united (coordinate-wise max).
func Merge(a, b Envelope) Envelope {
	return Envelope{
		Int: a.Int.Min(b.Int),
		Uni: a.Uni.Max(b.Uni),
	}
}

// MergeAll folds Merge over a list of envelopes. It returns the zero
// Envelope when the list is empty.
func MergeAll(es []Envelope) Envelope {
	if len(es) == 0 {
		return Envelope{}
	}
	acc := es[0]
	for _, e := range es[1:] {
		acc = Merge(acc, e)
	}
	return acc
}

// Contains reports whether vector x lies inside the envelope:
// Int <= x <= Uni coordinate-wise.
func (e Envelope) Contains(x Vector) bool {
	return e.Int.DominatedBy(x) && x.DominatedBy(e.Uni)
}

// Valid reports whether Int <= Uni coordinate-wise, the structural
// invariant of every envelope.
func (e Envelope) Valid() bool { return e.Int.DominatedBy(e.Uni) }

// Clone deep-copies the envelope.
func (e Envelope) Clone() Envelope {
	return Envelope{Int: e.Int.Clone(), Uni: e.Uni.Clone()}
}
