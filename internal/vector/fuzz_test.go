package vector_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rstknn/internal/vector"
)

// FuzzVectorRoundTrip drives the binary vector codec with arbitrary
// bytes. Decoding must never panic, and any input the decoder accepts
// must re-encode byte-for-byte (the encoding is canonical: strictly
// increasing term IDs, weights preserved bit-exactly). The same holds
// one layer up for envelopes (an intersection/union vector pair).
func FuzzVectorRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := vector.DecodeVector(data)
		if err == nil {
			if n > len(data) {
				t.Fatalf("DecodeVector consumed %d of %d bytes", n, len(data))
			}
			if re := v.AppendBinary(nil); !bytes.Equal(re, data[:n]) {
				t.Fatalf("vector round-trip changed bytes:\n in: %x\nout: %x", data[:n], re)
			}
		}
		e, n, err := vector.DecodeEnvelope(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("DecodeEnvelope consumed %d of %d bytes", n, len(data))
		}
		if re := e.AppendBinary(nil); !bytes.Equal(re, data[:n]) {
			t.Fatalf("envelope round-trip changed bytes:\n in: %x\nout: %x", data[:n], re)
		}
	})
}

// TestWriteVectorFuzzCorpus regenerates the checked-in seed corpus from
// real encodings. Run with RSTKNN_WRITE_CORPUS=1 to refresh testdata.
func TestWriteVectorFuzzCorpus(t *testing.T) {
	if os.Getenv("RSTKNN_WRITE_CORPUS") == "" {
		t.Skip("set RSTKNN_WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	small := vector.New(map[vector.TermID]float64{1: 0.5, 7: 2, 42: 1.25})
	wide := map[vector.TermID]float64{}
	for i := 0; i < 40; i++ {
		wide[vector.TermID(i*3)] = float64(i) + 0.125
	}
	env := vector.Merge(vector.Exact(small), vector.Exact(vector.New(wide)))
	seeds := [][]byte{
		vector.Vector{}.AppendBinary(nil),
		small.AppendBinary(nil),
		vector.New(wide).AppendBinary(nil),
		env.AppendBinary(nil),
		vector.Exact(small).AppendBinary(nil),
	}
	writeSeedCorpus(t, filepath.Join("testdata", "fuzz", "FuzzVectorRoundTrip"), seeds)
}

// writeSeedCorpus writes seeds in the `go test fuzz v1` corpus format.
func writeSeedCorpus(t *testing.T, dir string, seeds [][]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
