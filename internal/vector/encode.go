package vector

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of a vector:
//
//	uint32 n
//	n * int32   term IDs (delta-encoded would save space; kept plain for
//	            simplicity and O(1) random access during decode)
//	n * float64 weights
//
// All integers are little-endian. The encoding is used by the simulated
// disk layer to serialize IUR-tree node summaries into 4 KiB pages.

// EncodedSize returns the number of bytes AppendBinary will write for v.
func (v Vector) EncodedSize() int {
	return 4 + len(v.terms)*(4+8)
}

// AppendBinary appends the binary encoding of v to dst and returns the
// extended slice.
func (v Vector) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.terms)))
	for _, t := range v.terms {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	for _, w := range v.weights {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	return dst
}

// DecodeVector decodes a vector from the front of buf and returns it along
// with the number of bytes consumed.
func DecodeVector(buf []byte) (Vector, int, error) {
	if len(buf) < 4 {
		return Vector{}, 0, fmt.Errorf("vector: truncated header (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	// Division form, not "len(buf) < 4+n*12": the product overflows int32
	// for large n, so on a 32-bit platform the multiplied guard wraps and
	// admits a count far beyond the buffer (n itself can even be negative
	// there). The divided comparison is exact at every int width.
	if n < 0 || n > (len(buf)-4)/(4+8) {
		return Vector{}, 0, fmt.Errorf("vector: need %d bytes, have %d", 4+n*(4+8), len(buf))
	}
	if n == 0 {
		return Vector{}, 4, nil
	}
	terms := make([]TermID, n)
	off := 4
	for i := 0; i < n; i++ {
		terms[i] = TermID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	for i := 1; i < n; i++ {
		if terms[i] <= terms[i-1] {
			return Vector{}, 0, fmt.Errorf("vector: corrupt encoding, terms out of order at %d", i)
		}
	}
	return newVector(terms, weights), off, nil
}

// SkipVector returns the encoded size of the vector at the front of buf
// without decoding it: only the length header is read and bounds-checked,
// no term or weight slice is allocated. It accepts every blob DecodeVector
// accepts (and additionally blobs whose term IDs are out of order — the
// lazy read path defers that semantic check to its one-time full decode).
func SkipVector(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("vector: truncated header (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	// Division form for 32-bit safety; see DecodeVector.
	if n < 0 || n > (len(buf)-4)/(4+8) {
		return 0, fmt.Errorf("vector: need %d bytes, have %d", 4+n*(4+8), len(buf))
	}
	return 4 + n*(4+8), nil
}

// SkipEnvelope is SkipVector for an encoded envelope (intersection vector
// then union vector).
func SkipEnvelope(buf []byte) (int, error) {
	n1, err := SkipVector(buf)
	if err != nil {
		return 0, fmt.Errorf("envelope int: %w", err)
	}
	n2, err := SkipVector(buf[n1:])
	if err != nil {
		return 0, fmt.Errorf("envelope uni: %w", err)
	}
	return n1 + n2, nil
}

// EncodedSize returns the number of bytes AppendBinary will write for e.
func (e Envelope) EncodedSize() int {
	return e.Int.EncodedSize() + e.Uni.EncodedSize()
}

// AppendBinary appends the binary encoding of the envelope (intersection
// vector then union vector) to dst.
func (e Envelope) AppendBinary(dst []byte) []byte {
	dst = e.Int.AppendBinary(dst)
	return e.Uni.AppendBinary(dst)
}

// DecodeEnvelope decodes an envelope from the front of buf and returns it
// along with the number of bytes consumed.
func DecodeEnvelope(buf []byte) (Envelope, int, error) {
	intv, n1, err := DecodeVector(buf)
	if err != nil {
		return Envelope{}, 0, fmt.Errorf("envelope int: %w", err)
	}
	univ, n2, err := DecodeVector(buf[n1:])
	if err != nil {
		return Envelope{}, 0, fmt.Errorf("envelope uni: %w", err)
	}
	return Envelope{Int: intv, Uni: univ}, n1 + n2, nil
}
