package vector

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vec(pairs ...float64) Vector {
	// pairs is term, weight, term, weight, ...
	m := make(map[TermID]float64, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[TermID(pairs[i])] = pairs[i+1]
	}
	return New(m)
}

func TestNewSortsAndDropsNonPositive(t *testing.T) {
	v := New(map[TermID]float64{5: 2, 1: 3, 9: 0, 7: -1})
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Term(0) != 1 || v.Term(1) != 5 {
		t.Errorf("terms not sorted: %v", v.Terms())
	}
	if v.WeightOf(1) != 3 || v.WeightOf(5) != 2 {
		t.Errorf("wrong weights: %v", v)
	}
	if v.WeightOf(9) != 0 || v.Has(9) {
		t.Error("zero-weight term should be dropped")
	}
}

func TestFromPairsPanics(t *testing.T) {
	cases := []struct {
		name    string
		terms   []TermID
		weights []float64
	}{
		{"length mismatch", []TermID{1, 2}, []float64{1}},
		{"unsorted", []TermID{2, 1}, []float64{1, 1}},
		{"duplicate", []TermID{1, 1}, []float64{1, 1}},
		{"zero weight", []TermID{1}, []float64{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("FromPairs(%v, %v) did not panic", tc.terms, tc.weights)
				}
			}()
			FromPairs(tc.terms, tc.weights)
		})
	}
}

func TestDot(t *testing.T) {
	a := vec(1, 2, 3, 4, 5, 1)
	b := vec(3, 3, 5, 2, 7, 9)
	want := 4.0*3 + 1*2
	if got := a.Dot(b); got != want {
		t.Errorf("Dot = %g, want %g", got, want)
	}
	if got := b.Dot(a); got != want {
		t.Errorf("Dot not symmetric: %g", got)
	}
	if got := a.Dot(Vector{}); got != 0 {
		t.Errorf("Dot with empty = %g", got)
	}
}

func TestNorm(t *testing.T) {
	a := vec(1, 3, 2, 4)
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %g, want 25", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if Vector.Norm2(Vector{}) != 0 {
		t.Error("empty Norm2 != 0")
	}
}

func TestMinMax(t *testing.T) {
	a := vec(1, 2, 3, 5, 4, 1)
	b := vec(1, 3, 4, 4, 9, 2)
	min := a.Min(b)
	if !min.Equal(vec(1, 2, 4, 1)) {
		t.Errorf("Min = %v", min)
	}
	max := a.Max(b)
	if !max.Equal(vec(1, 3, 3, 5, 4, 4, 9, 2)) {
		t.Errorf("Max = %v", max)
	}
	if !a.Min(Vector{}).IsEmpty() {
		t.Error("Min with empty should be empty")
	}
	if !a.Max(Vector{}).Equal(a) {
		t.Error("Max with empty should be a")
	}
}

func TestDominatedBy(t *testing.T) {
	a := vec(1, 2, 3, 4)
	b := vec(1, 2, 2, 1, 3, 4)
	if !a.DominatedBy(b) {
		t.Error("a should be dominated by b")
	}
	if b.DominatedBy(a) {
		t.Error("b should not be dominated by a (extra term)")
	}
	if !Vector.DominatedBy(Vector{}, a) {
		t.Error("empty is dominated by anything")
	}
	c := vec(1, 2.5, 3, 4)
	if c.DominatedBy(a) {
		t.Error("larger weight should break domination")
	}
}

func TestCommonTerms(t *testing.T) {
	a := vec(1, 1, 2, 1, 3, 1)
	b := vec(2, 5, 3, 5, 4, 5)
	if got := a.CommonTerms(b); got != 2 {
		t.Errorf("CommonTerms = %d, want 2", got)
	}
}

func TestMinMaxIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randVector(rng, 20), randVector(rng, 20)
		min, max := a.Min(b), a.Max(b)
		if !min.DominatedBy(a) || !min.DominatedBy(b) {
			t.Fatalf("Min not dominated: a=%v b=%v min=%v", a, b, min)
		}
		if !a.DominatedBy(max) || !b.DominatedBy(max) {
			t.Fatalf("Max does not dominate: a=%v b=%v max=%v", a, b, max)
		}
		if !min.Equal(b.Min(a)) || !max.Equal(b.Max(a)) {
			t.Fatal("Min/Max not symmetric")
		}
		// dot(a,b) lies between dot(min,min) and dot(max,max).
		s := a.Dot(b)
		if s < min.Dot(min)-1e-12 || s > max.Dot(max)+1e-12 {
			t.Fatalf("dot outside envelope extremes: %g", s)
		}
	}
}

func randVector(rng *rand.Rand, vocab int) Vector {
	m := make(map[TermID]float64)
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		m[TermID(rng.Intn(vocab))] = rng.Float64()*4 + 0.05
	}
	return New(m)
}

func TestCloneAndEqual(t *testing.T) {
	a := vec(1, 2, 3, 4)
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone should be equal")
	}
	if a.Equal(vec(1, 2)) || a.Equal(vec(1, 2, 3, 5)) {
		t.Error("Equal false positives")
	}
}

func TestString(t *testing.T) {
	s := vec(1, 2, 3, 4).String()
	if s != "{1:2, 3:4}" {
		t.Errorf("String = %q", s)
	}
	if Vector.String(Vector{}) != "{}" {
		t.Error("empty String")
	}
}

func TestWeightOfBinarySearch(t *testing.T) {
	// Larger vector to exercise the binary search path.
	m := make(map[TermID]float64)
	for i := 0; i < 100; i += 2 {
		m[TermID(i)] = float64(i + 1)
	}
	v := New(m)
	for i := 0; i < 100; i++ {
		want := 0.0
		if i%2 == 0 {
			want = float64(i + 1)
		}
		if got := v.WeightOf(TermID(i)); got != want {
			t.Fatalf("WeightOf(%d) = %g, want %g", i, got, want)
		}
	}
	if v.WeightOf(-1) != 0 || v.WeightOf(1000) != 0 {
		t.Error("out-of-range terms should have weight 0")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		v := randVector(rng, 1000)
		buf := v.AppendBinary(nil)
		if len(buf) != v.EncodedSize() {
			t.Fatalf("EncodedSize %d != written %d", v.EncodedSize(), len(buf))
		}
		got, n, err := DecodeVector(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if !got.Equal(v) {
			t.Fatalf("round trip mismatch: %v != %v", got, v)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeVector(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	if _, _, err := DecodeVector([]byte{5, 0, 0, 0}); err == nil {
		t.Error("truncated body should fail")
	}
	// Corrupt ordering: two terms 3, 1.
	v := vec(1, 1, 3, 1)
	buf := v.AppendBinary(nil)
	// Swap term ids in place.
	buf[4], buf[8] = 3, 1
	if _, _, err := DecodeVector(buf); err == nil {
		t.Error("out-of-order terms should fail")
	}
}

// TestDecodeOversizedCount: counts whose byte requirement overflows the
// old multiplied guard (4 + n*12 wraps at 32-bit int widths) must be
// rejected by header inspection, never fed to make().
func TestDecodeOversizedCount(t *testing.T) {
	for _, n := range []uint32{0xFFFFFFFF, 0x80000000, 0x15555556} {
		buf := binary.LittleEndian.AppendUint32(nil, n)
		buf = append(buf, make([]byte, 64)...)
		if _, _, err := DecodeVector(buf); err == nil {
			t.Errorf("DecodeVector accepted count %#x with 64 payload bytes", n)
		}
		if _, err := SkipVector(buf); err == nil {
			t.Errorf("SkipVector accepted count %#x with 64 payload bytes", n)
		}
	}
	// One byte short of the declared payload.
	short := binary.LittleEndian.AppendUint32(nil, 2)
	short = append(short, make([]byte, 2*(4+8)-1)...)
	if _, _, err := DecodeVector(short); err == nil {
		t.Error("DecodeVector accepted a truncated payload")
	}
	if _, err := SkipVector(short); err == nil {
		t.Error("SkipVector accepted a truncated payload")
	}
	// The guards must not over-reject: a valid blob still skips exactly.
	good := vec(1, 1, 3, 1).AppendBinary(nil)
	if n, err := SkipVector(good); err != nil || n != len(good) {
		t.Errorf("SkipVector(valid) = %d, %v; want %d, nil", n, err, len(good))
	}
}

func TestEnvelopeEncodeDecode(t *testing.T) {
	a := vec(1, 1, 2, 2)
	b := vec(1, 3, 2, 4, 5, 1)
	e := Envelope{Int: a, Uni: b}
	buf := e.AppendBinary(nil)
	if len(buf) != e.EncodedSize() {
		t.Fatalf("EncodedSize mismatch")
	}
	got, n, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || !got.Int.Equal(a) || !got.Uni.Equal(b) {
		t.Fatalf("round trip mismatch")
	}
	if _, _, err := DecodeEnvelope(buf[:3]); err == nil {
		t.Error("truncated envelope should fail")
	}
	if _, _, err := DecodeEnvelope(buf[:a.EncodedSize()+2]); err == nil {
		t.Error("truncated union vector should fail")
	}
}

func TestEJExactKnownValues(t *testing.T) {
	ej := EJ{}
	a := vec(1, 1, 2, 1)
	b := vec(2, 1, 3, 1)
	// dot = 1, |a|^2 = 2, |b|^2 = 2 => 1 / (2+2-1) = 1/3.
	if got := ej.Exact(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("EJ = %g, want 1/3", got)
	}
	if got := ej.Exact(a, a); got != 1 {
		t.Errorf("EJ self = %g, want 1", got)
	}
	if got := ej.Exact(a, Vector{}); got != 0 {
		t.Errorf("EJ with empty = %g, want 0", got)
	}
	// Binary weights reduce EJ to set Jaccard: |∩|/|∪| = 1/3.
	if got := ej.Exact(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("binary EJ = %g, want Jaccard 1/3", got)
	}
}

func TestCosineExactKnownValues(t *testing.T) {
	cos := Cosine{}
	a := vec(1, 1)
	b := vec(1, 1, 2, 1)
	want := 1 / math.Sqrt2
	if got := cos.Exact(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("cosine = %g, want %g", got, want)
	}
	if got := cos.Exact(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine self = %g", got)
	}
	if got := cos.Exact(Vector{}, Vector{}); got != 0 {
		t.Errorf("cosine of empties = %g", got)
	}
}

func TestSimilarityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sim := range []TextSim{EJ{}, Cosine{}} {
		for i := 0; i < 1000; i++ {
			a, b := randVector(rng, 30), randVector(rng, 30)
			s := sim.Exact(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s out of range: %g for %v %v", sim.Name(), s, a, b)
			}
			if s2 := sim.Exact(b, a); math.Abs(s-s2) > 1e-12 {
				t.Fatalf("%s not symmetric: %g vs %g", sim.Name(), s, s2)
			}
		}
	}
}

// TestBoundsContainExact is the central property test of the package: for
// random envelopes and random member vectors drawn inside them, the
// envelope bounds must bracket the exact similarity. The RSTkNN pruning
// rules are only correct if this holds.
func TestBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, sim := range []TextSim{EJ{}, Cosine{}} {
		t.Run(sim.Name(), func(t *testing.T) {
			for i := 0; i < 3000; i++ {
				e1, x := randEnvelopeWithMember(rng)
				e2, y := randEnvelopeWithMember(rng)
				lo, hi := sim.Bounds(e1, e2)
				s := sim.Exact(x, y)
				if s < lo-1e-9 || s > hi+1e-9 {
					t.Fatalf("iter %d: exact %g outside [%g, %g]\n e1=%v/%v x=%v\n e2=%v/%v y=%v",
						i, s, lo, hi, e1.Int, e1.Uni, x, e2.Int, e2.Uni, y)
				}
				if lo < 0 || hi > 1 || lo > hi {
					t.Fatalf("iter %d: malformed bounds [%g, %g]", i, lo, hi)
				}
			}
		})
	}
}

// randEnvelopeWithMember builds a random set of 1-4 documents, merges their
// exact envelopes the way an IUR-tree node would, and returns the envelope
// plus one member document.
func randEnvelopeWithMember(rng *rand.Rand) (Envelope, Vector) {
	n := 1 + rng.Intn(4)
	docs := make([]Vector, n)
	for i := range docs {
		docs[i] = randVector(rng, 15)
	}
	env := Exact(docs[0])
	for _, d := range docs[1:] {
		env = Merge(env, Exact(d))
	}
	return env, docs[rng.Intn(n)]
}

func TestEnvelopeContains(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		env, member := randEnvelopeWithMember(rng)
		if !env.Valid() {
			t.Fatalf("invalid envelope: %v / %v", env.Int, env.Uni)
		}
		if !env.Contains(member) {
			t.Fatalf("envelope %v/%v does not contain member %v", env.Int, env.Uni, member)
		}
	}
}

func TestExactEnvelopeBoundsCollapse(t *testing.T) {
	// For degenerate envelopes (single document), bounds equal the exact
	// similarity up to rounding.
	rng := rand.New(rand.NewSource(23))
	for _, sim := range []TextSim{EJ{}, Cosine{}} {
		for i := 0; i < 300; i++ {
			x, y := randVector(rng, 10), randVector(rng, 10)
			lo, hi := sim.Bounds(Exact(x), Exact(y))
			s := sim.Exact(x, y)
			if math.Abs(lo-s) > 1e-9 || math.Abs(hi-s) > 1e-9 {
				t.Fatalf("%s: degenerate bounds [%g,%g] != exact %g", sim.Name(), lo, hi, s)
			}
		}
	}
}

func TestMergeAll(t *testing.T) {
	if e := MergeAll(nil); !e.Int.IsEmpty() || !e.Uni.IsEmpty() {
		t.Error("MergeAll(nil) should be zero envelope")
	}
	a, b, c := vec(1, 1), vec(1, 2, 2, 1), vec(1, 3)
	e := MergeAll([]Envelope{Exact(a), Exact(b), Exact(c)})
	if !e.Int.Equal(vec(1, 1)) {
		t.Errorf("Int = %v", e.Int)
	}
	if !e.Uni.Equal(vec(1, 3, 2, 1)) {
		t.Errorf("Uni = %v", e.Uni)
	}
}

func TestByName(t *testing.T) {
	if ByName("ej") == nil || ByName("cosine") == nil {
		t.Error("known measures should resolve")
	}
	if ByName("nope") != nil {
		t.Error("unknown measure should be nil")
	}
}

// TestEnvelopeMergeQuick is the testing/quick form of the envelope
// invariant: for arbitrary weight maps, the merged envelope of the exact
// envelopes contains both source vectors.
func TestEnvelopeMergeQuick(t *testing.T) {
	f := func(m1, m2 map[int32]float64) bool {
		a, b := New(m1), New(m2)
		env := Merge(Exact(a), Exact(b))
		return env.Valid() && env.Contains(a) && env.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDotSymmetricQuick: Dot is symmetric and non-negative for the
// positive-weight vectors New produces.
func TestDotSymmetricQuick(t *testing.T) {
	f := func(m1, m2 map[int32]float64) bool {
		a, b := New(m1), New(m2)
		d1, d2 := a.Dot(b), b.Dot(a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
