// Package cluster groups objects by textual content for the CIUR-tree
// (cluster-enhanced IUR-tree) of the RSTkNN paper. It implements spherical
// k-means over sparse term vectors with k-means++ seeding, the paper's
// outlier detection-and-extraction optimization (objects textually far
// from every centroid are pulled into a dedicated outlier cluster so they
// do not inflate the envelopes of coherent clusters), and the textual
// entropy measure used to prioritize refinement of textually mixed nodes.
package cluster

import (
	"math"
	"math/rand"

	"rstknn/internal/vector"
)

// Config controls clustering.
type Config struct {
	// K is the number of regular clusters. Values < 1 are treated as 1.
	K int
	// MaxIter bounds the number of Lloyd iterations (default 20).
	MaxIter int
	// Seed makes the run deterministic.
	Seed int64
	// OutlierThreshold, when positive, extracts every object whose cosine
	// similarity to its assigned centroid is below the threshold into a
	// dedicated outlier cluster (the paper's O-CIUR optimization).
	OutlierThreshold float64
}

// Assignment is the result of clustering n objects.
type Assignment struct {
	// Clusters is the total number of cluster IDs in use, including the
	// outlier cluster when extraction ran.
	Clusters int
	// Of maps object index -> cluster ID in [0, Clusters).
	Of []int
	// Centroids holds the (L2-normalized) centroid of each regular
	// cluster; the outlier cluster, if present, has a zero centroid.
	Centroids []vector.Vector
	// Outlier is the ID of the outlier cluster, or -1 when extraction was
	// disabled or extracted nothing.
	Outlier int
}

// Sizes returns the number of objects per cluster.
func (a *Assignment) Sizes() []int {
	sizes := make([]int, a.Clusters)
	for _, c := range a.Of {
		sizes[c]++
	}
	return sizes
}

// Run clusters the given document vectors. Empty vectors are assigned to
// cluster 0 (they have zero similarity to every centroid). The result
// always has at least one cluster, even for empty input.
func Run(docs []vector.Vector, cfg Config) *Assignment {
	k := cfg.K
	if k < 1 {
		k = 1
	}
	if k > len(docs) && len(docs) > 0 {
		k = len(docs)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	a := &Assignment{
		Clusters: k,
		Of:       make([]int, len(docs)),
		Outlier:  -1,
	}
	if len(docs) == 0 {
		a.Centroids = []vector.Vector{{}}
		a.Clusters = 1
		return a
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	cos := vector.Cosine{}
	centroids := seedPlusPlus(docs, k, rng)

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, d := range docs {
			best, bestSim := 0, -1.0
			for c, cen := range centroids {
				if s := cos.Exact(d, cen); s > bestSim {
					best, bestSim = c, s
				}
			}
			if a.Of[i] != best {
				a.Of[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		centroids = recompute(docs, a.Of, k, centroids, rng)
	}
	a.Centroids = centroids

	if cfg.OutlierThreshold > 0 {
		extractOutliers(docs, a, cfg.OutlierThreshold)
	}
	return a
}

// seedPlusPlus picks k initial centroids with k-means++ weighting: the
// first uniformly, the rest proportional to (1 - cosine similarity to the
// closest chosen centroid).
func seedPlusPlus(docs []vector.Vector, k int, rng *rand.Rand) []vector.Vector {
	cos := vector.Cosine{}
	centroids := make([]vector.Vector, 0, k)
	centroids = append(centroids, normalize(docs[rng.Intn(len(docs))]))
	dist := make([]float64, len(docs)) // 1 - best similarity so far
	for i := range dist {
		dist[i] = 1
	}
	for len(centroids) < k {
		last := centroids[len(centroids)-1]
		var total float64
		for i, d := range docs {
			if s := 1 - cos.Exact(d, last); s < dist[i] {
				dist[i] = s
			}
			total += dist[i]
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(len(docs))
		} else {
			r := rng.Float64() * total
			for i, w := range dist {
				r -= w
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, normalize(docs[pick]))
	}
	return centroids
}

// recompute returns the normalized mean vector of each cluster's members.
// Empty clusters are reseeded with a random document so k stays constant.
func recompute(docs []vector.Vector, of []int, k int, prev []vector.Vector, rng *rand.Rand) []vector.Vector {
	sums := make([]map[vector.TermID]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make(map[vector.TermID]float64)
	}
	for i, d := range docs {
		c := of[i]
		counts[c]++
		for j := 0; j < d.Len(); j++ {
			sums[c][d.Term(j)] += d.Weight(j)
		}
	}
	out := make([]vector.Vector, k)
	for c := range out {
		if counts[c] == 0 {
			out[c] = normalize(docs[rng.Intn(len(docs))])
			continue
		}
		out[c] = normalize(vector.New(sums[c]))
	}
	_ = prev
	return out
}

// normalize returns v scaled to unit norm (or v itself when empty).
func normalize(v vector.Vector) vector.Vector {
	n := v.Norm()
	if n <= 0 {
		return vector.Vector{}
	}
	w := make(map[vector.TermID]float64, v.Len())
	for i := 0; i < v.Len(); i++ {
		w[v.Term(i)] = v.Weight(i) / n
	}
	return vector.New(w)
}

// extractOutliers moves objects whose similarity to their centroid is
// below the threshold into a new outlier cluster appended after the
// regular ones. Documents with empty vectors are always outliers under a
// positive threshold.
func extractOutliers(docs []vector.Vector, a *Assignment, threshold float64) {
	cos := vector.Cosine{}
	outlierID := a.Clusters
	moved := 0
	for i, d := range docs {
		if cos.Exact(d, a.Centroids[a.Of[i]]) < threshold {
			a.Of[i] = outlierID
			moved++
		}
	}
	if moved > 0 {
		a.Clusters++
		a.Centroids = append(a.Centroids, vector.Vector{})
		a.Outlier = outlierID
	}
}

// Entropy returns the Shannon entropy (nats) of a cluster histogram: 0 for
// pure nodes, ln(#clusters) for uniform mixtures. The E-CIUR search
// refines high-entropy contributors first because their textual envelopes
// are loosest.
func Entropy(counts []int) float64 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += float64(c)
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / total
			h -= p * math.Log(p)
		}
	}
	return h
}
