package cluster

import (
	"math"
	"math/rand"
	"testing"

	"rstknn/internal/vector"
)

// makeTopicDocs builds n documents drawn from `topics` disjoint term
// ranges, so ground-truth clusters are unambiguous. Returns docs and their
// true topic labels.
func makeTopicDocs(rng *rand.Rand, n, topics int) ([]vector.Vector, []int) {
	docs := make([]vector.Vector, n)
	labels := make([]int, n)
	for i := range docs {
		topic := i % topics
		labels[i] = topic
		m := make(map[vector.TermID]float64)
		base := vector.TermID(topic * 100)
		for j := 0; j < 3+rng.Intn(4); j++ {
			m[base+vector.TermID(rng.Intn(10))] = 1 + rng.Float64()
		}
		docs[i] = vector.New(m)
	}
	return docs, labels
}

func TestRunSeparatesDisjointTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs, labels := makeTopicDocs(rng, 200, 4)
	// Seed 0 reaches the global optimum on this instance (k-means
	// can hit local optima on other seeds; Run is deterministic per seed).
	a := Run(docs, Config{K: 4, Seed: 0})
	if a.Clusters != 4 {
		t.Fatalf("Clusters = %d", a.Clusters)
	}
	// Every pair of documents with the same topic must share a cluster,
	// because topics use disjoint vocabularies.
	topicToCluster := map[int]int{}
	for i, c := range a.Of {
		if prev, ok := topicToCluster[labels[i]]; ok {
			if prev != c {
				t.Fatalf("topic %d split across clusters %d and %d", labels[i], prev, c)
			}
		} else {
			topicToCluster[labels[i]] = c
		}
	}
	if len(topicToCluster) != 4 {
		t.Errorf("expected 4 distinct clusters, got %d", len(topicToCluster))
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs, _ := makeTopicDocs(rng, 100, 3)
	a := Run(docs, Config{K: 3, Seed: 42})
	b := Run(docs, Config{K: 3, Seed: 42})
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatalf("assignments differ at %d with same seed", i)
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	a := Run(nil, Config{K: 5})
	if a.Clusters != 1 || len(a.Of) != 0 {
		t.Errorf("empty input: %+v", a)
	}
	docs := []vector.Vector{vector.New(map[vector.TermID]float64{1: 1})}
	a = Run(docs, Config{K: 10, Seed: 1})
	if a.Clusters != 1 {
		t.Errorf("k should be capped at n: %d", a.Clusters)
	}
	if a.Of[0] != 0 {
		t.Errorf("single doc must be in cluster 0")
	}
	// K < 1 is treated as 1.
	a = Run(docs, Config{K: 0, Seed: 1})
	if a.Clusters != 1 {
		t.Errorf("K=0 should collapse to 1, got %d", a.Clusters)
	}
}

func TestRunHandlesEmptyVectors(t *testing.T) {
	docs := []vector.Vector{
		{},
		vector.New(map[vector.TermID]float64{1: 1}),
		vector.New(map[vector.TermID]float64{1: 1, 2: 1}),
		{},
	}
	a := Run(docs, Config{K: 2, Seed: 3})
	if len(a.Of) != 4 {
		t.Fatalf("Of length = %d", len(a.Of))
	}
	for i, c := range a.Of {
		if c < 0 || c >= a.Clusters {
			t.Errorf("doc %d assigned out-of-range cluster %d", i, c)
		}
	}
}

func TestOutlierExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	docs, _ := makeTopicDocs(rng, 90, 3)
	// Append documents with empty vectors: their similarity to every
	// centroid is 0, so under any positive threshold they must be
	// extracted as outliers.
	for i := 0; i < 10; i++ {
		docs = append(docs, vector.Vector{})
	}
	a := Run(docs, Config{K: 3, Seed: 5, OutlierThreshold: 0.2})
	if a.Outlier < 0 {
		t.Fatal("expected an outlier cluster")
	}
	if a.Outlier != a.Clusters-1 {
		t.Errorf("outlier cluster should be the last ID: %d of %d", a.Outlier, a.Clusters)
	}
	for i := 90; i < 100; i++ {
		if a.Of[i] != a.Outlier {
			t.Errorf("empty doc %d in cluster %d, want outlier %d", i, a.Of[i], a.Outlier)
		}
	}
	// Extraction is consistent: every member of the outlier cluster had
	// sub-threshold similarity to every regular centroid.
	cos := vector.Cosine{}
	for i, c := range a.Of {
		if c != a.Outlier {
			continue
		}
		for j := 0; j < a.Outlier; j++ {
			if cos.Exact(docs[i], a.Centroids[j]) >= 1.0 {
				t.Errorf("doc %d marked outlier but identical to centroid %d", i, j)
			}
		}
	}
}

func TestNoOutlierClusterWhenDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	docs, _ := makeTopicDocs(rng, 50, 2)
	a := Run(docs, Config{K: 2, Seed: 1})
	if a.Outlier != -1 {
		t.Errorf("Outlier = %d without extraction", a.Outlier)
	}
}

func TestSizesSumToN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs, _ := makeTopicDocs(rng, 123, 5)
	a := Run(docs, Config{K: 5, Seed: 9, OutlierThreshold: 0.1})
	total := 0
	for _, s := range a.Sizes() {
		total += s
	}
	if total != 123 {
		t.Errorf("sizes sum to %d, want 123", total)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %g", got)
	}
	if got := Entropy([]int{5, 0, 0}); got != 0 {
		t.Errorf("pure histogram entropy = %g", got)
	}
	got := Entropy([]int{10, 10})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("uniform 2-cluster entropy = %g, want ln 2", got)
	}
	// Entropy grows with mixing.
	if !(Entropy([]int{10, 10, 10}) > Entropy([]int{28, 1, 1})) {
		t.Error("uniform mixture should have higher entropy than skewed")
	}
	// Negative counts are ignored rather than poisoning the result.
	if got := Entropy([]int{-3, 10}); got != 0 {
		t.Errorf("entropy with negative count = %g, want 0", got)
	}
}

func TestCentroidsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	docs, _ := makeTopicDocs(rng, 60, 3)
	a := Run(docs, Config{K: 3, Seed: 11})
	for c, cen := range a.Centroids {
		if cen.IsEmpty() {
			continue
		}
		if math.Abs(cen.Norm()-1) > 1e-9 {
			t.Errorf("centroid %d norm = %g", c, cen.Norm())
		}
	}
}
