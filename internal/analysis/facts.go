package analysis

// Serializable function facts. The dataflow engine (summary.go) computes
// one FuncSummary per function declaration; the vet driver (vet.go)
// writes every interesting summary of a package — merged with the
// summaries of its dependencies — to the unit's facts file (VetxOutput),
// and reads the facts of imports back from the files the go command
// lists in PackageVetx. That is how a property like "this helper
// allocates" crosses package boundaries: hotalloc flags a call in
// package b to an allocating helper of package a without ever seeing
// a's source, exactly like go/analysis facts ride the .vetx files of
// the unitchecker protocol.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"os"
)

// factsVersion guards the on-disk encoding; bump on incompatible change.
// A version mismatch discards the file (vet re-runs the tool whenever
// the binary changes, so stale files only appear across tool versions).
// Version 2 added the lifecycle facts (Publishes/Retires) and the
// lock-order facts (LockClasses/LockPairs). Version 3 added the taint
// facts (TaintResults/SinkParams) for untrustedlen.
const factsVersion = 3

// FuncSummary is the behavioral summary of one function: everything a
// caller-side analyzer needs to know without the function's source.
// Every property is transitive — it holds if the function's own body
// exhibits it or any statically resolvable callee's summary does.
type FuncSummary struct {
	// Func is the display name used in diagnostics (pkg.(Recv).Name).
	Func string `json:"func"`

	// Allocates reports that the function may heap-allocate. Sites
	// suppressed with //rstknn:allow hotalloc do not count: the
	// directive blesses the function as effectively allocation-free
	// (amortized warm-up growth, cold fallbacks), so callers on a hot
	// path are not tainted. AllocWhy names the first piece of evidence.
	Allocates bool   `json:"allocates,omitempty"`
	AllocWhy  string `json:"alloc_why,omitempty"`

	// PerformsIO reports that the function may perform simulated
	// node/blob I/O (ReadNode/Get and their Tracked variants). IOWhy
	// names the evidence. locksafe uses it to see through helpers.
	PerformsIO bool   `json:"performs_io,omitempty"`
	IOWhy      string `json:"io_why,omitempty"`

	// AcquiresLock reports that the function may lock a mutex-bearing
	// struct (pool shard, cache shard).
	AcquiresLock bool `json:"acquires_lock,omitempty"`

	// WritesShared reports that the function may write package-level
	// state. Writes suppressed with //rstknn:allow sharedmut do not
	// count. sharedmut uses it to keep worker fan-out closures pure.
	WritesShared bool   `json:"writes_shared,omitempty"`
	SharedWhy    string `json:"shared_why,omitempty"`

	// CapBacked reports that the function returns a zero-length slice
	// backed by explicitly reserved capacity (an arena carve or
	// make([]T, 0, n)): appending up to that capacity cannot allocate,
	// which is hotalloc's "capacity proof" for append.
	CapBacked bool `json:"cap_backed,omitempty"`

	// Publishes reports that the function atomically publishes shared
	// state (Store/Swap/CompareAndSwap on a sync/atomic pointer) on
	// every path, itself or through a callee. retirepub treats a call
	// to such a function as a publish dominating later retires.
	Publishes bool `json:"publishes,omitempty"`

	// Retires reports that the function retires storage (Reclaimer or
	// store Retire) on some path that is NOT dominated by a publish
	// inside the function — the retire obligation leaks to the caller,
	// who must have published first. Retire sites suppressed with
	// //rstknn:allow retirepub do not count.
	Retires bool `json:"retires,omitempty"`

	// LockClasses lists the lock classes (pkgpath.Type.field) the
	// function may acquire, itself or transitively. lockorder uses it
	// to grow ordering edges at call sites made under a held lock.
	LockClasses []string `json:"lock_classes,omitempty"`

	// LockPairs lists observed acquisition orderings "A=>B" (B acquired
	// while A held), own and transitive. The union over a package's
	// import closure is the lock-order graph lockorder checks for
	// cycles.
	LockPairs []string `json:"lock_pairs,omitempty"`

	// TaintResults lists the function's integer results that derive
	// from untrusted page bytes, with the taint level and magnitude
	// bound untrustedlen computed. Callers treat such a result exactly
	// like a local binary.* decode.
	TaintResults []TaintSpec `json:"taint_results,omitempty"`

	// SinkParams lists the parameters the function feeds into a taint
	// sink (allocation size, slice index, narrowing conversion) without
	// validating them first: the caller must pass bounded values.
	SinkParams []SinkSpec `json:"sink_params,omitempty"`
}

// TaintSpec describes the taint of one function result.
type TaintSpec struct {
	// Result is the result index.
	Result int `json:"result"`
	// Level is "bounded" (proportional to validated input) or "wild"
	// (attacker-chosen with no dominating check).
	Level string `json:"level"`
	// Hi is the saturating upper bound on the result's magnitude.
	Hi uint64 `json:"hi,omitempty"`
	// Neg reports that the result may be negative.
	Neg bool `json:"neg,omitempty"`
	// Why names the originating source for diagnostics.
	Why string `json:"why,omitempty"`
}

// SinkSpec describes one unvalidated parameter-to-sink flow.
type SinkSpec struct {
	// Param is the signature parameter index (receiver excluded).
	Param int `json:"param"`
	// Kind is the sink class: "alloc", "index", or "narrow".
	Kind string `json:"kind"`
	// Hi is the largest magnitude the sink tolerates (narrow sinks:
	// the conversion target's max; zero otherwise).
	Hi uint64 `json:"hi,omitempty"`
	// Why locates the sink for diagnostics.
	Why string `json:"why,omitempty"`
}

// interesting reports whether the summary carries any information worth
// serializing; all-false summaries are omitted from the facts file.
func (s *FuncSummary) interesting() bool {
	return s.Allocates || s.PerformsIO || s.AcquiresLock || s.WritesShared || s.CapBacked ||
		s.Publishes || s.Retires || len(s.LockClasses) > 0 || len(s.LockPairs) > 0 ||
		len(s.TaintResults) > 0 || len(s.SinkParams) > 0
}

// FactStore maps function keys (see FuncKey) to summaries. One store
// accumulates the facts of a package's entire import closure.
type FactStore struct {
	funcs map[string]*FuncSummary
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: make(map[string]*FuncSummary)}
}

// Lookup returns the summary stored under key, or nil.
func (s *FactStore) Lookup(key string) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.funcs[key]
}

// LookupFunc returns the summary of the given function object, or nil.
func (s *FactStore) LookupFunc(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.funcs[FuncKey(fn)]
}

// add records a summary, overwriting any previous entry for key.
func (s *FactStore) add(key string, sum *FuncSummary) {
	s.funcs[key] = sum
}

// Merge copies every entry of other into s.
func (s *FactStore) Merge(other *FactStore) {
	if other == nil {
		return
	}
	for k, v := range other.funcs {
		s.funcs[k] = v
	}
}

// Len returns the number of stored summaries.
func (s *FactStore) Len() int {
	if s == nil {
		return 0
	}
	return len(s.funcs)
}

// factsFile is the on-disk shape of a facts (.vetx) file.
type factsFile struct {
	Version int                     `json:"version"`
	Funcs   map[string]*FuncSummary `json:"funcs"`
}

// Encode serializes the store. The JSON encoder sorts map keys, so the
// encoding is deterministic — the go command caches on file content.
func (s *FactStore) Encode() ([]byte, error) {
	return json.Marshal(factsFile{Version: factsVersion, Funcs: s.funcs})
}

// DecodeFacts parses an encoded store. Empty input (the facts file of a
// fact-free dependency, e.g. a standard-library package) decodes to an
// empty store; a version mismatch does too, rather than failing the
// whole vet run on a stale cache entry.
func DecodeFacts(data []byte) (*FactStore, error) {
	store := NewFactStore()
	if len(data) == 0 {
		return store, nil
	}
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("decoding facts: %w", err)
	}
	if f.Version != factsVersion {
		return store, nil
	}
	for k, v := range f.Funcs {
		store.funcs[k] = v
	}
	return store, nil
}

// ReadFactsFile loads the facts file at path. A missing file is treated
// as empty: a dependency analyzed by an older tool simply contributes
// no facts.
func ReadFactsFile(path string) (*FactStore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewFactStore(), nil
		}
		return nil, err
	}
	return DecodeFacts(data)
}

// WriteFile serializes the store to path.
func (s *FactStore) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// FuncKey returns the stable cross-package identifier of a function or
// method: "pkgpath.Name" for functions, "pkgpath.(Recv).Name" for
// methods (pointerness stripped — a method set has unique names either
// way). Generic instantiations share their origin's key.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	name := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	return pkg + ".(" + name + ")." + fn.Name()
}
