package analysis

// errlost: error results in the storage-facing packages are never
// dropped or shadowed away.
//
// internal/core, internal/storage, and internal/iurtree sit on the
// simulated-disk path, where a swallowed error silently corrupts
// persisted pages or returns partial query results. errlost flags:
//
//   - a call statement whose result set includes an error, used as a
//     bare statement (the error vanishes), including the direct
//     `defer f()` form — a deferred Close on the write path fails
//     exactly when the data didn't reach disk, so the error must be
//     checked in a deferred closure or the drop annotated with
//     //rstknn:allow errlost;
//   - assigning an error result to the blank identifier;
//   - re-declaring an in-scope error variable with := so the outer one
//     is never assigned (the classic shadowed-err bug). The init
//     clauses of if/for/switch are idiomatic scoping, and a := that
//     also introduces another new non-blank variable has no `=`
//     spelling at all — both are exempt; only shadows that could have
//     assigned the outer variable are flagged.
//
// Other packages are out of scope: tests and the bench harness drop
// errors legitimately, and the API layer is small enough to review.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrLost reports dropped and shadowed error results in internal/core,
// internal/storage, and internal/iurtree.
var ErrLost = &Analyzer{
	Name: "errlost",
	Doc: "report error results dropped as bare statements or direct defers, assigned to _, " +
		"or lost to := shadowing in internal/core, internal/storage, and internal/iurtree",
	Run: runErrLost,
}

// errlostPkgs are the import-path fragments the analyzer applies to.
var errlostPkgs = []string{"internal/core", "internal/storage", "internal/iurtree"}

func runErrLost(pass *Pass) error {
	inScope := false
	for _, frag := range errlostPkgs {
		if strings.Contains(pass.Pkg.Path(), frag) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	errType := types.Universe.Lookup("error").Type()
	isError := func(t types.Type) bool {
		return t != nil && types.Identical(t, errType)
	}
	// resultErrors reports whether a call yields any error-typed result
	// (directly or as a tuple component).
	resultErrors := func(call *ast.CallExpr) bool {
		t := pass.TypesInfo.TypeOf(call)
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				if isError(tup.At(i).Type()) {
					return true
				}
			}
			return false
		}
		return isError(t)
	}

	for _, f := range pass.SourceFiles() {
		// The init clauses of if/for/switch statements introduce
		// deliberately scoped variables; collect them so := shadowing
		// there is not flagged.
		initStmts := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					initStmts[s.Init] = true
				}
			case *ast.ForStmt:
				if s.Init != nil {
					initStmts[s.Init] = true
				}
			case *ast.SwitchStmt:
				if s.Init != nil {
					initStmts[s.Init] = true
				}
			case *ast.TypeSwitchStmt:
				if s.Init != nil {
					initStmts[s.Init] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && resultErrors(call) {
					pass.Reportf(s.Pos(), "error result of %s is dropped", types.ExprString(call.Fun))
				}
			case *ast.DeferStmt:
				// defer f() discards f's error with no way to observe it;
				// a deferred closure (whose own body IS inspected) can
				// check it. Deferring a closure is only flagged when the
				// closure itself returns an error.
				if resultErrors(s.Call) {
					name := "the deferred closure"
					if _, lit := s.Call.Fun.(*ast.FuncLit); !lit {
						name = types.ExprString(s.Call.Fun)
					}
					pass.Reportf(s.Pos(), "error result of %s is dropped by defer; check it in a deferred closure", name)
				}
			case *ast.AssignStmt:
				checkErrAssign(pass, s, initStmts, isError)
			}
			return true
		})
	}
	return nil
}

// checkErrAssign flags blank-identifier error drops and :=-shadowed
// error variables in one assignment.
func checkErrAssign(pass *Pass, s *ast.AssignStmt, initStmts map[ast.Stmt]bool, isError func(types.Type) bool) {
	info := pass.TypesInfo

	// Type of the value flowing into lhs[i], when it is a fresh call
	// result (an explicit `_ = err` re-discard of a bound variable is
	// not a lost result).
	resultTypeAt := func(i int) types.Type {
		if len(s.Rhs) == len(s.Lhs) {
			if _, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); !ok {
				return nil
			}
			return info.TypeOf(s.Rhs[i])
		}
		// x, err := f() — one tuple-valued rhs.
		if _, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); !ok {
			return nil
		}
		if tup, ok := info.TypeOf(s.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}

	// A := that also introduces another new, non-blank, non-error
	// variable is the unavoidable multi-result idiom (v, err := f() in a
	// nested scope) — only shadows that could have been a plain `=` (or
	// a rename) are flagged.
	otherNewVar := false
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if d, ok := info.Defs[id].(*types.Var); ok && !isError(d.Type()) {
				otherNewVar = true
			}
		}
	}

	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			if isError(resultTypeAt(i)) {
				pass.Reportf(lhs.Pos(), "error result assigned to _; handle or annotate it")
			}
			continue
		}
		// := that shadows an in-scope error variable of an enclosing
		// function scope: the outer variable silently keeps its old
		// value.
		if s.Tok.String() != ":=" || initStmts[s] || otherNewVar {
			continue
		}
		def, ok := info.Defs[id].(*types.Var)
		if !ok || !isError(def.Type()) {
			continue
		}
		scope := def.Parent()
		if scope == nil || scope.Parent() == nil {
			continue
		}
		_, prev := scope.Parent().LookupParent(id.Name, def.Pos())
		pv, ok := prev.(*types.Var)
		if ok && isError(pv.Type()) && pv.Parent() != pass.Pkg.Scope() && pv.Pos() != def.Pos() {
			pass.Reportf(lhs.Pos(), "%s := shadows the enclosing error variable; assign with = or rename", id.Name)
		}
	}
}
