package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleStore() *FactStore {
	s := NewFactStore()
	s.add("rstknn/internal/vector.Dot", &FuncSummary{Func: "rstknn/internal/vector.Dot"})
	s.add("pkg/a.Helper", &FuncSummary{
		Func:      "pkg/a.Helper",
		Allocates: true,
		AllocWhy:  "make([]int) allocates at a.go:10",
	})
	s.add("pkg/a.(Tree).ReadAll", &FuncSummary{
		Func:       "Tree.ReadAll",
		PerformsIO: true,
		IOWhy:      "calls Tree.ReadNode",
	})
	s.add("pkg/b.(Pool).reset", &FuncSummary{
		Func:         "Pool.reset",
		AcquiresLock: true,
		WritesShared: true,
		SharedWhy:    "writes package-level stats",
	})
	s.add("pkg/b.carve", &FuncSummary{Func: "carve", CapBacked: true})
	s.add("pkg/c.(Engine).publish", &FuncSummary{Func: "Engine.publish", Publishes: true})
	s.add("pkg/c.(Reclaimer).Retire", &FuncSummary{Func: "Reclaimer.Retire", Retires: true})
	s.add("pkg/c.(Store).grow", &FuncSummary{
		Func:        "Store.grow",
		LockClasses: []string{"pkg/c.Store.mu", "pkg/c.poolShard.mu"},
		LockPairs:   []string{"pkg/c.Store.mu=>pkg/c.poolShard.mu"},
	})
	s.add("pkg/d.DecodeCount", &FuncSummary{
		Func: "DecodeCount",
		TaintResults: []TaintSpec{
			{Result: 0, Level: "wild", Hi: 1<<32 - 1, Why: "a 32-bit value decoded from untrusted bytes at d.go:7"},
			{Result: 1, Level: "bounded", Hi: 10, Neg: true, Why: "the byte count of a varint at d.go:8"},
		},
	})
	s.add("pkg/d.Fill", &FuncSummary{
		Func: "Fill",
		SinkParams: []SinkSpec{
			{Param: 1, Kind: "index", Why: "index at d.go:12"},
			{Param: 2, Kind: "narrow", Hi: 1<<16 - 1, Why: "narrow at d.go:13"},
		},
	})
	return s
}

// TestFactsRoundTripFile drives the exact path the vet driver uses:
// summaries encoded to a facts (.vetx) file and read back by the next
// unit must survive unchanged.
func TestFactsRoundTripFile(t *testing.T) {
	s := sampleStore()
	path := filepath.Join(t.TempDir(), "unit.vetx")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFactsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round-trip lost entries: got %d, want %d", got.Len(), s.Len())
	}
	for key, want := range s.funcs {
		have := got.Lookup(key)
		if have == nil {
			t.Fatalf("round-trip dropped %q", key)
		}
		if !reflect.DeepEqual(have, want) {
			t.Errorf("round-trip changed %q: got %+v, want %+v", key, have, want)
		}
	}
}

// TestFactsDeterministicEncoding: the go command caches vet results on
// file content, so two encodes of the same store must be byte-identical.
func TestFactsDeterministicEncoding(t *testing.T) {
	a, err := sampleStore().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleStore().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("encoding is not deterministic:\n%s\n%s", a, b)
	}
}

func TestFactsEmptyAndMissing(t *testing.T) {
	got, err := DecodeFacts(nil)
	if err != nil || got.Len() != 0 {
		t.Fatalf("DecodeFacts(nil) = %d entries, %v; want empty, nil", got.Len(), err)
	}
	got, err = ReadFactsFile(filepath.Join(t.TempDir(), "nope.vetx"))
	if err != nil || got.Len() != 0 {
		t.Fatalf("missing facts file: %d entries, %v; want empty, nil", got.Len(), err)
	}
}

// TestFactsVersionMismatch: a stale facts file from a different tool
// version is discarded, not an error.
func TestFactsVersionMismatch(t *testing.T) {
	data, err := json.Marshal(factsFile{
		Version: factsVersion + 1,
		Funcs:   map[string]*FuncSummary{"p.F": {Func: "F", Allocates: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stale.vetx")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFactsFile(path)
	if err != nil || got.Len() != 0 {
		t.Fatalf("stale facts file: %d entries, %v; want empty store, nil", got.Len(), err)
	}
}

// TestFactsTaintSpecsInteresting: the v3 taint fields alone make a
// summary worth exporting — a pure decode helper with no behavioral
// flags must still cross package boundaries.
func TestFactsTaintSpecsInteresting(t *testing.T) {
	taintOnly := &FuncSummary{
		Func:         "Decode",
		TaintResults: []TaintSpec{{Result: 0, Level: "wild", Hi: 42, Why: "w"}},
	}
	if !taintOnly.interesting() {
		t.Error("TaintResults-only summary not interesting; it would never be exported")
	}
	sinkOnly := &FuncSummary{
		Func:       "Fill",
		SinkParams: []SinkSpec{{Param: 0, Kind: "alloc", Why: "w"}},
	}
	if !sinkOnly.interesting() {
		t.Error("SinkParams-only summary not interesting; it would never be exported")
	}
	if (&FuncSummary{Func: "Nop"}).interesting() {
		t.Error("empty summary claims to be interesting")
	}
}

func TestFactsMerge(t *testing.T) {
	a := NewFactStore()
	a.add("p.F", &FuncSummary{Func: "F", Allocates: true})
	b := NewFactStore()
	b.add("p.G", &FuncSummary{Func: "G", PerformsIO: true})
	a.Merge(b)
	if a.Len() != 2 || a.Lookup("p.G") == nil {
		t.Fatalf("merge failed: %d entries", a.Len())
	}
}
