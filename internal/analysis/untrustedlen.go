package analysis

// untrustedlen: interprocedural taint analysis for integers decoded from
// untrusted page bytes. Built on the SSA-lite layer (ssa.go): every
// function body is lowered to def-use chains, each Value gets a taint —
// a small numeric lattice — by a fixed-point over the value graph, and a
// structural walk then replays the body refining taints at dominating
// bounds checks and flagging taint that reaches a sink unrefined.
//
// The lattice per value is (level, hi, neg):
//
//	level:  Clean < Bounded < Wild. Wild is attacker-chosen with no
//	        dominating check; Bounded passed a structural bounds check
//	        against the blob length or a declared cap.
//	hi:     saturating upper bound on the value's magnitude; arithmetic
//	        propagates it with saturating add/mul so a 16-bit count
//	        times a record size stays provably small.
//	neg:    the value may be negative (signed decodes, subtraction,
//	        same-width reinterpreting conversions).
//
// Sources are the encoding/binary decodes (LittleEndian/BigEndian
// Uint16/32/64, Uvarint/Varint and their Read variants) plus any call
// whose callee carries a TaintResults fact. Sinks are make sizes, slice
// indexing and reslicing, narrowing integer conversions, and calls whose
// callee carries a SinkParams fact. Sanitizers are dominating
// comparisons against a constant, a clean expression (len(blob)), or a
// strictly-less-tainted expression; the //rstknn:validated directive is
// the escape hatch for bounds the walker cannot prove.
//
// Guard arithmetic is judged at the WEAKEST platform width: a check like
// "if len(buf) < 4+n*12" is rejected — with an explanatory note on the
// diagnostic — when 4+n*12 can exceed MaxInt32, because on a 32-bit
// platform the computed guard expression wraps and the comparison proves
// nothing. Value magnitudes themselves use 64-bit int semantics (the
// supported build targets); rewriting the guard in division form
// ("if n > (len(buf)-4)/12") keeps it exact at every width.
//
// Taint crosses function and package boundaries through the facts codec
// (facts.go, v3): a function whose integer result derives from a decode
// exports a TaintResults entry, and callers treat the call exactly like
// a local decode; a function that feeds a parameter into a sink without
// validating it exports a SinkParams entry, and the CALL SITE is flagged
// when a tainted argument flows in.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
)

// UntrustedLen flags untrusted decoded integers reaching allocation,
// indexing, or narrowing sinks without a dominating bounds check.
var UntrustedLen = &Analyzer{
	Name: "untrustedlen",
	Doc: "lengths, counts, and offsets decoded from untrusted page bytes must pass " +
		"a dominating bounds check before reaching a make size, a slice index or " +
		"reslice, or a narrowing integer conversion",
	Run: runUntrustedLen,
}

func runUntrustedLen(p *Pass) error {
	for _, n := range p.Facts.Nodes() {
		if n.taint == nil {
			continue
		}
		for _, f := range n.taint.findings {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// ------------------------------------------------------------------
// Taint lattice

type taintLevel uint8

const (
	taintClean taintLevel = iota
	taintBounded
	taintWild
)

// taint is the abstract value of one SSA-lite Value or expression.
type taint struct {
	level taintLevel
	// hi is a saturating bound on the magnitude.
	hi uint64
	// neg marks possibly-negative values.
	neg bool
	// local marks taint that originates in a decode visible to this
	// function (directly or via a callee's TaintResults fact): findings
	// are reported here.
	local bool
	// params is a bitmask of the signature parameters the taint derives
	// from: findings become SinkParams facts charged to the call sites.
	params uint64
	// why describes the originating source for diagnostics.
	why string
	// pos is the source position.
	pos token.Pos
}

func (t taint) tainted() bool { return t.level > taintClean }

// joinTaint is the lattice join (control-flow merge).
func joinTaint(a, b taint) taint {
	out := a
	if b.level > out.level || out.why == "" {
		out.why, out.pos = b.why, b.pos
	}
	if b.level > out.level {
		out.level = b.level
	}
	if b.hi > out.hi {
		out.hi = b.hi
	}
	out.neg = a.neg || b.neg
	out.local = a.local || b.local
	out.params = a.params | b.params
	return out
}

func satAdd(a, b uint64) uint64 {
	if a+b < a {
		return math.MaxUint64
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// ------------------------------------------------------------------
// Integer type geometry

func basicOf(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, _ := t.Underlying().(*types.Basic)
	return b
}

func isIntType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsInteger != 0
}

func isSignedType(t types.Type) bool {
	b := basicOf(t)
	return b != nil && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

// intWidth returns the bit width of an integer type; int, uint, and
// uintptr count as 64 (the supported build targets).
func intWidth(t types.Type) int {
	switch basicOf(t).Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

// maxMag returns the largest magnitude an integer type can hold
// (1<<(w-1) for signed types: the most-negative value).
func maxMag(t types.Type) uint64 {
	if !isIntType(t) {
		return 0
	}
	w := intWidth(t)
	if isSignedType(t) {
		return 1 << (w - 1)
	}
	if w == 64 {
		return math.MaxUint64
	}
	return 1<<w - 1
}

// guardMax returns the largest value a guard expression of type t can
// compute without overflowing on ANY supported platform: int and uint
// are judged at 32 bits, explicit widths at their own.
func guardMax(t types.Type) uint64 {
	b := basicOf(t)
	if b == nil || b.Info()&types.IsInteger == 0 {
		return math.MaxUint64
	}
	switch b.Kind() {
	case types.Int8:
		return math.MaxInt8
	case types.Int16:
		return math.MaxInt16
	case types.Int32, types.Int, types.UntypedInt:
		return math.MaxInt32
	case types.Int64:
		return math.MaxInt64
	case types.Uint8:
		return math.MaxUint8
	case types.Uint16:
		return math.MaxUint16
	case types.Uint32, types.Uint, types.Uintptr:
		return math.MaxUint32
	default:
		return math.MaxUint64
	}
}

// ------------------------------------------------------------------
// Scanner

type taintFinding struct {
	pos token.Pos
	msg string
}

// taintScan is the per-function result: local findings to report, plus
// the result/parameter facts to export.
type taintScan struct {
	findings  []taintFinding
	results   []TaintSpec
	sinks     []SinkSpec
	validated int
}

type taintScanner struct {
	pf   *PkgFacts
	info *types.Info
	n    *FuncNode
	ssa  *FuncSSA
	dirs *directiveIndex

	// base holds the flow-insensitive fixed-point taint of every Value.
	base map[*Value]taint
	// notes records why a bounds check over a value was rejected
	// (guard-width overflow); attached to diagnostics on that value.
	notes map[*Value]string
	// resT accumulates the joined taint of each return-result index.
	resT map[int]taint
	// sinkSeen dedups exported SinkSpecs by (param, kind).
	sinkSeen map[string]bool

	out *taintScan
}

// scanUntrusted runs the taint analysis over one function, caching the
// SSA form on the node (the scan itself reruns every fact round).
func scanUntrusted(pf *PkgFacts, info *types.Info, n *FuncNode, dirs *directiveIndex) *taintScan {
	if !n.ssaTried {
		n.ssaTried = true
		n.ssa = BuildSSA(n.Decl, info)
	}
	if n.ssa == nil {
		return &taintScan{}
	}
	sc := &taintScanner{
		pf:       pf,
		info:     info,
		n:        n,
		ssa:      n.ssa,
		dirs:     dirs,
		base:     make(map[*Value]taint),
		notes:    make(map[*Value]string),
		resT:     make(map[int]taint),
		sinkSeen: make(map[string]bool),
		out:      &taintScan{},
	}
	sc.solveBase()
	w := &walker{sc: sc, env: make(map[*Value]taint)}
	w.walkStmts(n.Decl.Body.List)
	sc.finish()
	return sc.out
}

// solveBase computes the flow-insensitive taint of every Value by
// iterating the value graph to a fixed point. Loop-carried accumulation
// (off += sz) grows hi every round; after a grace period the still-
// growing bound is widened to saturation so the iteration terminates.
func (sc *taintScanner) solveBase() {
	for round := 0; round < 64; round++ {
		changed := false
		for _, v := range sc.ssa.Values {
			nt := sc.baseTaintOf(v)
			old := sc.base[v]
			if round >= 3 && nt.tainted() && nt.hi > old.hi && old.level == nt.level {
				nt.hi = math.MaxUint64
			}
			if nt != old {
				sc.base[v] = nt
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func (sc *taintScanner) baseTaintOf(v *Value) taint {
	switch v.Kind {
	case ValParam:
		if v.ParamIdx >= 0 && v.ParamIdx < 64 && isIntType(v.Var.Type()) {
			return taint{
				level:  taintWild,
				hi:     maxMag(v.Var.Type()),
				neg:    isSignedType(v.Var.Type()),
				params: 1 << uint(v.ParamIdx),
				why:    "parameter " + v.Var.Name(),
				pos:    v.Pos,
			}
		}
		return taint{}
	case ValPhi:
		var out taint
		for i, op := range v.Ops {
			if i == 0 {
				out = sc.base[op]
			} else {
				out = joinTaint(out, sc.base[op])
			}
		}
		return out
	case ValDef:
		if v.Prev != nil {
			prev := sc.base[v.Prev]
			var rhs taint
			switch v.Op {
			case token.INC, token.DEC:
				rhs = taint{hi: 1}
			default:
				rhs = sc.evalN(v.Expr, -1, nil)
			}
			return combine(opAssignOp(v.Op), prev, rhs, v.Var.Type())
		}
		if v.Expr != nil {
			t := sc.evalN(v.Expr, v.ResIdx, nil)
			return t
		}
	}
	return taint{}
}

// opAssignOp maps an op-assign or inc/dec token to its binary operator.
func opAssignOp(op token.Token) token.Token {
	switch op {
	case token.ADD_ASSIGN, token.INC:
		return token.ADD
	case token.SUB_ASSIGN, token.DEC:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	}
	return op
}

// taintOf resolves a Value's taint, preferring the walker's refined
// environment; phi values re-join their operands through the
// environment so a refinement flows across merges.
func (sc *taintScanner) taintOf(v *Value, env map[*Value]taint, seen map[*Value]bool) taint {
	if env != nil {
		if t, ok := env[v]; ok {
			return t
		}
		if v.Kind == ValPhi {
			if seen == nil {
				seen = make(map[*Value]bool)
			}
			if !seen[v] {
				seen[v] = true
				var out taint
				for i, op := range v.Ops {
					t := sc.taintOf(op, env, seen)
					if i == 0 {
						out = t
					} else {
						out = joinTaint(out, t)
					}
				}
				return out
			}
		}
	}
	return sc.base[v]
}

// ------------------------------------------------------------------
// Expression evaluation

func constTaint(cv constant.Value) taint {
	if cv.Kind() != constant.Int {
		return taint{}
	}
	if i, ok := constant.Int64Val(cv); ok {
		if i < 0 {
			return taint{hi: uint64(-(i + 1)) + 1, neg: true}
		}
		return taint{hi: uint64(i)}
	}
	if u, ok := constant.Uint64Val(cv); ok {
		return taint{hi: u}
	}
	return taint{hi: math.MaxUint64}
}

// cleanOf is the taint of a trusted expression of the given type: Clean,
// but with the type's full magnitude so arithmetic with tainted values
// stays a sound bound.
func cleanOf(t types.Type) taint {
	return taint{hi: maxMag(t)}
}

func (sc *taintScanner) eval(e ast.Expr, env map[*Value]taint) taint {
	return sc.evalN(e, -1, env)
}

// evalN evaluates an expression's taint; resIdx selects the tuple result
// when e is a multi-value call consumed by a tuple assignment.
func (sc *taintScanner) evalN(e ast.Expr, resIdx int, env map[*Value]taint) taint {
	if e == nil {
		return taint{}
	}
	if tv, ok := sc.info.Types[e]; ok && tv.Value != nil {
		return constTaint(tv.Value)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return sc.evalN(e.X, resIdx, env)
	case *ast.Ident:
		if v := sc.ssa.UseDef[e]; v != nil {
			return sc.taintOf(v, env, nil)
		}
		return cleanOf(sc.info.TypeOf(e))
	case *ast.CallExpr:
		return sc.evalCall(e, resIdx, env)
	case *ast.BinaryExpr:
		a := sc.eval(e.X, env)
		b := sc.eval(e.Y, env)
		return combine2(e.Op, a, b, sc.info.TypeOf(e), sc.info, e.Y)
	case *ast.UnaryExpr:
		return sc.evalUnary(e, env)
	default:
		// Loads (fields, indexing, derefs) and everything unmodeled:
		// trusted (the analysis is field-insensitive by design).
		return cleanOf(sc.info.TypeOf(e))
	}
}

func (sc *taintScanner) evalUnary(e *ast.UnaryExpr, env map[*Value]taint) taint {
	a := sc.eval(e.X, env)
	switch e.Op {
	case token.ADD:
		return a
	case token.SUB:
		a.neg = true
		return a
	case token.XOR:
		a.hi = maxMag(sc.info.TypeOf(e))
		a.neg = isSignedType(sc.info.TypeOf(e))
		return a
	}
	return cleanOf(sc.info.TypeOf(e))
}

// combine propagates taint through one binary operation without constant
// context (op-assign path).
func combine(op token.Token, a, b taint, t types.Type) taint {
	return combine2(op, a, b, t, nil, nil)
}

// combine2 propagates taint through a binary operation. info/rhs, when
// available, let division and masking by a constant tighten the bound.
func combine2(op token.Token, a, b taint, t types.Type, info *types.Info, rhs ast.Expr) taint {
	out := joinTaint(a, b)
	out.pos = a.pos
	if a.level < b.level {
		out.why, out.pos = b.why, b.pos
	} else {
		out.why = a.why
	}
	switch op {
	case token.ADD:
		out.hi = satAdd(a.hi, b.hi)
	case token.SUB:
		if !isSignedType(t) {
			// Unsigned subtraction wraps: the full type range.
			out.hi = maxMag(t)
			out.neg = false
		} else {
			out.hi = satAdd(a.hi, b.hi)
			out.neg = a.neg || b.hi > 0
		}
	case token.MUL:
		out.hi = satMul(a.hi, b.hi)
	case token.QUO:
		out.hi = a.hi
		if b.level == taintClean && !b.neg && b.hi > 1 {
			out.hi = a.hi / b.hi
		}
	case token.REM:
		out.hi = a.hi
		out.neg = a.neg
		if b.level == taintClean && b.hi > 0 {
			out.hi = b.hi - 1
			if out.level > taintBounded {
				out.level = taintBounded
			}
		}
	case token.AND:
		// Masking with a clean non-negative mask bounds the result.
		if b.level == taintClean && !b.neg {
			out.hi = b.hi
			out.neg = false
			if out.level > taintBounded {
				out.level = taintBounded
			}
		} else if a.level == taintClean && !a.neg {
			out.hi = a.hi
			out.neg = false
			if out.level > taintBounded {
				out.level = taintBounded
			}
		}
	case token.AND_NOT:
		out.hi = a.hi
		out.neg = a.neg
	case token.OR, token.XOR:
		out.hi = roundUpPow2(maxU64(a.hi, b.hi))
		out.neg = a.neg || b.neg || (op == token.XOR && isSignedType(t))
	case token.SHL:
		if c, ok := constIntOf(info, rhs); ok && c >= 0 && c < 64 {
			out.hi = satMul(a.hi, 1<<uint(c))
		} else {
			out.hi = maxMag(t)
		}
		out.neg = a.neg
	case token.SHR:
		out.hi = a.hi
		if c, ok := constIntOf(info, rhs); ok && c >= 0 && c < 64 {
			out.hi = a.hi >> uint(c)
		}
		out.neg = a.neg
	default:
		// Comparisons and logical ops produce booleans.
		return taint{}
	}
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func roundUpPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	out := uint64(1)
	for out <= v/2 {
		out *= 2
	}
	if out*2-1 < v {
		return math.MaxUint64
	}
	return out*2 - 1
}

func constIntOf(info *types.Info, e ast.Expr) (int64, bool) {
	if info == nil || e == nil {
		return 0, false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// evalCall handles conversions, bounding builtins, the encoding/binary
// sources, and callee TaintResults facts.
func (sc *taintScanner) evalCall(call *ast.CallExpr, resIdx int, env map[*Value]taint) taint {
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		a := sc.eval(call.Args[0], env)
		return convTaint(a, sc.info.TypeOf(call.Args[0]), tv.Type)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := sc.info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "len", "cap":
				return taint{hi: math.MaxInt64}
			case "min":
				return sc.foldArgs(call, env, minTaint)
			case "max":
				return sc.foldArgs(call, env, maxTaint)
			}
			return taint{}
		}
	}
	if fn := staticCallee(sc.info, call); fn != nil {
		if t, ok := binarySource(sc.pf.fset, fn, resIdx, call.Pos()); ok {
			return t
		}
		if s := sc.pf.SummaryOf(fn); s != nil {
			want := resIdx
			if want < 0 {
				want = 0
			}
			for _, spec := range s.TaintResults {
				if spec.Result != want {
					continue
				}
				level := taintBounded
				if spec.Level == "wild" {
					level = taintWild
				}
				why := spec.Why
				if why == "" {
					why = "the untrusted result of " + funcDisplay(fn, sc.pf.pkg)
				}
				return taint{level: level, hi: spec.Hi, neg: spec.Neg, local: true, why: why, pos: call.Pos()}
			}
		}
	}
	return cleanOf(sc.info.TypeOf(call))
}

func (sc *taintScanner) foldArgs(call *ast.CallExpr, env map[*Value]taint, f func(a, b taint) taint) taint {
	var out taint
	for i, arg := range call.Args {
		t := sc.eval(arg, env)
		if i == 0 {
			out = t
		} else {
			out = f(out, t)
		}
	}
	return out
}

// minTaint: min(x, cap) is bounded by its cleanest, smallest operand.
func minTaint(a, b taint) taint {
	out := joinTaint(a, b)
	out.hi = a.hi
	if b.hi < out.hi {
		out.hi = b.hi
	}
	if a.level == taintClean || b.level == taintClean {
		if out.level > taintBounded {
			out.level = taintBounded
		}
	}
	return out
}

// maxTaint: max(x, 0) clears negativity.
func maxTaint(a, b taint) taint {
	out := joinTaint(a, b)
	out.neg = a.neg && b.neg
	return out
}

// binarySource recognizes the encoding/binary decode entry points.
func binarySource(fset *token.FileSet, fn *types.Func, resIdx int, pos token.Pos) (taint, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return taint{}, false
	}
	at := shortPos(fset, pos)
	if resIdx < 0 {
		resIdx = 0
	}
	wild := func(bits int, hi uint64, neg bool) taint {
		return taint{
			level: taintWild, hi: hi, neg: neg, local: true, pos: pos,
			why: fmt.Sprintf("a %d-bit value decoded from untrusted bytes at %s", bits, at),
		}
	}
	varlen := func(name string) taint {
		return taint{
			level: taintBounded, hi: 10, neg: true, local: true, pos: pos,
			why: fmt.Sprintf("the byte count of %s at %s", name, at),
		}
	}
	switch fn.Name() {
	case "Uint16":
		return wild(16, math.MaxUint16, false), true
	case "Uint32":
		return wild(32, math.MaxUint32, false), true
	case "Uint64":
		return wild(64, math.MaxUint64, false), true
	case "Uvarint", "ReadUvarint":
		if resIdx == 0 {
			return wild(64, math.MaxUint64, false), true
		}
		if fn.Name() == "Uvarint" {
			return varlen("binary.Uvarint"), true
		}
	case "Varint", "ReadVarint":
		if resIdx == 0 {
			return wild(64, math.MaxUint64, true), true
		}
		if fn.Name() == "Varint" {
			return varlen("binary.Varint"), true
		}
	}
	return taint{}, false
}

// convTaint models an integer conversion. Widening keeps the taint
// (reinterpreting a possible negative as unsigned saturates the bound);
// same-width conversions reinterpret in place — deliberately NOT a sink,
// the codebase's typed-ID casts are same-width — and narrowing clamps to
// the target (the sink check itself happens in the walker, on the
// operand's pre-conversion taint).
func convTaint(a taint, src, dst types.Type) taint {
	if !isIntType(dst) {
		return taint{}
	}
	if !isIntType(src) {
		return cleanOf(dst)
	}
	dw, sw := intWidth(dst), intWidth(src)
	dmax := maxMag(dst)
	switch {
	case dw > sw:
		if a.neg && !isSignedType(dst) {
			a.hi = dmax
			a.neg = false
		}
	case dw == sw:
		if isSignedType(src) != isSignedType(dst) {
			if !isSignedType(dst) {
				if a.neg {
					a.hi = dmax
					a.neg = false
				}
			} else if a.hi > dmax {
				a.hi = dmax
				a.neg = true
			}
		}
	default: // narrowing: truncation can land anywhere in the target
		if a.hi > dmax || a.neg {
			a.hi = dmax
			a.neg = isSignedType(dst)
		}
	}
	return a
}

// ------------------------------------------------------------------
// Structural walker: sanitizer refinement + sink detection

// walker replays the function body in textual order. env overrides the
// base taint of Values refined by dominating checks; refinements are
// keyed to immutable SSA Values, so once established on the fallthrough
// path they hold for the rest of the enclosing branch body. Branch
// bodies get a copy of env, so branch-local refinements cannot leak.
type walker struct {
	sc  *taintScanner
	env map[*Value]taint
}

func copyEnv(env map[*Value]taint) map[*Value]taint {
	out := make(map[*Value]taint, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (w *walker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *walker) inEnv(env map[*Value]taint, f func()) {
	saved := w.env
	w.env = env
	f()
	w.env = saved
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.checkSinks(s.Cond)
		trueRefs := w.sc.parseCond(s.Cond, true, w.env)
		falseRefs := w.sc.parseCond(s.Cond, false, w.env)
		thenEnv := copyEnv(w.env)
		applyRefs(w.sc, thenEnv, trueRefs)
		w.inEnv(thenEnv, func() { w.walkStmts(s.Body.List) })
		if s.Else != nil {
			elseEnv := copyEnv(w.env)
			applyRefs(w.sc, elseEnv, falseRefs)
			w.inEnv(elseEnv, func() { w.walkStmt(s.Else) })
			if terminates(s.Else) {
				applyRefs(w.sc, w.env, trueRefs)
			}
		}
		if terminates(s.Body) {
			applyRefs(w.sc, w.env, falseRefs)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		var falseRefs []refinement
		bodyEnv := copyEnv(w.env)
		if s.Cond != nil {
			w.checkSinks(s.Cond)
			applyRefs(w.sc, bodyEnv, w.sc.parseCond(s.Cond, true, w.env))
			falseRefs = w.sc.parseCond(s.Cond, false, w.env)
		}
		w.inEnv(bodyEnv, func() {
			w.walkStmts(s.Body.List)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
		})
		if s.Cond != nil && !hasLoopBreak(s.Body) {
			applyRefs(w.sc, w.env, falseRefs)
		}
	case *ast.RangeStmt:
		w.checkSinks(s.X)
		bodyEnv := copyEnv(w.env)
		w.inEnv(bodyEnv, func() {
			w.applyDefs(s)
			w.walkStmts(s.Body.List)
		})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.checkSinks(s.Tag)
		}
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				w.checkSinks(e)
			}
			caseEnv := copyEnv(w.env)
			w.inEnv(caseEnv, func() { w.walkStmts(cc.Body) })
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseEnv := copyEnv(w.env)
			w.inEnv(caseEnv, func() { w.walkStmts(cc.Body) })
		}
	case *ast.SelectStmt:
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			caseEnv := copyEnv(w.env)
			w.inEnv(caseEnv, func() {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkStmts(cc.Body)
			})
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.ReturnStmt:
		w.checkSinks(s)
		w.recordReturn(s)
	case *ast.DeferStmt:
		w.checkSinks(s.Call)
	case *ast.GoStmt:
		w.checkSinks(s.Call)
	case nil:
	default:
		w.checkSinks(s)
		w.applyDefs(s)
	}
}

// applyDefs recomputes the taint of every Value the statement defines
// under the current refined environment, so refinements flow through
// subsequent local definitions (need := 4 + n*12 after n was checked).
func (w *walker) applyDefs(s ast.Stmt) {
	ast.Inspect(s, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		v := w.sc.ssa.DefIdent[id]
		if v == nil {
			return true
		}
		w.env[v] = w.recomputeDef(v)
		return true
	})
}

func (w *walker) recomputeDef(v *Value) taint {
	switch v.Kind {
	case ValDef:
		if v.Prev != nil {
			prev := w.sc.taintOf(v.Prev, w.env, nil)
			var rhs taint
			switch v.Op {
			case token.INC, token.DEC:
				rhs = taint{hi: 1}
			default:
				rhs = w.sc.evalN(v.Expr, -1, w.env)
			}
			return combine(opAssignOp(v.Op), prev, rhs, v.Var.Type())
		}
		return w.sc.evalN(v.Expr, v.ResIdx, w.env)
	}
	return w.sc.base[v]
}

func (w *walker) recordReturn(s *ast.ReturnStmt) {
	sig, ok := w.sc.n.Obj.Type().(*types.Signature)
	if !ok || len(s.Results) != sig.Results().Len() {
		return // bare returns and tuple-forwarding returns are not modeled
	}
	for i, res := range s.Results {
		if !isIntType(sig.Results().At(i).Type()) {
			continue
		}
		t := w.sc.eval(res, w.env)
		if !t.tainted() || !t.local {
			continue
		}
		if old, ok := w.sc.resT[i]; ok {
			w.sc.resT[i] = joinTaint(old, t)
		} else {
			w.sc.resT[i] = t
		}
	}
}

// terminates reports whether the statement never falls through to the
// code after it (return, panic, break/continue/goto, or a block/if that
// ends that way on every path).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.ExprStmt:
		return isPanicCall(s.X)
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

// hasLoopBreak reports an unlabeled break that exits this loop.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// break inside a switch breaks the switch, not the loop.
			return false
		}
		return !found
	}
	ast.Inspect(body, visit)
	return found
}

// ------------------------------------------------------------------
// Sanitizer: condition parsing and refinement

// refinement upgrades one Value's taint on a branch.
type refinement struct {
	v *Value
	// toBounded demotes Wild to Bounded (checked against a run-time
	// quantity like len(blob)).
	toBounded bool
	// hasUpper/upper install a numeric magnitude bound.
	hasUpper bool
	upper    uint64
	// nonneg clears the may-be-negative bit.
	nonneg bool
}

func applyRefs(sc *taintScanner, env map[*Value]taint, refs []refinement) {
	for _, r := range refs {
		t := sc.taintOf(r.v, env, nil)
		if r.toBounded && t.level > taintBounded {
			t.level = taintBounded
		}
		if r.hasUpper && r.upper < t.hi {
			t.hi = r.upper
		}
		if r.nonneg {
			t.neg = false
		}
		env[r.v] = t
	}
}

// parseCond extracts the refinements the condition establishes on the
// given branch. Conjunctions refine on the true branch, disjunctions on
// the false branch; anything else contributes nothing.
func (sc *taintScanner) parseCond(cond ast.Expr, branch bool, env map[*Value]taint) []refinement {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return sc.parseCond(e.X, !branch, env)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if branch {
				return append(sc.parseCond(e.X, true, env), sc.parseCond(e.Y, true, env)...)
			}
		case token.LOR:
			if !branch {
				return append(sc.parseCond(e.X, false, env), sc.parseCond(e.Y, false, env)...)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return sc.parseCmp(e, branch, env)
		}
	}
	return nil
}

// parseCmp normalizes a comparison taken on the given branch to the
// canonical form "lhs ≤/< rhs" and derives upper-bound refinements on
// the lhs roots plus non-negativity refinements on the rhs roots.
func (sc *taintScanner) parseCmp(e *ast.BinaryExpr, branch bool, env map[*Value]taint) []refinement {
	op := e.Op
	if !branch {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		}
	}
	x, y := e.X, e.Y
	var lhs, rhs ast.Expr
	strict := false
	switch op {
	case token.LSS:
		lhs, rhs, strict = x, y, true
	case token.LEQ:
		lhs, rhs = x, y
	case token.GTR:
		lhs, rhs, strict = y, x, true
	case token.GEQ:
		lhs, rhs = y, x
	case token.EQL:
		return sc.parseEq(x, y, env)
	default: // NEQ establishes nothing usable
		return nil
	}
	var refs []refinement
	refs = append(refs, sc.upperRefs(lhs, rhs, strict, e.Pos(), env)...)
	refs = append(refs, sc.lowerRefs(rhs, lhs, strict, env)...)
	return refs
}

// parseEq handles equality against a constant: the value is exactly c.
func (sc *taintScanner) parseEq(x, y ast.Expr, env map[*Value]taint) []refinement {
	e, c := x, y
	cv, ok := constIntOf(sc.info, c)
	if !ok {
		e, c = y, x
		if cv, ok = constIntOf(sc.info, c); !ok {
			return nil
		}
	}
	mag := uint64(cv)
	if cv < 0 {
		mag = uint64(-cv)
	}
	var refs []refinement
	for _, root := range sc.extractRoots(e, 1, 0, 0, true, token.NoPos, env) {
		refs = append(refs, refinement{v: root.v, toBounded: true, hasUpper: true, upper: mag, nonneg: cv >= 0})
	}
	return refs
}

// upperRefs refines the roots of lhs given "lhs ≤ rhs" (or < when
// strict). The bound side must be strictly less tainted than the value
// being checked — comparing two attacker-chosen quantities proves
// nothing.
func (sc *taintScanner) upperRefs(lhs, rhs ast.Expr, strict bool, pos token.Pos, env map[*Value]taint) []refinement {
	lt := sc.eval(lhs, env)
	if !lt.tainted() {
		return nil
	}
	var bound uint64
	hasBound := false
	toBounded := false
	if c, ok := constIntOf(sc.info, rhs); ok {
		if c < 0 || (strict && c == 0) {
			return nil
		}
		bound = uint64(c)
		if strict {
			bound--
		}
		hasBound = true
		toBounded = true
	} else {
		rt := sc.eval(rhs, env)
		if rt.level >= lt.level {
			return nil
		}
		toBounded = true
		if rt.level == taintBounded && rt.hi > 0 && rt.hi < math.MaxInt64 {
			bound = rt.hi
			if strict {
				bound--
			}
			hasBound = true
		}
	}
	var refs []refinement
	for _, root := range sc.extractRoots(lhs, 1, 0, 0, true, pos, env) {
		r := refinement{v: root.v, toBounded: toBounded}
		if hasBound {
			if b, ok := rootBound(bound, root.mulA, root.addC); ok {
				r.hasUpper = true
				r.upper = b
			}
		}
		refs = append(refs, r)
	}
	return refs
}

// lowerRefs clears negativity on the roots of e given "e ≥ lo" when the
// implied lower bound is non-negative (if id < 0 { return } — the
// fallthrough path has id ≥ 0).
func (sc *taintScanner) lowerRefs(e, lo ast.Expr, strict bool, env map[*Value]taint) []refinement {
	c, ok := constIntOf(sc.info, lo)
	if !ok {
		return nil
	}
	lb := c
	if strict {
		lb++
	}
	var refs []refinement
	for _, root := range sc.extractRoots(e, 1, 0, 0, true, token.NoPos, env) {
		// e = mulA*root + addC ≥ lb with mulA > 0 → root ≥ (lb-addC)/mulA.
		if root.mulA > 0 && lb-root.addC >= 0 {
			refs = append(refs, refinement{v: root.v, nonneg: true})
		}
	}
	return refs
}

// rootBound solves mulA*root + addC ≤ bound for root's magnitude.
func rootBound(bound uint64, mulA, addC int64) (uint64, bool) {
	if mulA <= 0 {
		return 0, false
	}
	b := int64(math.MaxInt64)
	if bound < math.MaxInt64 {
		b = int64(bound)
	}
	num := b - addC
	if num < 0 {
		return 0, false
	}
	return uint64(num / mulA), true
}

// rootRef ties a Value to its affine relation with the guarded
// expression: expr = mulA*value + addC (monotone, mulA > 0).
type rootRef struct {
	v    *Value
	mulA int64
	addC int64
}

// extractRoots walks a guarded expression down to the Values it is a
// monotone affine function of, descending through local definitions
// (need := 4 + n*12 reaches n). Arithmetic that can overflow the guard
// expression's weakest-platform width invalidates the check: descent
// continues note-only (ok=false), recording why on each would-be root so
// the eventual diagnostic explains the ignored bounds check.
func (sc *taintScanner) extractRoots(e ast.Expr, mulA, addC int64, depth int, ok bool, guardPos token.Pos, env map[*Value]taint) []rootRef {
	if depth > 8 || mulA <= 0 {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := sc.ssa.UseDef[e]
		if v == nil {
			return nil
		}
		var roots []rootRef
		if ok {
			roots = append(roots, rootRef{v: v, mulA: mulA, addC: addC})
		} else if guardPos.IsValid() {
			if _, dup := sc.notes[v]; !dup {
				sc.notes[v] = fmt.Sprintf("the bounds check at %s is ignored: the guard arithmetic may overflow on 32-bit platforms",
					shortPos(sc.pf.fset, guardPos))
			}
		}
		if v.Kind == ValDef && v.Prev == nil && v.Expr != nil {
			roots = append(roots, sc.extractRoots(v.Expr, mulA, addC, depth+1, ok, guardPos, env)...)
		}
		return roots
	case *ast.CallExpr:
		if tv, tok := sc.info.Types[e.Fun]; tok && tv.IsType() && len(e.Args) == 1 {
			return sc.extractRoots(e.Args[0], mulA, addC, depth+1, ok, guardPos, env)
		}
		return nil
	case *ast.BinaryExpr:
		stepOK := ok && sc.guardFits(e, env)
		switch e.Op {
		case token.ADD:
			if k, isC := constIntOf(sc.info, e.Y); isC {
				return sc.extractRoots(e.X, mulA, addC+mulA*k, depth+1, stepOK, guardPos, env)
			}
			if k, isC := constIntOf(sc.info, e.X); isC {
				return sc.extractRoots(e.Y, mulA, addC+mulA*k, depth+1, stepOK, guardPos, env)
			}
		case token.SUB:
			if k, isC := constIntOf(sc.info, e.Y); isC {
				return sc.extractRoots(e.X, mulA, addC-mulA*k, depth+1, stepOK, guardPos, env)
			}
		case token.MUL:
			if k, isC := constIntOf(sc.info, e.Y); isC && k > 0 {
				return sc.extractRoots(e.X, mulA*k, addC, depth+1, stepOK, guardPos, env)
			}
			if k, isC := constIntOf(sc.info, e.X); isC && k > 0 {
				return sc.extractRoots(e.Y, mulA*k, addC, depth+1, stepOK, guardPos, env)
			}
		}
	}
	return nil
}

// guardFits reports whether the guard arithmetic provably cannot
// overflow the expression's weakest-platform width.
func (sc *taintScanner) guardFits(e ast.Expr, env map[*Value]taint) bool {
	t := sc.eval(e, env)
	return t.hi <= guardMax(sc.info.TypeOf(e))
}

// ------------------------------------------------------------------
// Sinks

const (
	sinkAlloc  = "alloc"
	sinkIndex  = "index"
	sinkNarrow = "narrow"
)

// checkSinks scans one statement or expression for taint sinks under the
// walker's current environment.
func (w *walker) checkSinks(n ast.Node) {
	sc := w.sc
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.checkCallSinks(c)
		case *ast.IndexExpr:
			if tv, ok := sc.info.Types[c.Index]; !ok || tv.IsType() {
				return true // generic instantiation, not an index
			}
			if !indexableType(sc.info.TypeOf(c.X)) || !isIntType(sc.info.TypeOf(c.Index)) {
				return true
			}
			w.checkSinkExpr(c.Index, sinkIndex, 0, "index")
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{c.Low, c.High, c.Max} {
				if b != nil && isIntType(sc.info.TypeOf(b)) {
					w.checkSinkExpr(b, sinkIndex, 0, "slice bound")
				}
			}
		}
		return true
	})
}

// indexableType reports a type whose indexing can panic on a bad index
// (slices, arrays, strings — map keys are unconstrained).
func indexableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func (w *walker) checkCallSinks(call *ast.CallExpr) {
	sc := w.sc
	// Narrowing integer conversion.
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, sc.info.TypeOf(call.Args[0])
		if isIntType(dst) && isIntType(src) && intWidth(dst) < intWidth(src) {
			t := sc.eval(call.Args[0], w.env)
			if t.tainted() && t.hi > maxMag(dst) {
				w.flag(call.Args[0], t, sinkNarrow, maxMag(dst),
					fmt.Sprintf("conversion to %s may truncate %s (magnitude up to %d)",
						types.TypeString(dst, types.RelativeTo(sc.pf.pkg)), t.why, t.hi))
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := sc.info.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "make" {
				for _, arg := range call.Args[1:] {
					if isIntType(sc.info.TypeOf(arg)) {
						w.checkSinkExpr(arg, sinkAlloc, 0, "make size")
					}
				}
			}
			return
		}
	}
	// Callee with exported sink parameters: the call site is the sink.
	fn := staticCallee(sc.info, call)
	if fn == nil || call.Ellipsis.IsValid() {
		return
	}
	s := sc.pf.SummaryOf(fn)
	if s == nil || len(s.SinkParams) == 0 {
		return
	}
	for _, sp := range s.SinkParams {
		if sp.Param < 0 || sp.Param >= len(call.Args) {
			continue
		}
		arg := call.Args[sp.Param]
		t := sc.eval(arg, w.env)
		bad := false
		switch sp.Kind {
		case sinkNarrow:
			bad = t.tainted() && t.hi > sp.Hi
		default:
			bad = t.level == taintWild || (t.tainted() && t.neg)
		}
		if bad {
			w.flag(arg, t, sp.Kind, sp.Hi,
				fmt.Sprintf("argument %d of %s flows from %s to an unvalidated %s sink (%s)",
					sp.Param, funcDisplay(fn, sc.pf.pkg), t.why, sp.Kind, sp.Why))
		}
	}
}

// checkSinkExpr applies the alloc/index sink criteria to one operand:
// Wild taint, or any taint that may still be negative.
func (w *walker) checkSinkExpr(e ast.Expr, kind string, hi uint64, what string) {
	t := w.sc.eval(e, w.env)
	if !t.tainted() {
		return
	}
	switch {
	case t.level == taintWild:
		w.flag(e, t, kind, hi, fmt.Sprintf("%s derives from %s without a dominating bounds check", what, t.why))
	case t.neg:
		w.flag(e, t, kind, hi, fmt.Sprintf("%s from %s may be negative (no lower-bound check)", what, t.why))
	}
}

// flag records one sink hit: a local finding when the taint originates
// in a visible decode, and/or an exported SinkParams fact when it
// derives from the function's own parameters. The //rstknn:validated
// directive suppresses both.
func (w *walker) flag(e ast.Expr, t taint, kind string, hi uint64, msg string) {
	sc := w.sc
	pos := e.Pos()
	if sc.dirs.allows(validatedMark, sc.pf.fset.Position(pos)) {
		sc.out.validated++
		return
	}
	if t.local {
		if v := sc.ssa.ValueOf(e); v != nil {
			if note := sc.notes[v]; note != "" {
				msg += "; " + note
			}
		}
		sc.out.findings = append(sc.out.findings, taintFinding{pos: pos, msg: msg})
	}
	if t.params != 0 {
		for p := 0; p < 64; p++ {
			if t.params&(1<<uint(p)) == 0 {
				continue
			}
			key := fmt.Sprintf("%d/%s", p, kind)
			if sc.sinkSeen[key] {
				continue
			}
			sc.sinkSeen[key] = true
			sc.out.sinks = append(sc.out.sinks, SinkSpec{
				Param: p,
				Kind:  kind,
				Hi:    hi,
				Why:   fmt.Sprintf("%s at %s", kind, shortPos(sc.pf.fset, pos)),
			})
		}
	}
}

// finish assembles the exported facts in deterministic order.
func (sc *taintScanner) finish() {
	idxs := make([]int, 0, len(sc.resT))
	for i := range sc.resT {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		t := sc.resT[i]
		level := "bounded"
		if t.level == taintWild {
			level = "wild"
		}
		sc.out.results = append(sc.out.results, TaintSpec{
			Result: i, Level: level, Hi: t.hi, Neg: t.neg, Why: t.why,
		})
	}
	sort.Slice(sc.out.sinks, func(i, j int) bool {
		a, b := sc.out.sinks[i], sc.out.sinks[j]
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		return a.Kind < b.Kind
	})
}

// ------------------------------------------------------------------
// Package fixed point

// fixTaint runs the taint scan over every function to a fixed point on
// the exported facts, so result taint and sink parameters propagate
// through in-package helpers (cross-package propagation rides the facts
// of the import closure, already loaded in pf.imported).
func (pf *PkgFacts) fixTaint(info *types.Info, dirs *directiveIndex) {
	nodes := pf.Nodes()
	for round := 0; round < 10; round++ {
		changed := false
		for _, n := range nodes {
			out := scanUntrusted(pf, info, n, dirs)
			if !taintSpecsEqual(n.Summary.TaintResults, out.results) ||
				!sinkSpecsEqual(n.Summary.SinkParams, out.sinks) {
				n.Summary.TaintResults = out.results
				n.Summary.SinkParams = out.sinks
				changed = true
			}
			n.taint = out
		}
		if !changed {
			return
		}
	}
}

func taintSpecsEqual(a, b []TaintSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sinkSpecsEqual(a, b []SinkSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
