package analysis

// pinsafe: the reader side of the epoch-based reclamation protocol
// (internal/storage.Reclaimer) is followed on every path.
//
// The copy-on-write engine is only memory-safe if readers obey three
// rules the compiler cannot check:
//
//  1. every Pin is paired with a Release on ALL paths out of the
//     function — early returns, error branches, and panicking branches
//     included (a leaked pin stalls the min-pinned-epoch frontier
//     forever, so retired nodes are never freed);
//  2. the atomic snapshot-pointer load is dominated by a Pin (loading
//     first is the classic epoch-reclamation use-after-free: the
//     snapshot can be retired and recycled between the load and the
//     pin);
//  3. the pinned state is not used after Release (the release ends the
//     grace period; nodes reachable from the state may be freed and
//     their slots recycled mid-traversal).
//
// Two pin shapes are recognized, by the same name-based matching the
// other analyzers use (so fixtures can impersonate the real types):
// the token form `tok := r.Pin()` on a type named Reclaimer, released
// by `r.Release(tok)`, and the closure form `st, release := e.pin()` —
// a method named pin/Pin whose last result is a func() — released by
// calling the closure. `defer release()` / `defer r.Release(tok)` is
// the idiomatic spelling and counts as a release on every subsequent
// exit of the path that executed the defer (the exit-edge action model
// of cfg.go). A pin whose token or release closure escapes — returned,
// assigned away, or passed to another function — transfers the release
// obligation to the receiver and is not tracked further; Engine.pin
// itself, which mints the closure it returns, is the canonical escape.
//
// The analysis is a forward dataflow over the function's CFG: per pin
// site a may-be-unreleased bit (OR join — a leak on any path is a
// leak) and a may-be-released bit (OR join — a use after release on
// any path is a bug), plus the must-pinned depth (min join — a load is
// dominated only if a pin is held on every path reaching it).
// Function literals are skipped: their bodies run at another time, on
// another goroutine, or never.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PinSafe checks the Pin/Release discipline of epoch-based reclamation.
var PinSafe = &Analyzer{
	Name: "pinsafe",
	Doc: "require Release on every path after Pin, an atomic snapshot load dominated " +
		"by Pin, and no use of the pinned state after Release",
	Run: runPinSafe,
}

func runPinSafe(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPinSafe(pass, fd)
		}
	}
	return nil
}

// ------------------------------------------------------------------
// Matching

// pinTokenCall reports a token-form pin: a zero-arg method named Pin on
// a type named Reclaimer with a single non-func result.
func pinTokenCall(info *types.Info, call *ast.CallExpr) bool {
	named, method, ok := methodCall(info, call)
	if !ok || method != "Pin" || named.Obj().Name() != "Reclaimer" || len(call.Args) != 0 {
		return false
	}
	_, isSig := info.TypeOf(call).(*types.Signature)
	return !isSig
}

// pinClosureCall reports a closure-form pin: a method named pin or Pin
// whose last result is a niladic func(), carrying the release
// obligation.
func pinClosureCall(info *types.Info, call *ast.CallExpr) bool {
	_, method, ok := methodCall(info, call)
	if !ok || (method != "pin" && method != "Pin") || len(call.Args) != 0 {
		return false
	}
	tup, ok := info.TypeOf(call).(*types.Tuple)
	if !ok || tup.Len() < 2 {
		return false
	}
	sig, ok := tup.At(tup.Len() - 1).Type().Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// releaseTokenArg returns the token expression of a Reclaimer.Release
// call, or nil.
func releaseTokenArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	named, method, ok := methodCall(info, call)
	if !ok || method != "Release" || named.Obj().Name() != "Reclaimer" || len(call.Args) != 1 {
		return nil
	}
	return call.Args[0]
}

// atomicPointerLoad reports a Load on a sync/atomic.Pointer[T] — the
// snapshot-pointer read rule 2 protects.
func atomicPointerLoad(info *types.Info, call *ast.CallExpr) bool {
	named, method, ok := methodCall(info, call)
	if !ok || method != "Load" || len(call.Args) != 0 {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// ------------------------------------------------------------------
// Variable association (flow-insensitive prescan)

// pinVars associates the function's variables with the pin sites they
// came from. Keys are pin-call positions.
type pinVars struct {
	token   map[*types.Var]token.Pos   // tok := r.Pin()
	release map[*types.Var]token.Pos   // _, release := e.pin()
	state   map[*types.Var]token.Pos   // st, _ := e.pin()
	lits    map[*ast.FuncLit]token.Pos // func() { r.Release(tok) }
}

func collectPinVars(info *types.Info, fd *ast.FuncDecl) *pinVars {
	v := &pinVars{
		token:   make(map[*types.Var]token.Pos),
		release: make(map[*types.Var]token.Pos),
		state:   make(map[*types.Var]token.Pos),
		lits:    make(map[*ast.FuncLit]token.Pos),
	}
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if d, ok := info.Defs[id].(*types.Var); ok {
			return d
		}
		u, _ := info.Uses[id].(*types.Var)
		return u
	}
	// Pass 1: pin calls and the variables bound to their results.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pinTokenCall(info, call):
			if len(as.Lhs) == 1 {
				if tv := varOf(as.Lhs[0]); tv != nil {
					v.token[tv] = call.Pos()
				}
			}
		case pinClosureCall(info, call):
			for i, lhs := range as.Lhs {
				lv := varOf(lhs)
				if lv == nil {
					continue
				}
				if i == len(as.Lhs)-1 {
					v.release[lv] = call.Pos()
				} else {
					v.state[lv] = call.Pos()
				}
			}
		}
		return true
	})
	// Pass 2: function literals that release a tracked token carry that
	// pin's release obligation wherever the literal goes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if arg := releaseTokenArg(info, call); arg != nil {
				if tv := varOf(arg); tv != nil {
					if p, tracked := v.token[tv]; tracked {
						v.lits[lit] = p
					}
				}
			}
			return true
		})
		return true
	})
	return v
}

// ------------------------------------------------------------------
// Dataflow

// pinBits is the per-pin lattice: both bits are may-bits (OR join).
type pinBits struct {
	// held: some path reaches here with no release arranged.
	held bool
	// released: some path has already explicitly released.
	released bool
}

// pinState is the abstract state of the pinsafe analysis.
type pinState struct {
	pins map[token.Pos]pinBits
	// depth is the must-pinned depth: the minimum number of pins held
	// over every path reaching this point.
	depth int
}

func pinsafeFlow(info *types.Info, vars *pinVars) *Flow[pinState] {
	return &Flow[pinState]{
		Entry: pinState{pins: map[token.Pos]pinBits{}},
		Copy: func(s pinState) pinState {
			out := pinState{pins: make(map[token.Pos]pinBits, len(s.pins)), depth: s.depth}
			for k, v := range s.pins {
				out.pins[k] = v
			}
			return out
		},
		Join: func(a, b pinState) pinState {
			for k, bv := range b.pins {
				av := a.pins[k]
				a.pins[k] = pinBits{held: av.held || bv.held, released: av.released || bv.released}
			}
			if b.depth < a.depth {
				a.depth = b.depth
			}
			return a
		},
		Equal: func(a, b pinState) bool {
			if a.depth != b.depth || len(a.pins) != len(b.pins) {
				return false
			}
			for k, av := range a.pins {
				if b.pins[k] != av {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, s pinState) pinState {
			return pinStmtScan(info, vars, n, s, nil)
		},
	}
}

// pinStmtScan applies one node's effect to the state, invoking report
// (when non-nil) for in-place findings. It is both the transfer
// function (report == nil, during Solve) and the diagnostic pass
// (during Walk), so states and reports cannot drift apart.
func pinStmtScan(info *types.Info, vars *pinVars, n ast.Node, s pinState, report func(pos token.Pos, format string, args ...any)) pinState {
	releasePin := func(p token.Pos, explicit bool) {
		b := s.pins[p]
		b.held = false
		if explicit {
			b.released = true
		}
		s.pins[p] = b
	}
	escapePin := func(p token.Pos) { delete(s.pins, p) }

	// releaseOf classifies a call as a release of a tracked pin:
	// r.Release(tok) or release().
	releaseOf := func(call *ast.CallExpr) (token.Pos, bool) {
		if arg := releaseTokenArg(info, call); arg != nil {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if tv, ok := info.Uses[id].(*types.Var); ok {
					if p, tracked := vars.token[tv]; tracked {
						return p, true
					}
				}
			}
			return token.NoPos, false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if rv, ok := info.Uses[id].(*types.Var); ok {
				if p, tracked := vars.release[rv]; tracked {
					return p, true
				}
			}
		}
		return token.NoPos, false
	}

	// Deferred releases are exit-edge actions: the pin is considered
	// released on every exit this path can reach, without setting the
	// released bit (the deferred call runs after all uses) and without
	// lowering the pinned depth (the pin stays held until exit).
	if d, ok := n.(*ast.DeferStmt); ok {
		if p, ok := releaseOf(d.Call); ok {
			releasePin(p, false)
			return s
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			if p, tracked := vars.lits[lit]; tracked {
				releasePin(p, false)
				return s
			}
		}
		// Another deferred call swallowing the token or closure takes
		// over the obligation.
		for _, arg := range d.Call.Args {
			if p, ok := pinVarUse(info, vars, arg); ok {
				escapePin(p)
			}
		}
		return s
	}

	// Everything else — ReturnStmt included: returning the token or the
	// release closure is an ident/literal use below, which escapes the
	// obligation to the caller.
	inspectOwn(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// A literal that releases a tracked pin, bound or passed
			// anywhere, escapes the obligation; every literal's body
			// runs at another time and is not scanned here.
			if p, tracked := vars.lits[m]; tracked {
				escapePin(p)
			}
			return false
		case *ast.CallExpr:
			switch {
			case pinTokenCall(info, m), pinClosureCall(info, m):
				if _, isStmt := n.(*ast.ExprStmt); isStmt && ast.Unparen(n.(*ast.ExprStmt).X) == m {
					if report != nil {
						report(m.Pos(), "result of Pin is discarded; the pin can never be released")
					}
				} else {
					s.pins[m.Pos()] = pinBits{held: true}
					s.depth++
				}
				return false
			default:
				if p, ok := releaseOf(m); ok {
					releasePin(p, true)
					if s.depth > 0 {
						s.depth--
					}
					return false
				}
				if atomicPointerLoad(info, m) && s.depth == 0 && report != nil {
					report(m.Pos(), "atomic snapshot-pointer load is not dominated by Pin; pin before loading the state")
				}
			}
		case *ast.Ident:
			v, ok := info.Uses[m].(*types.Var)
			if !ok {
				return true
			}
			if p, tracked := vars.state[v]; tracked {
				if s.pins[p].released && report != nil {
					report(m.Pos(), "%s is used after Release; the pinned snapshot may already be reclaimed", v.Name())
				}
				return true
			}
			// A token or closure referenced outside a release call
			// escapes: stored, compared, passed along — the obligation
			// moves with it.
			if p, tracked := vars.token[v]; tracked {
				escapePin(p)
			}
			if p, tracked := vars.release[v]; tracked {
				escapePin(p)
			}
		}
		return true
	})
	return s
}

// pinVarUse reports whether e is a use of a tracked token or release
// variable, returning the pin it belongs to.
func pinVarUse(info *types.Info, vars *pinVars, e ast.Expr) (token.Pos, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return token.NoPos, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return token.NoPos, false
	}
	if p, tracked := vars.token[v]; tracked {
		return p, true
	}
	if p, tracked := vars.release[v]; tracked {
		return p, true
	}
	return token.NoPos, false
}

// ------------------------------------------------------------------
// Per-function check

func checkPinSafe(pass *Pass, fd *ast.FuncDecl) {
	// Fast path: functions with no pins and no atomic pointer loads.
	interesting := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pinTokenCall(pass.TypesInfo, call) || pinClosureCall(pass.TypesInfo, call) ||
			atomicPointerLoad(pass.TypesInfo, call) {
			interesting = true
			return false
		}
		return true
	})
	if !interesting {
		return
	}

	vars := collectPinVars(pass.TypesInfo, fd)
	g := NewCFG(fd.Body)
	flow := pinsafeFlow(pass.TypesInfo, vars)
	sol := Solve(g, flow)

	// In-place findings: undominated loads, uses after release,
	// discarded pins.
	sol.Walk(func(n ast.Node, before pinState) {
		pinStmtScan(pass.TypesInfo, vars, n, before, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		})
	})

	// Exit leaks: a pin still held on any path into Exit.
	leaks := make(map[token.Pos]bool)
	sol.ExitStates(func(s pinState) {
		for pos, b := range s.pins {
			if b.held {
				leaks[pos] = true
			}
		}
	})
	ordered := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		ordered = append(ordered, pos)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, pos := range ordered {
		pass.Reportf(pos, "pin is not released on every path out of %s; release it (or defer the release) on early returns and error branches", fd.Name.Name)
	}
}
