package analysis

// The function-level dataflow engine. Summarize builds an intra-package
// call graph over the typed ASTs of one package, scans every function
// body for behavioral evidence (allocation sites, simulated-I/O calls,
// lock acquisitions, package-level writes, capacity-backed returns),
// and propagates the resulting properties to a fixed point across the
// call graph — consulting the FactStore of imported packages at every
// cross-package call, so the properties are transitive across the whole
// module (facts ride the unitchecker .vetx files, see facts.go).
//
// Three kinds of roots/annotations steer the analyzers built on top:
//
//	//rstknn:hotpath [reason]       (function doc comment)
//	    marks a hot-path root: hotalloc requires the function and
//	    everything statically reachable from it to be allocation-free.
//	//rstknn:allow hotalloc <why>   clears an allocation site — and the
//	    Allocates fact, so blessed warm-up growth does not taint callers.
//	//rstknn:allow sharedmut <why>  likewise for package-level writes.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// hotpathPrefix marks hot-path root functions in doc comments.
const hotpathPrefix = "rstknn:hotpath"

// allocSite is one piece of in-body allocation evidence.
type allocSite struct {
	pos token.Pos
	msg string
	// allowed records an //rstknn:allow hotalloc covering the site: the
	// site is still reported through Reportf (which counts the
	// suppression) but does not set the Allocates fact.
	allowed bool
}

// sharedWrite is one write to package-level state.
type sharedWrite struct {
	pos     token.Pos
	name    string
	allowed bool
}

// callSite is one statically resolved outgoing call.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// FuncNode is one function of the analyzed package in the call graph.
type FuncNode struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Summary *FuncSummary
	// Hot marks a //rstknn:hotpath root.
	Hot bool

	sites   []allocSite
	writes  []sharedWrite
	calls   []callSite
	proven  map[*types.Var]bool // locals with a capacity proof
	ioWhy   string
	ioEvid  bool
	lockEv  bool
	retsCap bool // every return is a capacity-backed slice

	// ssa caches the SSA-lite form for the taint scan (built once;
	// ssaTried distinguishes "not built yet" from "bodiless").
	ssa      *FuncSSA
	ssaTried bool
	// taint is the function's final taint-scan result (findings to
	// replay plus exported specs), set by fixTaint.
	taint *taintScan
}

// PkgFacts bundles one package's dataflow results with the facts of its
// import closure. One PkgFacts is computed per compilation unit and
// shared by every analyzer pass over it.
type PkgFacts struct {
	fset     *token.FileSet
	pkg      *types.Package
	imported *FactStore
	own      map[*types.Func]*FuncNode
}

// Node returns the package's call-graph node for fn (origin-normalized
// for generic instantiations), or nil for foreign functions.
func (pf *PkgFacts) Node(fn *types.Func) *FuncNode {
	if pf == nil || fn == nil {
		return nil
	}
	return pf.own[fn.Origin()]
}

// SummaryOf returns the effective summary of fn: the local call-graph
// node's for package functions, the imported fact for foreign ones, nil
// when nothing is known.
func (pf *PkgFacts) SummaryOf(fn *types.Func) *FuncSummary {
	if pf == nil || fn == nil {
		return nil
	}
	if n := pf.Node(fn); n != nil {
		return n.Summary
	}
	return pf.imported.LookupFunc(fn)
}

// HotRoots returns the package's //rstknn:hotpath root nodes in source
// order.
func (pf *PkgFacts) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, n := range pf.own {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	return roots
}

// Nodes returns every call-graph node in source order.
func (pf *PkgFacts) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(pf.own))
	for _, n := range pf.own {
		out = append(out, n)
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*FuncNode) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Decl.Pos() < ns[j-1].Decl.Pos(); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// ExportStore returns the facts to publish for this package: every
// imported fact (so facts flow transitively through the import graph)
// plus every interesting summary of the package itself.
func (pf *PkgFacts) ExportStore() *FactStore {
	out := NewFactStore()
	out.Merge(pf.imported)
	for fn, n := range pf.own {
		if n.Summary.interesting() {
			out.add(FuncKey(fn), n.Summary)
		}
	}
	return out
}

// AllocVerdict reports whether calling fn may allocate, with the reason:
// the local or imported summary when one exists, the stdlib assumption
// table otherwise. Unknown callees (no body, no fact — e.g. dynamic
// interface dispatch resolved to nothing) return false: the engine only
// reports what it can positively attribute.
func (pf *PkgFacts) AllocVerdict(fn *types.Func) (bool, string) {
	if s := pf.SummaryOf(fn); s != nil {
		if s.Allocates {
			why := s.AllocWhy
			if why == "" {
				why = "may allocate"
			}
			return true, why
		}
		return false, ""
	}
	return assumedAllocating(fn)
}

// IOVerdict mirrors AllocVerdict for simulated node/blob I/O.
func (pf *PkgFacts) IOVerdict(fn *types.Func) (bool, string) {
	if s := pf.SummaryOf(fn); s != nil && s.PerformsIO {
		why := s.IOWhy
		if why == "" {
			why = "performs simulated I/O"
		}
		return true, why
	}
	return false, ""
}

// capBacked reports whether fn's result carries a capacity proof.
func (pf *PkgFacts) capBacked(fn *types.Func) bool {
	if s := pf.SummaryOf(fn); s != nil {
		return s.CapBacked
	}
	return false
}

// ------------------------------------------------------------------
// Stdlib assumptions
//
// Standard-library packages are not analyzed for facts (the go command
// invokes the tool on them fact-only and they are far too big to be
// worth it), so hot-path calls into them use a fixed table: packages
// whose exported API routinely allocates (fmt and reflect above all —
// their mere argument passing boxes) are assumed allocating; everything
// else — math, sync/atomic, and friends — is assumed clean. The table
// is deliberately a deny-list: the engine flags what it can positively
// attribute and stays silent on the unknown.

var allocAssumedPkgs = map[string]bool{
	"bufio": true, "bytes": true, "encoding/binary": true,
	"encoding/json": true, "errors": true, "fmt": true, "io": true,
	"log": true, "os": true, "reflect": true, "regexp": true,
	"sort": true, "strconv": true, "strings": true, "time": true,
}

// allocAssumedExempt lists members of assumed-allocating packages that
// are known not to allocate. The binary.ByteOrder getters are pure
// loads (the zero-copy node views read every fixed-width field through
// them); the method key is package.MethodName, receiver type elided.
var allocAssumedExempt = map[string]bool{
	"sort.Search":            true,
	"encoding/binary.Uint16": true,
	"encoding/binary.Uint32": true,
	"encoding/binary.Uint64": true,
}

func assumedAllocating(fn *types.Func) (bool, string) {
	if fn == nil || fn.Pkg() == nil {
		return false, ""
	}
	path := fn.Pkg().Path()
	if allocAssumedExempt[path+"."+fn.Name()] {
		return false, ""
	}
	if allocAssumedPkgs[path] {
		return true, fmt.Sprintf("package %s is assumed allocating", path)
	}
	return false, ""
}

// ------------------------------------------------------------------
// Summarize

// Summarize computes the dataflow summary of one type-checked package.
// imported holds the facts of the package's import closure (nil for
// none — cross-package propagation is then disabled and only local
// evidence is seen).
func Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported *FactStore) *PkgFacts {
	if imported == nil {
		imported = NewFactStore()
	}
	pf := &PkgFacts{
		fset:     fset,
		pkg:      pkg,
		imported: imported,
		own:      make(map[*types.Func]*FuncNode),
	}
	dirs := indexDirectives(fset, files)

	// Pass 1: collect declarations.
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{
				Obj:     obj,
				Decl:    fd,
				Hot:     hasHotpathDirective(fd),
				Summary: &FuncSummary{Func: funcDisplay(obj, pkg)},
			}
			pf.own[obj] = node
		}
	}

	// Pass 2: per-function evidence (needs every decl known so local
	// provenness can consult in-package capacity providers; capacity
	// facts reach a fixed point in pass 3, so the site scan runs after).
	for _, n := range pf.own {
		collectCallsAndLocals(pf, n, info)
	}

	// Pass 3: capacity-backed fixed point, then the site scan that
	// depends on it, then the behavioral fixed point.
	pf.fixCapBacked(info)
	for _, n := range pf.own {
		scanSites(pf, n, info, dirs)
		scanBehavior(pf, n, info, dirs)
	}
	pf.fixBehavior()

	// Pass 4: the path-sensitive facts. Both run CFG dataflow per
	// function (see retirepub.go, lockorder.go) and consult the
	// behavioral facts fixed above.
	pf.fixLifecycle(info, dirs)
	pf.fixLockOrder(info)

	// Pass 5: SSA-lite taint. Runs last so untrustedlen's sources can
	// consult every behavioral fact already fixed above.
	pf.fixTaint(info, dirs)
	return pf
}

// hasHotpathDirective reports a //rstknn:hotpath doc-comment directive.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+hotpathPrefix)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// funcDisplay renders fn for diagnostics: Recv.Name / Name for local
// functions, the import path-qualified form for foreign ones.
func funcDisplay(fn *types.Func, from *types.Package) string {
	fn = fn.Origin()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			recv = named.Obj().Name() + "."
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		return fn.Pkg().Path() + "." + recv + fn.Name()
	}
	return recv + fn.Name()
}

// staticCallee resolves the called function of a call expression, or nil
// for builtins, conversions, func values, and interface dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			// Interface dispatch has no static callee.
			recv := sel.Recv()
			if types.IsInterface(recv) {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		// Package-qualified function (pkg.Fn).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// collectCallsAndLocals records the node's resolved outgoing calls and
// the raw assignment structure its capacity proofs are built from.
func collectCallsAndLocals(pf *PkgFacts, n *FuncNode, info *types.Info) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(info, call); fn != nil {
			n.calls = append(n.calls, callSite{pos: call.Pos(), callee: fn})
		}
		return true
	})
}

// ------------------------------------------------------------------
// Capacity proofs
//
// hotalloc accepts an append when the destination slice provably has
// reserved capacity or follows the amortized self-append idiom:
//
//   - x = append(x, ...) reuses (and amortizedly grows) x's backing;
//   - the slice originates from make([]T, 0, n), a three-index
//     reslice, a [:0] reslice, or a call to a CapBacked function (an
//     arena carve), tracked through chains of local assignments.

// provenExpr reports whether e carries a capacity proof. proven may be
// nil (no local tracking).
func provenExpr(pf *PkgFacts, info *types.Info, e ast.Expr, proven map[*types.Var]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return len(e.Args) == 3 // explicit capacity
				case "append":
					return len(e.Args) > 0 && provenExpr(pf, info, e.Args[0], proven)
				}
				return false
			}
		}
		if fn := staticCallee(info, e); fn != nil {
			return pf.capBacked(fn)
		}
	case *ast.SliceExpr:
		if e.Slice3 {
			return true
		}
		// x[:0] / x[0:0]: reuse of existing backing (amortized pattern).
		if e.High != nil {
			if tv, ok := info.Types[e.High]; ok && tv.Value != nil && tv.Value.String() == "0" {
				return true
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && proven != nil {
			return proven[v]
		}
	}
	return false
}

// buildProven computes the function's proven-local set: a variable is
// proven when every assignment to it is a proven expression or a
// self-append. The fixed point starts optimistic and only lowers, so
// chains (v2 := v1) and loops converge.
func buildProven(pf *PkgFacts, n *FuncNode, info *types.Info) map[*types.Var]bool {
	type assign struct {
		v   *types.Var
		rhs ast.Expr // nil marks an unanalyzable assignment (tuple, range, ...)
	}
	var assigns []assign
	seen := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil || !isSliceType(v.Type()) {
			return
		}
		seen[v] = true
		assigns = append(assigns, assign{v: v, rhs: rhs})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			} else {
				for _, l := range s.Lhs {
					record(l, nil)
				}
			}
		case *ast.RangeStmt:
			if s.Value != nil {
				record(s.Value, nil)
			}
			if s.Key != nil {
				record(s.Key, nil)
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				// Address taken: the variable can be mutated elsewhere.
				record(s.X, nil)
			}
		}
		return true
	})

	proven := make(map[*types.Var]bool, len(seen))
	for v := range seen {
		proven[v] = true
	}
	selfAppend := func(v *types.Var, rhs ast.Expr) bool {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		return ok && info.Uses[arg] == v
	}
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if !proven[a.v] {
				continue
			}
			if a.rhs == nil {
				proven[a.v] = false
				changed = true
				continue
			}
			if selfAppend(a.v, a.rhs) || provenExpr(pf, info, a.rhs, proven) {
				continue
			}
			proven[a.v] = false
			changed = true
		}
	}
	return proven
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// capBackedReturns reports whether every return of the (single-result,
// slice-returning) function is a proven expression.
func capBackedReturns(pf *PkgFacts, n *FuncNode, info *types.Info) bool {
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isSliceType(sig.Results().At(0).Type()) {
		return false
	}
	proven := buildProven(pf, n, info)
	any := false
	ok = true
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		ret, isRet := node.(*ast.ReturnStmt)
		if !isRet || !ok {
			return ok
		}
		any = true
		if len(ret.Results) != 1 || !provenExpr(pf, info, ret.Results[0], proven) {
			ok = false
		}
		return true
	})
	return any && ok
}

// fixCapBacked iterates the CapBacked property to a fixed point: carve
// helpers that return another carve helper's result become proven once
// their callee does.
func (pf *PkgFacts) fixCapBacked(info *types.Info) {
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			if n.Summary.CapBacked {
				continue
			}
			if capBackedReturns(pf, n, info) {
				n.Summary.CapBacked = true
				changed = true
			}
		}
	}
}

// ------------------------------------------------------------------
// Allocation sites

// scanSites records the node's in-body allocation evidence. Sites
// covered by //rstknn:allow hotalloc are kept (hotalloc still routes
// them through Reportf so suppressions are counted) but flagged allowed
// so they do not set the Allocates fact.
func scanSites(pf *PkgFacts, n *FuncNode, info *types.Info, dirs *directiveIndex) {
	proven := buildProven(pf, n, info)
	// Appends whose result feeds back into their own destination
	// (x = append(x, ...)) are the amortized-reuse idiom and sanctioned.
	sanctioned := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				sanctioned[call] = true
			}
		}
		return true
	})

	add := func(pos token.Pos, format string, args ...any) {
		n.sites = append(n.sites, allocSite{
			pos:     pos,
			msg:     fmt.Sprintf(format, args...),
			allowed: dirs.allows(HotAlloc.Name, pf.fset.Position(pos)),
		})
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			scanCallSites(pf, n, info, e, proven, sanctioned, add)
		case *ast.CompositeLit:
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				add(e.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				add(e.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(lit.Pos(), "&%s escapes to the heap", types.ExprString(lit.Type))
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(info.TypeOf(e)) {
				if tv, ok := info.Types[e.X]; !ok || tv.Value == nil {
					add(e.OpPos, "string concatenation allocates")
				} else if tv, ok := info.Types[e.Y]; !ok || tv.Value == nil {
					add(e.OpPos, "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			if captured := capturedVar(info, n.Decl, e); captured != "" {
				add(e.Pos(), "closure captures %s; the closure value allocates", captured)
			}
		}
		return true
	})
}

// scanCallSites handles the call-shaped allocation evidence: make/new,
// unproven appends, conversions to interface types, and interface
// boxing of concrete arguments.
func scanCallSites(pf *PkgFacts, n *FuncNode, info *types.Info, call *ast.CallExpr, proven map[*types.Var]bool, sanctioned map[*ast.CallExpr]bool, add func(token.Pos, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make(%s) allocates", types.ExprString(call.Args[0]))
			case "new":
				add(call.Pos(), "new(%s) allocates", types.ExprString(call.Args[0]))
			case "append":
				if !sanctioned[call] && !provenExpr(pf, info, call.Args[0], proven) {
					add(call.Pos(), "append without a capacity proof may grow its backing array")
				}
			}
			return
		}
	}
	// Conversion T(x): boxing when T is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			add(call.Pos(), "conversion to %s boxes a concrete value", types.ExprString(call.Fun))
		}
		return
	}
	// Boxing of concrete arguments into interface parameters. Calls
	// into assumed-allocating packages (fmt above all) are flagged as a
	// whole by the callee verdict, so their arguments are skipped.
	if fn := staticCallee(info, call); fn != nil {
		if yes, _ := assumedAllocating(fn); yes {
			return
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxes(info, arg) {
			add(arg.Pos(), "passing %s boxes a concrete value into %s", info.TypeOf(arg), pt)
		}
	}
}

// boxes reports whether passing arg to an interface-typed slot
// allocates: a non-constant concrete value that is not pointer-shaped.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	t := tv.Type
	if t == types.Typ[types.UntypedNil] || types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface word
	}
	return true
}

// capturedVar returns the name of a variable of the enclosing function
// captured by the func literal, or "" when the literal is capture-free
// (a capture-free literal compiles to a static func value — no
// allocation).
func capturedVar(info *types.Info, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared in the enclosing function, outside the literal.
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// ------------------------------------------------------------------
// Behavioral evidence and propagation

// scanBehavior records the node's intrinsic I/O, lock, and shared-write
// evidence.
func scanBehavior(pf *PkgFacts, n *FuncNode, info *types.Info, dirs *directiveIndex) {
	addWrite := func(pos token.Pos, name string) {
		n.writes = append(n.writes, sharedWrite{
			pos:     pos,
			name:    name,
			allowed: dirs.allows(SharedMut.Name, pf.fset.Position(pos)),
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			if !n.ioEvid {
				if name, ok := ioReadCall(info, e); ok {
					n.ioEvid = true
					n.ioWhy = "calls " + name
				}
			}
			if !n.lockEv {
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && len(e.Args) == 0 {
					t := info.TypeOf(sel.X)
					if ptr, isPtr := t.(*types.Pointer); isPtr {
						t = ptr.Elem()
					}
					if t != nil && lockBearing(t) {
						n.lockEv = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if v := packageLevelTarget(info, pf.pkg, lhs); v != nil {
					addWrite(lhs.Pos(), v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, pf.pkg, e.X); v != nil {
				addWrite(e.X.Pos(), v.Name())
			}
		}
		return true
	})

	s := n.Summary
	s.PerformsIO, s.IOWhy = n.ioEvid, n.ioWhy
	s.AcquiresLock = n.lockEv
	for _, w := range n.writes {
		if !w.allowed {
			s.WritesShared = true
			s.SharedWhy = "writes package-level " + w.name
			break
		}
	}
	for _, site := range n.sites {
		if !site.allowed {
			s.Allocates = true
			s.AllocWhy = site.msg + " at " + shortPos(pf.fset, site.pos)
			break
		}
	}
}

// packageLevelTarget resolves an assignment target to the package-level
// variable it writes (directly, through a field, or through an index),
// or nil.
func packageLevelTarget(info *types.Info, pkg *types.Package, e ast.Expr) *types.Var {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			// pkgname.Var writes a foreign package-level var.
			if id, ok := t.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[t.Sel].(*types.Var); ok {
						return v
					}
					return nil
				}
			}
			e = t.X
		case *ast.Ident:
			v, ok := info.Uses[t].(*types.Var)
			if ok && !v.IsField() && v.Parent() == pkg.Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// fixBehavior propagates Allocates / PerformsIO / AcquiresLock /
// WritesShared across the package call graph to a fixed point,
// consulting imported facts and stdlib assumptions at every call.
func (pf *PkgFacts) fixBehavior() {
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			s := n.Summary
			for _, c := range n.calls {
				display := funcDisplay(c.callee, pf.pkg)
				if !s.Allocates {
					if yes, _ := pf.AllocVerdict(c.callee); yes {
						s.Allocates = true
						s.AllocWhy = "calls " + display + " (which may allocate)"
						changed = true
					}
				}
				if cs := pf.SummaryOf(c.callee); cs != nil {
					if !s.PerformsIO && cs.PerformsIO {
						s.PerformsIO = true
						s.IOWhy = "calls " + display + " (" + cs.IOWhy + ")"
						changed = true
					}
					if !s.AcquiresLock && cs.AcquiresLock {
						s.AcquiresLock = true
						changed = true
					}
					if !s.WritesShared && cs.WritesShared {
						s.WritesShared = true
						s.SharedWhy = "calls " + display + " (" + cs.SharedWhy + ")"
						changed = true
					}
				}
			}
		}
	}
}
