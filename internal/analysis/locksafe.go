package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe guards the concurrency invariants of the sharded buffer pool
// and decoded-node cache:
//
//  1. Structs that embed a lock (sync.Mutex/RWMutex/..., sync/atomic
//     value types) are never copied — not as by-value parameters or
//     receivers, not as range values, not as reads of existing values.
//     Iterate shard slices by index and take the address.
//  2. No simulated node/blob I/O (ReadNode/Get and their Tracked
//     variants) runs between a Lock/RLock and its release in the same
//     block, or after a defer'd Unlock. Holding a shard lock across a
//     (simulated) disk read serializes every concurrent reader of that
//     shard — the exact contention PR 1's sharding removed.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "forbids copying mutex-bearing structs and holding locks across " +
		"simulated-I/O boundaries",
	Run: runLockSafe,
}

func runLockSafe(pass *Pass) error {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockCopyFunc(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Discarding to _ is a use, not a live copy.
					if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkLockCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for i, rhs := range n.Values {
					if i < len(n.Names) && n.Names[i].Name == "_" {
						continue
					}
					checkLockCopyExpr(pass, rhs)
				}
			case *ast.BlockStmt:
				checkLockedIO(pass, n, reported)
			}
			return true
		})
	}
	return nil
}

// ------------------------------------------------------------------
// Rule 1: lock-bearing structs must not be copied.

// containsLock reports whether a value of type t embeds a no-copy
// synchronization primitive anywhere in its flat (non-pointer) layout.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return true
				}
			case "sync/atomic":
				// Every named value type in sync/atomic is no-copy.
				return true
			}
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

func lockBearing(t types.Type) bool {
	return containsLock(t, make(map[types.Type]bool))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func checkLockCopyFunc(pass *Pass, fd *ast.FuncDecl) {
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if _, isPtr := t.(*types.Pointer); isPtr || !lockBearing(t) {
				continue
			}
			pass.Reportf(field.Type.Pos(),
				"%s passes a lock-bearing %s by value; use a pointer", fd.Name.Name, t)
		}
	}
}

func checkLockCopyRange(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(rs.Value)
	if t == nil || !lockBearing(t) {
		return
	}
	pass.Reportf(rs.Value.Pos(),
		"range copies a lock-bearing %s per iteration; iterate by index and take the address", t)
}

// checkLockCopyExpr flags reads of existing lock-bearing values (x := *p,
// x := s.shard, x := shards[i], x := y). Fresh composite literals are
// fine — they create the value being initialized.
func checkLockCopyExpr(pass *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr || !lockBearing(t) {
		return
	}
	pass.Reportf(rhs.Pos(), "assignment copies a lock-bearing %s; use a pointer", t)
}

// ------------------------------------------------------------------
// Rule 2: no simulated I/O while a lock is held.

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
	opDeferUnlock
)

// lockOp classifies a statement as a lock acquisition/release on some
// receiver expression (rendered as a string so Lock and Unlock sites can
// be paired syntactically).
func lockOp(pass *Pass, stmt ast.Stmt) (recv string, kind lockOpKind) {
	var call *ast.CallExpr
	deferred := false
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		deferred = true
	}
	if call == nil || len(call.Args) != 0 {
		return "", opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	if recvType == nil || !lockBearing(recvType) {
		return "", opNone
	}
	recv = types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if !deferred {
			return recv, opLock
		}
	case "Unlock", "RUnlock":
		if deferred {
			return recv, opDeferUnlock
		}
		return recv, opUnlock
	}
	return "", opNone
}

// checkLockedIO scans a block's statement list linearly, tracking which
// lock receivers are held, and flags any simulated-I/O call made while at
// least one lock is held. A defer'd Unlock keeps the lock held for the
// rest of the block.
func checkLockedIO(pass *Pass, block *ast.BlockStmt, reported map[token.Pos]bool) {
	held := make(map[string]bool)
	for _, stmt := range block.List {
		if recv, kind := lockOp(pass, stmt); kind != opNone {
			switch kind {
			case opLock:
				held[recv] = true
			case opUnlock:
				delete(held, recv)
			case opDeferUnlock:
				// Lock stays held until the function returns.
			}
			continue
		}
		if len(held) == 0 {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if reported[call.Pos()] {
				return true
			}
			if name, ok := ioReadCall(pass.TypesInfo, call); ok {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"%s called while holding a lock; release the lock before simulated I/O", name)
				return true
			}
			// Transitive: a helper whose PerformsIO fact is set reads
			// nodes somewhere down its call chain — in this package or,
			// via the facts file, any imported one.
			if fn := staticCallee(pass.TypesInfo, call); fn != nil {
				if yes, why := pass.Facts.IOVerdict(fn); yes {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(),
						"%s performs simulated I/O (%s) while a lock is held; release the lock first",
						funcDisplay(fn, pass.Pkg), why)
				}
			}
			return true
		})
	}
}
