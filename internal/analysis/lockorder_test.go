package analysis_test

import (
	"strings"
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder, "lockorder")
}

// TestLockOrderCrossPackageNeedsFacts proves the C <-> Shared cycle is
// visible only through locks.Grab's LockClasses fact: without it the
// call-site edge C.mu => Shared.Mu never forms, so neither direction of
// the cycle is reported, while in-package doubles survive.
func TestLockOrderCrossPackageNeedsFacts(t *testing.T) {
	count := func(ds []analysis.Diagnostic, sub string) int {
		n := 0
		for _, d := range ds {
			if strings.Contains(d.Message, sub) {
				n++
			}
		}
		return n
	}

	with := analysistest.Diagnostics(t, analysis.LockOrder, "lockorder", true)
	if n := count(with, "lockorder/locks.Shared.Mu"); n != 2 {
		t.Errorf("with facts: want both directions of the Shared cycle, got %d of 2: %v", n, with)
	}

	without := analysistest.Diagnostics(t, analysis.LockOrder, "lockorder", false)
	if n := count(without, "lockorder/locks.Shared.Mu"); n != 0 {
		t.Errorf("without facts: the Shared cycle should be invisible, got %d findings: %v", n, without)
	}
	if n := count(without, "already held on this path"); n != 3 {
		t.Errorf("without facts: the three in-package doubles should survive, got %d: %v", n, without)
	}
}
