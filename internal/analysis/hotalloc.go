package analysis

// hotalloc: functions reachable from a //rstknn:hotpath root must be
// transitively allocation-free.
//
// The scoring inner loop (Scorer.entryBoundsInto, selfPartsInto,
// vector.Dot, EJ.Exact/Bounds, the warm kthSelector and arena paths) is
// asserted zero-alloc dynamically by testing.AllocsPerRun; hotalloc
// turns the same invariant into a build-time error that names the exact
// site, and — via the Allocates fact — catches regressions hidden in
// another package's helper, which no single AllocsPerRun call exercises.
//
// Within the package, reachability is computed over statically resolved
// call edges from the hotpath roots; every reachable function's own
// allocation sites (from the dataflow engine's site scan: make/new,
// appends without a capacity proof, slice/map/escaping composite
// literals, string concatenation, capturing closures, interface boxing)
// are reported where they occur. Cross-package calls are judged by the
// callee's imported fact or the stdlib assumption table and reported at
// the call site. Dynamic calls — interface dispatch, func values — have
// no static callee and are skipped: the engine flags only what it can
// positively attribute (the same soundness trade the AllocsPerRun tests
// make by exercising concrete types).

// HotAlloc reports heap allocations reachable from //rstknn:hotpath
// roots.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "report heap allocations in functions reachable from //rstknn:hotpath roots; " +
		"appends need a capacity proof (make cap, arena carve, self-append), and " +
		"cross-package callees are judged by their Allocates fact",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	pf := pass.Facts

	// BFS over in-package static call edges from the hotpath roots.
	reachable := make(map[*FuncNode]bool)
	queue := pf.HotRoots()
	for _, n := range queue {
		reachable[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.calls {
			if callee := pf.Node(c.callee); callee != nil && !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	nodes := make([]*FuncNode, 0, len(reachable))
	for n := range reachable {
		nodes = append(nodes, n)
	}
	sortNodes(nodes)

	for _, n := range nodes {
		// Local allocation evidence, reported where it occurs. Reportf
		// re-applies //rstknn:allow hotalloc and counts suppressions.
		for _, site := range n.sites {
			pass.Reportf(site.pos, "hot path (via %s): %s", n.Summary.Func, site.msg)
		}
		// Out-of-package calls judged by fact or stdlib assumption.
		// In-package callees are themselves reachable, so their sites
		// are reported directly rather than once per call site.
		for _, c := range n.calls {
			if pf.Node(c.callee) != nil {
				continue
			}
			if yes, why := pf.AllocVerdict(c.callee); yes {
				pass.Reportf(c.pos, "hot path (via %s): call to %s may allocate: %s",
					n.Summary.Func, funcDisplay(c.callee, pass.Pkg), why)
			}
		}
	}
	return nil
}
