package analysis

// lockorder: deadlock-freedom by lock ordering, the lockset discipline
// of Eraser (Savage et al., 1997) applied statically. Every function's
// CFG is solved for its must-held lockset (intersection join: a lock
// counts as held at a merge only if it is held on every path into it);
// each acquisition made while other locks are held contributes
// ordering edges "held => acquired" to a lock-order graph. Per-function
// sequences become package-level and then module-level knowledge
// through two facts on FuncSummary: LockClasses (what a function may
// acquire, transitively) grows edges at call sites made under a held
// lock, and LockPairs (the orderings it may exhibit, transitively)
// assembles the global graph. A cycle in that graph is a potential
// deadlock: two goroutines taking the same locks in opposite orders.
// Acquiring a mutex already held on the same path (same class AND same
// receiver expression) is self-deadlock and flagged directly.
//
// A lock class names a mutex position, not an instance:
// "pkgpath.Type.field" for a mutex field, "pkgpath.Type" for a
// lock-bearing struct locked as a whole (embedded mutex), or
// "pkgpath.var" for a package-level mutex. Distinct instances of one
// class (pool shards, cache shards) intentionally collapse: ordering
// is a property of the code position. Local mutexes get a
// function-scoped class that participates in double-acquire detection
// but never in exported pairs — callers cannot order against a lock
// they cannot see. Same-class edges are not recorded (locking two
// shards of one array is ordered by index, which is beyond a static
// class analysis), so per-class self-cycles cannot false-positive.
//
// Deferred Unlocks deliberately do NOT release the lockset: the lock
// stays held until function exit, so later acquisitions on the path
// still order after it — and a second Lock after `defer mu.Unlock()`
// is still a real self-deadlock.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder flags lock-order-graph cycles and double acquisitions.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "fold per-function lock-acquisition sequences into a module-wide lock-order " +
		"graph via facts; flag ordering cycles and double-acquisition on a path",
	Run: runLockOrder,
}

// lockPairSep joins the two classes of an ordering edge in LockPairs.
const lockPairSep = "=>"

// heldLock is one entry of the must-held lockset.
type heldLock struct {
	class string
	expr  string // rendered receiver: distinguishes instances of a class
	local bool
}

// lockEdge is one positioned ordering observation: to was acquired
// while from was held.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// lockDouble is one same-path re-acquisition of a held mutex.
type lockDouble struct {
	class string
	pos   token.Pos
}

// ------------------------------------------------------------------
// Classification

// lockAcquire returns the receiver expression of a Lock/RLock call on a
// lock-bearing type, or nil. TryLock is ignored: a must-analysis cannot
// assume a try succeeded.
func lockAcquire(info *types.Info, call *ast.CallExpr) ast.Expr {
	return lockMethodRecv(info, call, "Lock", "RLock")
}

// lockRelease mirrors lockAcquire for Unlock/RUnlock.
func lockRelease(info *types.Info, call *ast.CallExpr) ast.Expr {
	return lockMethodRecv(info, call, "Unlock", "RUnlock")
}

func lockMethodRecv(info *types.Info, call *ast.CallExpr, names ...string) ast.Expr {
	if len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return nil
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if t == nil || !lockBearing(t) {
		return nil
	}
	return sel.X
}

// lockClassOf canonicalizes the receiver of a lock operation into a
// class name, reporting whether the class is function-local.
func lockClassOf(info *types.Info, pkg *types.Package, fnName string, recv ast.Expr) (string, bool) {
	recv = ast.Unparen(recv)
	// A lock-bearing user struct locked as a whole (embedded mutex):
	// the type is the class.
	t := info.TypeOf(recv)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil &&
			obj.Pkg().Path() != "sync" && obj.Pkg().Path() != "sync/atomic" {
			return obj.Pkg().Path() + "." + obj.Name(), false
		}
	}
	// A plain sync primitive: the class is where it lives.
	switch e := recv.(type) {
	case *ast.IndexExpr:
		return lockClassOf(info, pkg, fnName, e.X)
	case *ast.StarExpr:
		return lockClassOf(info, pkg, fnName, e.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			rt := sel.Recv()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name, false
			}
		}
		// Package-qualified mutex: pkgname.Mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + e.Sel.Name, false
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if v.Parent() == pkg.Scope() {
				return pkg.Path() + "." + v.Name(), false
			}
			return fnName + "." + v.Name(), true
		}
	}
	return fnName + "." + types.ExprString(recv), true
}

// ------------------------------------------------------------------
// Dataflow

// lockState is the must-held lockset in acquisition order.
type lockState struct{ held []heldLock }

func lockFlow(info *types.Info, pkg *types.Package, pf *PkgFacts, fnName string) *Flow[lockState] {
	return &Flow[lockState]{
		Entry: lockState{},
		Copy: func(s lockState) lockState {
			return lockState{held: append([]heldLock(nil), s.held...)}
		},
		Join: func(a, b lockState) lockState {
			// Intersection preserving a's order: held at a merge only if
			// held on every path into it.
			var out []heldLock
			for _, h := range a.held {
				for _, g := range b.held {
					if g == h {
						out = append(out, h)
						break
					}
				}
			}
			a.held = out
			return a
		},
		Equal: func(a, b lockState) bool {
			if len(a.held) != len(b.held) {
				return false
			}
			for i := range a.held {
				if a.held[i] != b.held[i] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, s lockState) lockState {
			return lockStmtScan(info, pkg, pf, fnName, n, s, nil, nil)
		},
	}
}

// lockStmtScan applies one node's lock effects in source order. When
// onEdge/onDouble are non-nil (the Walk pass) they receive the ordering
// edges and double acquisitions observed at this node.
func lockStmtScan(info *types.Info, pkg *types.Package, pf *PkgFacts, fnName string, n ast.Node,
	s lockState, onEdge func(lockEdge), onDouble func(lockDouble)) lockState {
	// A deferred Unlock keeps the lock held for the rest of the
	// function; a deferred anything-else has no lock effect here.
	if _, ok := n.(*ast.DeferStmt); ok {
		return s
	}
	inspectOwn(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if recv := lockAcquire(info, m); recv != nil {
				class, local := lockClassOf(info, pkg, fnName, recv)
				expr := types.ExprString(recv)
				for _, h := range s.held {
					if h.class == class && h.expr == expr {
						if onDouble != nil {
							onDouble(lockDouble{class: class, pos: m.Pos()})
						}
					} else if h.class != class && !h.local && !local && onEdge != nil {
						onEdge(lockEdge{from: h.class, to: class, pos: m.Pos()})
					}
				}
				s.held = append(s.held, heldLock{class: class, expr: expr, local: local})
				return false
			}
			if recv := lockRelease(info, m); recv != nil {
				expr := types.ExprString(recv)
				for i := len(s.held) - 1; i >= 0; i-- {
					if s.held[i].expr == expr {
						s.held = append(s.held[:i], s.held[i+1:]...)
						break
					}
				}
				return false
			}
			// A callee that acquires locks orders them after everything
			// held here (the callee releases what it takes, so the
			// lockset itself is unchanged). Same-class entries are
			// skipped, as for direct acquisitions.
			if len(s.held) > 0 && onEdge != nil {
				if fn := staticCallee(info, m); fn != nil {
					if cs := pf.SummaryOf(fn); cs != nil {
						for _, c := range cs.LockClasses {
							for _, h := range s.held {
								if !h.local && h.class != c {
									onEdge(lockEdge{from: h.class, to: c, pos: m.Pos()})
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	return s
}

// scanLockOrder solves the lockset dataflow for n and collects its
// positioned ordering edges and double acquisitions.
func scanLockOrder(pf *PkgFacts, info *types.Info, n *FuncNode) ([]lockEdge, []lockDouble) {
	// Fast path: no lock acquisition anywhere in the body.
	any := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok && lockAcquire(info, call) != nil {
			any = true
			return false
		}
		return true
	})
	if !any {
		return nil, nil
	}
	fnName := n.Summary.Func
	g := NewCFG(n.Decl.Body)
	sol := Solve(g, lockFlow(info, pf.pkg, pf, fnName))
	var edges []lockEdge
	var doubles []lockDouble
	sol.Walk(func(node ast.Node, before lockState) {
		lockStmtScan(info, pf.pkg, pf, fnName, node, before,
			func(e lockEdge) { edges = append(edges, e) },
			func(d lockDouble) { doubles = append(doubles, d) })
	})
	return edges, doubles
}

// ------------------------------------------------------------------
// Analyzer

func runLockOrder(pass *Pass) error {
	pf := pass.Facts
	// The order graph this unit can see: every pair fact of its own
	// functions (which already union in their callees' pairs, across
	// packages) plus its own positioned edges.
	succs := make(map[string][]string)
	addPair := func(from, to string) {
		for _, s := range succs[from] {
			if s == to {
				return
			}
		}
		succs[from] = append(succs[from], to)
	}
	type posEdge struct {
		lockEdge
		fn string
	}
	var positioned []posEdge
	var doubles []lockDouble
	for _, n := range pf.Nodes() {
		for _, p := range n.Summary.LockPairs {
			if from, to, ok := strings.Cut(p, lockPairSep); ok {
				addPair(from, to)
			}
		}
		edges, dbl := scanLockOrder(pf, pass.TypesInfo, n)
		for _, e := range edges {
			addPair(e.from, e.to)
			positioned = append(positioned, posEdge{lockEdge: e, fn: n.Summary.Func})
		}
		doubles = append(doubles, dbl...)
	}

	for _, d := range doubles {
		pass.Reportf(d.pos, "%s is already held on this path; acquiring it again deadlocks", d.class)
	}

	// A positioned edge from=>to closes a cycle when from is reachable
	// from to. Report once per (from,to).
	reported := make(map[string]bool)
	for _, e := range positioned {
		key := e.from + "\x00" + e.to
		if reported[key] {
			continue
		}
		if path := lockPath(succs, e.to, e.from); path != nil {
			reported[key] = true
			cycle := strings.Join(append(path, e.to), " "+lockPairSep+" ")
			pass.Reportf(e.pos, "acquiring %s while holding %s creates a lock-order cycle: %s", e.to, e.from, cycle)
		}
	}
	return nil
}

// lockPath returns a path from -> ... -> to in the order graph (BFS,
// deterministic over sorted successors), or nil.
func lockPath(succs map[string][]string, from, to string) []string {
	if from == to {
		return []string{from}
	}
	parent := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := append([]string(nil), succs[cur]...)
		sort.Strings(next)
		for _, s := range next {
			if _, seen := parent[s]; seen {
				continue
			}
			parent[s] = cur
			if s == to {
				var path []string
				for at := to; at != ""; at = parent[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, s)
		}
	}
	return nil
}

// ------------------------------------------------------------------
// Summary wiring

// fixLockOrder computes the LockClasses and LockPairs facts. Classes
// first (direct acquisitions plus callee classes, a monotone union);
// then each function's own ordering edges via the lockset dataflow
// (which consults the final classes at call sites), and the pair union
// with callee pairs to a fixed point.
func (pf *PkgFacts) fixLockOrder(info *types.Info) {
	// Phase 1: acquired classes.
	direct := make(map[*FuncNode][]string)
	for _, n := range pf.own {
		set := make(map[string]bool)
		fnName := n.Summary.Func
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			// Closures acquire on their own schedule, not the caller's.
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := node.(*ast.CallExpr); ok {
				if recv := lockAcquire(info, call); recv != nil {
					if class, local := lockClassOf(info, pf.pkg, fnName, recv); !local {
						set[class] = true
					}
				}
			}
			return true
		})
		direct[n] = sortedKeys(set)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			set := make(map[string]bool)
			for _, c := range direct[n] {
				set[c] = true
			}
			for _, c := range n.Summary.LockClasses {
				set[c] = true
			}
			for _, call := range n.calls {
				if cs := pf.SummaryOf(call.callee); cs != nil {
					for _, c := range cs.LockClasses {
						set[c] = true
					}
				}
			}
			if len(set) > len(n.Summary.LockClasses) {
				n.Summary.LockClasses = sortedKeys(set)
				changed = true
			}
		}
	}

	// Phase 2: ordering pairs. Own edges are computed once (the lockset
	// is intra-function and classes are now final), callee pairs union
	// in to a fixed point.
	ownPairs := make(map[*FuncNode][]string)
	for _, n := range pf.own {
		set := make(map[string]bool)
		edges, _ := scanLockOrder(pf, info, n)
		for _, e := range edges {
			set[e.from+lockPairSep+e.to] = true
		}
		ownPairs[n] = sortedKeys(set)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			set := make(map[string]bool)
			for _, p := range ownPairs[n] {
				set[p] = true
			}
			for _, p := range n.Summary.LockPairs {
				set[p] = true
			}
			for _, call := range n.calls {
				if cs := pf.SummaryOf(call.callee); cs != nil {
					for _, p := range cs.LockPairs {
						set[p] = true
					}
				}
			}
			if len(set) > len(n.Summary.LockPairs) {
				n.Summary.LockPairs = sortedKeys(set)
				changed = true
			}
		}
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
