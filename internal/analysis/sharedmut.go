package analysis

// sharedmut: goroutine closures must not write shared state except
// through the designated merge path.
//
// The intra-query fan-out (internal/core's runRounds and friends) keeps
// its determinism proof by construction: every worker writes only its
// own disjoint partition of the result slices, indexed by a
// worker-local counter (children[j], errs[j] = ...). sharedmut makes
// that the only legal shape: inside a `go` closure,
//
//   - writes to package-level variables are flagged (always: they race
//     and break the pure-function worker contract);
//   - writes to captured variables are flagged, including through
//     fields and pointers;
//   - except the merge path: an index write into a captured slice whose
//     index expression involves a closure-local variable — the
//     disjoint-partition idiom (a captured map never qualifies:
//     concurrent map writes race even on disjoint keys);
//   - calls to functions whose WritesShared fact is set are flagged, so
//     the rule is transitive through helpers and across packages;
//   - the snapshot-swap publication path is sanctioned: method calls on
//     sync/atomic values (Store, Swap, CompareAndSwap, Add, ...) are the
//     blessed way to publish shared state from any goroutine, but
//     *assigning over* an atomic value inside a closure is flagged with
//     its own message — it races with every concurrent method call.
//
// `go f(...)` with a named function is judged by f's WritesShared fact.

import (
	"go/ast"
	"go/types"
)

// SharedMut reports shared-state writes inside goroutine closures.
var SharedMut = &Analyzer{
	Name: "sharedmut",
	Doc: "report writes to package-level or captured state inside go-statement closures, " +
		"except indexed writes into captured slices at a closure-local index (the worker " +
		"merge path); transitive through the WritesShared fact",
	Run: runSharedMut,
}

func runSharedMut(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(node ast.Node) bool {
			g, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				checkGoClosure(pass, lit)
			} else if fn := staticCallee(pass.TypesInfo, g.Call); fn != nil {
				if s := pass.Facts.SummaryOf(fn); s != nil && s.WritesShared {
					pass.Reportf(g.Call.Pos(), "goroutine runs %s, which writes shared state (%s)",
						funcDisplay(fn, pass.Pkg), s.SharedWhy)
				}
			}
			return true
		})
	}
	return nil
}

// checkGoClosure applies the write rules to one goroutine body.
func checkGoClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkClosureWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkClosureWrite(pass, lit, s.X)
		case *ast.CallExpr:
			if atomicMethodCall(pass.TypesInfo, s) {
				// Sanctioned: Store/Swap/CompareAndSwap/... on a
				// sync/atomic value is the snapshot-swap publication
				// path; the atomic owns its synchronization.
				return true
			}
			if fn := staticCallee(pass.TypesInfo, s); fn != nil {
				if sum := pass.Facts.SummaryOf(fn); sum != nil && sum.WritesShared {
					pass.Reportf(s.Pos(), "goroutine closure calls %s, which writes shared state (%s)",
						funcDisplay(fn, pass.Pkg), sum.SharedWhy)
				}
			}
		}
		return true
	})
}

// checkClosureWrite classifies one assignment target inside a goroutine
// closure.
func checkClosureWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	info := pass.TypesInfo
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if v.Parent() != pass.Pkg.Scope() && !capturedByLit(lit, v) {
			return
		}
		if atomicValueType(info.TypeOf(e)) {
			pass.Reportf(lhs.Pos(),
				"goroutine closure assigns over atomic %s, racing its method calls; publish with Store or Swap", v.Name())
			return
		}
		if v.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(), "goroutine closure writes package-level variable %s", v.Name())
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine closure writes captured variable %s; merge through an indexed slice partition instead", v.Name())
	case *ast.IndexExpr:
		base, baseVar := writeBase(info, e.X)
		if baseVar == nil {
			return
		}
		pkgLevel := baseVar.Parent() == pass.Pkg.Scope()
		if !pkgLevel && !capturedByLit(lit, baseVar) {
			return // closure-local container: free to mutate
		}
		if _, isMap := info.TypeOf(base).Underlying().(*types.Map); isMap {
			pass.Reportf(lhs.Pos(),
				"goroutine closure writes captured map %s: concurrent map writes race even on disjoint keys", baseVar.Name())
			return
		}
		if pkgLevel {
			pass.Reportf(lhs.Pos(), "goroutine closure writes package-level %s", baseVar.Name())
			return
		}
		// The merge path: captured slice, closure-local index.
		if !indexClosureLocal(info, lit, e.Index) {
			pass.Reportf(lhs.Pos(),
				"goroutine closure writes captured %s at an index not derived from closure-local state; "+
					"partition by a worker-local index", baseVar.Name())
		}
	case *ast.SelectorExpr, *ast.StarExpr:
		_, baseVar := writeBase(info, ast.Unparen(lhs))
		if baseVar == nil {
			return
		}
		if baseVar.Parent() != pass.Pkg.Scope() && !capturedByLit(lit, baseVar) {
			return
		}
		if atomicValueType(info.TypeOf(ast.Unparen(lhs))) {
			pass.Reportf(lhs.Pos(),
				"goroutine closure assigns over an atomic through %s, racing its method calls; publish with Store or Swap", baseVar.Name())
			return
		}
		if baseVar.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(), "goroutine closure writes package-level %s", baseVar.Name())
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine closure writes through captured %s; workers must not mutate shared structures", baseVar.Name())
	}
}

// atomicValueType reports whether t is a value type declared in
// sync/atomic (atomic.Pointer[T], atomic.Int64, atomic.Value, ...).
func atomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// atomicMethodCall reports whether call invokes a method on a
// sync/atomic value — the sanctioned publication path for shared state
// (the snapshot-swap idiom: state.Store(next) from a serialized writer,
// state.Load() from any reader).
func atomicMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return atomicValueType(t)
}

// writeBase peels selectors, indexes, and derefs down to the root
// expression and its variable, when the root is a plain identifier.
func writeBase(info *types.Info, e ast.Expr) (ast.Expr, *types.Var) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			if v, ok := info.Uses[t].(*types.Var); ok && !v.IsField() {
				return t, v
			}
			return t, nil
		default:
			return e, nil
		}
	}
}

// capturedByLit reports whether v is declared outside the literal —
// i.e. the closure captures it. Package-level variables are handled
// separately by the callers.
func capturedByLit(lit *ast.FuncLit, v *types.Var) bool {
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}

// indexClosureLocal reports whether the index expression involves at
// least one variable local to the closure (the worker-local partition
// index).
func indexClosureLocal(info *types.Info, lit *ast.FuncLit, index ast.Expr) bool {
	local := false
	ast.Inspect(index, func(node ast.Node) bool {
		if local {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if ok && !v.IsField() && !capturedByLit(lit, v) {
			local = true
		}
		return true
	})
	return local
}
