package analysis

// SSA-lite value tracking on top of the CFG/dataflow engine. The
// path-sensitive analyzers of cfg.go/dataflow.go reason about protocol
// states ("pin held", "published"); taint analysis needs something
// finer: for a given identifier USE, which definition(s) can it read,
// and what expression produced each? BuildSSA answers that with a
// deliberately small slice of SSA:
//
//   - Every definition site of every tracked local variable gets one
//     Value (parameters and named results included). Reaching
//     definitions are propagated with the generic forward solver; where
//     two different definitions of the same variable meet at a block
//     join, a phi Value merges them. Phis are memoized per
//     (block, variable) — the JoinAt hook gives the join block's
//     identity — so repeated solver sweeps converge on stable Value
//     pointers instead of minting fresh phis forever.
//   - UseDef maps every identifier use in the body to the Value it
//     reads, computed by replaying the fixed point. Analyzers evaluate
//     expressions over Values instead of pattern-matching statements.
//   - Values carry a structural value number: two definitions whose
//     defining expressions are the same pure computation over the same
//     operand numbers share a Num (len(b) CSE, constant folding via
//     go/constant). Impure expressions — calls, loads — number uniquely.
//
// What is deliberately NOT here: no dominator tree (phi placement falls
// out of the join-point memoization), no memory SSA (fields, slice
// elements, and globals are untracked; loads from them are opaque), and
// no closures (variables captured by address or assigned inside a
// FuncLit are demoted to a single opaque Value, and FuncLit bodies are
// not entered). Those are exactly the cuts that keep the layer ~small
// while still proving the bounds-check facts untrustedlen needs.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ValueKind classifies how a Value came to be.
type ValueKind uint8

const (
	// ValParam is a parameter, receiver, or named result at entry.
	ValParam ValueKind = iota
	// ValDef is an ordinary definition with a defining expression
	// (assignment, := declaration, op-assign, ++/--).
	ValDef
	// ValZero is a var declaration without an initializer.
	ValZero
	// ValPhi merges distinct reaching definitions at a block join.
	ValPhi
	// ValRange is a range-loop key or value variable.
	ValRange
	// ValOpaque stands for every definition of a variable the builder
	// cannot track (address taken, or assigned inside a closure).
	ValOpaque
)

func (k ValueKind) String() string {
	switch k {
	case ValParam:
		return "param"
	case ValDef:
		return "def"
	case ValZero:
		return "zero"
	case ValPhi:
		return "phi"
	case ValRange:
		return "range"
	case ValOpaque:
		return "opaque"
	}
	return "?"
}

// Value is one SSA-lite definition of a variable.
type Value struct {
	// ID is the creation index; Values slice order. Stable across
	// solver sweeps because definition sites and phis are memoized.
	ID int
	// Num is the structural value number: equal Nums mean provably
	// equal values (same pure expression over same operands).
	Num int
	// Kind classifies the definition.
	Kind ValueKind
	// Var is the variable defined.
	Var *types.Var
	// Expr is the defining expression for ValDef (the assignment RHS;
	// nil for ++/--) and the range expression for ValRange.
	Expr ast.Expr
	// ResIdx is the tuple-result index when Expr is a multi-value
	// call/type-assert/map-read assigned to several variables; -1 for
	// single-value definitions.
	ResIdx int
	// Prev is the incoming value of Var for op-assigns (x += e) and
	// ++/--; nil otherwise.
	Prev *Value
	// Op is the op-assign or inc/dec token (token.ADD_ASSIGN,
	// token.INC, ...); token.ILLEGAL for plain definitions.
	Op token.Token
	// Ops are the phi operands (ValPhi only), in join-arrival order.
	Ops []*Value
	// Block is the index of the defining block (-1 for entry values).
	Block int
	// ParamIdx is the signature parameter index for ValParam values
	// that are ordinary parameters (callers' argument index); -1 for
	// receivers, results, and every other kind.
	ParamIdx int
	// Pos is the definition position.
	Pos token.Pos
}

func (v *Value) addOp(op *Value) {
	for _, o := range v.Ops {
		if o == op {
			return
		}
	}
	v.Ops = append(v.Ops, op)
}

// FuncSSA is the SSA-lite form of one function.
type FuncSSA struct {
	// Decl is the analyzed declaration.
	Decl *ast.FuncDecl
	// G is the underlying control-flow graph of the body.
	G *CFG
	// Values lists every Value in creation order.
	Values []*Value
	// UseDef maps each identifier USE in the body to the value it
	// reads. Write-target identifiers are in DefIdent instead.
	UseDef map[*ast.Ident]*Value
	// DefIdent maps each identifier that is a definition site to the
	// Value the definition produced.
	DefIdent map[*ast.Ident]*Value
	// Params holds the entry values of the signature's parameters in
	// order (nil entries for untrackable parameters).
	Params []*Value

	info    *types.Info
	tracked map[*types.Var]bool
	opaque  map[*types.Var]*Value
}

// ssaState maps each tracked variable to its current definition.
type ssaState map[*types.Var]*Value

type phiKey struct {
	block int
	v     *types.Var
}

type defKey struct {
	site ast.Node
	idx  int
}

type ssaBuilder struct {
	s    *FuncSSA
	phis map[phiKey]*Value
	defs map[defKey]*Value
}

// BuildSSA computes the SSA-lite form of fn's body. Returns nil for
// bodiless declarations.
func BuildSSA(fn *ast.FuncDecl, info *types.Info) *FuncSSA {
	if fn.Body == nil {
		return nil
	}
	s := &FuncSSA{
		Decl:     fn,
		G:        NewCFG(fn.Body),
		UseDef:   make(map[*ast.Ident]*Value),
		DefIdent: make(map[*ast.Ident]*Value),
		info:     info,
		tracked:  make(map[*types.Var]bool),
		opaque:   make(map[*types.Var]*Value),
	}
	b := &ssaBuilder{
		s:    s,
		phis: make(map[phiKey]*Value),
		defs: make(map[defKey]*Value),
	}
	entry := b.collectVars(fn)

	flow := &Flow[ssaState]{
		Entry:  entry,
		Copy:   copySSAState,
		JoinAt: b.join,
		Equal:  equalSSAState,
		Transfer: func(n ast.Node, st ssaState) ssaState {
			b.transfer(n, st)
			return st
		},
	}
	sol := Solve(s.G, flow)

	// Replay the fixed point to resolve every identifier use against
	// the definition in force immediately before its node.
	sol.Walk(func(n ast.Node, before ssaState) {
		b.recordUses(n, before)
		// Walk re-applies Transfer itself; recordUses only reads.
	})
	b.number()
	return s
}

// collectVars finds the trackable variables of fn, demotes unstable
// ones (address-taken or closure-assigned) to opaque, and returns the
// entry state holding parameter/receiver/result values.
func (b *ssaBuilder) collectVars(fn *ast.FuncDecl) ssaState {
	s := b.s
	vars := make(map[*types.Var]bool)
	unstable := make(map[*types.Var]bool)
	localVar := func(id *ast.Ident) *types.Var {
		if obj, ok := s.info.Defs[id].(*types.Var); ok {
			return obj
		}
		return nil
	}
	// Pass 1: every variable defined anywhere in the declaration,
	// including inside closures (a closure-local def of an outer name
	// is a distinct *types.Var and simply never referenced outside).
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := localVar(id); v != nil {
				vars[v] = true
			}
		}
		return true
	})
	// Pass 2: demote variables whose value can change behind the
	// solver's back — address taken anywhere, or written inside a
	// FuncLit (the closure may run at any point).
	var mark func(n ast.Node, inLit bool)
	markTarget := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := s.info.Uses[id].(*types.Var); ok {
				unstable[v] = true
			} else if v, ok := s.info.Defs[id].(*types.Var); ok {
				unstable[v] = true
			}
		}
	}
	mark = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				mark(n.Body, true)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markTarget(n.X)
				}
			case *ast.AssignStmt:
				if inLit {
					for _, l := range n.Lhs {
						markTarget(l)
					}
				}
			case *ast.IncDecStmt:
				if inLit {
					markTarget(n.X)
				}
			case *ast.RangeStmt:
				if inLit {
					if n.Key != nil {
						markTarget(n.Key)
					}
					if n.Value != nil {
						markTarget(n.Value)
					}
				}
			}
			return true
		})
	}
	mark(fn.Body, false)

	for v := range vars {
		if unstable[v] {
			op := b.newValue(&Value{Kind: ValOpaque, Var: v, Block: -1, ParamIdx: -1, Pos: v.Pos()})
			s.opaque[v] = op
		} else {
			s.tracked[v] = true
		}
	}

	// Entry state: receiver, parameters, named results.
	entry := make(ssaState)
	addParam := func(id *ast.Ident, idx int, zero bool) *Value {
		v := localVar(id)
		if v == nil || !s.tracked[v] {
			return nil
		}
		kind := ValParam
		if zero {
			kind = ValZero
		}
		val := b.newValue(&Value{Kind: kind, Var: v, Block: -1, ParamIdx: idx, Pos: id.Pos()})
		entry[v] = val
		return val
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, id := range f.Names {
				addParam(id, -1, false)
			}
		}
	}
	pidx := 0
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, id := range f.Names {
				s.Params = append(s.Params, addParam(id, pidx, false))
				pidx++
			}
			if len(f.Names) == 0 {
				s.Params = append(s.Params, nil)
				pidx++
			}
		}
	}
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			for _, id := range f.Names {
				addParam(id, -1, true)
			}
		}
	}
	return entry
}

func (b *ssaBuilder) newValue(v *Value) *Value {
	v.ID = len(b.s.Values)
	v.ResIdx = -1
	if v.Op == 0 {
		v.Op = token.ILLEGAL
	}
	b.s.Values = append(b.s.Values, v)
	return v
}

func copySSAState(s ssaState) ssaState {
	out := make(ssaState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func equalSSAState(a, b ssaState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// join merges two reaching-definition maps at block. Distinct values
// for the same variable merge into the block's memoized phi; a
// variable present on only one side keeps that side's value (its uses
// on the other side are syntactically impossible — Go scoping).
func (b *ssaBuilder) join(block int, a, c ssaState) ssaState {
	if block == b.s.G.Exit.Index {
		// The synthetic Exit block holds no nodes, so its state is never
		// read: keep whatever arrived first instead of minting phis for
		// merges nothing will look at. (Keeping the stored side is what
		// makes this a fixed point; alternating sides would never settle.)
		return a
	}
	if len(b.s.G.Blocks[block].Preds) < 2 {
		// A single-predecessor block is not a join point: the state the
		// solver stored for it on an earlier sweep is stale, not a merge
		// partner, so the arriving state supersedes it. Merging instead
		// would mint a spurious phi chaining the old value to the new one
		// at every block downstream of a real join.
		return c
	}
	for v, cv := range c {
		av, ok := a[v]
		if !ok {
			a[v] = cv
			continue
		}
		if av == cv {
			continue
		}
		key := phiKey{block, v}
		phi := b.phis[key]
		switch {
		case phi != nil && av == phi:
			phi.addOp(cv)
		case phi != nil && cv == phi:
			phi.addOp(av)
			a[v] = phi
		default:
			if phi == nil {
				phi = b.newValue(&Value{Kind: ValPhi, Var: v, Block: block, ParamIdx: -1, Pos: v.Pos()})
				b.phis[key] = phi
			}
			phi.addOp(av)
			phi.addOp(cv)
			a[v] = phi
		}
	}
	return a
}

// defineAt records a definition of the variable behind id at the
// memoized (site, idx) value, updating the state. Mutable inputs that
// depend on the incoming state (Prev) are refreshed on every sweep;
// the final sweep leaves the converged value.
func (b *ssaBuilder) defineAt(st ssaState, site ast.Node, idx int, id *ast.Ident, kind ValueKind, expr ast.Expr, resIdx int, prev *Value, op token.Token) {
	v := b.defObj(id)
	if v == nil {
		return
	}
	if !b.s.tracked[v] {
		if opv := b.s.opaque[v]; opv != nil {
			st[v] = opv
		}
		return
	}
	key := defKey{site, idx}
	val := b.defs[key]
	if val == nil {
		val = b.newValue(&Value{Kind: kind, Var: v, Expr: expr, Block: -2, ParamIdx: -1, Pos: id.Pos(), Op: op})
		val.ResIdx = resIdx
		b.defs[key] = val
	}
	val.Prev = prev
	st[v] = val
}

// defObj resolves an identifier to the variable it defines or assigns.
func (b *ssaBuilder) defObj(id *ast.Ident) *types.Var {
	if id == nil || id.Name == "_" {
		return nil
	}
	if v, ok := b.s.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := b.s.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// transfer applies one CFG node's definitions to the state.
func (b *ssaBuilder) transfer(n ast.Node, st ssaState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.assignStmt(n, st)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			var prev *Value
			if v := b.defObj(id); v != nil {
				prev = st[v]
			}
			b.defineAt(st, n, 0, id, ValDef, nil, -1, prev, n.Tok)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for si, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for ni, name := range vs.Names {
				idx := si<<16 | ni
				switch {
				case len(vs.Values) == 0:
					b.defineAt(st, n, idx, name, ValZero, nil, -1, nil, token.ILLEGAL)
				case len(vs.Values) == len(vs.Names):
					b.defineAt(st, n, idx, name, ValDef, vs.Values[ni], -1, nil, token.ILLEGAL)
				default: // tuple: var a, b = f()
					b.defineAt(st, n, idx, name, ValDef, vs.Values[0], ni, nil, token.ILLEGAL)
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := rangeVarIdent(n.Key); ok {
			b.defineAt(st, n, 0, id, ValRange, n.X, -1, nil, token.ILLEGAL)
		}
		if id, ok := rangeVarIdent(n.Value); ok {
			b.defineAt(st, n, 1, id, ValRange, n.X, -1, nil, token.ILLEGAL)
		}
	}
}

func (b *ssaBuilder) assignStmt(n *ast.AssignStmt, st ssaState) {
	switch n.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(n.Rhs) == len(n.Lhs) {
			for i, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					b.defineAt(st, n, i, id, ValDef, n.Rhs[i], -1, nil, token.ILLEGAL)
				}
			}
			return
		}
		// Tuple assignment: n, err := f().
		for i, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				b.defineAt(st, n, i, id, ValDef, n.Rhs[0], i, nil, token.ILLEGAL)
			}
		}
	default:
		// Op-assign: x += e reads the incoming x through Prev.
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return
		}
		if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
			var prev *Value
			if v := b.defObj(id); v != nil {
				prev = st[v]
			}
			b.defineAt(st, n, 0, id, ValDef, n.Rhs[0], -1, prev, n.Tok)
		}
	}
}

func rangeVarIdent(e ast.Expr) (*ast.Ident, bool) {
	if e == nil {
		return nil, false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return id, ok
}

// recordUses resolves every identifier read inside node n against the
// state before n, and every write-target identifier against the state
// after. FuncLit bodies are skipped: closure reads are not resolved
// (the closure may run anywhere).
func (b *ssaBuilder) recordUses(n ast.Node, before ssaState) {
	writes := make(map[*ast.Ident]bool)
	addWrite := func(e ast.Expr) {
		if e == nil {
			return
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			writes[id] = true
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			addWrite(l)
		}
	case *ast.IncDecStmt:
		addWrite(n.X)
	case *ast.RangeStmt:
		addWrite(n.Key)
		addWrite(n.Value)
	}
	inspectOwn(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		v, ok := b.s.info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if b.s.tracked[v] {
			if val := before[v]; val != nil {
				b.s.UseDef[id] = val
			}
		} else if opv := b.s.opaque[v]; opv != nil {
			b.s.UseDef[id] = opv
		}
		return true
	})
	// Apply the node's definitions to a scratch state so write targets
	// resolve to the value the definition produced.
	after := copySSAState(before)
	b.transfer(n, after)
	for id := range writes {
		if v := b.defObj(id); v != nil {
			if val := after[v]; val != nil {
				b.s.DefIdent[id] = val
			}
		}
	}
}

// ------------------------------------------------------------------
// Value numbering

// number assigns structural value numbers in ID order: pure defining
// expressions over identically-numbered operands share a number;
// everything else (params, phis, calls, loads) numbers uniquely.
func (b *ssaBuilder) number() {
	nums := make(map[string]int)
	next := 0
	intern := func(key string) int {
		if n, ok := nums[key]; ok {
			return n
		}
		nums[key] = next
		next++
		return next - 1
	}
	for _, v := range b.s.Values {
		var key string
		switch {
		case v.Kind == ValDef && v.Prev == nil && v.Expr != nil:
			if v.ResIdx >= 0 {
				key = fmt.Sprintf("t%d:%s", v.ResIdx, b.exprNumKey(v.Expr))
			} else {
				key = "d:" + b.exprNumKey(v.Expr)
			}
		case v.Kind == ValZero:
			key = "z:" + types.TypeString(v.Var.Type(), nil)
		default:
			key = fmt.Sprintf("u:%d", v.ID)
		}
		v.Num = intern(key)
	}
}

// exprNumKey renders an expression as a structural key with identifier
// uses replaced by their operand value numbers. Impure or unmodeled
// subexpressions key by position, so they never compare equal.
func (b *ssaBuilder) exprNumKey(e ast.Expr) string {
	if tv, ok := b.s.info.Types[e]; ok && tv.Value != nil {
		return "c:" + tv.Value.ExactString()
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return b.exprNumKey(e.X)
	case *ast.Ident:
		if val := b.s.UseDef[e]; val != nil {
			return fmt.Sprintf("#%d", val.Num)
		}
		return fmt.Sprintf("@%d", e.Pos())
	case *ast.BinaryExpr:
		return "(" + b.exprNumKey(e.X) + e.Op.String() + b.exprNumKey(e.Y) + ")"
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			return fmt.Sprintf("@%d", e.Pos())
		}
		return e.Op.String() + b.exprNumKey(e.X)
	case *ast.CallExpr:
		if tv, ok := b.s.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			// Conversion: pure over its operand.
			return "conv[" + types.TypeString(tv.Type, nil) + "]" + b.exprNumKey(e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) >= 1 {
			if bi, ok := b.s.info.Uses[id].(*types.Builtin); ok && (bi.Name() == "len" || bi.Name() == "cap") {
				return bi.Name() + "(" + b.exprNumKey(e.Args[0]) + ")"
			}
		}
		return fmt.Sprintf("@%d", e.Pos())
	default:
		return fmt.Sprintf("@%d", e.Pos())
	}
}

// ------------------------------------------------------------------
// Queries and debugging

// ValueOf returns the Value a bare identifier expression reads, or nil
// for anything more structured.
func (s *FuncSSA) ValueOf(e ast.Expr) *Value {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return s.UseDef[id]
	}
	return nil
}

// Dump renders the def-use structure deterministically for tests: one
// line per Value in creation order with its kind, variable, defining
// expression or phi operands, and use count.
func (s *FuncSSA) Dump() string {
	uses := make(map[*Value]int)
	for _, v := range s.UseDef {
		uses[v]++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", s.Decl.Name.Name)
	for _, v := range s.Values {
		fmt.Fprintf(&sb, "  v%-3d n%-3d %-6s %s", v.ID, v.Num, v.Kind, v.Var.Name())
		switch v.Kind {
		case ValDef:
			if v.Prev != nil {
				fmt.Fprintf(&sb, " = %s(v%d", v.Op, v.Prev.ID)
				if v.Expr != nil {
					fmt.Fprintf(&sb, ", %s", exprText(v.Expr))
				}
				sb.WriteString(")")
			} else if v.Expr != nil {
				fmt.Fprintf(&sb, " = %s", exprText(v.Expr))
				if v.ResIdx >= 0 {
					fmt.Fprintf(&sb, ".%d", v.ResIdx)
				}
			}
		case ValPhi:
			ids := make([]string, len(v.Ops))
			for i, o := range v.Ops {
				ids[i] = fmt.Sprintf("v%d", o.ID)
			}
			// Operand arrival order depends on sweep order; sort for a
			// stable dump.
			sort.Strings(ids)
			fmt.Fprintf(&sb, " = phi(%s) @b%d", strings.Join(ids, ", "), v.Block)
		case ValRange:
			fmt.Fprintf(&sb, " = range %s", exprText(v.Expr))
		}
		if n := uses[v]; n > 0 {
			fmt.Fprintf(&sb, "  [uses %d]", n)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// exprText renders an expression compactly for dumps and diagnostics.
func exprText(e ast.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		sb.WriteString(e.Name)
	case *ast.BasicLit:
		sb.WriteString(e.Value)
	case *ast.ParenExpr:
		sb.WriteString("(")
		writeExpr(sb, e.X)
		sb.WriteString(")")
	case *ast.BinaryExpr:
		writeExpr(sb, e.X)
		sb.WriteString(" " + e.Op.String() + " ")
		writeExpr(sb, e.Y)
	case *ast.UnaryExpr:
		sb.WriteString(e.Op.String())
		writeExpr(sb, e.X)
	case *ast.SelectorExpr:
		writeExpr(sb, e.X)
		sb.WriteString("." + e.Sel.Name)
	case *ast.CallExpr:
		writeExpr(sb, e.Fun)
		sb.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteString(")")
	case *ast.IndexExpr:
		writeExpr(sb, e.X)
		sb.WriteString("[")
		writeExpr(sb, e.Index)
		sb.WriteString("]")
	case *ast.SliceExpr:
		writeExpr(sb, e.X)
		sb.WriteString("[")
		if e.Low != nil {
			writeExpr(sb, e.Low)
		}
		sb.WriteString(":")
		if e.High != nil {
			writeExpr(sb, e.High)
		}
		sb.WriteString("]")
	case *ast.StarExpr:
		sb.WriteString("*")
		writeExpr(sb, e.X)
	default:
		sb.WriteString("<expr>")
	}
}
