package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeUnitConfig synthesizes the JSON compilation-unit config `go vet`
// would hand the vettool for a dependency-free package.
func writeUnitConfig(t *testing.T, dir string, goFiles []string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	vetxPath = filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:          "fixture",
		Compiler:    "gc",
		ImportPath:  "fixture",
		GoFiles:     goFiles,
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestRunUnitReportsDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func exact(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	exit := runUnit(cfgPath, All(), false, &stdout, &stderr)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", exit, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exact == on floats") {
		t.Fatalf("missing floatcmp diagnostic in output: %q", stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

func TestRunUnitCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func fine(a, b float64) bool { return a < b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", exit, stderr.String())
	}
}

func TestRunUnitJSONOutput(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func exact(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), true, &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0 in JSON mode; stderr: %s", exit, stderr.String())
	}
	var tree map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &tree); err != nil {
		t.Fatalf("output is not the vet JSON shape: %v\n%s", err, stdout.String())
	}
	if len(tree["fixture"]["floatcmp"]) != 1 {
		t.Fatalf("want 1 floatcmp diagnostic in JSON tree, got %v", tree)
	}
}

// TestRunUnitVetxOnly checks the fact-only fast path: dependencies are
// analyzed for facts alone, and a fact-free tool must still write the
// facts file and succeed without type-checking anything.
func TestRunUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	// Deliberately broken source: VetxOnly must not even parse it.
	if err := os.WriteFile(src, []byte("package fixture\nfunc {"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeUnitConfig(t, dir, []string{src}, true)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0 in VetxOnly mode", exit)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("facts file not written in VetxOnly mode: %v", err)
	}
}

// TestDirectiveParsing pins the allow-directive grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//rstknn:allow trackedio maintenance copy", []string{"trackedio"}},
		{"//rstknn:allow trackedio,floatcmp reason here", []string{"trackedio", "floatcmp"}},
		{"//rstknn:allow", nil},
		{"// rstknn:allow trackedio", nil}, // directives must not have a space
		{"// regular comment", nil},
	}
	for _, c := range cases {
		names, ok := parseDirective(c.comment)
		if c.names == nil {
			if ok {
				t.Errorf("parseDirective(%q) = %v, want none", c.comment, names)
			}
			continue
		}
		if !ok || len(names) != len(c.names) {
			t.Errorf("parseDirective(%q) = %v, %v; want %v", c.comment, names, ok, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseDirective(%q)[%d] = %q, want %q", c.comment, i, names[i], c.names[i])
			}
		}
	}
}
