package analysis

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeUnitConfig synthesizes the JSON compilation-unit config `go vet`
// would hand the vettool for a dependency-free package.
func writeUnitConfig(t *testing.T, dir string, goFiles []string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	vetxPath = filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:          "fixture",
		Compiler:    "gc",
		ImportPath:  "fixture",
		GoFiles:     goFiles,
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestRunUnitReportsDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func exact(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", exit, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exact == on floats") {
		t.Fatalf("missing floatcmp diagnostic in output: %q", stderr.String())
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
}

func TestRunUnitCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func fine(a, b float64) bool { return a < b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", exit, stderr.String())
	}
}

// jsonUnitReport mirrors the per-unit JSON report shape for decoding in
// tests.
type jsonUnitReport struct {
	SchemaVersion int `json:"schema_version"`
	Diagnostics   map[string][]struct {
		Posn     string `json:"posn"`
		Message  string `json:"message"`
		Analyzer string `json:"analyzer"`
	} `json:"diagnostics"`
	Counts     map[string]int   `json:"counts"`
	ElapsedUs  map[string]int64 `json:"elapsed_us"`
	Suppressed map[string]int   `json:"suppressed"`
}

func TestRunUnitJSONOutput(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	// One reported floatcmp violation plus one suppressed by a
	// directive: the report must carry the diagnostic with its analyzer
	// name and count the suppression.
	code := `package fixture

func exact(a, b float64) bool { return a == b }

func blessed(a, b float64) bool {
	//rstknn:allow floatcmp exact tie-break is intended here
	return a == b
}
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), true, "", &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0 in JSON mode; stderr: %s", exit, stderr.String())
	}
	var tree map[string]jsonUnitReport
	if err := json.Unmarshal([]byte(stdout.String()), &tree); err != nil {
		t.Fatalf("output is not the vet JSON shape: %v\n%s", err, stdout.String())
	}
	unit := tree["fixture"]
	ds := unit.Diagnostics["floatcmp"]
	if len(ds) != 1 {
		t.Fatalf("want 1 floatcmp diagnostic in JSON tree, got %v", tree)
	}
	if ds[0].Analyzer != "floatcmp" {
		t.Fatalf("diagnostic analyzer = %q, want floatcmp", ds[0].Analyzer)
	}
	if unit.Suppressed["floatcmp"] != 1 {
		t.Fatalf("suppressed[floatcmp] = %d, want 1 (tree %v)", unit.Suppressed["floatcmp"], tree)
	}
	// Every registered analyzer reports a count, zeroes included: the
	// report proves pinsafe/retirepub/lockorder ran, not just that they
	// found nothing.
	if len(unit.Counts) != len(All()) {
		t.Fatalf("counts has %d entries, want one per analyzer (%d): %v", len(unit.Counts), len(All()), unit.Counts)
	}
	if unit.Counts["floatcmp"] != 1 {
		t.Fatalf("counts[floatcmp] = %d, want 1", unit.Counts["floatcmp"])
	}
	for _, name := range []string{"pinsafe", "retirepub", "lockorder", "untrustedlen"} {
		if n, ok := unit.Counts[name]; !ok || n != 0 {
			t.Fatalf("counts[%s] = %d, %v; want an explicit 0", name, n, ok)
		}
	}
	if unit.SchemaVersion != lintSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", unit.SchemaVersion, lintSchemaVersion)
	}
	// elapsed_us mirrors counts: an explicit entry per analyzer.
	if len(unit.ElapsedUs) != len(All()) {
		t.Fatalf("elapsed_us has %d entries, want one per analyzer (%d): %v",
			len(unit.ElapsedUs), len(All()), unit.ElapsedUs)
	}
}

// TestRunUnitJSONDeterministic: the go command caches vet output, and CI
// diffs checked-in reports, so with a pinned clock two runs over the
// same unit must produce byte-identical JSON.
func TestRunUnitJSONDeterministic(t *testing.T) {
	// A fake monotonic clock: each reading advances 100µs, so analyzer
	// timings are nonzero yet reproducible.
	tick := 0
	vetNow = func() time.Time {
		tick++
		return time.Unix(0, int64(tick)*100_000)
	}
	defer func() { vetNow = time.Now }()

	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func exact(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}

	run := func() string {
		tick = 0
		cfgPath, _ := writeUnitConfig(t, t.TempDir(), []string{src}, false)
		var stdout, stderr strings.Builder
		if exit := runUnit(cfgPath, All(), true, "", &stdout, &stderr); exit != 0 {
			t.Fatalf("exit = %d; stderr: %s", exit, stderr.String())
		}
		return stdout.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	var tree map[string]jsonUnitReport
	if err := json.Unmarshal([]byte(a), &tree); err != nil {
		t.Fatal(err)
	}
	if got := tree["fixture"].ElapsedUs["floatcmp"]; got != 100 {
		t.Fatalf("elapsed_us[floatcmp] = %d, want 100 under the pinned clock", got)
	}
}

// TestRunUnitVetxOnly checks the fact-only path: dependencies are
// analyzed for facts alone — the unit is parsed, type-checked, and
// summarized, its facts land in the .vetx file, and no diagnostics are
// emitted.
func TestRunUnitVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func Alloc() []int { return make([]int, 8) }

func Carve() []int { return make([]int, 0, 8) }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeUnitConfig(t, dir, []string{src}, true)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0 in VetxOnly mode; stderr: %s", exit, stderr.String())
	}
	store, err := ReadFactsFile(vetxPath)
	if err != nil {
		t.Fatalf("reading facts file: %v", err)
	}
	alloc := store.Lookup("fixture.Alloc")
	if alloc == nil || !alloc.Allocates {
		t.Fatalf("fixture.Alloc fact = %+v, want Allocates", alloc)
	}
	// Carve allocates (the make itself) but is capacity-backed: appends
	// to its result are proven.
	carve := store.Lookup("fixture.Carve")
	if carve == nil || !carve.CapBacked {
		t.Fatalf("fixture.Carve fact = %+v, want CapBacked", carve)
	}
	if stderr.Len() != 0 {
		t.Fatalf("VetxOnly run wrote diagnostics: %s", stderr.String())
	}
}

// TestRunUnitStandardFastPath checks that standard-library units skip
// analysis entirely and publish an empty facts file.
func TestRunUnitStandardFastPath(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	// Broken on purpose: the standard fast path must not even parse it.
	if err := os.WriteFile(src, []byte("package fixture\nfunc {"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath := filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:         "fixture",
		Compiler:   "gc",
		ImportPath: "fixture",
		GoFiles:    []string{src},
		Standard:   map[string]bool{"fixture": true},
		VetxOnly:   true,
		VetxOutput: vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr); exit != 0 {
		t.Fatalf("exit = %d, want 0 for a standard unit", exit)
	}
	store, err := ReadFactsFile(vetxPath)
	if err != nil {
		t.Fatalf("reading facts file: %v", err)
	}
	if store.Len() != 0 {
		t.Fatalf("standard unit published %d facts, want 0", store.Len())
	}
}

// TestRunUnitBaseline checks that -baseline filters known diagnostics by
// file basename and message, letting new findings through.
func TestRunUnitBaseline(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func exact(a, b float64) bool { return a == b }

func fresh(a, b float64) bool { return a != b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	// First run, no baseline: both findings reported.
	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr); exit != 1 {
		t.Fatalf("exit = %d, want 1 without baseline", exit)
	}
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 diagnostics without baseline, got %q", stderr.String())
	}

	// Baseline the first finding (note: a different directory prefix —
	// matching must be by basename, not full path).
	baseline := filepath.Join(dir, "lint.baseline")
	content := "# known findings\nsomewhere/else/p.go:3:39: " +
		strings.SplitN(lines[0], ": ", 2)[1] + "\n"
	if err := os.WriteFile(baseline, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if exit := runUnit(cfgPath, All(), false, baseline, &stdout, &stderr); exit != 1 {
		t.Fatalf("exit = %d, want 1 with baseline (new finding remains)", exit)
	}
	out := strings.TrimSpace(stderr.String())
	if strings.Count(out, "\n") != 0 || !strings.Contains(out, "!=") {
		t.Fatalf("baseline filtering wrong; stderr: %q", out)
	}
}

// TestBaselineCountsDuplicates pins the counted semantics of baseline
// matching: an entry appearing N times suppresses at most N findings
// with that (basename, message) key, so a baselined problem that
// multiplies still surfaces the new occurrences.
func TestBaselineCountsDuplicates(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "lint.baseline")
	content := "# two known copies of the same finding\n" +
		"old/path/p.go:3:1: dup message\n" +
		"p.go:9:1: dup message\n"
	if err := os.WriteFile(baseline, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	known, err := readBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if got := known[baselineKey("p.go", "dup message")]; got != 2 {
		t.Fatalf("baseline count = %d, want 2 (duplicates must not collapse)", got)
	}

	fset := token.NewFileSet()
	f := fset.AddFile(filepath.Join(dir, "p.go"), -1, 100)
	az := &Analyzer{Name: "fake"}
	diag := func(off int, msg string) Diagnostic {
		return Diagnostic{Pos: f.Pos(off), Message: msg, Analyzer: az.Name}
	}
	diags := map[string][]Diagnostic{az.Name: {
		diag(1, "dup message"),
		diag(2, "dup message"),
		diag(3, "dup message"), // third copy: beyond the baselined count
		diag(4, "fresh message"),
	}}
	applyBaseline(known, fset, []*Analyzer{az}, diags)
	kept := diags[az.Name]
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2 (one dup over budget + one fresh): %v", len(kept), kept)
	}
	if kept[0].Message != "dup message" || kept[1].Message != "fresh message" {
		t.Fatalf("kept the wrong findings: %v", kept)
	}
}

// TestRunUnitBaselineDuplicateFindings drives the same semantics end to
// end: two identical diagnostics in one file, one baseline entry — the
// second occurrence must still be reported.
func TestRunUnitBaselineDuplicateFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	code := `package fixture

func one(a, b float64) bool { return a == b }

func two(a, b float64) bool { return a == b }
`
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeUnitConfig(t, dir, []string{src}, false)

	var stdout, stderr strings.Builder
	if exit := runUnit(cfgPath, All(), false, "", &stdout, &stderr); exit != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", exit, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 identical findings without baseline, got %q", stderr.String())
	}

	baseline := filepath.Join(dir, "lint.baseline")
	if err := os.WriteFile(baseline, []byte(lines[0]+"\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if exit := runUnit(cfgPath, All(), false, baseline, &stdout, &stderr); exit != 1 {
		t.Fatalf("exit = %d, want 1: only one of the two copies is baselined", exit)
	}
	if n := strings.Count(strings.TrimSpace(stderr.String()), "\n") + 1; n != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d: %q", n, stderr.String())
	}
}

// TestDirectiveParsing pins the allow-directive grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//rstknn:allow trackedio maintenance copy", []string{"trackedio"}},
		{"//rstknn:allow trackedio,floatcmp reason here", []string{"trackedio", "floatcmp"}},
		{"//rstknn:allow", nil},
		{"// rstknn:allow trackedio", nil}, // directives must not have a space
		{"// regular comment", nil},
	}
	for _, c := range cases {
		names, ok := parseDirective(c.comment)
		if c.names == nil {
			if ok {
				t.Errorf("parseDirective(%q) = %v, want none", c.comment, names)
			}
			continue
		}
		if !ok || len(names) != len(c.names) {
			t.Errorf("parseDirective(%q) = %v, %v; want %v", c.comment, names, ok, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseDirective(%q)[%d] = %q, want %q", c.comment, i, names[i], c.names[i])
			}
		}
	}
}
