package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"rstknn/internal/analysis"
)

// buildSSAFuncs type-checks src (wrapped in a package clause) and
// returns the SSA-lite form of every function, by name. The SSA layer —
// unlike the purely syntactic CFG — resolves identifiers through
// types.Info, so these fixtures go through go/types.
func buildSSAFuncs(t *testing.T, src string) map[string]*analysis.FuncSSA {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "ssa_fixture.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var conf types.Config
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v\nsource:\n%s", err, src)
	}
	out := make(map[string]*analysis.FuncSSA)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out[fd.Name.Name] = analysis.BuildSSA(fd, info)
		}
	}
	return out
}

// useValue returns the Value read by the nth (0-based, source order)
// use of the named identifier in s's body.
func useValue(t *testing.T, s *analysis.FuncSSA, name string, nth int) *analysis.Value {
	t.Helper()
	var vals []*analysis.Value
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if v := s.UseDef[id]; v != nil {
				vals = append(vals, v)
			}
		}
		return true
	})
	if nth >= len(vals) {
		t.Fatalf("use #%d of %q not found (%d resolved uses)", nth, name, len(vals))
	}
	return vals[nth]
}

func TestSSAPhiAtIfJoin(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`)
	v := useValue(t, fns["f"], "x", 0)
	if v.Kind != analysis.ValPhi {
		t.Fatalf("x at return resolved to %s, want phi\n%s", v.Kind, fns["f"].Dump())
	}
	if len(v.Ops) != 2 {
		t.Fatalf("phi has %d operands, want 2\n%s", len(v.Ops), fns["f"].Dump())
	}
	for _, o := range v.Ops {
		if o.Kind != analysis.ValDef {
			t.Errorf("phi operand v%d is %s, want def", o.ID, o.Kind)
		}
	}
}

// TestSSANoPhiWhenBranchReturns: when one arm of the if terminates, its
// definition cannot reach the statement after the if, so no phi forms
// and the use resolves to the single live definition.
func TestSSANoPhiWhenBranchReturns(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(c bool) int {
	x := 1
	if c {
		x = 2
		return x
	}
	return x
}
`)
	inBranch := useValue(t, fns["f"], "x", 0)
	atEnd := useValue(t, fns["f"], "x", 1)
	if inBranch.Kind != analysis.ValDef || inBranch == atEnd {
		t.Errorf("x inside the branch resolved to v%d (%s), want the x = 2 def", inBranch.ID, inBranch.Kind)
	}
	if atEnd.Kind != analysis.ValDef {
		t.Fatalf("x at the final return resolved to %s, want def (no phi)\n%s", atEnd.Kind, fns["f"].Dump())
	}
}

// TestSSAPhiAtForLoop: a loop-carried variable forms a phi at the loop
// head, and the in-loop redefinition reads that phi back through Prev —
// the def-use cycle that makes the taint fixpoint see accumulation.
func TestSSAPhiAtForLoop(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	f := fns["f"]
	sAtReturn := useValue(t, f, "s", 0)
	if sAtReturn.Kind != analysis.ValPhi {
		t.Fatalf("s at return resolved to %s, want phi\n%s", sAtReturn.Kind, f.Dump())
	}
	var acc *analysis.Value
	for _, o := range sAtReturn.Ops {
		if o.Kind == analysis.ValDef && o.Op == token.ADD_ASSIGN {
			acc = o
		}
	}
	if acc == nil {
		t.Fatalf("phi has no s += i operand\n%s", f.Dump())
	}
	if acc.Prev != sAtReturn {
		t.Errorf("s += i reads v%d through Prev, want the loop-head phi v%d\n%s",
			acc.Prev.ID, sAtReturn.ID, f.Dump())
	}
	iAtCond := useValue(t, f, "i", 0)
	if iAtCond.Kind != analysis.ValPhi {
		t.Errorf("i in the loop condition resolved to %s, want phi\n%s", iAtCond.Kind, f.Dump())
	}
}

func TestSSAPhiAtRangeJoin(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
`)
	f := fns["f"]
	if got := useValue(t, f, "v", 0).Kind; got != analysis.ValRange {
		t.Errorf("v inside the loop resolved to %s, want range", got)
	}
	tot := useValue(t, f, "total", 0)
	if tot.Kind != analysis.ValPhi {
		t.Fatalf("total at return resolved to %s, want phi\n%s", tot.Kind, f.Dump())
	}
}

// TestSSAOpaqueAddressTaken: taking a variable's address demotes every
// definition of it to one opaque value.
func TestSSAOpaqueAddressTaken(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(p int) int {
	x := p
	q := &x
	_ = q
	return x
}
`)
	if got := useValue(t, fns["f"], "x", 1).Kind; got != analysis.ValOpaque {
		t.Errorf("address-taken x resolved to %s, want opaque\n%s", got, fns["f"].Dump())
	}
}

// TestSSAValueNumbering: two definitions by the same pure expression
// over the same operands share a value number; different expressions
// (and impure ones) do not.
func TestSSAValueNumbering(t *testing.T) {
	fns := buildSSAFuncs(t, `
func f(b []byte) int {
	a := len(b)
	c := len(b)
	d := len(b) + 1
	e := cap(b)
	return a + c + d + e
}
`)
	f := fns["f"]
	a, c := useValue(t, f, "a", 0), useValue(t, f, "c", 0)
	d, e := useValue(t, f, "d", 0), useValue(t, f, "e", 0)
	if a == c {
		t.Fatalf("a and c resolved to the same Value — distinct defs expected")
	}
	if a.Num != c.Num {
		t.Errorf("len(b) defs numbered %d and %d, want equal\n%s", a.Num, c.Num, f.Dump())
	}
	if d.Num == a.Num || e.Num == a.Num || d.Num == e.Num {
		t.Errorf("distinct expressions share a number (a=%d d=%d e=%d)\n%s", a.Num, d.Num, e.Num, f.Dump())
	}
}

// TestSSADumpGolden pins the rendered def-use structure of a small
// function: value order, numbering, phi placement, and use counts.
func TestSSADumpGolden(t *testing.T) {
	fns := buildSSAFuncs(t, `
func g(n int) int {
	x := n + 1
	if n > 0 {
		x = n - 1
	}
	return x
}
`)
	got := fns["g"].Dump()
	want := "func g:\n" +
		"  v0   n0   param  n  [uses 3]\n" +
		"  v1   n1   def    x = n + 1\n" +
		"  v2   n2   def    x = n - 1\n" +
		"  v3   n3   phi    x = phi(v1, v2) @b2  [uses 1]\n"
	if got != want {
		t.Errorf("Dump mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
