// Package floatcmp is an analysistest fixture for the floatcmp analyzer.
package floatcmp

type score float64

func compare(a, b float64, s1, s2 score, i, j int, f float32) bool {
	if a == b { // want `exact == on floats`
		return true
	}
	if a != b { // want `exact != on floats`
		return false
	}
	if s1 == s2 { // want `exact == on floats`
		return true
	}
	_ = f == 0 // constant sentinel: clean
	if a == 0 || b != 1.5 {
		return false
	}
	if i == j { // ints: clean
		return true
	}
	//rstknn:allow floatcmp deterministic tie-break on identical inputs
	if a == b {
		return true
	}
	return a < b // ordering comparisons: clean
}
