// Package helper is the dependency side of the cross-package retirepub
// fixture: its Publishes/Retires facts are only visible to the root
// package through propagation.
package helper

import "sync/atomic"

type NodeID int32

type Reclaimer struct{}

func (r *Reclaimer) Retire(ids []NodeID) {} // the stand-in primitive: empty body, no fact

type State struct{ n int }

type Engine struct {
	State atomic.Pointer[State]
	Rec   Reclaimer
}

// PublishAll swaps in the new state on every path — it carries the
// Publishes fact.
func PublishAll(e *Engine, next *State) {
	e.State.Store(next)
}

// Drop retires under an allow directive: the blessed site neither
// reports here nor sets the Retires fact, so callers are not tainted.
func Drop(e *Engine, ids []NodeID) {
	e.Rec.Retire(ids) //rstknn:allow retirepub fixture stand-in for a blessed maintenance path
}

// DropUnblessed retires without publishing and without a directive: its
// own retire is reported here AND its Retires fact taints callers.
func DropUnblessed(e *Engine, ids []NodeID) {
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
}
