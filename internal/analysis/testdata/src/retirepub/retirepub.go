// Package retirepub is an analysistest fixture for the retirepub
// analyzer: publish-before-retire over branch joins, loops, defers,
// same-package helpers, and (via the helper package's facts)
// cross-package helpers.
package retirepub

import (
	"retirepub/helper"
)

type engine = helper.Engine

type state = helper.State

// ------------------------------------------------------------------
// Direct sites

func publishThenRetire(e *engine, next *state, ids []helper.NodeID) {
	e.State.Store(next)
	e.Rec.Retire(ids)
}

func retireThenPublish(e *engine, next *state, ids []helper.NodeID) {
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
	e.State.Store(next)
}

func swapCountsAsPublish(e *engine, next *state, ids []helper.NodeID) {
	e.State.Swap(next)
	e.Rec.Retire(ids)
}

// ------------------------------------------------------------------
// Branch joins: must-publish is the AND over incoming paths

func publishOnOneBranchOnly(e *engine, next *state, ids []helper.NodeID, lucky bool) {
	if lucky {
		e.State.Store(next)
	}
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
}

func publishOnBothBranches(e *engine, next, alt *state, ids []helper.NodeID, lucky bool) {
	if lucky {
		e.State.Store(next)
	} else {
		e.State.Store(alt)
	}
	e.Rec.Retire(ids)
}

// publishInLoop may run zero iterations, so it dominates nothing after
// the loop.
func publishInLoop(e *engine, nexts []*state, ids []helper.NodeID) {
	for _, n := range nexts {
		e.State.Store(n)
	}
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
}

func retireInLoopAfterPublish(e *engine, next *state, batches [][]helper.NodeID) {
	e.State.Store(next)
	for _, ids := range batches {
		e.Rec.Retire(ids)
	}
}

// ------------------------------------------------------------------
// Defer: a deferred publish runs at exit and dominates nothing

func deferredPublish(e *engine, next *state, ids []helper.NodeID) {
	defer e.State.Store(next)
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
}

// ------------------------------------------------------------------
// Same-package helpers (facts within the unit)

// installState publishes on every path: its Publishes fact makes calls
// to it count as publishes.
func installState(e *engine, next *state) {
	e.State.Store(next)
}

func publishViaHelper(e *engine, next *state, ids []helper.NodeID) {
	installState(e, next)
	e.Rec.Retire(ids)
}

// discard retires without publishing: the Retires fact taints callers.
func discard(e *engine, ids []helper.NodeID) {
	e.Rec.Retire(ids) // want `Retire on Reclaimer is not dominated by an atomic publish`
}

func retireViaHelper(e *engine, next *state, ids []helper.NodeID) {
	discard(e, ids) // want `call to discard \(which retires storage\) is not dominated by an atomic publish`
	e.State.Store(next)
}

func retireViaHelperAfterPublish(e *engine, next *state, ids []helper.NodeID) {
	e.State.Store(next)
	discard(e, ids)
}

// ------------------------------------------------------------------
// Cross-package helpers (facts across units)

func crossPackagePublish(e *engine, next *state, ids []helper.NodeID) {
	helper.PublishAll(e, next)
	e.Rec.Retire(ids)
}

func crossPackageRetire(e *engine, next *state, ids []helper.NodeID) {
	helper.DropUnblessed(e, ids) // want `call to retirepub/helper\.DropUnblessed \(which retires storage\) is not dominated by an atomic publish`
	e.State.Store(next)
}

func crossPackageBlessed(e *engine, ids []helper.NodeID) {
	helper.Drop(e, ids) // clean: the directive on Drop's site cleared its Retires fact
}
