// Package lockorder is an analysistest fixture for the lockorder
// analyzer: double acquisitions (straight-line, through deferred
// unlocks, and at branch joins), ordering cycles within the package,
// and cycles visible only through a callee's LockClasses fact.
package lockorder

import (
	"sync"

	"lockorder/locks"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// ------------------------------------------------------------------
// Double acquisition

func doubleAcquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `lockorder\.A\.mu is already held on this path`
	a.mu.Unlock()
	a.mu.Unlock()
}

// doubleAfterDeferredUnlock: the deferred unlock runs at exit, so the
// mutex is still held when the second Lock deadlocks.
func doubleAfterDeferredUnlock(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want `lockorder\.A\.mu is already held on this path`
}

// branchJoinDouble: held on every incoming path, so the join keeps it.
func branchJoinDouble(a *A, fast bool) {
	if fast {
		a.mu.Lock()
	} else {
		a.mu.Lock()
	}
	a.mu.Lock() // want `lockorder\.A\.mu is already held on this path`
	a.mu.Unlock()
	a.mu.Unlock()
}

// branchJoinReleased: unlocked on one path, so the must-held
// intersection drops it and re-acquiring is not a certain deadlock.
func branchJoinReleased(a *A, fast bool) {
	a.mu.Lock()
	if fast {
		a.mu.Unlock()
	}
	a.mu.Lock() // clean under must semantics: not held on every path
	a.mu.Unlock()
}

// loopLockUnlock: the back-edge join must not accumulate phantom holds.
func loopLockUnlock(a *A, n int) {
	for i := 0; i < n; i++ {
		a.mu.Lock()
		a.mu.Unlock()
	}
}

// distinctInstancesSameClass: two *A values collapse into one class but
// different receiver expressions, so no double is reported (shard-style
// locking is ordered by index, beyond a class analysis).
func distinctInstancesSameClass(a1, a2 *A) {
	a1.mu.Lock()
	a2.mu.Lock()
	a2.mu.Unlock()
	a1.mu.Unlock()
}

// ------------------------------------------------------------------
// Ordering cycles within the package

func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `creates a lock-order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `creates a lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// consistentOrder: C before D everywhere, so the C=>D edge closes no
// cycle.
func consistentOrder(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func consistentOrderElsewhere(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// ------------------------------------------------------------------
// Cross-function cycle: one direction is only visible through the
// callee's LockClasses fact.

func grabUnderC(c *C, s *locks.Shared) {
	c.mu.Lock()
	locks.Grab(s) // want `creates a lock-order cycle`
	c.mu.Unlock()
}

func lockSharedThenC(c *C, s *locks.Shared) {
	s.Mu.Lock()
	c.mu.Lock() // want `creates a lock-order cycle`
	c.mu.Unlock()
	s.Mu.Unlock()
}
