// Package locks is the dependency side of the cross-package lockorder
// fixture: Grab's LockClasses fact is how the root package learns that
// calling it under a held lock creates an ordering edge.
package locks

import "sync"

// Shared is a mutex-bearing type the root package orders against.
type Shared struct{ Mu sync.Mutex }

// Grab acquires and releases the shared mutex: LockClasses carries
// lockorder/locks.Shared.Mu to callers.
func Grab(s *Shared) {
	s.Mu.Lock()
	s.Mu.Unlock()
}
