// Package geom is an analysistest fixture impersonating the approved
// epsilon-helper package rstknn/internal/geom: exact float comparison is
// permitted here (this is where the helpers themselves live), so the
// floatcmp analyzer must stay silent.
package geom

// ApproxEqual is the shape of an epsilon helper: the short-circuit exact
// comparison inside the approved package is legal.
func ApproxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
