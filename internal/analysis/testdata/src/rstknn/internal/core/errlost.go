// Package core impersonates rstknn/internal/core so the errlost
// analyzer's package filter applies (it only runs on internal/core,
// internal/storage, and internal/iurtree).
package core

import "errors"

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

func dropped() {
	mayFail() // want `error result of mayFail is dropped`
}

func deferred() {
	defer mayFail() // want `error result of mayFail is dropped by defer`
}

func deferredClosureChecked() {
	defer func() {
		if err := mayFail(); err != nil { // clean: the closure handles it
			print(err != nil)
		}
	}()
}

func deferredClosureDrop() {
	defer func() {
		mayFail() // want `error result of mayFail is dropped`
	}()
}

func deferredClosureReturnsError() {
	defer func() error { // want `error result of the deferred closure is dropped by defer`
		return mayFail()
	}()
}

func blessedDeferredDrop() {
	//rstknn:allow errlost best-effort close on an error path; the sync already failed
	defer mayFail()
}

func blank() {
	_ = mayFail()   // want `error result assigned to _`
	v, _ := value() // want `error result assigned to _`
	_ = v           // clean: re-discarding a bound non-error value
}

func blankNonError(m map[int]int) {
	_, ok := m[0] // clean: the second value is a bool
	_ = ok
}

func shadowed() error {
	err := mayFail() // clean: first declaration
	if err != nil {
		return err
	}
	{
		err := mayFail() // want `shadows the enclosing error variable`
		print(err != nil)
	}
	{
		n, err := value() // clean: := is forced by the new variable n
		print(n)
		print(err != nil)
	}
	{
		_, err := value() // want `shadows the enclosing error variable`
		print(err != nil)
	}
	if err := mayFail(); err != nil { // clean: init-clause scoping idiom
		return err
	}
	return err
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := value()
	if err != nil {
		return err
	}
	print(n)
	return nil
}

func blessedDrop() {
	//rstknn:allow errlost best-effort close on an error path
	mayFail()
}
