// Package sharedmut is an analysistest fixture for the sharedmut
// analyzer: the legal worker merge path, the sanctioned atomic
// snapshot-swap publication path, and every illegal shared-write shape
// inside goroutine closures.
package sharedmut

import "sync/atomic"

var hits int

type worker struct{ acc []float64 }

func (w *worker) process(x int) (float64, error) { return float64(x), nil }

// bumpGlobal carries the WritesShared fact.
func bumpGlobal() { hits++ }

// fanOut is the designated merge path: each goroutine writes only its
// own index of the captured result slices, with a closure-local index.
func fanOut(w *worker, items []int) ([]float64, []error) {
	results := make([]float64, len(items))
	errs := make([]error, len(items))
	for i := range items {
		go func(j int) {
			results[j], errs[j] = w.process(items[j]) // clean: disjoint partition
		}(i)
	}
	return results, errs
}

func badWrites(w *worker, items []int) float64 {
	total := 0.0
	m := make(map[int]float64)
	results := make([]float64, len(items))
	go func() {
		hits++ // want `writes package-level variable hits`
	}()
	go func(j int) {
		total += float64(j) // want `writes captured variable total`
	}(0)
	go func(j int) {
		m[j] = float64(j) // want `concurrent map writes race`
	}(1)
	go func() {
		results[0] = 1 // want `index not derived from closure-local state`
	}()
	go func() {
		w.acc = nil // want `writes through captured w`
	}()
	return total
}

func transitive() {
	go func() {
		bumpGlobal() // want `calls bumpGlobal, which writes shared state`
	}()
	go bumpGlobal() // want `goroutine runs bumpGlobal, which writes shared state`
}

func localState() {
	go func() {
		local := make([]int, 4)
		local[0] = 1 // clean: closure-local container
		sum := 0
		sum += local[0] // clean: closure-local scalar
		_ = sum
	}()
}

func blessed() {
	go func() {
		//rstknn:allow sharedmut single writer by construction here
		hits++
	}()
}

// ------------------------------------------------------------------
// The snapshot-swap publication path.

type snapshot struct{ n int }

type engine struct {
	state atomic.Pointer[snapshot]
	seq   atomic.Int64
}

var ready atomic.Bool

// publishSwap is the sanctioned shape: shared state is published from a
// goroutine exclusively through atomic method calls, which own their
// synchronization.
func publishSwap(e *engine, next *snapshot) {
	go func() {
		e.state.Store(next)      // clean: atomic Store is the publication path
		e.seq.Add(1)             // clean: atomic read-modify-write
		old := e.state.Swap(nil) // clean: atomic Swap
		_ = old
		ready.Store(true) // clean: even on a package-level atomic
	}()
}

// overwriteAtomic races every concurrent Load/Store on the same value:
// plain assignment bypasses the atomic's synchronization entirely.
func overwriteAtomic(e *engine, b *atomic.Bool) {
	var local atomic.Int64
	go func() {
		e.state = atomic.Pointer[snapshot]{} // want `assigns over an atomic through e, racing its method calls`
		*b = atomic.Bool{}                   // want `assigns over an atomic through b, racing its method calls`
		ready = atomic.Bool{}                // want `assigns over atomic ready, racing its method calls`
		local = atomic.Int64{}               // want `assigns over atomic local, racing its method calls`
	}()
	_ = local
}
