// Package sharedmut is an analysistest fixture for the sharedmut
// analyzer: the legal worker merge path and every illegal shared-write
// shape inside goroutine closures.
package sharedmut

var hits int

type worker struct{ acc []float64 }

func (w *worker) process(x int) (float64, error) { return float64(x), nil }

// bumpGlobal carries the WritesShared fact.
func bumpGlobal() { hits++ }

// fanOut is the designated merge path: each goroutine writes only its
// own index of the captured result slices, with a closure-local index.
func fanOut(w *worker, items []int) ([]float64, []error) {
	results := make([]float64, len(items))
	errs := make([]error, len(items))
	for i := range items {
		go func(j int) {
			results[j], errs[j] = w.process(items[j]) // clean: disjoint partition
		}(i)
	}
	return results, errs
}

func badWrites(w *worker, items []int) float64 {
	total := 0.0
	m := make(map[int]float64)
	results := make([]float64, len(items))
	go func() {
		hits++ // want `writes package-level variable hits`
	}()
	go func(j int) {
		total += float64(j) // want `writes captured variable total`
	}(0)
	go func(j int) {
		m[j] = float64(j) // want `concurrent map writes race`
	}(1)
	go func() {
		results[0] = 1 // want `index not derived from closure-local state`
	}()
	go func() {
		w.acc = nil // want `writes through captured w`
	}()
	return total
}

func transitive() {
	go func() {
		bumpGlobal() // want `calls bumpGlobal, which writes shared state`
	}()
	go bumpGlobal() // want `goroutine runs bumpGlobal, which writes shared state`
}

func localState() {
	go func() {
		local := make([]int, 4)
		local[0] = 1 // clean: closure-local container
		sum := 0
		sum += local[0] // clean: closure-local scalar
		_ = sum
	}()
}

func blessed() {
	go func() {
		//rstknn:allow sharedmut single writer by construction here
		hits++
	}()
}
