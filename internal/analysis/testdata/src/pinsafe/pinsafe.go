// Package pinsafe is an analysistest fixture for the pinsafe analyzer:
// a Reclaimer/engine stand-in exercising the Pin/Release protocol over
// early returns, branch joins, loops, defers, and the closure-form pin
// helper.
package pinsafe

import "sync/atomic"

type PinToken struct{ epoch int64 }

type Reclaimer struct{}

func (r *Reclaimer) Pin() PinToken      { return PinToken{} }
func (r *Reclaimer) Release(t PinToken) {}

type State struct{ n int }

type Engine struct {
	state atomic.Pointer[State]
	rec   Reclaimer
}

// pin is the closure-form helper: the token and state escape into the
// returned release closure, so the obligation moves to the caller and
// pin itself is clean.
func (e *Engine) pin() (*State, func()) {
	tok := e.rec.Pin()
	st := e.state.Load()
	return st, func() { e.rec.Release(tok) }
}

// ------------------------------------------------------------------
// Release on every path

func deferRelease(e *Engine) int {
	tok := e.rec.Pin()
	defer e.rec.Release(tok)
	st := e.state.Load()
	return st.n
}

func straightLine(e *Engine, bad bool) (int, error) {
	tok := e.rec.Pin()
	st := e.state.Load()
	n := st.n
	e.rec.Release(tok)
	return n, nil
}

func leakOnErrorBranch(e *Engine, bad bool) (int, error) {
	tok := e.rec.Pin() // want `pin is not released on every path out of leakOnErrorBranch`
	st := e.state.Load()
	if bad {
		return 0, errNope // error path exits without Release
	}
	e.rec.Release(tok)
	return st.n, nil
}

// deferAfterReturn: a defer only covers exits AFTER the path executed
// it; the early return above it leaks the pin.
func deferAfterReturn(e *Engine, bad bool) int {
	tok := e.rec.Pin() // want `pin is not released on every path out of deferAfterReturn`
	if bad {
		return 0
	}
	defer e.rec.Release(tok)
	return e.state.Load().n
}

// branchJoinLeak releases on one branch only: the join keeps the
// may-unreleased bit.
func branchJoinLeak(e *Engine, done bool) {
	tok := e.rec.Pin() // want `pin is not released on every path out of branchJoinLeak`
	if done {
		e.rec.Release(tok)
	}
}

func branchJoinClean(e *Engine, done bool) {
	tok := e.rec.Pin()
	if done {
		e.rec.Release(tok)
	} else {
		e.rec.Release(tok)
	}
}

// loopClean pins and releases once per iteration; the back-edge join
// must not accumulate phantom held pins.
func loopClean(e *Engine, xs []int) int {
	total := 0
	for range xs {
		tok := e.rec.Pin()
		total += e.state.Load().n
		e.rec.Release(tok)
	}
	return total
}

// panicCovered: the deferred release covers the panicking exit too.
func panicCovered(e *Engine, bad bool) int {
	tok := e.rec.Pin()
	defer e.rec.Release(tok)
	if bad {
		panic("bad")
	}
	return e.state.Load().n
}

func discarded(e *Engine) {
	e.rec.Pin() // want `result of Pin is discarded`
}

// ------------------------------------------------------------------
// Closure-form pin (cross-function helper)

func closureDeferClean(e *Engine) int {
	st, release := e.pin()
	defer release()
	return st.n
}

func closureLeak(e *Engine, bad bool) int {
	st, release := e.pin() // want `pin is not released on every path out of closureLeak`
	n := st.n
	if bad {
		return 0 // leaks: release not yet deferred, not called
	}
	release()
	return n
}

// handBack returns the release closure: the obligation escapes to the
// caller, so no leak here.
func handBack(e *Engine) (int, func()) {
	st, release := e.pin()
	return st.n, release
}

// ------------------------------------------------------------------
// Load dominated by Pin

func undominatedLoad(e *Engine) int {
	st := e.state.Load() // want `atomic snapshot-pointer load is not dominated by Pin`
	return st.n
}

func undominatedLoadInReturn(e *Engine) int {
	return e.state.Load().n // want `atomic snapshot-pointer load is not dominated by Pin`
}

// dominatedOnOneBranchOnly: the must-pinned depth is the minimum over
// paths, so a pin on just one branch does not dominate the load.
func dominatedOnOneBranchOnly(e *Engine, lucky bool) int {
	var tok PinToken
	if lucky {
		tok = e.rec.Pin()
	}
	st := e.state.Load() // want `atomic snapshot-pointer load is not dominated by Pin`
	e.rec.Release(tok)
	return st.n
}

// ------------------------------------------------------------------
// No use after Release

func useAfterRelease(e *Engine) int {
	st, release := e.pin()
	release()
	return st.n // want `st is used after Release`
}

func useBeforeReleaseClean(e *Engine) int {
	st, release := e.pin()
	n := st.n
	release()
	return n
}

var errNope = errorString("nope")

type errorString string

func (e errorString) Error() string { return string(e) }
