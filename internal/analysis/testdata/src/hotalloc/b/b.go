// Package b holds hotpath roots whose violations are only visible
// through the facts of package a: without propagation, a.Grow is an
// unknown callee and nothing is reported.
package b

import "hotalloc/a"

//rstknn:hotpath cross-package scoring stand-in
func Score(xs []float64) float64 {
	buf := a.Grow() // want `call to hotalloc/a\.Grow may allocate`
	for _, x := range xs {
		buf = append(buf, x)
	}
	return float64(len(buf))
}

//rstknn:hotpath
func Accumulate(x float64) []float64 {
	out := a.Carve()
	grown := append(out, x) // clean: a.Carve's CapBacked fact proves capacity
	return grown
}
