// Package hotalloc is an analysistest fixture for the hotalloc
// analyzer: hotpath roots, every in-package allocation shape, the
// capacity-proof rules, and reachability through local helpers.
package hotalloc

import "fmt"

type part struct{ lower, upper float64 }

type sink interface{ consume(any) }

// carve returns a zero-length slice with reserved capacity, so it is
// CapBacked — appends to its result are proven. The reservation itself
// is blessed, like the real arena's amortized growth.
func carve(n int) []part {
	//rstknn:allow hotalloc arena-style reservation, amortized across a query
	return make([]part, 0, n)
}

// fresh allocates a new slice per call; callers on a hot path are
// tainted through reachability.
func fresh() []part {
	return make([]part, 4) // want `hot path \(via fresh\): make\(\[\]part\) allocates`
}

//rstknn:hotpath stand-in for the scoring inner loop
func score(sc []part, s sink, cold bool) float64 {
	buf := carve(8)
	buf = append(buf, part{})          // clean: capacity-backed destination
	grown := append(sc, part{1, 2})    // want `append without a capacity proof`
	lit := []float64{1, 2}             // want `slice literal allocates`
	m := map[int]int{}                 // want `map literal allocates`
	p := &part{}                       // want `&part escapes to the heap`
	v := part{}                        // plain value literal: stack, clean
	label := "q" + fmt.Sprint(len(sc)) // want `string concatenation allocates` `call to fmt\.Sprint may allocate`
	s.consume(v)                       // want `boxes a concrete value`
	if cold {
		_ = fresh() // reachable: fresh's own make is reported above
	}
	_, _, _, _, _ = grown, lit, m, p, label
	return float64(len(buf))
}

//rstknn:hotpath warm selector reuse
func (w *warm) add(val float64) {
	w.vals = append(w.vals, val) // clean: the amortized self-append idiom
}

type warm struct{ vals []float64 }

//rstknn:hotpath
func capture(base float64) func() float64 {
	return func() float64 { return base } // want `closure captures base`
}

// coldOnly is not reachable from any root: its allocations are free.
func coldOnly() []part {
	out := []part{}
	out = append(out, part{})
	return append(out, part{3, 4})
}

//rstknn:hotpath reslice proofs
func reslices(scratch []part) []part {
	a := scratch[:0]
	a = append(a, part{}) // clean: [:0] reuses the backing array
	b := scratch[0:2:2]
	b = append(b, part{}) // clean: three-index slice carries its capacity
	_ = a
	return b
}
