// Package a is the dependency side of the cross-package hotalloc
// fixture: its facts (Allocates, CapBacked) are only visible to package
// b through propagation.
package a

// Grow returns a fresh buffer each call — an allocating helper.
func Grow() []float64 {
	return make([]float64, 16)
}

// Carve returns a zero-length slice with reserved capacity.
func Carve() []float64 {
	//rstknn:allow hotalloc reservation amortized by the caller's reuse
	return make([]float64, 0, 16)
}
