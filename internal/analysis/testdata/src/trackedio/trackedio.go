// Package trackedio is an analysistest fixture: self-contained stand-ins
// for the storage/iurtree read APIs, exercising the trackedio analyzer.
package trackedio

type NodeID int32

type Tracker struct{}

type Node struct{}

type Store struct{}

func (s *Store) Get(id NodeID) ([]byte, error)                     { return nil, nil }
func (s *Store) GetTracked(id NodeID, tr *Tracker) ([]byte, error) { return nil, nil }

type Tree struct{ store *Store }

func (t *Tree) ReadNode(id NodeID) (*Node, error)                     { return nil, nil }
func (t *Tree) ReadNodeTracked(id NodeID, tr *Tracker) (*Node, error) { return nil, nil }

// Other types with colliding method names are not storage reads.
type Registry struct{}

func (r *Registry) Get(key string) string { return "" }

func traverse(t *Tree, tr *Tracker) {
	t.ReadNode(0)            // want `untracked Tree\.ReadNode`
	t.store.Get(0)           // want `untracked Store\.Get`
	t.ReadNodeTracked(0, tr) // tracked: clean
	t.store.GetTracked(0, tr)
}

// loadHeader is a maintenance path: the allowlist directive in the doc
// comment covers the whole function.
//
//rstknn:allow trackedio index load, not a query path
func loadHeader(t *Tree) {
	t.ReadNode(0)
	t.store.Get(1)
}

func inlineAllow(t *Tree) {
	//rstknn:allow trackedio one-off maintenance read
	t.ReadNode(0)
	t.store.Get(0) //rstknn:allow trackedio trailing-form directive
}

func notStorage(r *Registry) {
	r.Get("key") // different receiver type: clean
}
