// Package ctxflow is an analysistest fixture for the ctxflow analyzer.
// Its package path contains "internal/", so the no-context-minting rule
// applies as it does to the real library internals.
package ctxflow

import "context"

// QueryCtx is a well-formed entry point: exported, Ctx-suffixed, context
// first. Clean.
func QueryCtx(ctx context.Context, k int) error { return ctx.Err() }

// BatchCtx lost its context parameter.
func BatchCtx(k int) error { return nil } // want `Ctx-suffixed but does not take a context\.Context first`

func misplaced(k int, ctx context.Context) error { return ctx.Err() } // want `context\.Context must be the first parameter`

type Engine struct{}

// RunCtx is Ctx-suffixed with the context in the wrong slot: both rules
// fire.
func (e *Engine) RunCtx(k int, ctx context.Context) error { return ctx.Err() } // want `Ctx-suffixed but does not take a context\.Context first` `context\.Context must be the first parameter`

func mint() context.Context {
	return context.Background() // want `context\.Background\(\) in library internals`
}

func mintTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library internals`
}

func allowedMint() context.Context {
	//rstknn:allow ctxflow detached maintenance goroutine
	return context.Background()
}

// propagate is the correct internal shape: ctx first, threaded through.
func propagate(ctx context.Context, t *tree) error { return t.walk(ctx) }

type tree struct{}

func (t *tree) walk(ctx context.Context) error { return ctx.Err() }
