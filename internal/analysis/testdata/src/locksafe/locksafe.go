// Package locksafe is an analysistest fixture for the locksafe analyzer:
// shard-like structs with embedded locks, plus store stand-ins whose
// Get/GetTracked count as simulated I/O.
package locksafe

import "sync"

type NodeID int32

type Tracker struct{}

type Store struct{ mu sync.RWMutex }

func (s *Store) Get(id NodeID) ([]byte, error)                     { return nil, nil }
func (s *Store) GetTracked(id NodeID, tr *Tracker) ([]byte, error) { return nil, nil }

type shard struct {
	mu    sync.Mutex
	items map[NodeID][]byte
}

type pool struct{ shards []shard }

func copyParam(s shard) {} // want `passes a lock-bearing`

func (s shard) valueReceiver() {} // want `passes a lock-bearing`

func ptrParam(s *shard) {} // clean

func rangeCopy(p *pool) {
	for _, sh := range p.shards { // want `range copies a lock-bearing`
		_ = sh.items
	}
	for i := range p.shards { // by-index iteration: clean
		sh := &p.shards[i]
		_ = sh.items
	}
}

func derefCopy(sh *shard) {
	cp := *sh // want `assignment copies a lock-bearing`
	_ = cp
}

func lockedIO(s *Store) {
	s.mu.Lock()
	s.Get(0) // want `Store\.Get called while holding a lock`
	s.mu.Unlock()

	s.mu.Lock()
	s.mu.Unlock()
	s.Get(0) // released before the read: clean
}

func deferredLockedIO(s *Store, tr *Tracker) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.GetTracked(0, tr) // want `Store\.GetTracked called while holding a lock`
}

func lookupThenRead(s *Store) ([]byte, error) {
	s.mu.RLock()
	n := len(s.trailer())
	s.mu.RUnlock()
	if n == 0 {
		return nil, nil
	}
	return s.Get(0) // clean: lock released
}

func (s *Store) trailer() []byte { return nil }

func allowedLockedIO(s *Store) {
	s.mu.Lock()
	//rstknn:allow locksafe single-threaded recovery path
	s.Get(0)
	s.mu.Unlock()
}

// readAll hides the simulated I/O behind a helper; its PerformsIO fact
// makes the locked call below visible transitively.
func (s *Store) readAll() [][]byte {
	b, err := s.Get(0)
	if err != nil {
		return nil
	}
	return [][]byte{b}
}

func transitiveLockedIO(s *Store) {
	s.mu.Lock()
	s.readAll() // want `Store\.readAll performs simulated I/O .* while a lock is held`
	s.mu.Unlock()
	s.readAll() // clean: lock released
}
