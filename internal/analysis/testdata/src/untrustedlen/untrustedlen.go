// The untrustedlen fixture: integers decoded from untrusted page bytes
// must pass a dominating bounds check before reaching an allocation
// size, a slice index/reslice, or a narrowing conversion.
package untrustedlen

import (
	"encoding/binary"

	"untrustedlen/helper"
)

// --- allocation sinks -------------------------------------------------

func makeUnchecked(blob []byte) []int32 {
	n := int(binary.LittleEndian.Uint32(blob))
	return make([]int32, n) // want `make size derives from a 32-bit value decoded from untrusted bytes`
}

func makeChecked(blob []byte) []byte {
	n := int(binary.LittleEndian.Uint32(blob))
	if n < 0 || n > len(blob) {
		return nil
	}
	return make([]byte, n) // ok: dominated by the bounds check above
}

func makeUvarint(blob []byte) []byte {
	v, _ := binary.Uvarint(blob)
	return make([]byte, v) // want `make size derives from a 64-bit value decoded from untrusted bytes`
}

// The classic broken guard: 4+n*12 wraps on 32-bit platforms, so the
// comparison proves nothing — the analyzer rejects it and says why.
func makeOverflowGuard(blob []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(blob))
	need := 4 + n*12
	if len(blob) < need {
		return nil
	}
	return make([]uint64, n) // want `make size derives from .*; the bounds check at .* is ignored`
}

// The division form of the same guard is exact at every int width.
func makeDivisionGuard(blob []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(blob))
	if n > (len(blob)-4)/12 {
		return nil
	}
	return make([]uint64, n) // ok: division-form guard cannot overflow
}

// Comparing two attacker-chosen values sanitizes nothing.
func makeWildPair(blob []byte) []byte {
	a := int(binary.LittleEndian.Uint32(blob))
	b := int(binary.LittleEndian.Uint32(blob[4:]))
	if a > b {
		return nil
	}
	return make([]byte, a) // want `make size derives from a 32-bit value`
}

func makeBlessed(blob []byte) []byte {
	n := int(binary.LittleEndian.Uint32(blob))
	return make([]byte, n) //rstknn:validated fixture: the caller guarantees n ≤ page size
}

// --- index and reslice sinks ------------------------------------------

func indexUnchecked(blob []byte, table []float64) float64 {
	i := int(binary.LittleEndian.Uint16(blob))
	return table[i] // want `index derives from a 16-bit value decoded from untrusted bytes`
}

func indexChecked(blob []byte, table []float64) float64 {
	i := int(binary.LittleEndian.Uint16(blob))
	if i >= len(table) {
		return 0
	}
	return table[i] // ok: uint16 widens non-negative, upper bound checked
}

// A same-width reinterpreting cast can go negative: an upper bound
// alone is not enough.
func indexNegative(blob []byte, table []float64) float64 {
	id := int32(binary.LittleEndian.Uint32(blob))
	if int(id) >= len(table) {
		return 0
	}
	return table[id] // want `index from .* may be negative`
}

func indexNegativeChecked(blob []byte, table []float64) float64 {
	id := int32(binary.LittleEndian.Uint32(blob))
	if id < 0 || int(id) >= len(table) {
		return 0
	}
	return table[id] // ok: both bounds checked
}

func resliceUnchecked(blob []byte) []byte {
	off := int(binary.LittleEndian.Uint32(blob))
	return blob[off:] // want `slice bound derives from a 32-bit value`
}

func resliceChecked(blob []byte) []byte {
	off := int(binary.LittleEndian.Uint32(blob))
	if off > len(blob) {
		return nil
	}
	return blob[off:] // ok: bounded by the blob length
}

// --- narrowing conversion sinks ----------------------------------------

func narrowUnchecked(blob []byte) int16 {
	v := binary.LittleEndian.Uint64(blob)
	return int16(v) // want `conversion to int16 may truncate`
}

func narrowChecked(blob []byte) int16 {
	v := binary.LittleEndian.Uint64(blob)
	if v > 1000 {
		return 0
	}
	return int16(v) // ok: the checked magnitude fits int16
}

// --- cross-package flows (ride the facts) ------------------------------

func crossResult(blob []byte, table []int) int {
	n := helper.DecodeCount(blob)
	return table[n] // want `index derives from a 32-bit value decoded from untrusted bytes`
}

func crossResultChecked(blob []byte, table []int) int {
	n := helper.DecodeCount(blob)
	if n >= len(table) {
		return 0
	}
	return table[n] // ok: fact-carried taint sanitized like a local decode
}

func crossSink(blob []byte, table []int) {
	i := int(binary.LittleEndian.Uint32(blob))
	helper.Fill(table, i, 1) // want `argument 1 of untrustedlen/helper.Fill flows from .* to an unvalidated index sink`
}

func crossSinkChecked(blob []byte, table []int) {
	i := int(binary.LittleEndian.Uint32(blob))
	if i >= len(table) {
		return
	}
	helper.Fill(table, i, 1) // ok: bounded and non-negative at the call site
}

func crossSinkValidatedCallee(blob []byte, table []int) {
	i := int(binary.LittleEndian.Uint32(blob))
	helper.FillChecked(table, i, 1) // ok: the callee validates internally, no SinkParams fact
}
