// Package helper is the dependency side of the cross-package
// untrustedlen fixture: its TaintResults/SinkParams facts are only
// visible to the root package through fact propagation.
package helper

import "encoding/binary"

// DecodeCount returns a count decoded straight from untrusted bytes —
// it exports a TaintResults fact, so callers must bounds-check the
// result exactly like a local decode.
func DecodeCount(blob []byte) int {
	if len(blob) < 4 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(blob))
}

// Fill stores through an unvalidated parameter index — it exports a
// SinkParams fact, so the CALL SITE is flagged when a tainted index
// flows in; no diagnostic lands here (the parameter may be fine).
func Fill(table []int, i int, v int) {
	table[i] = v
}

// FillChecked validates its index first: no SinkParams fact, callers
// may pass anything.
func FillChecked(table []int, i int, v int) {
	if i < 0 || i >= len(table) {
		return
	}
	table[i] = v
}
