package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestPinSafe(t *testing.T) {
	analysistest.Run(t, analysis.PinSafe, "pinsafe")
}
