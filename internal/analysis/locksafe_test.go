package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysis.LockSafe, "locksafe")
}
