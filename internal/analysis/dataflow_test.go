package analysis_test

import (
	"go/ast"
	"sort"
	"testing"

	"rstknn/internal/analysis"
)

// callsSet reports whether n contains a call to the marker function
// set(). The test flows below track a single "set() has run" bit.
func callsSet(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "set" {
				found = true
			}
		}
		return !found
	})
	return found
}

// setFlow is a one-bit flow: the bit turns on at set() and joins with
// the given operator — AND for must, OR for may.
func setFlow(join func(a, b bool) bool) *analysis.Flow[bool] {
	return &analysis.Flow[bool]{
		Entry: false,
		Join:  join,
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(n ast.Node, s bool) bool {
			if callsSet(n) {
				return true
			}
			return s
		},
	}
}

func mustJoin(a, b bool) bool { return a && b }
func mayJoin(a, b bool) bool  { return a || b }

// solveBody runs the flow over body and folds the exit states with the
// same join operator.
func solveBody(t *testing.T, body string, join func(a, b bool) bool) (exit bool, exits int) {
	t.Helper()
	_, blk := parseBody(t, body)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, setFlow(join))
	first := true
	sol.ExitStates(func(s bool) {
		exits++
		if first {
			exit, first = s, false
			return
		}
		exit = join(exit, s)
	})
	return exit, exits
}

func TestSolveBranchJoin(t *testing.T) {
	body := `
if c {
	set()
}
use()
`
	if exit, _ := solveBody(t, body, mustJoin); exit {
		t.Error("must-join: set() on one branch only, but exit state is true")
	}
	if exit, _ := solveBody(t, body, mayJoin); !exit {
		t.Error("may-join: set() on one branch, but exit state is false")
	}
}

func TestSolveBothBranchesMust(t *testing.T) {
	exit, _ := solveBody(t, `
if c {
	set()
} else {
	set()
}
use()
`, mustJoin)
	if !exit {
		t.Error("must-join: set() on every branch, but exit state is false")
	}
}

func TestSolveLoopZeroIterations(t *testing.T) {
	body := `
for i := 0; i < n; i++ {
	set()
}
use()
`
	if exit, _ := solveBody(t, body, mustJoin); exit {
		t.Error("must-join: the zero-iteration path skips set(), but exit state is true")
	}
	if exit, _ := solveBody(t, body, mayJoin); !exit {
		t.Error("may-join: the loop body runs set(), but exit state is false")
	}
}

func TestSolveEarlyReturnExitStates(t *testing.T) {
	_, blk := parseBody(t, `
if c {
	return
}
set()
`)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, setFlow(mustJoin))
	var states []bool
	sol.ExitStates(func(s bool) { states = append(states, s) })
	if len(states) != 2 {
		t.Fatalf("got %d exit states, want 2 (early return + fall-off)", len(states))
	}
	sort.Slice(states, func(i, j int) bool { return !states[i] && states[j] })
	if states[0] != false || states[1] != true {
		t.Errorf("exit states = %v, want one false (early return) and one true (fall-off after set)", states)
	}
}

func TestSolveInfiniteLoopNoExitStates(t *testing.T) {
	if _, exits := solveBody(t, `
for {
	set()
}
`, mustJoin); exits != 0 {
		t.Errorf("for{} never exits, but ExitStates visited %d paths", exits)
	}
}

func TestWalkSeesPreStates(t *testing.T) {
	fset, blk := parseBody(t, `
set()
use()
`)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, setFlow(mustJoin))
	before := make(map[string]bool)
	sol.Walk(func(n ast.Node, s bool) {
		before[nodeStr(fset, n)] = s
	})
	if before["set()"] {
		t.Error("state before set() should be false")
	}
	if !before["use()"] {
		t.Error("state before use() should be true (set already ran)")
	}
}

func TestWalkVisitsEachNodeOnce(t *testing.T) {
	fset, blk := parseBody(t, `
for i := 0; i < n; i++ {
	set()
	use()
}
use()
`)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, setFlow(mayJoin))
	visits := make(map[string]int)
	sol.Walk(func(n ast.Node, _ bool) {
		visits[nodeStr(fset, n)]++
	})
	// Walk replays the fixed point once per block: even with the loop's
	// back edge, each node is visited exactly once.
	if visits["set()"] != 1 {
		t.Errorf("loop body node visited %d times, want 1", visits["set()"])
	}
	// use() appears twice in the source; both copies render identically,
	// so the shared key accumulates exactly 2.
	if visits["use()"] != 2 {
		t.Errorf("the two use() statements were visited %d times total, want 2", visits["use()"])
	}
}

func TestSolveLoopCarriedState(t *testing.T) {
	// The bit set in iteration k must reach the head for iteration k+1
	// under may semantics: the in-state of the loop body stabilizes true.
	fset, blk := parseBody(t, `
for i := 0; i < n; i++ {
	use()
	set()
}
`)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, setFlow(mayJoin))
	var beforeUse bool
	sol.Walk(func(n ast.Node, s bool) {
		if nodeStr(fset, n) == "use()" {
			beforeUse = s
		}
	})
	if !beforeUse {
		t.Error("may-join: set() from the previous iteration should reach use() via the back edge")
	}
}
