package analysis

import (
	"go/ast"
	"go/types"
)

// The storage and tree layers expose raw read methods (Get, ReadNode)
// purely as conveniences over their *Tracked variants. The matchers below
// classify method calls by receiver type name + method name rather than
// by import path, so the same analyzers run both on the real packages and
// on the self-contained analysistest fixtures.

// methodCall resolves a call expression to (receiver named type, method
// name). It reports false for plain function calls and unresolved code.
func methodCall(info *types.Info, call *ast.CallExpr) (*types.Named, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, "", false
	}
	return named, sel.Sel.Name, true
}

// storeTypeNames are the named types acting as blob stores.
var storeTypeNames = map[string]bool{"Store": true, "FileStore": true, "Blobs": true}

// rawReadCall reports whether call is an untracked simulated-I/O read:
// Tree.ReadNode or a Get on a store type. These drop per-query I/O
// attribution and are what the trackedio analyzer flags.
func rawReadCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	named, method, ok := methodCall(info, call)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	switch {
	case method == "ReadNode" && name == "Tree":
		return name + ".ReadNode", true
	case method == "Get" && storeTypeNames[name]:
		return name + ".Get", true
	}
	return "", false
}

// ioReadCall reports whether call performs simulated node/blob I/O at
// all, tracked or not. The locksafe analyzer forbids these while a lock
// is held.
func ioReadCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if name, ok := rawReadCall(info, call); ok {
		return name, true
	}
	named, method, ok := methodCall(info, call)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	switch {
	case method == "ReadNodeTracked" && name == "Tree":
		return name + ".ReadNodeTracked", true
	case method == "GetTracked" && storeTypeNames[name]:
		return name + ".GetTracked", true
	}
	return "", false
}
