package analysis

// A stdlib-only implementation of the `go vet -vettool` driver protocol
// (the "unitchecker" protocol of golang.org/x/tools, which this module
// cannot depend on). The go command invokes the tool three ways:
//
//	tool -V=full       print a version fingerprint (for build caching)
//	tool -flags        describe analyzer flags as JSON
//	tool <unit>.cfg    analyze one compilation unit described by the
//	                   JSON config file, writing facts to cfg.VetxOutput
//	                   and diagnostics to stderr (exit 1 when any)
//
// Type information for imports comes from the export-data files the go
// command already produced for the build, via go/importer.ForCompiler
// with a lookup into cfg.PackageFile. The analyzers in this package use
// no cross-package facts, so the facts file is written empty and
// fact-only (VetxOnly) invocations return immediately.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON compilation-unit description the go command
// hands to a vettool. Field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point of cmd/rstknn-lint: a vet-compatible driver
// running the given analyzers on one compilation unit per invocation.
func VetMain(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printVersion := flag.String("V", "", "print version and exit (-V=full)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	flag.Parse()

	switch {
	case *printVersion != "":
		versionFingerprint(*printVersion)
		return
	case *printFlags:
		// No analyzer exposes flags; report an empty list so go vet
		// passes none through.
		fmt.Print("[]")
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: run via go vet -vettool=%s ./... (direct invocation takes a single unit.cfg)", progname)
	}
	os.Exit(runUnit(args[0], analyzers, *jsonOut, os.Stdout, os.Stderr))
}

// versionFingerprint implements the -V=full handshake: the go command
// caches vet results keyed on this line, so it must change whenever the
// tool binary changes. Hashing the executable achieves that.
func versionFingerprint(mode string) {
	if mode != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", mode)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
}

// runUnit analyzes the compilation unit described by cfgPath and returns
// the process exit code.
func runUnit(cfgPath string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgPath, err)
	}

	// The go command expects a facts file even from fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// Dependencies are analyzed only for facts; we have none.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  cfgImporter(&cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	diags := make(map[string][]Diagnostic)
	for _, a := range analyzers {
		pass := NewPass(a, fset, files, pkg, info, func(d Diagnostic) {
			diags[a.Name] = append(diags[a.Name], d)
		})
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	if jsonOut {
		printJSONDiagnostics(stdout, fset, cfg.ID, analyzers, diags)
		return 0
	}
	exit := 0
	for _, a := range analyzers {
		for _, d := range diags[a.Name] {
			fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	return exit
}

// newTypesInfo allocates every map go/types can fill; the analyzers need
// Selections, Types, and Uses, and the rest is cheap.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// cfgImporter resolves imports through the export-data files listed in
// the unit config, exactly as the go command prepared them.
func cfgImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printJSONDiagnostics emits the {pkgID: {analyzer: [diagnostic]}} shape
// `go vet -json` merges across units.
func printJSONDiagnostics(w io.Writer, fset *token.FileSet, id string, analyzers []*Analyzer, diags map[string][]Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	unit := make(map[string][]jsonDiag)
	for _, a := range analyzers {
		ds := diags[a.Name]
		if len(ds) == 0 {
			continue
		}
		out := make([]jsonDiag, len(ds))
		for i, d := range ds {
			out[i] = jsonDiag{Posn: fset.Position(d.Pos).String(), Message: d.Message}
		}
		unit[a.Name] = out
	}
	enc, err := json.MarshalIndent(map[string]map[string][]jsonDiag{id: unit}, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(append(enc, '\n')); err != nil {
		log.Fatal(err)
	}
}
