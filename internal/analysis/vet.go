package analysis

// A stdlib-only implementation of the `go vet -vettool` driver protocol
// (the "unitchecker" protocol of golang.org/x/tools, which this module
// cannot depend on). The go command invokes the tool three ways:
//
//	tool -V=full       print a version fingerprint (for build caching)
//	tool -flags        describe analyzer flags as JSON
//	tool <unit>.cfg    analyze one compilation unit described by the
//	                   JSON config file, writing facts to cfg.VetxOutput
//	                   and diagnostics to stderr (exit 1 when any)
//
// Type information for imports comes from the export-data files the go
// command already produced for the build, via go/importer.ForCompiler
// with a lookup into cfg.PackageFile.
//
// Facts ride the protocol's .vetx files: for every unit the driver reads
// the facts of its imports from cfg.PackageVetx, hands them to the
// dataflow engine (Summarize), and writes the merged result — imported
// facts plus the unit's own interesting summaries — to cfg.VetxOutput,
// so facts reach indirect importers transitively. Fact-only (VetxOnly)
// invocations run exactly that pipeline and skip the analyzers;
// standard-library units short-circuit to an empty facts file (their
// allocation behavior is covered by a fixed assumption table instead —
// see summary.go).

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// lintSchemaVersion is the version stamp of the JSON report shape
// emitted by -json. Bump it whenever a field is added, removed, or
// changes meaning, so report consumers can reject shapes they do not
// understand. v2 added schema_version itself and per-analyzer
// elapsed_us.
const lintSchemaVersion = 2

// vetNow is the clock behind the per-analyzer timings; a variable so
// the determinism test can pin it.
var vetNow = time.Now

// vetConfig mirrors the JSON compilation-unit description the go command
// hands to a vettool. Field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point of cmd/rstknn-lint: a vet-compatible driver
// running the given analyzers on one compilation unit per invocation.
func VetMain(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printVersion := flag.String("V", "", "print version and exit (-V=full)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	baseline := flag.String("baseline", "", "file of known diagnostics to filter out")
	flag.Parse()

	switch {
	case *printVersion != "":
		versionFingerprint(*printVersion)
		return
	case *printFlags:
		// Declare the tool's flags so the go command forwards matching
		// command-line flags (go vet -vettool=… -json -baseline=…) to
		// every unit invocation.
		fmt.Print(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"},` +
			`{"Name":"baseline","Bool":false,"Usage":"file of known diagnostics to filter out"}]`)
		return
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: run via go vet -vettool=%s ./... (direct invocation takes a single unit.cfg)", progname)
	}
	os.Exit(runUnit(args[0], analyzers, *jsonOut, *baseline, os.Stdout, os.Stderr))
}

// versionFingerprint implements the -V=full handshake: the go command
// caches vet results keyed on this line, so it must change whenever the
// tool binary changes. Hashing the executable achieves that.
func versionFingerprint(mode string) {
	if mode != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", mode)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", exe, h.Sum(nil))
}

// runUnit analyzes the compilation unit described by cfgPath and returns
// the process exit code.
func runUnit(cfgPath string, analyzers []*Analyzer, jsonOut bool, baselinePath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgPath, err)
	}

	// The go command expects a facts file from every invocation.
	writeFacts := func(store *FactStore) {
		if cfg.VetxOutput == "" {
			return
		}
		if store == nil {
			store = NewFactStore()
		}
		if err := store.WriteFile(cfg.VetxOutput); err != nil {
			log.Fatalf("writing facts output: %v", err)
		}
	}

	// Standard-library units contribute no facts — hot-path calls into
	// them are judged by the assumption table in summary.go — so the
	// parse is skipped entirely. The go command's Standard map lists a
	// unit's standard *dependencies*, not the unit itself, so the unit's
	// own provenance is detected by its files living under GOROOT.
	if cfg.Standard[cfg.ImportPath] || standardUnit(&cfg) {
		writeFacts(nil)
		return 0
	}

	// Facts of the import closure. Each dependency's facts file already
	// contains its own transitive closure, so overlapping entries are
	// identical and merge order does not matter.
	imported := NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		st, err := ReadFactsFile(vetx)
		if err != nil {
			log.Fatalf("reading facts of %s: %v", path, err)
		}
		imported.Merge(st)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts(nil)
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  cfgImporter(&cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(nil)
			return 0
		}
		log.Fatal(err)
	}

	pf := Summarize(fset, files, pkg, info, imported)
	writeFacts(pf.ExportStore())
	if cfg.VetxOnly {
		// Dependencies are analyzed for facts only.
		return 0
	}

	diags := make(map[string][]Diagnostic)
	suppressed := make(map[string]int)
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := NewPass(a, fset, files, pkg, info, pf, func(d Diagnostic) {
			diags[a.Name] = append(diags[a.Name], d)
		})
		start := vetNow()
		if err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
		elapsed[a.Name] = vetNow().Sub(start)
		if n := pass.Suppressed(); n > 0 {
			suppressed[a.Name] += n
		}
	}

	if baselinePath != "" {
		known, err := readBaseline(baselinePath)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		applyBaseline(known, fset, analyzers, diags)
	}

	if jsonOut {
		printJSONDiagnostics(stdout, fset, cfg.ID, analyzers, diags, suppressed, elapsed)
		return 0
	}
	exit := 0
	for _, a := range analyzers {
		for _, d := range diags[a.Name] {
			fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	return exit
}

// standardUnit reports whether the unit's sources live in GOROOT.
func standardUnit(cfg *vetConfig) bool {
	goroot := build.Default.GOROOT
	if goroot == "" || len(cfg.GoFiles) == 0 {
		return false
	}
	prefix := goroot + string(filepath.Separator)
	for _, f := range cfg.GoFiles {
		if !strings.HasPrefix(f, prefix) {
			return false
		}
	}
	return true
}

// readBaseline parses a baseline file: one "file:line[:col]: message"
// diagnostic per line, as written by redirecting a vet run's stderr
// (# comments and blank lines ignored). Matching is by base filename
// and message — line numbers shift too easily to key on — and counted:
// an entry appearing N times suppresses at most N matching findings,
// so when a baselined problem multiplies, the new occurrences still
// surface.
func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	known := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		posn, msg, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		file := posn
		if i := strings.Index(posn, ":"); i >= 0 {
			file = posn[:i]
		}
		known[baselineKey(filepath.Base(file), msg)]++
	}
	return known, nil
}

// applyBaseline removes findings covered by the baseline, consuming one
// count per match. Analyzers are processed in registration order and
// findings in report order, so a short-counted baseline suppresses the
// same occurrences on every run.
func applyBaseline(known map[string]int, fset *token.FileSet, analyzers []*Analyzer, diags map[string][]Diagnostic) {
	for _, a := range analyzers {
		ds := diags[a.Name]
		kept := ds[:0]
		for _, d := range ds {
			key := baselineKey(filepath.Base(fset.Position(d.Pos).Filename), d.Message)
			if known[key] > 0 {
				known[key]--
				continue
			}
			kept = append(kept, d)
		}
		diags[a.Name] = kept
	}
}

func baselineKey(file, message string) string {
	return file + "\x00" + message
}

// newTypesInfo allocates every map go/types can fill; the analyzers need
// Selections, Types, and Uses, and the rest is cheap.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// cfgImporter resolves imports through the export-data files listed in
// the unit config, exactly as the go command prepared them.
func cfgImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printJSONDiagnostics emits one unit's report keyed by package ID, the
// shape per-unit outputs are merged under:
//
//	{"<id>": {"schema_version": 2,
//	          "diagnostics": {"<analyzer>": [{posn, message, analyzer}]},
//	          "counts":      {"<analyzer>": n},
//	          "elapsed_us":  {"<analyzer>": µs},
//	          "suppressed":  {"<analyzer>": count}}}
//
// counts and elapsed_us carry one entry per registered analyzer, zeroes
// included, so the report proves which analyzers ran (a missing pinsafe
// key reads as "not wired in"; an explicit 0 reads as "ran clean") and
// where the lint budget goes. suppressed counts the findings
// //rstknn:allow directives silenced, per analyzer — the audit surface
// for exceptions.
func printJSONDiagnostics(w io.Writer, fset *token.FileSet, id string, analyzers []*Analyzer, diags map[string][]Diagnostic, suppressed map[string]int, elapsed map[string]time.Duration) {
	type jsonDiag struct {
		Posn     string `json:"posn"`
		Message  string `json:"message"`
		Analyzer string `json:"analyzer"`
	}
	type jsonUnit struct {
		SchemaVersion int                   `json:"schema_version"`
		Diagnostics   map[string][]jsonDiag `json:"diagnostics"`
		Counts        map[string]int        `json:"counts"`
		ElapsedUs     map[string]int64      `json:"elapsed_us"`
		Suppressed    map[string]int        `json:"suppressed"`
	}
	unit := jsonUnit{
		SchemaVersion: lintSchemaVersion,
		Diagnostics:   make(map[string][]jsonDiag),
		Counts:        make(map[string]int, len(analyzers)),
		ElapsedUs:     make(map[string]int64, len(analyzers)),
		Suppressed:    suppressed,
	}
	for _, a := range analyzers {
		ds := diags[a.Name]
		unit.Counts[a.Name] = len(ds)
		unit.ElapsedUs[a.Name] = elapsed[a.Name].Microseconds()
		if len(ds) == 0 {
			continue
		}
		out := make([]jsonDiag, len(ds))
		for i, d := range ds {
			out[i] = jsonDiag{
				Posn:     fset.Position(d.Pos).String(),
				Message:  d.Message,
				Analyzer: d.Analyzer,
			}
		}
		unit.Diagnostics[a.Name] = out
	}
	enc, err := json.MarshalIndent(map[string]jsonUnit{id: unit}, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Write(append(enc, '\n')); err != nil {
		log.Fatal(err)
	}
}
