package analysis_test

import (
	"strings"
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestUntrustedLen(t *testing.T) {
	analysistest.Run(t, analysis.UntrustedLen, "untrustedlen")
}

func TestUntrustedLenHelperPackage(t *testing.T) {
	// The helper's unvalidated sink is parameter-derived: it must export
	// a SinkParams fact, not a local diagnostic, so the helper package
	// itself is clean.
	analysistest.Run(t, analysis.UntrustedLen, "untrustedlen/helper")
}

// TestUntrustedLenCrossPackageNeedsFacts proves both halves of the
// interprocedural story ride the facts: with the helper's facts, the
// fact-carried taint of DecodeCount's result and the SinkParams fact on
// Fill both surface at the caller; without them the calls go silent,
// while same-package findings are unaffected.
func TestUntrustedLenCrossPackageNeedsFacts(t *testing.T) {
	has := func(ds []analysis.Diagnostic, sub string) bool {
		for _, d := range ds {
			if strings.Contains(d.Message, sub) {
				return true
			}
		}
		return false
	}

	with := analysistest.Diagnostics(t, analysis.UntrustedLen, "untrustedlen", true)
	if !has(with, "untrustedlen/helper.Fill") {
		t.Errorf("with facts: missing the Fill call-site sink diagnostic; got %v", with)
	}
	if !has(with, "helper.go") {
		t.Errorf("with facts: missing the fact-carried DecodeCount taint (why should cite helper.go); got %v", with)
	}

	without := analysistest.Diagnostics(t, analysis.UntrustedLen, "untrustedlen", false)
	if has(without, "untrustedlen/helper.Fill") {
		t.Errorf("without facts: Fill's SinkParams fact should be invisible; got %v", without)
	}
	if has(without, "helper.go") {
		t.Errorf("without facts: DecodeCount's TaintResults fact should be invisible; got %v", without)
	}
	if !has(without, "make size derives") {
		t.Errorf("without facts: same-package findings should survive; got %v", without)
	}
}
