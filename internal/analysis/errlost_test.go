package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestErrLost(t *testing.T) {
	analysistest.Run(t, analysis.ErrLost, "rstknn/internal/core")
}

// TestErrLostScopedToStoragePackages: the analyzer must stay silent
// outside internal/core, internal/storage, and internal/iurtree — the
// sharedmut fixture drops errors freely and must produce no errlost
// findings.
func TestErrLostScopedToStoragePackages(t *testing.T) {
	if ds := analysistest.Diagnostics(t, analysis.ErrLost, "sharedmut", true); len(ds) != 0 {
		t.Errorf("errlost reported outside its package scope: %v", ds)
	}
}
