package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces the context-propagation contract of the query engine:
//
//  1. Library internals (packages under internal/) never call
//     context.Background() or context.TODO() — a query's context is minted
//     exactly once, at the public API boundary, so cancellation and
//     deadlines flow through every traversal.
//  2. A context.Context parameter is always the first parameter.
//  3. An exported *Ctx-suffixed function or method really accepts a
//     context.Context as its first parameter.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported query entry points must accept and propagate " +
		"context.Context; library internals must not mint their own",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	internal := strings.Contains(pass.Pkg.Path(), "internal/")
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if internal {
					if name, ok := contextMint(pass.TypesInfo, n); ok {
						pass.Reportf(n.Pos(),
							"context.%s() in library internals breaks cancellation flow; accept a ctx from the caller or annotate with //rstknn:allow ctxflow <reason>",
							name)
					}
				}
			case *ast.FuncDecl:
				checkCtxParams(pass, n)
			}
			return true
		})
	}
	return nil
}

// contextMint reports calls to context.Background or context.TODO.
func contextMint(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	params := flattenParams(pass, fd.Type.Params)
	for i, p := range params {
		if isContextType(p.typ) && i > 0 {
			pass.Reportf(p.pos, "context.Context must be the first parameter of %s", fd.Name.Name)
		}
	}
	name := fd.Name.Name
	if ast.IsExported(name) && strings.HasSuffix(name, "Ctx") && len(name) > len("Ctx") {
		if len(params) == 0 || !isContextType(params[0].typ) {
			pass.Reportf(fd.Name.Pos(),
				"exported entry point %s is Ctx-suffixed but does not take a context.Context first parameter", name)
		}
	}
}

type param struct {
	pos token.Pos
	typ types.Type
}

// flattenParams expands a parameter field list into one entry per
// declared parameter (a field like "a, b int" yields two).
func flattenParams(pass *Pass, fl *ast.FieldList) []param {
	if fl == nil {
		return nil
	}
	var out []param
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if len(field.Names) == 0 {
			out = append(out, param{pos: field.Type.Pos(), typ: t})
			continue
		}
		for _, name := range field.Names {
			out = append(out, param{pos: name.Pos(), typ: t})
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
