package analysis_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"testing"

	"rstknn/internal/analysis"
)

// parseBody wraps body in a function, parses it (no type checking — the
// CFG is purely syntactic), and returns the fileset and block.
func parseBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return fset, file.Decls[0].(*ast.FuncDecl).Body
}

func nodeStr(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<unprintable>"
	}
	return buf.String()
}

// trivialFlow is the unit flow: solving with it computes pure
// reachability, and Walk then enumerates every reachable node.
func trivialFlow() *analysis.Flow[struct{}] {
	return &analysis.Flow[struct{}]{
		Join:     func(a, _ struct{}) struct{} { return a },
		Equal:    func(_, _ struct{}) bool { return true },
		Transfer: func(_ ast.Node, s struct{}) struct{} { return s },
	}
}

// reachedNodes builds the CFG for body and returns the rendered source
// of every node the solver can reach, in block order.
func reachedNodes(t *testing.T, body string) (*analysis.CFG, map[string]int) {
	t.Helper()
	fset, blk := parseBody(t, body)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, trivialFlow())
	seen := make(map[string]int)
	sol.Walk(func(n ast.Node, _ struct{}) {
		seen[nodeStr(fset, n)]++
	})
	return g, seen
}

// reachedExitPreds counts the exit predecessors reachability actually
// arrives at (the CFG keeps a fall-off-the-end edge even when the block
// in front of it is dead).
func reachedExitPreds(t *testing.T, body string) int {
	t.Helper()
	_, blk := parseBody(t, body)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, trivialFlow())
	n := 0
	sol.ExitStates(func(struct{}) { n++ })
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g, seen := reachedNodes(t, `
x := 1
x++
_ = x
`)
	for _, want := range []string{"x := 1", "x++", "_ = x"} {
		if seen[want] != 1 {
			t.Errorf("statement %q visited %d times, want 1", want, seen[want])
		}
	}
	if got := len(g.ExitPreds()); got != 1 {
		t.Errorf("straight line has %d exit preds, want 1", got)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	_, seen := reachedNodes(t, `
y := 0
_ = y
return
y = 1
`)
	if seen["y = 1"] != 0 {
		t.Errorf("statement after return was reached %d times", seen["y = 1"])
	}
	if seen["y := 0"] != 1 {
		t.Errorf("statement before return visited %d times, want 1", seen["y := 0"])
	}
}

func TestCFGUnreachableAfterPanic(t *testing.T) {
	_, seen := reachedNodes(t, `
if c {
	panic("boom")
	y := 2
	_ = y
}
x := 1
_ = x
`)
	if seen["y := 2"] != 0 {
		t.Errorf("statement after panic was reached %d times", seen["y := 2"])
	}
	if seen["x := 1"] != 1 {
		t.Errorf("join after the if visited %d times, want 1", seen["x := 1"])
	}
}

func TestCFGEarlyReturnExitPaths(t *testing.T) {
	if got := reachedExitPreds(t, `
if c {
	return
}
x := 1
_ = x
`); got != 2 {
		t.Errorf("early return + fall-off: %d exit paths, want 2", got)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	fset, blk := parseBody(t, `
for i := 0; i < n; i++ {
	x += i
}
done := true
_ = done
`)
	g := analysis.NewCFG(blk)
	sol := analysis.Solve(g, trivialFlow())
	// The head block carries the loop condition; the back edge from the
	// post block gives it a second predecessor.
	var head *analysis.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if nodeStr(fset, n) == "i < n" {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no block carries the loop condition")
	}
	if len(head.Preds) < 2 {
		t.Errorf("loop head has %d preds, want >= 2 (init edge + back edge)", len(head.Preds))
	}
	reachedAfter := false
	sol.Walk(func(n ast.Node, _ struct{}) {
		if nodeStr(fset, n) == "done := true" {
			reachedAfter = true
		}
	})
	if !reachedAfter {
		t.Error("statement after the loop is unreachable")
	}
}

func TestCFGInfiniteLoopHasNoExitPath(t *testing.T) {
	if got := reachedExitPreds(t, `
for {
	x++
}
`); got != 0 {
		t.Errorf("for{} with no break: %d reachable exit paths, want 0", got)
	}
}

func TestCFGLoopBreakReachesAfter(t *testing.T) {
	_, seen := reachedNodes(t, `
for {
	if c {
		break
	}
	x++
}
after := 1
_ = after
`)
	if seen["after := 1"] != 1 {
		t.Errorf("break target visited %d times, want 1", seen["after := 1"])
	}
}

func TestCFGSwitchWithoutDefaultFallsThrough(t *testing.T) {
	_, seen := reachedNodes(t, `
switch x {
case 1:
	return
}
y := 1
_ = y
`)
	if seen["y := 1"] != 1 {
		t.Errorf("no-default switch: after-statement visited %d times, want 1", seen["y := 1"])
	}
}

func TestCFGSwitchAllCasesReturnWithDefault(t *testing.T) {
	_, seen := reachedNodes(t, `
switch x {
case 1:
	return
default:
	return
}
y := 1
_ = y
`)
	if seen["y := 1"] != 0 {
		t.Errorf("exhaustive switch: after-statement reached %d times, want 0", seen["y := 1"])
	}
}

func TestCFGGotoSkipsStraightLine(t *testing.T) {
	_, seen := reachedNodes(t, `
goto done
x := 1
_ = x
done:
_ = 2
`)
	if seen["x := 1"] != 0 {
		t.Errorf("statement jumped over by goto reached %d times", seen["x := 1"])
	}
	if seen["_ = 2"] != 1 {
		t.Errorf("goto target visited %d times, want 1", seen["_ = 2"])
	}
}

func TestCFGRangeBodyNotDuplicated(t *testing.T) {
	// The RangeStmt head node contains the body syntactically; the body
	// statements must still appear in exactly one block each, and
	// transfer functions see them exactly once via Walk.
	_, seen := reachedNodes(t, `
for _, v := range xs {
	sum += v
}
_ = sum
`)
	if seen["sum += v"] != 1 {
		t.Errorf("range body statement visited %d times, want 1", seen["sum += v"])
	}
}
