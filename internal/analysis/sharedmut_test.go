package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestSharedMut(t *testing.T) {
	analysistest.Run(t, analysis.SharedMut, "sharedmut")
}
