package analysis

// Intraprocedural control-flow graphs over function bodies. The three
// path-sensitive analyzers (pinsafe, retirepub, lockorder) cannot work
// on the flat AST walks the older analyzers use: "Release is called on
// every path out of this function" and "this Retire is dominated by a
// publish" are properties of paths, not of syntax. NewCFG lowers one
// *ast.BlockStmt into basic blocks connected by branch, loop, switch,
// select, and labeled-goto edges; the generic fixed-point solver in
// dataflow.go then propagates analyzer-specific lattice states over it.
//
// Modeling decisions, chosen for the protocols checked on top:
//
//   - Statements are kept whole: a block's Nodes are the ast.Stmt (plus
//     standalone condition expressions) in execution order, and transfer
//     functions scan inside them. Sub-statement ordering within one
//     statement is the transfer function's business.
//   - defer is an exit-edge action: the *ast.DeferStmt node stays in the
//     block where it executes, and the analyzer's transfer function
//     registers the deferred call in the abstract state, applying its
//     effect to every subsequent function exit on that path. That is
//     exactly Go's semantics for the patterns checked here (a deferred
//     Release/Unlock runs on every later exit, but only on paths that
//     executed the defer).
//   - return edges to the synthetic Exit block; a statement-level
//     panic(...) call is a terminator with the same exit edge, so a
//     "released on all paths" analysis treats a panicking branch as an
//     exit that deferred actions still cover. Code after a terminator
//     lands in a fresh unreachable block (the solver never visits it).
//   - for/range loops have the usual head/body/after shape with a back
//     edge, so loop-carried states reach their fixed point; break and
//     continue (labeled or not) edge to the matching after/post block;
//     goto edges to its label's block (label blocks are pre-created, so
//     forward gotos resolve).
//   - select with no default has no head→after edge (it blocks until a
//     case fires); switch without default does (the tag may match
//     nothing).
//
// The builder is purely syntactic — it needs no *types.Info — which
// keeps CFG construction usable from the fact summarizer, where it runs
// on every function of every package, including fixtures.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: nodes that execute in order with no
// internal control transfer, plus the edges out.
type Block struct {
	// Index is the block's position in CFG.Blocks; solver states are
	// indexed by it.
	Index int
	// Nodes are the statements (and standalone condition expressions)
	// of the block in execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the predecessors (the reverse edges of Succs).
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the synthetic entry block (it precedes the first
	// statement and carries no nodes of its own).
	Entry *Block
	// Exit is the synthetic exit block every return, terminating panic,
	// and fall-off-the-end path edges into.
	Exit *Block
	// Blocks lists every block, Entry and Exit included.
	Blocks []*Block
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	// Pre-create label blocks so forward gotos resolve.
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = b.newBlock()
		}
		return true
	})
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// ExitPreds returns the blocks with an edge into Exit — the states
// flowing out of them are the function's exit states.
func (g *CFG) ExitPreds() []*Block { return g.Exit.Preds }

// ------------------------------------------------------------------
// Builder

// target is one enclosing break/continue destination, possibly labeled.
type target struct {
	label string
	block *Block
}

type cfgBuilder struct {
	g   *CFG
	cur *Block

	breaks    []target
	continues []target
	labels    map[string]*Block

	// pendingLabel names the label wrapping the next loop/switch
	// statement, so labeled break/continue resolve to it.
	pendingLabel string
	// pendingFallthrough is the block a fallthrough statement detached
	// from; the switch builder edges it to the next case body.
	pendingFallthrough *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock begins a new block reached from cur.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	b.edge(b.cur, blk)
	return blk
}

// detach parks the builder on a fresh predecessor-less block: the code
// that follows a terminator is unreachable.
func (b *cfgBuilder) detach() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the loop/switch statement
// being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{label: label, block: brk})
	if cont != nil {
		b.continues = append(b.continues, target{label: label, block: cont})
	}
}

func (b *cfgBuilder) popTargets(cont bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if cont {
		b.continues = b.continues[:len(b.continues)-1]
	}
}

func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labels[s.Label.Name]
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		b.cur = b.startBlock() // then branch
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			b.cur = cond
			b.cur = b.startBlock()
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		var post *Block
		cont := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.pushTargets(label, after, cont)
		b.cur = head
		b.cur = b.startBlock() // body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.popTargets(true)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock()
		// The RangeStmt node stands for the per-iteration work: range
		// expression access and key/value assignment.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		b.pushTargets(label, after, head)
		b.cur = head
		b.cur = b.startBlock() // body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popTargets(true)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.pushTargets(label, after, nil)
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			b.cur = head
			b.cur = b.startBlock()
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		// Without a default the select blocks until some case fires;
		// with one (or with no cases at all) control can pass straight
		// through.
		if hasDefault || len(s.Body.List) == 0 {
			b.edge(head, after)
		}
		b.popTargets(false)
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.detach()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, labelName(s.Label)); t != nil {
				b.edge(b.cur, t)
			}
			b.detach()
		case token.CONTINUE:
			if t := findTarget(b.continues, labelName(s.Label)); t != nil {
				b.edge(b.cur, t)
			}
			b.detach()
		case token.GOTO:
			if lb, ok := b.labels[labelName(s.Label)]; ok {
				b.edge(b.cur, lb)
			}
			b.detach()
		case token.FALLTHROUGH:
			b.pendingFallthrough = b.cur
			b.detach()
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.detach()
		}

	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

// switchClauses lowers the case clauses of a switch or type switch:
// every case body is entered from the head block, falls through on an
// explicit fallthrough, and otherwise exits to the after block. Without
// a default clause the head may match nothing and edges to after
// directly.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, _ *Block) {
	head := b.cur
	after := b.newBlock()
	b.pushTargets(label, after, nil)

	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		entries[i] = b.newBlock()
		b.edge(head, entries[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = entries[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
		if b.pendingFallthrough != nil && i+1 < len(entries) {
			b.edge(b.pendingFallthrough, entries[i+1])
		}
		b.pendingFallthrough = nil
	}
	b.popTargets(false)
	b.cur = after
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// inspectOwn visits the parts of a block node that execute where the
// block placed it. For every node the builder emits that is n itself —
// except the RangeStmt head node, whose body statements live in their
// own blocks: only the per-iteration head (key, value, range
// expression) is descended into. Transfer functions must use this
// instead of ast.Inspect or they double-apply the loop body's effects.
func inspectOwn(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			ast.Inspect(rs.Key, f)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, f)
		}
		ast.Inspect(rs.X, f)
		return
	}
	ast.Inspect(n, f)
}

// isPanicCall reports a statement-level panic(...) call. The check is
// syntactic (the CFG builder carries no type info); shadowing the panic
// builtin would fool it, which this codebase does not do.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
