package analysis_test

import (
	"strings"
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc")
}

func TestHotAllocCrossPackage(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc/b")
}

// TestHotAllocCrossPackageNeedsFacts proves the violations in
// hotalloc/b are visible only through fact propagation: with the facts
// of package a, the call to the allocating helper is flagged and the
// append to the capacity-backed carve is proven clean; without them,
// the helper call goes silent (unknown callee) and the append loses its
// proof.
func TestHotAllocCrossPackageNeedsFacts(t *testing.T) {
	has := func(ds []analysis.Diagnostic, sub string) bool {
		for _, d := range ds {
			if strings.Contains(d.Message, sub) {
				return true
			}
		}
		return false
	}

	with := analysistest.Diagnostics(t, analysis.HotAlloc, "hotalloc/b", true)
	if !has(with, "hotalloc/a.Grow may allocate") {
		t.Errorf("with facts: missing the a.Grow call-site diagnostic; got %v", with)
	}
	if has(with, "append without a capacity proof") {
		t.Errorf("with facts: a.Carve's CapBacked fact should prove the append; got %v", with)
	}

	without := analysistest.Diagnostics(t, analysis.HotAlloc, "hotalloc/b", false)
	if has(without, "hotalloc/a.Grow may allocate") {
		t.Errorf("without facts: a.Grow's Allocates fact should be invisible; got %v", without)
	}
	if !has(without, "append without a capacity proof") {
		t.Errorf("without facts: the append should lose its capacity proof; got %v", without)
	}
}
