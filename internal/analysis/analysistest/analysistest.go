// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which this
// module cannot depend on).
//
// A fixture line expecting a diagnostic carries a trailing comment
//
//	x.ReadNode(0) // want `untracked`
//	a == b        // want "exact =="
//
// where the quoted or backquoted string is a regexp that must match the
// diagnostic message reported on that line. Lines without a want comment
// must stay diagnostic-free. Fixtures are type-checked against the real
// standard library from source (GOROOT), so they may import stdlib
// packages — and other fixture packages: an import path that exists under
// testdata/src resolves to that fixture, which is loaded, type-checked,
// and summarized so its facts flow into the root package exactly as the
// vet driver propagates them between compilation units. The package path
// handed to the type checker is the fixture's directory path relative to
// testdata/src, which lets a fixture impersonate e.g. rstknn/internal/geom
// to exercise package-based exemptions.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rstknn/internal/analysis"
)

// Run analyzes the fixture package at testdata/src/<pkgPath> with a and
// reports every mismatch between actual diagnostics and want comments as
// a test error. Fixture dependencies contribute facts.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	got, fset, files := diagnose(t, a, pkgPath, true)
	wants := collectWants(t, fset, files)
	checkDiagnostics(t, fset, got, wants)
}

// Diagnostics runs a over the fixture package and returns the raw
// diagnostics, ignoring want comments. withFacts=false drops the facts
// of fixture dependencies, disabling cross-package propagation — for
// tests proving a finding is only visible through facts.
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkgPath string, withFacts bool) []analysis.Diagnostic {
	t.Helper()
	got, _, _ := diagnose(t, a, pkgPath, withFacts)
	return got
}

func diagnose(t *testing.T, a *analysis.Analyzer, pkgPath string, withFacts bool) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	loader := newLoader(fset)
	lp, err := loader.load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}

	var facts *analysis.PkgFacts
	if withFacts {
		facts = analysis.Summarize(fset, lp.files, lp.pkg, lp.info, loader.facts)
	}
	var got []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, lp.files, lp.pkg, lp.info, facts, func(d analysis.Diagnostic) {
		got = append(got, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	return got, fset, lp.files
}

// loader type-checks fixture packages, resolving imports from
// testdata/src first and the standard library (from source) second, and
// accumulates the facts of every fixture it loads — the test-harness
// analogue of the vet driver's .vetx plumbing.
type loader struct {
	fset  *token.FileSet
	std   types.Importer
	pkgs  map[string]*loadedPkg
	facts *analysis.FactStore
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(fset *token.FileSet) *loader {
	return &loader{
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  make(map[string]*loadedPkg),
		facts: analysis.NewFactStore(),
	}
}

// Import implements types.Importer for the type checker's sake.
func (l *loader) Import(path string) (*types.Package, error) {
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

// load parses, type-checks, and summarizes the fixture at
// testdata/src/<path> (dependencies first, recursively, through Import).
func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	// Dependencies loaded above (recursively) have already merged their
	// facts, so this fixture's summaries see them.
	pf := analysis.Summarize(l.fset, files, pkg, info, l.facts)
	l.facts.Merge(pf.ExportStore())
	return lp, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

// want is one expectation: a regexp that must match a diagnostic on its
// line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantPattern extracts the quoted ("...") or backquoted (`...`) regexps
// from a want comment.
var wantPattern = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantPattern.FindAllStringSubmatch(body, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range matches {
					expr := m[1]
					if m[2] != "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, expr, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, got []analysis.Diagnostic, wants []*want) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
