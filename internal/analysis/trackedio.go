package analysis

import (
	"go/ast"
)

// TrackedIO flags untracked simulated-I/O reads in library code.
//
// PR 1 threaded a per-query storage.Tracker through every query path so
// the paper's cost experiments (node accesses of the branch-and-bound
// RSTkNN search) attribute each page access to the query that caused it.
// A raw Tree.ReadNode or Store.Get silently charges only the global
// counters, corrupting per-query statistics under concurrency. Traversals
// must call the *Tracked variants; genuine non-query paths (index
// loading, maintenance copies) opt out with
//
//	//rstknn:allow trackedio <reason>
var TrackedIO = &Analyzer{
	Name: "trackedio",
	Doc: "forbids raw Tree.ReadNode / Store.Get in favor of the *Tracked " +
		"variants that preserve per-query I/O attribution",
	Run: runTrackedIO,
}

func runTrackedIO(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := rawReadCall(pass.TypesInfo, call); ok {
				pass.Reportf(call.Pos(),
					"untracked %s drops per-query I/O attribution; use the Tracked variant or annotate with //rstknn:allow trackedio <reason>",
					name)
			}
			return true
		})
	}
	return nil
}
