// Package analysis is the project's static-analysis subsystem: a small,
// dependency-free re-implementation of the go/analysis model (the module
// has no network access to golang.org/x/tools, so the framework is built
// on go/ast and go/types alone), a function-level dataflow engine that
// propagates behavioral facts across packages (summary.go, facts.go),
// an intraprocedural CFG constructor with a generic forward dataflow
// solver (cfg.go, dataflow.go), an SSA-lite def-use layer with value
// numbering and phi-merging (ssa.go), and eleven domain analyzers that
// enforce invariants the compiler cannot:
//
//   - trackedio: no raw Store.Get / Tree.ReadNode in library code — query
//     and traversal paths must use the *Tracked variants so per-query I/O
//     attribution (the paper's cost metric) is never silently dropped.
//   - ctxflow: context.Context parameters come first, exported *Ctx entry
//     points really take a context, and library internals never mint their
//     own context.Background()/TODO().
//   - locksafe: mutex-bearing structs (pool shards, cache shards) are not
//     copied, and no simulated-I/O call runs while a lock is held — even
//     when the I/O hides behind a helper, via the PerformsIO fact.
//   - floatcmp: no ==/!= between two non-constant floats (similarity
//     scores) outside the approved internal/geom and internal/vector
//     epsilon-helper packages.
//   - hotalloc: every function reachable from a //rstknn:hotpath root is
//     transitively allocation-free — appends need a capacity proof, and
//     cross-package calls are judged by the callee's Allocates fact.
//   - sharedmut: goroutine closures (the worker fan-out) write no
//     package-level or captured shared state except through the
//     closure-indexed merge path.
//   - errlost: error results in internal/core, internal/storage, and
//     internal/iurtree are never dropped or shadowed away.
//   - pinsafe: every snapshot Pin is paired with Release on all paths
//     (path-sensitive, over the CFG), the atomic snapshot-pointer load
//     is dominated by Pin, and the pinned state is not used after
//     Release.
//   - retirepub: every storage Retire is dominated by an atomic publish
//     (Store/Swap of the snapshot pointer) on every path — through
//     helpers too, via the Publishes/Retires facts.
//   - lockorder: per-function lock-acquisition sequences fold into a
//     module-wide lock-order graph via the LockClasses/LockPairs facts;
//     ordering cycles and double-acquisition on a path are flagged.
//   - untrustedlen: lengths, counts, and offsets decoded from untrusted
//     page bytes (binary.Uvarint / binary.LittleEndian.* over stored
//     blobs) must pass a dominating bounds check before they reach an
//     allocation size, a slice index or reslice, or a narrowing integer
//     conversion — cross-package too, via the TaintResults/SinkParams
//     facts. The //rstknn:validated directive is the escape hatch for
//     bounds the analyzer cannot prove.
//
// Analyzers run under "go vet -vettool=$(go build -o /tmp/rstknn-lint
// ./cmd/rstknn-lint)" via the unitchecker protocol (see vet.go) and under
// the in-repo analysistest harness (see analysistest/).
//
// # Directives
//
// A finding can be suppressed where the flagged pattern is intentional:
//
//	//rstknn:allow <analyzer>[,<analyzer>...] [reason...]
//
// The directive applies to the line it trails, to the line directly below
// it, or — when it appears in a function's doc comment — to the whole
// function. A reason is not parsed but should always be given; it is the
// audit trail for every exception.
//
// A second directive marks hot-path roots for hotalloc:
//
//	//rstknn:hotpath [reason...]
//
// placed in a function's doc comment. The function and everything
// statically reachable from it must be allocation-free.
//
// A third directive declares a value validated for untrustedlen:
//
//	//rstknn:validated [reason...]
//
// with the same line/next-line/doc-comment coverage as allow. It marks
// sinks whose operands are in fact bounds-checked in a way the analyzer
// cannot prove structurally (the reason should say where the proof is).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the check to one package, reporting findings on pass.
	Run func(*Pass) error
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds the package's dataflow summaries plus the facts of its
	// import closure (see summary.go). Shared across the analyzers of
	// one unit; computed from local evidence alone when the driver
	// supplies no imported facts.
	Facts *PkgFacts

	// Report receives every non-suppressed diagnostic.
	Report func(Diagnostic)

	allow      *directiveIndex
	suppressed int
}

// NewPass assembles a pass over a type-checked package, indexing the
// package's allow directives so Reportf can honor them. facts may be nil,
// in which case the package is summarized without imported facts
// (cross-package propagation disabled).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *PkgFacts, report func(Diagnostic)) *Pass {
	if facts == nil {
		facts = Summarize(fset, files, pkg, info, nil)
	}
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     facts,
		Report:    report,
		allow:     indexDirectives(fset, files),
	}
}

// Reportf reports a finding at pos unless an allow directive for this
// analyzer covers it; suppressed findings are counted for the JSON
// report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allow.allows(p.Analyzer.Name, p.Fset.Position(pos)) {
		p.suppressed++
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Suppressed returns how many findings //rstknn:allow directives
// silenced during the pass.
func (p *Pass) Suppressed() int { return p.suppressed }

// SourceFiles returns the pass's files excluding _test.go files. The
// domain analyzers enforce library contracts; tests may legitimately poke
// at raw reads, exact floats, and background contexts.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// All returns every domain analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{TrackedIO, CtxFlow, LockSafe, FloatCmp, HotAlloc, SharedMut, ErrLost,
		PinSafe, RetirePub, LockOrder, UntrustedLen}
}

// ------------------------------------------------------------------
// Allow directives

const directivePrefix = "rstknn:allow"

// validatedPrefix marks a value-producing line as trusted for the
// untrustedlen taint analysis:
//
//	//rstknn:validated [reason...]
//
// Unlike //rstknn:allow untrustedlen — which silences a diagnostic —
// the validated directive is a sanitizer: sinks on the covered line are
// treated as operating on fully validated values. It indexes under the
// reserved pseudo-analyzer name validatedMark (the ':' cannot appear in
// a real analyzer name, so the two namespaces cannot collide).
const (
	validatedPrefix = "rstknn:validated"
	validatedMark   = "untrustedlen:validated"
)

// directiveIndex records which analyzers are allowed on which lines.
type directiveIndex struct {
	// byLine maps filename -> line -> analyzer names allowed there.
	byLine map[string]map[int][]string
	// spans are whole-function exemptions from doc-comment directives.
	spans []directiveSpan
}

type directiveSpan struct {
	file      string
	from, to  int
	analyzers []string
}

// indexDirectives scans every comment of every file for allow directives.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byLine[pos.Filename] = lines
				}
				// The directive covers its own line (trailing form) and
				// the next line (preceding form).
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
		// Doc-comment directives cover the whole declaration.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				var names []string
				for _, c := range fd.Doc.List {
					if n, ok := parseDirective(c.Text); ok {
						names = append(names, n...)
					}
				}
				if len(names) > 0 {
					from := fset.Position(fd.Pos())
					to := fset.Position(fd.End())
					idx.spans = append(idx.spans, directiveSpan{
						file: from.Filename, from: from.Line, to: to.Line, analyzers: names,
					})
				}
			}
		}
	}
	return idx
}

// parseDirective extracts the analyzer names from an allow directive
// comment, reporting whether the comment is one. A validated directive
// parses to the reserved validatedMark name.
func parseDirective(text string) ([]string, bool) {
	if body, ok := strings.CutPrefix(text, "//"+validatedPrefix); ok {
		if body == "" || body[0] == ' ' || body[0] == '\t' {
			return []string{validatedMark}, true
		}
		return nil, false
	}
	body, ok := strings.CutPrefix(text, "//"+directivePrefix)
	if !ok {
		return nil, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

func (idx *directiveIndex) allows(analyzer string, pos token.Position) bool {
	if lines, ok := idx.byLine[pos.Filename]; ok {
		for _, name := range lines[pos.Line] {
			if name == analyzer {
				return true
			}
		}
	}
	for _, sp := range idx.spans {
		if sp.file != pos.Filename || pos.Line < sp.from || pos.Line > sp.to {
			continue
		}
		for _, name := range sp.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
