package analysis

// A generic forward dataflow solver over the CFGs of cfg.go. An
// analyzer describes its lattice as a Flow[S]: the entry state, a join
// for block merges, an equality test for the fixed point, and a
// transfer function applied to every node of a block in order. Whether
// the analysis is a must-analysis (join = intersection/AND: the
// property holds on every path) or a may-analysis (join = union/OR: it
// holds on some path) is entirely the Join function's choice — pinsafe
// tracks may-be-held pins with an OR join and must-pinned depth with a
// min join in the same state, retirepub tracks must-published with an
// AND join, lockorder tracks must-held locksets with an intersection
// join.
//
// Solve iterates to a fixed point: starting from Entry at the entry
// block, every reachable block's in-state is the join of its
// predecessors' out-states, and out-states are the transfer of
// in-states. Unreachable blocks (detached after return/panic/goto) are
// never visited, so terminator-dead code cannot pollute the lattice.
// Termination is the analyzer's obligation: Join must be monotone on a
// finite-height lattice (all three analyzers use small bit/set lattices
// over the function's own syntax, so height is trivially bounded).
//
// Deferred actions are applied by the transfer functions themselves
// (the DeferStmt node sits in its block; registering it in S and
// applying it at exit reads is the defer-as-exit-edge-action model
// described in cfg.go), so the solver needs no special exit hook:
// analyzers read the states flowing into Exit via ExitStates.

import "go/ast"

// Flow describes one forward dataflow problem with abstract state S.
type Flow[S any] struct {
	// Entry is the state on entry to the function.
	Entry S
	// Copy deep-copies a state. The solver never hands the same S value
	// to two transfers; nil means S is a value type safe to share.
	Copy func(S) S
	// Join merges the state already recorded at a block (first
	// argument) with a newly arriving predecessor out-state (second).
	// It may mutate and return the first argument.
	Join func(S, S) S
	// JoinAt, when non-nil, is used instead of Join and additionally
	// receives the index of the block being joined into. Analyses whose
	// merge must be keyed by join point — SSA construction memoizes one
	// phi per (block, variable) so repeated sweeps converge on a stable
	// value identity — need the block; plain lattice joins do not.
	JoinAt func(block int, a, b S) S
	// Equal reports whether two states are indistinguishable — the
	// fixed-point test.
	Equal func(S, S) bool
	// Transfer applies one node's effect. It may mutate and return s.
	Transfer func(n ast.Node, s S) S
}

func (f *Flow[S]) copyState(s S) S {
	if f.Copy == nil {
		return s
	}
	return f.Copy(s)
}

// Solution is the fixed point of one dataflow problem: the in-state of
// every reached block.
type Solution[S any] struct {
	g *CFG
	f *Flow[S]
	// In[i] is the state on entry to block i; meaningful only when
	// Reached[i].
	In []S
	// Reached marks the blocks control flow can actually arrive at.
	Reached []bool
}

// Solve runs the dataflow problem to its fixed point.
func Solve[S any](g *CFG, f *Flow[S]) *Solution[S] {
	sol := &Solution[S]{
		g:       g,
		f:       f,
		In:      make([]S, len(g.Blocks)),
		Reached: make([]bool, len(g.Blocks)),
	}
	entry := g.Entry.Index
	sol.In[entry] = f.Entry
	sol.Reached[entry] = true
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if !sol.Reached[blk.Index] {
				continue
			}
			out := f.copyState(sol.In[blk.Index])
			for _, n := range blk.Nodes {
				out = f.Transfer(n, out)
			}
			for _, succ := range blk.Succs {
				if !sol.Reached[succ.Index] {
					sol.Reached[succ.Index] = true
					sol.In[succ.Index] = f.copyState(out)
					changed = true
					continue
				}
				var joined S
				if f.JoinAt != nil {
					joined = f.JoinAt(succ.Index, f.copyState(sol.In[succ.Index]), f.copyState(out))
				} else {
					joined = f.Join(f.copyState(sol.In[succ.Index]), f.copyState(out))
				}
				if !f.Equal(joined, sol.In[succ.Index]) {
					sol.In[succ.Index] = joined
					changed = true
				}
			}
		}
	}
	return sol
}

// Walk replays the solved transfer over every reached block in index
// order, invoking visit with the state in force immediately BEFORE each
// node. This is how analyzers turn the fixed point into diagnostics:
// visit sees exactly the states Solve computed, and reports exactly
// once per node.
func (sol *Solution[S]) Walk(visit func(n ast.Node, before S)) {
	for _, blk := range sol.g.Blocks {
		if !sol.Reached[blk.Index] {
			continue
		}
		st := sol.f.copyState(sol.In[blk.Index])
		for _, n := range blk.Nodes {
			visit(n, st)
			st = sol.f.Transfer(n, st)
		}
	}
}

// ExitStates invokes visit with the out-state of every reached block
// that edges into Exit — one call per exit path bundle. Leak checks
// ("held at function exit") fold over these.
func (sol *Solution[S]) ExitStates(visit func(s S)) {
	for _, blk := range sol.g.ExitPreds() {
		if !sol.Reached[blk.Index] {
			continue
		}
		st := sol.f.copyState(sol.In[blk.Index])
		for _, n := range blk.Nodes {
			st = sol.f.Transfer(n, st)
		}
		visit(st)
	}
}
