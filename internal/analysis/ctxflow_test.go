package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow, "internal/ctxflow")
}
