package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmp, "floatcmp")
}

// TestFloatCmpApprovedPackage verifies the package-path exemption: the
// epsilon helpers in rstknn/internal/geom may compare floats exactly.
func TestFloatCmpApprovedPackage(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmp, "rstknn/internal/geom")
}
