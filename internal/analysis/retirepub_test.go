package analysis_test

import (
	"strings"
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestRetirePub(t *testing.T) {
	analysistest.Run(t, analysis.RetirePub, "retirepub")
}

func TestRetirePubHelperPackage(t *testing.T) {
	analysistest.Run(t, analysis.RetirePub, "retirepub/helper")
}

// TestRetirePubCrossPackageNeedsFacts proves the cross-package finding
// rides the Retires fact: with the helper package's facts the call to
// DropUnblessed is flagged; without them the callee is unknown and the
// call goes silent, while same-package findings are unaffected.
func TestRetirePubCrossPackageNeedsFacts(t *testing.T) {
	has := func(ds []analysis.Diagnostic, sub string) bool {
		for _, d := range ds {
			if strings.Contains(d.Message, sub) {
				return true
			}
		}
		return false
	}

	with := analysistest.Diagnostics(t, analysis.RetirePub, "retirepub", true)
	if !has(with, "retirepub/helper.DropUnblessed") {
		t.Errorf("with facts: missing the DropUnblessed call-site diagnostic; got %v", with)
	}

	without := analysistest.Diagnostics(t, analysis.RetirePub, "retirepub", false)
	if has(without, "retirepub/helper.DropUnblessed") {
		t.Errorf("without facts: DropUnblessed's Retires fact should be invisible; got %v", without)
	}
	if !has(without, "call to discard") {
		t.Errorf("without facts: the same-package helper finding should survive; got %v", without)
	}
}
