package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags == and != between two non-constant floating-point
// expressions. Similarity scores in this codebase are sums and ratios of
// float64 term weights — two mathematically equal scores routinely differ
// in the last ulp, so exact equality silently misranks results. Compare
// through the epsilon helpers (geom.ApproxEqual, vector.SimEqual) or,
// where bit-exact equality is the point (deterministic tie-breaking on
// identical inputs), annotate the comparison:
//
//	//rstknn:allow floatcmp <reason>
//
// Comparisons against compile-time constants (x == 0 sentinels) and the
// approved epsilon-helper packages internal/geom and internal/vector are
// exempt.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbids ==/!= between non-constant floats outside the approved " +
		"geom/vector epsilon helpers",
	Run: runFloatCmp,
}

// approvedFloatPkgs hold the epsilon helpers and may compare floats
// exactly; everything else goes through them.
var approvedFloatPkgs = []string{"internal/geom", "internal/vector"}

func runFloatCmp(pass *Pass) error {
	for _, suffix := range approvedFloatPkgs {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			return nil
		}
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(cmp.X)) && !isFloat(pass.TypesInfo.TypeOf(cmp.Y)) {
				return true
			}
			// A constant operand is a sentinel check (x == 0), not an
			// epsilon-sensitive score comparison.
			if pass.TypesInfo.Types[cmp.X].Value != nil || pass.TypesInfo.Types[cmp.Y].Value != nil {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"exact %s on floats; use the geom/vector epsilon helpers or annotate with //rstknn:allow floatcmp <reason>",
				cmp.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
