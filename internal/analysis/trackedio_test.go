package analysis_test

import (
	"testing"

	"rstknn/internal/analysis"
	"rstknn/internal/analysis/analysistest"
)

func TestTrackedIO(t *testing.T) {
	analysistest.Run(t, analysis.TrackedIO, "trackedio")
}
