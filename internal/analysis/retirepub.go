package analysis

// retirepub: the writer side of the epoch-based reclamation protocol.
// A writer may only Retire storage AFTER atomically publishing the new
// state (Store/Swap on the snapshot pointer): publish-then-retire means
// every reader that pins from now on sees the new state, so the retired
// nodes age out of all pinned epochs and can be freed; retire-then-
// publish hands the Reclaimer nodes a concurrently arriving reader can
// still reach through the OLD pointer — the use-after-free the whole
// copy-on-write design exists to prevent.
//
// The check is a forward MUST dataflow over the function's CFG: a
// single published bit with AND join (a retire is safe only if a
// publish precedes it on EVERY path reaching it). Publish evidence is
// an atomic Store/Swap/CompareAndSwap on a sync/atomic pointer, or a
// call to a function whose Publishes fact says it publishes on all its
// paths. Retire sites are Retire methods on the Reclaimer or a store
// type, or calls to functions whose Retires fact says they retire
// without publishing internally. Both facts ride the .vetx files, so
// the check sees through helpers across package boundaries: the
// summarizer (summary.go) runs the same scan to decide each function's
// bits — Publishes is the AND of the published bit over all exits,
// Retires means some retire site inside is NOT dominated by a publish
// (the obligation leaks to the caller).
//
// Deferred and closure-wrapped statements are skipped: a publish inside
// a defer runs at function exit and dominates nothing in the body, and
// a closure's retire runs at an unknown time. The reclamation
// primitives themselves (Reclaimer.Retire and the store Retire
// methods) necessarily retire without publishing; they carry
// whole-function //rstknn:allow retirepub directives, which also clear
// their Retires fact so callers are judged on their own call sites.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RetirePub checks that every Retire is dominated by an atomic publish.
var RetirePub = &Analyzer{
	Name: "retirepub",
	Doc: "require every storage Retire to be dominated by an atomic publish " +
		"(Store/Swap of the snapshot pointer) on every path, through helpers via facts",
	Run: runRetirePub,
}

func runRetirePub(pass *Pass) error {
	// Facts.Nodes covers exactly the non-test function declarations of
	// the package (see Summarize), in source order.
	for _, n := range pass.Facts.Nodes() {
		findings, _ := scanRetirePub(pass.Facts, pass.TypesInfo, n)
		for _, f := range findings {
			pass.Reportf(f.pos, "%s is not dominated by an atomic publish on every path; Store/Swap the new state first, then retire", f.desc)
		}
	}
	return nil
}

// ------------------------------------------------------------------
// Matching

// atomicPublish reports a Store/Swap/CompareAndSwap on a sync/atomic
// type — the canonical publication of a new snapshot.
func atomicPublish(info *types.Info, call *ast.CallExpr) bool {
	named, method, ok := methodCall(info, call)
	if !ok {
		return false
	}
	switch method {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// retireTarget returns a description of what a direct Retire call
// retires, or "" if the call is not one. Matched by name so fixtures
// can impersonate the real types: a method named Retire on a Reclaimer
// or one of the store types.
func retireTarget(info *types.Info, call *ast.CallExpr) string {
	named, method, ok := methodCall(info, call)
	if !ok || method != "Retire" {
		return ""
	}
	name := named.Obj().Name()
	if name != "Reclaimer" && !storeTypeNames[name] {
		return ""
	}
	return "Retire on " + name
}

// ------------------------------------------------------------------
// Dataflow

// retireFinding is one retire site not dominated by a publish.
type retireFinding struct {
	pos  token.Pos
	desc string
}

// pubState is the must-published lattice: true only when a publish has
// happened on every path reaching this point.
type pubState struct{ published bool }

// scanRetirePub solves the must-published dataflow over n's body and
// returns the undominated retire sites plus whether the function
// publishes on every path out (its Publishes bit). Both the analyzer
// and the summarizer call it, so diagnostics and facts cannot drift.
func scanRetirePub(pf *PkgFacts, info *types.Info, n *FuncNode) ([]retireFinding, bool) {
	// Fast path: no retire or publish shapes anywhere in the body.
	interesting := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if atomicPublish(info, call) || retireTarget(info, call) != "" {
			interesting = true
			return false
		}
		if fn := staticCallee(info, call); fn != nil {
			if s := pf.SummaryOf(fn); s != nil && (s.Publishes || s.Retires) {
				interesting = true
				return false
			}
		}
		return true
	})
	if !interesting {
		return nil, false
	}

	g := NewCFG(n.Decl.Body)
	flow := &Flow[pubState]{
		Entry: pubState{},
		Join:  func(a, b pubState) pubState { return pubState{published: a.published && b.published} },
		Equal: func(a, b pubState) bool { return a == b },
		Transfer: func(node ast.Node, s pubState) pubState {
			return pubStmtScan(pf, info, node, s, nil)
		},
	}
	sol := Solve(g, flow)

	var findings []retireFinding
	sol.Walk(func(node ast.Node, before pubState) {
		pubStmtScan(pf, info, node, before, func(pos token.Pos, desc string) {
			findings = append(findings, retireFinding{pos: pos, desc: desc})
		})
	})

	publishesAll := true
	sawExit := false
	sol.ExitStates(func(s pubState) {
		sawExit = true
		publishesAll = publishesAll && s.published
	})
	return findings, publishesAll && sawExit
}

// pubStmtScan applies one node's publish/retire effects in source
// order; report (when non-nil) receives undominated retire sites.
// Deferred calls and function literals do not execute here and are
// skipped entirely.
func pubStmtScan(pf *PkgFacts, info *types.Info, n ast.Node, s pubState, report func(pos token.Pos, desc string)) pubState {
	if _, ok := n.(*ast.DeferStmt); ok {
		return s
	}
	inspectOwn(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if desc := retireTarget(info, m); desc != "" {
				if !s.published && report != nil {
					report(m.Pos(), desc)
				}
				return true
			}
			if atomicPublish(info, m) {
				s.published = true
				return true
			}
			if fn := staticCallee(info, m); fn != nil {
				if cs := pf.SummaryOf(fn); cs != nil {
					if cs.Retires && !s.published && report != nil {
						report(m.Pos(), "call to "+funcDisplay(fn, pf.pkg)+" (which retires storage)")
					}
					if cs.Publishes {
						s.published = true
					}
				}
			}
		}
		return true
	})
	return s
}

// ------------------------------------------------------------------
// Summary wiring

// fixLifecycle computes the Publishes and Retires facts. Publishes is
// iterated first (a function publishes if its own dataflow exits
// published on every path, where callee Publishes facts count as
// publish points — monotone increasing); Retires second (given the
// final publish set, a function retires if any non-allowed retire site
// is undominated — also monotone, since callee Retires facts only add
// sites). Allow-suppressed sites do not set the fact: the directive
// blesses the primitive, so callers are judged on their own sites.
func (pf *PkgFacts) fixLifecycle(info *types.Info, dirs *directiveIndex) {
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			if n.Summary.Publishes {
				continue
			}
			if _, pub := scanRetirePub(pf, info, n); pub {
				n.Summary.Publishes = true
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range pf.own {
			if n.Summary.Retires {
				continue
			}
			findings, _ := scanRetirePub(pf, info, n)
			for _, f := range findings {
				if !dirs.allows(RetirePub.Name, pf.fset.Position(f.pos)) {
					n.Summary.Retires = true
					changed = true
					break
				}
			}
		}
	}
}
