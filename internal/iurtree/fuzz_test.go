package iurtree

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rstknn/internal/cluster"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// FuzzNodeRoundTrip drives the node codec with arbitrary bytes. Decoding
// must never panic, and any blob the decoder accepts must reach a fixed
// point after one re-encode: the encoder canonicalizes envelope shapes
// (degenerate/full/derived), so the first re-encode may legitimately
// shrink the input, but encode(decode(x)) must be stable from then on.
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err := decodeNode(data)
		if err != nil {
			return
		}
		enc1 := encodeNode(n1)
		n2, err := decodeNode(enc1)
		if err != nil {
			t.Fatalf("re-decoding an encoded node failed: %v\nblob: %x", err, enc1)
		}
		if n2.Leaf != n1.Leaf || len(n2.Entries) != len(n1.Entries) {
			t.Fatalf("re-decode changed node shape: leaf %v->%v, %d->%d entries",
				n1.Leaf, n2.Leaf, len(n1.Entries), len(n2.Entries))
		}
		if enc2 := encodeNode(n2); !bytes.Equal(enc2, enc1) {
			t.Fatalf("encoding is not a fixed point:\nenc1: %x\nenc2: %x", enc1, enc2)
		}
	})
}

// FuzzNodeView drives the zero-copy view parser with arbitrary bytes
// against the eager decoder as the oracle. The lazy path splits
// validation in two — parseNodeView checks structure, decodeNodeText
// (the bound-cache fill) checks vector semantics — so the contract is:
// any blob decodeNode accepts must pass both stages with every accessor
// agreeing with the decoded node, and any blob decodeNode rejects must
// fail at least one stage. Nothing may panic either way.
func FuzzNodeView(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, decErr := decodeNode(data)
		leaf, offs, viewErr := parseNodeView(data, nil)
		if decErr != nil {
			if viewErr == nil {
				if _, err := decodeNodeText(data); err == nil {
					t.Fatalf("lazy path accepts a blob decodeNode rejects (%v)\nblob: %x", decErr, data)
				}
			}
			return
		}
		if viewErr != nil {
			t.Fatalf("parseNodeView rejects a blob decodeNode accepts: %v\nblob: %x", viewErr, data)
		}
		text, err := decodeNodeText(data)
		if err != nil {
			t.Fatalf("decodeNodeText rejects a blob decodeNode accepts: %v\nblob: %x", err, data)
		}
		v := NodeView{id: 1, blob: data, offs: offs, text: text, leaf: leaf}
		if v.Leaf() != n.Leaf || v.Len() != len(n.Entries) {
			t.Fatalf("view shape (leaf %v, %d entries) != node (leaf %v, %d entries)",
				v.Leaf(), v.Len(), n.Leaf, len(n.Entries))
		}
		for i := range n.Entries {
			e := &n.Entries[i]
			if got := v.EntryRect(i); got != e.Rect {
				t.Fatalf("entry %d rect %v != %v", i, got, e.Rect)
			}
			if v.EntryChild(i) != e.Child || v.EntryObjID(i) != e.ObjID || v.EntryCount(i) != e.Count {
				t.Fatalf("entry %d fixed fields (%d,%d,%d) != (%d,%d,%d)", i,
					v.EntryChild(i), v.EntryObjID(i), v.EntryCount(i), e.Child, e.ObjID, e.Count)
			}
			if v.EntryIsObject(i) != e.IsObject() {
				t.Fatalf("entry %d IsObject mismatch", i)
			}
			env := v.EntryEnv(i)
			if !env.Int.Equal(e.Env.Int) || !env.Uni.Equal(e.Env.Uni) {
				t.Fatalf("entry %d envelope mismatch", i)
			}
			cls := v.EntryClusters(i)
			if len(cls) != len(e.Clusters) {
				t.Fatalf("entry %d has %d cluster summaries, want %d", i, len(cls), len(e.Clusters))
			}
			for j := range cls {
				want := &e.Clusters[j]
				if cls[j].Cluster != want.Cluster || cls[j].Count != want.Count ||
					!cls[j].Env.Int.Equal(want.Env.Int) || !cls[j].Env.Uni.Equal(want.Env.Uni) {
					t.Fatalf("entry %d cluster %d mismatch", i, j)
				}
			}
			full := v.Entry(i)
			if full.Rect != e.Rect || full.Child != e.Child || full.ObjID != e.ObjID || full.Count != e.Count {
				t.Fatalf("entry %d materialized Entry mismatch", i)
			}
		}
	})
}

// TestWriteNodeFuzzCorpus regenerates the checked-in seed corpus from the
// nodes of a real built tree. Run with RSTKNN_WRITE_CORPUS=1 to refresh.
func TestWriteNodeFuzzCorpus(t *testing.T) {
	if os.Getenv("RSTKNN_WRITE_CORPUS") == "" {
		t.Skip("set RSTKNN_WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	rng := rand.New(rand.NewSource(71))
	seeds := [][]byte{}
	for _, clustered := range []bool{false, true} {
		objs := randObjects(rng, 120, 15)
		cfg := Config{Store: storage.NewStore()}
		if clustered {
			docs := make([]vector.Vector, len(objs))
			for i := range objs {
				docs[i] = objs[i].Doc
			}
			cfg.Clustering = cluster.Run(docs, cluster.Config{K: 4, Seed: 1})
		}
		tr, err := Build(objs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		depths := map[int]bool{}
		if err := tr.Walk(func(n *Node, depth int) error {
			// One representative node per level per tree keeps the
			// corpus small but shape-diverse.
			if !depths[depth] {
				depths[depth] = true
				seeds = append(seeds, encodeNode(n))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The same real-tree blobs seed both node fuzzers: the codec
	// round-trip and the view-vs-decode equivalence check.
	for _, target := range []string{"FuzzNodeRoundTrip", "FuzzNodeView"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
