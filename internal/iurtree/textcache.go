package iurtree

import (
	"sync"
	"sync/atomic"

	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// The epoch-keyed bound cache.
//
// The textual payload of a node — per-entry envelopes and cluster
// summaries, the inputs of every textual bound the search computes — is
// query-independent: it changes only when the node itself is rewritten,
// and copy-on-write updates never rewrite a node in place (they retire
// it and write a fresh one under a new or recycled NodeID). That makes
// NodeID a sound memoization key for the decode, with one lifetime rule:
// the entry must be evicted before the reclaimer frees the node, because
// a freed slot can be recycled by a later update. The engine wires
// exactly that through Reclaimer.SetOnFree -> Snapshot.InvalidateNode,
// and the reclaimer only frees once no pinned reader can still reach the
// node, so eviction can never race a live view: a pinned snapshot keeps
// both the blob and its cached decode alive until unpin.
//
// Unlike the decoded-node cache (nodecache.go), a bound-cache hit does
// NOT skip the simulated page I/O: ReadViewTracked still fetches the
// blob and charges the read, so nodes-read and page-access accounting —
// the paper's cost model — are bit-identical with the cache on or off.
// Only the CPU and allocations of re-decoding are saved.
//
// The cache is shared by every snapshot derived from the one that
// created it (derive() copies the pointer), so BatchQuery hits across
// queries and the write path's successors keep the warm entries that
// survived retirement.

// DefaultBoundCacheNodes is the bound-cache capacity Build and Open
// enable unless the caller overrides it with SetBoundCache. It covers
// every node of a paper-scale tree (100k objects at fan-out 32 is about
// 3.3k nodes), so steady-state queries decode each node's text once.
const DefaultBoundCacheNodes = 4096

// nodeText is the cached textual payload of one node: exactly the
// allocation-heavy parts of a decode, shared read-only between queries.
type nodeText struct {
	entries []entryText
}

// entryText holds one entry's envelope and cluster summaries.
type entryText struct {
	Env      vector.Envelope
	Clusters []ClusterSummary
}

// newNodeText extracts the textual payload of a decoded node. The
// envelopes and cluster slices are shared with the node, not copied —
// both sides treat them as immutable.
func newNodeText(n *Node) *nodeText {
	ts := make([]entryText, len(n.Entries))
	for i := range n.Entries {
		ts[i] = entryText{Env: n.Entries[i].Env, Clusters: n.Entries[i].Clusters}
	}
	return &nodeText{entries: ts}
}

// decodeNodeText fully decodes a blob (with decodeNode's complete
// validation, including the semantic vector checks parseNodeView skips)
// and returns its textual payload.
func decodeNodeText(blob []byte) (*nodeText, error) {
	n, err := decodeNode(blob)
	if err != nil {
		return nil, err
	}
	return newNodeText(n), nil
}

// boundCache memoizes nodeText by NodeID. Sharded like the decoded-node
// cache so concurrent queries do not serialize on one mutex; the hit
// path takes only a read lock and one atomic store (the second-chance
// bit), keeping it provably allocation-free.
type boundCache struct {
	shards []boundCacheShard
	mask   uint32 // len(shards)-1; shard count is a power of two
	hits   atomic.Int64
	misses atomic.Int64
}

type boundCacheShard struct {
	mu       sync.RWMutex
	capacity int
	index    map[storage.NodeID]*boundCacheEntry
}

// boundCacheEntry is immutable after insertion except for the atomic
// second-chance bit, so readers may use it after dropping the shard
// lock; put replaces the whole entry instead of mutating it.
type boundCacheEntry struct {
	text *nodeText
	hot  atomic.Bool
}

const (
	maxBoundCacheShards   = 8
	minBoundTextsPerShard = 16
)

func newBoundCache(capacity int) *boundCache {
	n := 1
	for n < maxBoundCacheShards && capacity/(n*2) >= minBoundTextsPerShard {
		n *= 2
	}
	c := &boundCache{shards: make([]boundCacheShard, n), mask: uint32(n - 1)}
	per := capacity / n
	extra := capacity % n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		if i < extra {
			sh.capacity++
		}
		if sh.capacity < 1 {
			sh.capacity = 1
		}
		sh.index = make(map[storage.NodeID]*boundCacheEntry)
	}
	return c
}

func (c *boundCache) shardFor(id storage.NodeID) *boundCacheShard {
	return &c.shards[uint32(id)&c.mask]
}

// get returns the cached textual payload of a node, marking it recently
// used.
//
//rstknn:hotpath bound-cache lookup: one map probe per node read on the query path
func (c *boundCache) get(id storage.NodeID) (*nodeText, bool) {
	sh := c.shardFor(id)
	sh.mu.RLock()
	e := sh.index[id]
	sh.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil, false
	}
	e.hot.Store(true)
	c.hits.Add(1)
	return e.text, true
}

// put inserts (or replaces) a node's textual payload, evicting cold
// entries past the shard capacity by second chance: entries touched
// since the last sweep survive one round.
func (c *boundCache) put(id storage.NodeID, text *nodeText) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := &boundCacheEntry{text: text}
	e.hot.Store(true)
	sh.index[id] = e
	for len(sh.index) > sh.capacity {
		var victim storage.NodeID
		found := false
		for k, cand := range sh.index {
			if k == id {
				continue // never evict the entry just inserted
			}
			if !cand.hot.Load() {
				victim, found = k, true
				break
			}
			cand.hot.Store(false)
		}
		if !found {
			for k := range sh.index {
				if k != id {
					victim, found = k, true
					break
				}
			}
		}
		if !found {
			return // capacity 1 shard holding only the fresh entry
		}
		delete(sh.index, victim)
	}
}

// invalidate drops the cached payload of one node. Called through
// Snapshot.InvalidateNode from the reclaimer's on-free hook.
func (c *boundCache) invalidate(id storage.NodeID) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.index, id)
}

// entries returns the number of cached nodes across all shards.
func (c *boundCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.index)
		sh.mu.RUnlock()
	}
	return n
}

// contains reports whether a node's payload is cached (for tests and
// stats; takes the read lock only).
func (c *boundCache) contains(id storage.NodeID) bool {
	sh := c.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.index[id]
	return ok
}
