package iurtree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rstknn/internal/cluster"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

func buildViewTestTree(t *testing.T, seed int64, clustered bool) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := randObjects(rng, 250, 20)
	cfg := Config{Store: storage.NewStore()}
	if clustered {
		docs := make([]vector.Vector, len(objs))
		for i := range objs {
			docs[i] = objs[i].Doc
		}
		cfg.Clustering = cluster.Run(docs, cluster.Config{K: 4, Seed: seed})
	}
	tr, err := Build(objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestViewMatchesDecode walks a real tree (plain and clustered) reading
// every node through both paths and compares the view accessors against
// the eagerly decoded node field by field.
func TestViewMatchesDecode(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		tr := buildViewTestTree(t, 41, clustered)
		var walk func(id storage.NodeID)
		walk = func(id storage.NodeID) {
			n, err := tr.ReadNodeTracked(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			v, err := tr.ReadViewTracked(id, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if v.ID() != id || v.Leaf() != n.Leaf || v.Len() != len(n.Entries) {
				t.Fatalf("node %d: view shape mismatch", id)
			}
			for i := range n.Entries {
				e := &n.Entries[i]
				if v.EntryRect(i) != e.Rect || v.EntryChild(i) != e.Child ||
					v.EntryObjID(i) != e.ObjID || v.EntryCount(i) != e.Count ||
					v.EntryIsObject(i) != e.IsObject() {
					t.Fatalf("node %d entry %d: fixed-field mismatch", id, i)
				}
				env := v.EntryEnv(i)
				if !env.Int.Equal(e.Env.Int) || !env.Uni.Equal(e.Env.Uni) {
					t.Fatalf("node %d entry %d: envelope mismatch", id, i)
				}
				cls := v.EntryClusters(i)
				if len(cls) != len(e.Clusters) {
					t.Fatalf("node %d entry %d: %d cluster summaries, want %d",
						id, i, len(cls), len(e.Clusters))
				}
				for j := range cls {
					w := &e.Clusters[j]
					if cls[j].Cluster != w.Cluster || cls[j].Count != w.Count ||
						!cls[j].Env.Int.Equal(w.Env.Int) || !cls[j].Env.Uni.Equal(w.Env.Uni) {
						t.Fatalf("node %d entry %d cluster %d: mismatch", id, i, j)
					}
				}
				if !v.EntryIsObject(i) && !n.Leaf {
					walk(e.Child)
				}
			}
		}
		walk(tr.RootID())
	}
}

// TestViewAccessorsDoNotAllocate pins the tentpole claim: every view
// accessor on a warm (bound-cached) view is allocation-free.
func TestViewAccessorsDoNotAllocate(t *testing.T) {
	tr := buildViewTestTree(t, 42, true)
	v, err := tr.ReadViewTracked(tr.RootID(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = v.ID()
		_ = v.Len()
		_ = v.Leaf()
		for i := 0; i < v.Len(); i++ {
			_ = v.EntryRect(i)
			_ = v.EntryChild(i)
			_ = v.EntryObjID(i)
			_ = v.EntryCount(i)
			_ = v.EntryIsObject(i)
			_ = v.EntryEnv(i)
			_ = v.EntryClusters(i)
			_ = v.Entry(i)
		}
	})
	if allocs != 0 {
		t.Errorf("view accessors allocate %.1f times per pass, want 0", allocs)
	}
}

// TestWarmReadViewDoesNotAllocate covers the whole warm read: bound
// cache hit plus a recycled offset buffer means a repeat visit performs
// zero heap allocations end to end.
func TestWarmReadViewDoesNotAllocate(t *testing.T) {
	tr := buildViewTestTree(t, 43, false)
	id := tr.RootID()
	v, err := tr.ReadViewTracked(id, nil, nil) // cold: fills cache, grows offs
	if err != nil {
		t.Fatal(err)
	}
	offs := v.RecycleBuf()
	var tk storage.Tracker
	allocs := testing.AllocsPerRun(100, func() {
		w, err := tr.ReadViewTracked(id, &tk, offs)
		if err != nil {
			t.Fatal(err)
		}
		offs = w.RecycleBuf()
	})
	if allocs != 0 {
		t.Errorf("warm ReadViewTracked allocates %.1f times per read, want 0", allocs)
	}
	if tk.Reads() == 0 {
		t.Error("warm reads skipped the simulated I/O charge")
	}
}

// TestBoundCacheGetDoesNotAllocate pins the cache's hit path: a lookup
// takes no locks that allocate, touches no container/list machinery, and
// returns the shared entry as-is.
func TestBoundCacheGetDoesNotAllocate(t *testing.T) {
	tr := buildViewTestTree(t, 44, false)
	if _, err := tr.ReadViewTracked(tr.RootID(), nil, nil); err != nil {
		t.Fatal(err)
	}
	id := tr.RootID()
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := tr.boundCache.get(id); !ok {
			t.Fatal("root fell out of the bound cache")
		}
	})
	if allocs != 0 {
		t.Errorf("bound cache get allocates %.1f times per hit, want 0", allocs)
	}
}

// TestParseNodeViewCorrupt: the structural validator must reject every
// corruption of a node blob — oversized entry counts, truncation at any
// byte, and trailing garbage — by header inspection alone, so the
// zero-copy accessors can trust the offset table unconditionally.
func TestParseNodeViewCorrupt(t *testing.T) {
	env := vector.Envelope{
		Int: vector.New(map[vector.TermID]float64{1: 0.5}),
		Uni: vector.New(map[vector.TermID]float64{1: 0.5, 4: 0.25}),
	}
	n := &Node{Leaf: true, Entries: []Entry{
		{Child: storage.InvalidNode, ObjID: 7, Count: 1, Env: env},
		{Child: storage.InvalidNode, ObjID: 9, Count: 1, Env: env},
	}}
	blob := encodeNode(n)
	if _, _, err := parseNodeView(blob, nil); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}

	// Oversized entry count: claims more entries than the blob can hold.
	c := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(c[1:], 0xFFFF)
	if _, _, err := parseNodeView(c, nil); err == nil {
		t.Error("oversized entry count accepted")
	}

	// Truncation at every length must fail — never panic, never accept.
	for i := 0; i < len(blob); i++ {
		if _, _, err := parseNodeView(blob[:i], nil); err == nil {
			t.Errorf("truncation to %d of %d bytes accepted", i, len(blob))
		}
	}

	// Trailing garbage is corruption too (offsets would drift otherwise).
	if _, _, err := parseNodeView(append(append([]byte(nil), blob...), 0), nil); err == nil {
		t.Error("trailing byte accepted")
	}
}
