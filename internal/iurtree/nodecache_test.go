package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/storage"
)

func TestNodeCacheSkipsIO(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objs := randObjects(rng, 300, 20)
	store := storage.NewStore()
	tr, err := Build(objs, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNodeCache(128)
	store.ResetStats()

	var t1 storage.Tracker
	if _, err := tr.ReadNodeTracked(tr.RootID(), &t1); err != nil {
		t.Fatal(err)
	}
	if t1.Reads() != 1 || t1.CacheHits() != 0 {
		t.Fatalf("cold read: tracker %+v", t1.Stats())
	}

	var t2 storage.Tracker
	n, err := tr.ReadNodeTracked(tr.RootID(), &t2)
	if err != nil {
		t.Fatal(err)
	}
	if n == nil {
		t.Fatal("cached read returned nil node")
	}
	if t2.Reads() != 0 || t2.CacheHits() != 1 {
		t.Fatalf("warm read: tracker %+v, want a cache hit and no I/O", t2.Stats())
	}
	// The store never saw the second read at all.
	if st := store.Stats(); st.Reads != 1 {
		t.Fatalf("store saw %d reads, want 1", st.Reads)
	}
}

func TestNodeCacheDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	objs := randObjects(rng, 100, 20)
	store := storage.NewStore()
	tr, err := Build(objs, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNodeCache(64)
	tr.SetNodeCache(0) // disable again
	store.ResetStats()
	var tk storage.Tracker
	tr.ReadNodeTracked(tr.RootID(), &tk)
	tr.ReadNodeTracked(tr.RootID(), &tk)
	if tk.Reads() != 2 || tk.CacheHits() != 0 {
		t.Fatalf("with cache disabled: tracker %+v, want 2 plain reads", tk.Stats())
	}
}

// TestNodeCacheInvalidatedByUpdates ensures the COW update path never
// leaves a stale decoded node visible: successor snapshots share the
// cache with their ancestors, recycled slots may reuse a freed NodeID,
// and the reclaimer's on-free hook must evict the old decode first. The
// invariant check after every mutation reads back through the cache.
func TestNodeCacheInvalidatedByUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	objs := randObjects(rng, 120, 20)
	store := storage.NewStore()
	tr, err := Build(objs[:100], Config{Store: store, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNodeCache(256)
	rec := storage.NewReclaimer(store)
	rec.SetOnFree(tr.InvalidateNode)

	// Warm the cache over the whole tree.
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[100:] {
		nt, retired, err := tr.Insert(o, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr = nt
		rec.Retire(retired) // frees immediately: no pinned readers
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Insert(%d): %v", o.ID, err)
		}
	}
	for _, o := range objs[:20] {
		nt, retired, ok, err := tr.Delete(o.ID, o.Loc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%d) found nothing", o.ID)
		}
		tr = nt
		rec.Retire(retired)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", o.ID, err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
}
