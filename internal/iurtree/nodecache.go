package iurtree

import (
	"container/list"
	"sync"

	"rstknn/internal/storage"
)

// nodeCache is an optional in-memory LRU cache of *decoded* nodes, sitting
// above the storage layer: a hit skips both the simulated page I/O and the
// deserialization work. Like the buffer pool it is sharded by NodeID and
// every shard is independently locked, so concurrent queries do not
// serialize on one mutex. Cached nodes are shared between queries and must
// be treated as read-only; the tree's update paths read fresh copies and
// invalidate the cache on every rewritten node.
type nodeCache struct {
	shards []nodeCacheShard
	mask   uint32 // len(shards)-1; shard count is a power of two
}

type nodeCacheShard struct {
	mu       sync.Mutex
	capacity int        // max decoded nodes held by this shard
	order    *list.List // front = most recent; values are *nodeCacheEntry
	index    map[storage.NodeID]*list.Element
}

type nodeCacheEntry struct {
	id   storage.NodeID
	node *Node
}

const (
	maxNodeCacheShards = 8
	minNodesPerShard   = 16
)

func newNodeCache(capacity int) *nodeCache {
	n := 1
	for n < maxNodeCacheShards && capacity/(n*2) >= minNodesPerShard {
		n *= 2
	}
	c := &nodeCache{shards: make([]nodeCacheShard, n), mask: uint32(n - 1)}
	per := capacity / n
	extra := capacity % n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		if i < extra {
			sh.capacity++
		}
		if sh.capacity < 1 {
			sh.capacity = 1
		}
		sh.order = list.New()
		sh.index = make(map[storage.NodeID]*list.Element)
	}
	return c
}

func (c *nodeCache) shardFor(id storage.NodeID) *nodeCacheShard {
	return &c.shards[uint32(id)&c.mask]
}

func (c *nodeCache) get(id storage.NodeID) (*Node, bool) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.index[id]
	if !ok {
		return nil, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*nodeCacheEntry).node, true
}

func (c *nodeCache) put(id storage.NodeID, n *Node) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.index[id]; ok {
		el.Value.(*nodeCacheEntry).node = n
		sh.order.MoveToFront(el)
		return
	}
	el := sh.order.PushFront(&nodeCacheEntry{id: id, node: n})
	sh.index[id] = el
	for sh.order.Len() > sh.capacity {
		back := sh.order.Back()
		ent := back.Value.(*nodeCacheEntry)
		sh.order.Remove(back)
		delete(sh.index, ent.id)
	}
}

// invalidate drops the cached copy of one node (after its blob was
// rewritten by an update).
func (c *nodeCache) invalidate(id storage.NodeID) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.index[id]; ok {
		sh.order.Remove(el)
		delete(sh.index, id)
	}
}
