package iurtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Zero-copy node views.
//
// The eager read path (ReadNodeTracked) materializes a *Node per visit:
// an Entry slice, two term vectors per envelope, and a ClusterSummary
// slice per clustered entry — tens of kilobytes of garbage for a node
// the search may only probe for a handful of bounds. A NodeView instead
// validates the blob's structure once (one pass over the length headers,
// no vector decode) and serves every fixed-width entry field — MBR,
// child pointer, object ID, subtree count — straight from the stored
// page bytes at fixed offsets. The variable-width textual payload
// (envelopes and cluster summaries) is the expensive part, and it is
// query-independent, so it comes from the snapshot's bound cache (see
// textcache.go): decoded once per node, shared by every query and every
// round until the node is retired and freed.
//
// Offset table: parseNodeView fills offs with the byte offset of every
// entry's start plus an end-of-blob sentinel, so entry i occupies
// blob[offs[i]:offs[i+1]] and its fixed header sits at offs[i]:
//
//	offs[i]+0   4 * f64  rect (minX minY maxX maxY)
//	offs[i]+32  i32      child node ID
//	offs[i]+36  i32      object ID
//	offs[i]+40  i32      subtree object count
//
// The blob slice is aliased from the store, not copied; the epoch pin
// every query holds guarantees the node cannot be freed (and its slot
// recycled) while a view over it is live.

// entryFixedSize is the minimum encoded size of one entry: rect (32) +
// child/objID/count (12) + envelope shape byte (1) + cluster count (2).
// decodeNode and parseNodeView both use it to reject impossible entry
// counts before doing per-entry work.
const entryFixedSize = 47

// NodeView is a zero-copy reader over one stored node. Obtain one with
// ReadViewTracked; the zero value is only returned alongside an error.
// Views are cheap values — copying one copies five words — and are valid
// while the reading query holds its snapshot pin.
type NodeView struct {
	id   storage.NodeID
	blob []byte
	offs []int32   // entry start offsets + end sentinel; len = Len()+1
	text *nodeText // cached textual payload (envelopes, cluster summaries)
	node *Node     // decoded-node-cache hit: accessors delegate to it
	leaf bool
}

// ID returns the NodeID the view reads.
func (v *NodeView) ID() storage.NodeID { return v.id }

// Len returns the number of entries in the node.
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) Len() int {
	if v.node != nil {
		return len(v.node.Entries)
	}
	return len(v.offs) - 1
}

// Leaf reports whether the node is a leaf.
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) Leaf() bool {
	if v.node != nil {
		return v.node.Leaf
	}
	return v.leaf
}

// EntryRect returns entry i's MBR, read from the page bytes.
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) EntryRect(i int) geom.Rect {
	if v.node != nil {
		return v.node.Entries[i].Rect
	}
	b := v.blob[v.offs[i]:]
	return geom.Rect{
		Min: geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(b)),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		},
		Max: geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		},
	}
}

// EntryChild returns entry i's child NodeID (InvalidNode for objects).
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) EntryChild(i int) storage.NodeID {
	if v.node != nil {
		return v.node.Entries[i].Child
	}
	return storage.NodeID(binary.LittleEndian.Uint32(v.blob[v.offs[i]+32:]))
}

// EntryObjID returns entry i's object ID (meaningful for objects only).
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) EntryObjID(i int) int32 {
	if v.node != nil {
		return v.node.Entries[i].ObjID
	}
	return int32(binary.LittleEndian.Uint32(v.blob[v.offs[i]+36:]))
}

// EntryCount returns entry i's subtree object count.
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) EntryCount(i int) int32 {
	if v.node != nil {
		return v.node.Entries[i].Count
	}
	return int32(binary.LittleEndian.Uint32(v.blob[v.offs[i]+40:]))
}

// EntryIsObject reports whether entry i is a leaf-level object entry.
//
//rstknn:hotpath fixed-offset view accessor on the zero-copy read path
func (v *NodeView) EntryIsObject(i int) bool {
	return v.EntryChild(i) == storage.InvalidNode
}

// EntryEnv returns entry i's textual envelope. The vectors are owned by
// the snapshot's bound cache (or the decoded-node cache) and shared
// between queries — read-only, like everything reached through a view.
//
//rstknn:hotpath cached textual payload on the zero-copy read path
func (v *NodeView) EntryEnv(i int) vector.Envelope {
	if v.node != nil {
		return v.node.Entries[i].Env
	}
	return v.text.entries[i].Env
}

// EntryClusters returns entry i's cluster summaries (nil on plain
// IUR-trees). Shared and read-only, like EntryEnv.
//
//rstknn:hotpath cached textual payload on the zero-copy read path
func (v *NodeView) EntryClusters(i int) []ClusterSummary {
	if v.node != nil {
		return v.node.Entries[i].Clusters
	}
	return v.text.entries[i].Clusters
}

// Entry materializes entry i as a full Entry value. The struct is a pure
// copy — its Env and Clusters fields reference the cached, shared
// decodes — so no allocation happens and the result stays valid after
// the view is recycled.
//
//rstknn:hotpath entry materialization for survivors of pruning
func (v *NodeView) Entry(i int) Entry {
	if v.node != nil {
		return v.node.Entries[i]
	}
	t := &v.text.entries[i]
	return Entry{
		Rect:     v.EntryRect(i),
		Child:    v.EntryChild(i),
		ObjID:    v.EntryObjID(i),
		Count:    v.EntryCount(i),
		Env:      t.Env,
		Clusters: t.Clusters,
	}
}

// AppendEntries appends every entry of the node to dst and returns the
// extended slice — the bulk form of Entry for expansion paths that need
// the whole fan-out.
func (v *NodeView) AppendEntries(dst []Entry) []Entry {
	n := v.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, v.Entry(i))
	}
	return dst
}

// RecycleBuf surrenders the view's offset buffer so the caller can pass
// it to the next ReadViewTracked instead of growing a fresh one. The
// view must not be used afterwards.
func (v *NodeView) RecycleBuf() []int32 {
	b := v.offs
	v.offs = nil
	return b
}

// parseNodeView validates the structural layout of a node blob — header,
// per-entry fixed fields, envelope and cluster framing, no trailing
// bytes — and fills offs (reused when its capacity suffices) with the
// entry offset table. It walks only length headers: no vector is decoded
// and nothing is allocated beyond the offset table itself. Semantic
// checks inside vector payloads (term ordering) are deferred to the
// one-time full decode that populates the bound cache, so every blob
// decodeNode accepts parses, and every blob it rejects fails either here
// or there.
func parseNodeView(blob []byte, offs []int32) (leaf bool, _ []int32, err error) {
	if len(blob) < 3 {
		return false, offs, fmt.Errorf("truncated node header")
	}
	if len(blob) > math.MaxInt32 {
		// The offset table is int32; every in-blob offset below fits
		// once the blob itself does (stored pages are a few KiB — this
		// only rejects absurd corruption).
		return false, offs, fmt.Errorf("node blob too large (%d bytes)", len(blob))
	}
	count := int(binary.LittleEndian.Uint16(blob[1:]))
	off := 3
	if len(blob)-off < count*entryFixedSize {
		return false, offs, fmt.Errorf("entry count %d exceeds blob size", count)
	}
	if cap(offs) < count+1 {
		offs = make([]int32, 0, count+1)
	}
	offs = offs[:0]
	for i := 0; i < count; i++ {
		// skipEntry bounds-checks every length header against its input,
		// so the size it returns never exceeds len(blob[off:]) and off
		// stays ≤ len(blob) ≤ MaxInt32 (guarded above) on every round —
		// a relational invariant the taint analysis cannot express.
		offs = append(offs, int32(off)) //rstknn:validated off ≤ len(blob) ≤ MaxInt32, see loop comment
		sz, err := skipEntry(blob[off:])
		if err != nil {
			return false, offs, fmt.Errorf("entry %d: %w", i, err)
		}
		off += sz
	}
	if off != len(blob) {
		return false, offs, fmt.Errorf("node blob has %d trailing bytes", len(blob)-off)
	}
	offs = append(offs, int32(off)) //rstknn:validated off == len(blob) ≤ MaxInt32 on this line
	return blob[0] == 1, offs, nil
}

// skipEntry returns the encoded size of the entry at the front of buf,
// validating its framing without decoding any vector.
func skipEntry(buf []byte) (int, error) {
	off := 32 + 12 // rect + child/objID/count
	if len(buf) <= off {
		return 0, fmt.Errorf("truncated entry header")
	}
	derived := false
	if buf[off] == 2 {
		derived = true
		off++
	} else {
		n, err := skipEnvelopeShaped(buf[off:])
		if err != nil {
			return 0, err
		}
		off += n
	}
	if len(buf) < off+2 {
		return 0, fmt.Errorf("truncated cluster count")
	}
	nc := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if nc > 0 {
		// Same impossible-count guard as decodeEntry: a cluster summary
		// is at least 8 header bytes plus a one-byte-shaped envelope.
		if len(buf)-off < nc*9 {
			return 0, fmt.Errorf("cluster count %d exceeds blob size", nc)
		}
		for i := 0; i < nc; i++ {
			if len(buf) < off+8 {
				return 0, fmt.Errorf("truncated cluster summary %d", i)
			}
			off += 8
			n, err := skipEnvelopeShaped(buf[off:])
			if err != nil {
				return 0, err
			}
			off += n
		}
	}
	if derived && nc == 0 {
		return 0, fmt.Errorf("derived envelope with no cluster summaries")
	}
	return off, nil
}

// skipEnvelopeShaped returns the encoded size of a shape-prefixed
// envelope (shape byte included) without decoding it.
func skipEnvelopeShaped(buf []byte) (int, error) {
	if len(buf) < 1 {
		return 0, fmt.Errorf("truncated envelope shape byte")
	}
	switch buf[0] {
	case 0:
		n, err := vector.SkipVector(buf[1:])
		if err != nil {
			return 0, err
		}
		return n + 1, nil
	case 1:
		n, err := vector.SkipEnvelope(buf[1:])
		if err != nil {
			return 0, err
		}
		return n + 1, nil
	default:
		return 0, fmt.Errorf("unknown envelope shape %d", buf[0])
	}
}
