package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// randomOp applies one random insert or delete, mirroring it in live,
// and returns the successor snapshot plus a short label for failure
// messages.
func randomOp(t *testing.T, rng *rand.Rand, tr *Snapshot, live map[int32]Object, next *int32, pInsert float64) (*Snapshot, string) {
	t.Helper()
	if len(live) == 0 || rng.Float64() < pInsert {
		o := Object{
			ID:  *next,
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(map[vector.TermID]float64{vector.TermID(rng.Intn(25)): 1 + rng.Float64()}),
		}
		*next++
		nt, _, err := tr.Insert(o, nil)
		if err != nil {
			t.Fatalf("Insert(%d): %v", o.ID, err)
		}
		live[o.ID] = o
		return nt, "insert"
	}
	for _, o := range live {
		nt, _, ok, err := tr.Delete(o.ID, o.Loc, nil)
		if err != nil {
			t.Fatalf("Delete(%d): %v", o.ID, err)
		}
		if !ok {
			t.Fatalf("Delete(%d): live object not found", o.ID)
		}
		delete(live, o.ID)
		return nt, "delete"
	}
	return tr, "noop"
}

// TestInvariantsHoldAfterEveryOp runs a long randomized insert/delete
// workload and verifies the full set of structural invariants after
// every single operation, so the first op that corrupts the tree is
// identified exactly. The delete-heavy phase drives underflow, node
// removal, and root-chain collapse; the drain empties the tree entirely
// before building it back up.
func TestInvariantsHoldAfterEveryOp(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tr := buildIUR(t, nil, false)
	live := map[int32]Object{}
	next := int32(0)

	phases := []struct {
		name    string
		ops     int
		pInsert float64
	}{
		{"grow", 400, 0.85},
		{"churn", 300, 0.50},
		{"shrink", 300, 0.15},
		{"regrow", 200, 0.90},
	}
	step := 0
	for _, ph := range phases {
		for i := 0; i < ph.ops; i++ {
			var op string
			tr, op = randomOp(t, rng, tr, live, &next, ph.pInsert)
			if tr.Len() != len(live) {
				t.Fatalf("%s step %d (%s): Len = %d, want %d", ph.name, step, op, tr.Len(), len(live))
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s step %d (%s, size %d): %v", ph.name, step, op, tr.Len(), err)
			}
			step++
		}
	}

	// Drain to empty: exercises deletion underflow all the way down to
	// root collapse and the empty-tree representation.
	for id, o := range live {
		nt, _, ok, err := tr.Delete(o.ID, o.Loc, nil)
		if err != nil || !ok {
			t.Fatalf("drain Delete(%d): ok=%v err=%v", id, ok, err)
		}
		tr = nt
		delete(live, id)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("drain at size %d: %v", tr.Len(), err)
		}
	}
	// A drained tree keeps an empty root leaf (height 1) ready for
	// reinsertion.
	if tr.Len() != 0 || tr.Height() > 1 {
		t.Fatalf("after drain: Len=%d Height=%d", tr.Len(), tr.Height())
	}

	// The tree must be fully usable after the drain.
	for i := 0; i < 50; i++ {
		tr, _ = randomOp(t, rng, tr, live, &next, 1.0)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("rebuild at size %d: %v", tr.Len(), err)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("rebuild: Len = %d", tr.Len())
	}
}

// TestCheckInvariantsDetectsCorruption makes sure the checker is not
// vacuous: corrupting a persisted summary must produce an error.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr := buildIUR(t, randObjects(rng, 80, 15), false)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr.size++ // now rootEntry.Count != size
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("checker accepted a tree whose root count disagrees with its size")
	}
	tr.size--

	tr.rootEntry.Count++ // children no longer sum to the root count
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("checker accepted a root count that children do not sum to")
	}
	tr.rootEntry.Count--

	h := tr.height
	tr.height++ // every leaf is now at the wrong depth
	if err := tr.CheckInvariants(); err == nil {
		t.Fatal("checker accepted leaves at the wrong depth")
	}
	tr.height = h
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("restored tree no longer passes: %v", err)
	}
}

// TestTrackedTraversalsAttributeIO verifies the WalkTracked and
// CheckInvariantsTracked reads are charged to the supplied tracker
// rather than dropped on the floor.
func TestTrackedTraversalsAttributeIO(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tr := buildIUR(t, randObjects(rng, 120, 15), false)

	var walkTr storage.Tracker
	if err := tr.WalkTracked(&walkTr, func(n *Node, depth int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if walkTr.Reads()+walkTr.CacheHits() == 0 {
		t.Error("WalkTracked charged no I/O to the tracker")
	}

	var checkTr storage.Tracker
	if err := tr.CheckInvariantsTracked(&checkTr); err != nil {
		t.Fatal(err)
	}
	if checkTr.Reads()+checkTr.CacheHits() == 0 {
		t.Error("CheckInvariantsTracked charged no I/O to the tracker")
	}
}
