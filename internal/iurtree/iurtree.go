// Package iurtree implements the Intersection-Union R-tree (IUR-tree) of
// the RSTkNN paper and its cluster-enhanced variant (CIUR-tree).
//
// An IUR-tree is an R-tree in which every entry is augmented with
//
//   - the number of objects in its subtree, and
//   - a textual envelope: the intersection vector (per-term minimum weight
//     over all documents below) and the union vector (per-term maximum).
//
// A CIUR-tree additionally partitions each subtree's objects by a textual
// clustering and stores one (count, envelope) summary per cluster, giving
// much tighter textual bounds when a subtree mixes unrelated documents.
//
// The tree topology is produced by the rtree substrate; this package
// augments it bottom-up and serializes every node onto the simulated disk
// (package storage), so queries incur the paper's I/O model: one node
// visit = ceil(nodeBytes/pageSize) page accesses.
package iurtree

import (
	"errors"
	"fmt"

	"rstknn/internal/cluster"
	"rstknn/internal/geom"
	"rstknn/internal/rtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Object is one spatial-textual object to index.
type Object struct {
	ID  int32
	Loc geom.Point
	Doc vector.Vector
}

// ClusterSummary is the per-cluster augmentation of a CIUR-tree entry.
type ClusterSummary struct {
	Cluster int32
	Count   int32
	Env     vector.Envelope
}

// Entry is one decoded slot of a tree node. Exactly one of Child/ObjID is
// meaningful: internal entries point at a child node, leaf entries carry
// an object. Leaf entries have Count == 1 and a degenerate envelope
// (Int == Uni == the object's document vector).
type Entry struct {
	Rect     geom.Rect
	Child    storage.NodeID // InvalidNode for leaf entries
	ObjID    int32
	Count    int32
	Env      vector.Envelope
	Clusters []ClusterSummary // nil for plain IUR-trees
}

// IsObject reports whether the entry is a leaf-level object entry.
func (e *Entry) IsObject() bool { return e.Child == storage.InvalidNode }

// Loc returns the point location of an object entry.
func (e *Entry) Loc() geom.Point { return e.Rect.Min }

// Doc returns the exact document vector of an object entry.
func (e *Entry) Doc() vector.Vector { return e.Env.Int }

// ClusterCounts returns the per-cluster histogram of the entry given the
// total number of clusters, or nil for unclustered entries.
func (e *Entry) ClusterCounts(numClusters int) []int {
	if len(e.Clusters) == 0 {
		return nil
	}
	counts := make([]int, numClusters)
	for _, cs := range e.Clusters {
		if int(cs.Cluster) < numClusters {
			counts[cs.Cluster] = int(cs.Count)
		}
	}
	return counts
}

// Node is one decoded tree node.
type Node struct {
	ID      storage.NodeID
	Leaf    bool
	Entries []Entry
}

// Config controls construction.
type Config struct {
	// Store is the simulated disk to write nodes to. Required.
	Store storage.Blobs
	// MinEntries/MaxEntries set the R-tree fan-out; zero values pick the
	// defaults (13/32).
	MinEntries, MaxEntries int
	// Clustering, when non-nil, builds a CIUR-tree: Of[i] must be the
	// cluster of objects[i] and Clusters the total cluster count.
	Clustering *cluster.Assignment
	// Incremental builds the topology by one-at-a-time R-tree insertion
	// (quadratic split) instead of STR bulk loading. Slower; mirrors a
	// dynamically grown index.
	Incremental bool
}

// Snapshot is one immutable version of an IUR-tree or CIUR-tree over a
// simulated disk. Build one with Build, reopen a saved one with Open, or
// derive the next version with Insert/Delete — updates are path-copying
// copy-on-write and return a NEW snapshot instead of mutating the
// receiver.
//
// A snapshot is safe for concurrent readers: ReadNode/ReadNodeTracked,
// Walk, and the accessor methods may be called from any number of
// goroutines, and keep working while Insert/Delete derive successor
// snapshots from it. The only lifetime rule: once the NodeIDs an update
// retired are freed (storage.Reclaimer), the superseded snapshots that
// referenced them must no longer be read.
type Snapshot struct {
	store       storage.Blobs
	rootID      storage.NodeID
	rootEntry   Entry // summary of the whole dataset
	height      int
	size        int
	space       geom.Rect
	maxD        float64
	numClusters int         // 0 for plain IUR-trees
	nodeCache   *nodeCache  // nil unless SetNodeCache enabled it
	boundCache  *boundCache // textual bound cache; on by default, see SetBoundCache
}

// Build constructs the tree over the given objects and seals it to disk.
// Object IDs must be unique; they are the identifiers query results use.
func Build(objects []Object, cfg Config) (*Snapshot, error) {
	if cfg.Store == nil {
		return nil, errors.New("iurtree: Config.Store is required")
	}
	min, max := cfg.MinEntries, cfg.MaxEntries
	if max == 0 {
		max = rtree.DefaultMaxEntries
	}
	if min == 0 {
		min = max * 2 / 5
	}
	if cfg.Clustering != nil && len(cfg.Clustering.Of) != len(objects) {
		return nil, fmt.Errorf("iurtree: clustering covers %d objects, have %d",
			len(cfg.Clustering.Of), len(objects))
	}
	seen := make(map[int32]bool, len(objects))
	byID := make(map[int32]*Object, len(objects))
	for i := range objects {
		o := &objects[i]
		if seen[o.ID] {
			return nil, fmt.Errorf("iurtree: duplicate object ID %d", o.ID)
		}
		seen[o.ID] = true
		byID[o.ID] = o
	}

	// 1. Spatial topology.
	rt := rtree.New(min, max)
	items := make([]rtree.Item, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{ID: o.ID, Rect: o.Loc.Rect()}
	}
	if cfg.Incremental {
		for _, it := range items {
			rt.Insert(it)
		}
	} else {
		rt.BulkLoad(items)
	}

	t := &Snapshot{
		store:      cfg.Store,
		height:     rt.Height(),
		size:       len(objects),
		boundCache: newBoundCache(DefaultBoundCacheNodes),
	}
	clusterOf := func(id int32) int32 { return 0 }
	if cfg.Clustering != nil {
		t.numClusters = cfg.Clustering.Clusters
		idx := make(map[int32]int, len(objects))
		for i, o := range objects {
			idx[o.ID] = i
		}
		of := cfg.Clustering.Of
		clusterOf = func(id int32) int32 { return int32(of[idx[id]]) }
	}

	// 2. Augment + serialize bottom-up (post-order), so children have IDs
	// before their parent entry is written.
	var seal func(n *rtree.Node) (Entry, error)
	seal = func(n *rtree.Node) (Entry, error) {
		node := Node{Leaf: n.Leaf}
		node.Entries = make([]Entry, 0, len(n.Entries))
		if n.Leaf {
			for _, re := range n.Entries {
				o := byID[re.ID]
				e := Entry{
					Rect:  re.Rect,
					Child: storage.InvalidNode,
					ObjID: o.ID,
					Count: 1,
					Env:   vector.Exact(o.Doc),
				}
				if t.numClusters > 0 {
					e.Clusters = []ClusterSummary{{
						Cluster: clusterOf(o.ID),
						Count:   1,
						Env:     e.Env,
					}}
				}
				node.Entries = append(node.Entries, e)
			}
		} else {
			for _, re := range n.Entries {
				child, err := seal(re.Child)
				if err != nil {
					return Entry{}, err
				}
				node.Entries = append(node.Entries, child)
			}
		}
		id := t.store.Put(encodeNode(&node))
		return summarize(&node, id), nil
	}

	root, err := seal(rt.Root())
	if err != nil {
		return nil, err
	}
	t.rootID = root.Child
	t.rootEntry = root
	t.space = root.Rect
	t.maxD = root.Rect.Diagonal()
	if t.maxD == 0 {
		t.maxD = 1 // single point or empty dataset; avoid division by zero
	}
	return t, nil
}

// summarize builds the parent-level entry describing node (already stored
// under id): union MBR, summed counts, merged envelopes, merged cluster
// summaries.
func summarize(n *Node, id storage.NodeID) Entry {
	e := Entry{
		Rect:  geom.EmptyRect(),
		Child: id,
	}
	first := true
	byCluster := make(map[int32]*ClusterSummary)
	var order []int32
	for i := range n.Entries {
		c := &n.Entries[i]
		e.Rect = e.Rect.Union(c.Rect)
		e.Count += c.Count
		if first {
			e.Env = c.Env
			first = false
		} else {
			e.Env = vector.Merge(e.Env, c.Env)
		}
		for _, cs := range c.Clusters {
			if prev, ok := byCluster[cs.Cluster]; ok {
				prev.Count += cs.Count
				prev.Env = vector.Merge(prev.Env, cs.Env)
			} else {
				cp := cs
				byCluster[cs.Cluster] = &cp
				order = append(order, cs.Cluster)
			}
		}
	}
	if len(order) > 0 {
		e.Clusters = make([]ClusterSummary, 0, len(order))
		for _, c := range order {
			e.Clusters = append(e.Clusters, *byCluster[c])
		}
	}
	return e
}

// ReadNode fetches and decodes the node stored under id, charging
// simulated I/O on the underlying store.
func (t *Snapshot) ReadNode(id storage.NodeID) (*Node, error) {
	return t.ReadNodeTracked(id, nil)
}

// ReadNodeTracked is ReadNode with per-query attribution: the simulated
// I/O is charged to tr (when non-nil) in addition to the store's global
// counters. When the decoded-node cache is enabled a hit skips both the
// page I/O and the deserialization, and is charged to the tracker as a
// cache hit. The returned node is shared with other queries when the
// cache is on — treat it as read-only.
func (t *Snapshot) ReadNodeTracked(id storage.NodeID, tr *storage.Tracker) (*Node, error) {
	if t.nodeCache != nil {
		if n, ok := t.nodeCache.get(id); ok {
			tr.ChargeCacheHit()
			return n, nil
		}
	}
	n, err := t.decodeFrom(id, tr)
	if err != nil {
		return nil, err
	}
	if t.nodeCache != nil {
		t.nodeCache.put(id, n)
	}
	return n, nil
}

// ReadViewTracked fetches the node stored under id and returns a
// zero-copy NodeView over its page bytes, charging the same simulated
// I/O as ReadNodeTracked: a bound-cache hit saves only the decode work,
// never a page access, so traversal cost accounting is identical to the
// eager path. offs is an optional offset buffer to reuse (grown when too
// small; recover it with NodeView.RecycleBuf).
//
// The view aliases the stored blob. It is valid for as long as the
// caller can rely on the node not being freed — for queries, the
// lifetime of the snapshot pin. When the decoded-node cache is enabled
// and hits, the view is backed by the cached decode instead and the read
// is charged as a cache hit, exactly like ReadNodeTracked.
func (t *Snapshot) ReadViewTracked(id storage.NodeID, tr *storage.Tracker, offs []int32) (NodeView, error) {
	if t.nodeCache != nil {
		if n, ok := t.nodeCache.get(id); ok {
			tr.ChargeCacheHit()
			return NodeView{id: id, node: n, offs: offs}, nil
		}
	}
	blob, err := t.store.GetTracked(id, tr)
	if err != nil {
		return NodeView{offs: offs}, err
	}
	leaf, offs, err := parseNodeView(blob, offs)
	if err != nil {
		return NodeView{offs: offs}, fmt.Errorf("iurtree: node %d: %w", id, err)
	}
	var text *nodeText
	if t.boundCache != nil {
		text, _ = t.boundCache.get(id)
	}
	if text == nil {
		// First touch (or cache disabled): run the full decode — which
		// also performs the semantic vector validation parseNodeView
		// skips — and remember its textual payload.
		n, err := decodeNode(blob)
		if err != nil {
			return NodeView{offs: offs}, fmt.Errorf("iurtree: node %d: %w", id, err)
		}
		n.ID = id
		text = newNodeText(n)
		if t.boundCache != nil {
			t.boundCache.put(id, text)
		}
		if t.nodeCache != nil {
			t.nodeCache.put(id, n)
		}
	}
	return NodeView{id: id, blob: blob, offs: offs, text: text, leaf: leaf}, nil
}

// readNodeFresh fetches and decodes a private copy of the node, bypassing
// the decoded-node cache in both directions. The update paths use it so
// the entry slices they edit before re-encoding are never shared with
// concurrent-reader cache entries; their read I/O is charged to tr.
func (t *Snapshot) readNodeFresh(id storage.NodeID, tr *storage.Tracker) (*Node, error) {
	return t.decodeFrom(id, tr)
}

func (t *Snapshot) decodeFrom(id storage.NodeID, tr *storage.Tracker) (*Node, error) {
	blob, err := t.store.GetTracked(id, tr)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(blob)
	if err != nil {
		return nil, fmt.Errorf("iurtree: node %d: %w", id, err)
	}
	n.ID = id
	return n, nil
}

// SetNodeCache enables (capacity > 0) or disables (capacity <= 0) an
// in-memory LRU cache of up to capacity decoded nodes. Hot nodes then
// skip the simulated page I/O and the per-read deserialization; hits are
// charged to the reader's Tracker as cache hits. Because cache hits
// bypass the storage layer, enable it for serving throughput, not when
// reproducing the paper's cold I/O counts.
func (t *Snapshot) SetNodeCache(capacity int) {
	if capacity <= 0 {
		t.nodeCache = nil
		return
	}
	t.nodeCache = newNodeCache(capacity)
}

// SetBoundCache resizes (capacity > 0) or disables (capacity <= 0) the
// textual bound cache: a per-NodeID memoization of decoded envelopes and
// cluster summaries that the zero-copy read path (ReadViewTracked)
// shares across queries and rounds. Build and Open enable it at
// DefaultBoundCacheNodes. Unlike the decoded-node cache, hits never skip
// the simulated page I/O, so results AND I/O counts are identical with
// the cache on or off — disabling it only restores the eager per-read
// decode (the DESIGN.md §10 ablation).
//
// Call it before the snapshot serves queries or derives successors: the
// cache pointer is shared with derived snapshots at derive() time, and
// the reclaimer's eviction hook only reaches caches installed on the
// snapshot the hook was bound to.
func (t *Snapshot) SetBoundCache(capacity int) {
	if capacity <= 0 {
		t.boundCache = nil
		return
	}
	t.boundCache = newBoundCache(capacity)
}

// BoundCacheStats reports the bound cache's cumulative hit/miss counters
// and current size (zero values when the cache is disabled).
type BoundCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// BoundCacheStats returns the current bound-cache statistics.
func (t *Snapshot) BoundCacheStats() BoundCacheStats {
	if t.boundCache == nil {
		return BoundCacheStats{}
	}
	return BoundCacheStats{
		Hits:    t.boundCache.hits.Load(),
		Misses:  t.boundCache.misses.Load(),
		Entries: t.boundCache.entries(),
	}
}

// InvalidateNode drops one node from the decoded-node cache and the
// bound cache (both shared by every snapshot derived from this one). The
// engine calls it from the reclaimer's on-free hook, so a recycled
// NodeID can never serve a stale decode; a snapshot without caches
// ignores the call.
func (t *Snapshot) InvalidateNode(id storage.NodeID) {
	if t.nodeCache != nil {
		t.nodeCache.invalidate(id)
	}
	if t.boundCache != nil {
		t.boundCache.invalidate(id)
	}
}

// RootID returns the NodeID of the root node.
func (t *Snapshot) RootID() storage.NodeID { return t.rootID }

// RootEntry returns the entry summarizing the entire dataset: the
// dataspace MBR, total object count, corpus envelope, and (for
// CIUR-trees) the full cluster histogram.
func (t *Snapshot) RootEntry() Entry { return t.rootEntry }

// Len returns the number of indexed objects.
func (t *Snapshot) Len() int { return t.size }

// Height returns the number of levels.
func (t *Snapshot) Height() int { return t.height }

// Space returns the dataspace MBR.
func (t *Snapshot) Space() geom.Rect { return t.space }

// MaxD returns the normalization distance: the dataspace diagonal, the
// maximum distance between any two indexed points.
func (t *Snapshot) MaxD() float64 { return t.maxD }

// NumClusters returns the clustering arity, or 0 for a plain IUR-tree.
func (t *Snapshot) NumClusters() int { return t.numClusters }

// Clustered reports whether the tree is a CIUR-tree.
func (t *Snapshot) Clustered() bool { return t.numClusters > 0 }

// Store exposes the underlying simulated disk (for I/O statistics).
func (t *Snapshot) Store() storage.Blobs { return t.store }

// Walk visits every node of the tree in depth-first order, calling visit
// with the node and its depth (0 at the root). It charges simulated I/O
// like any other read path; reads are unattributed (no tracker).
func (t *Snapshot) Walk(visit func(n *Node, depth int) error) error {
	return t.WalkTracked(nil, visit)
}

// WalkTracked is Walk with the traversal's node reads attributed to tr,
// so maintenance scans show up in per-query I/O accounting instead of
// vanishing into the global counters. A nil tracker is allowed.
func (t *Snapshot) WalkTracked(tr *storage.Tracker, visit func(n *Node, depth int) error) error {
	var rec func(id storage.NodeID, depth int) error
	rec = func(id storage.NodeID, depth int) error {
		n, err := t.ReadNodeTracked(id, tr)
		if err != nil {
			return err
		}
		if err := visit(n, depth); err != nil {
			return err
		}
		if n.Leaf {
			return nil
		}
		for i := range n.Entries {
			if err := rec(n.Entries[i].Child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if t.size == 0 {
		return nil
	}
	return rec(t.rootID, 0)
}

// CheckInvariants verifies the IUR-tree augmentation invariants on the
// whole tree: counts add up, every entry's MBR/envelope contains its
// subtree, per-cluster summaries partition the entry count, and all
// leaves sit at the same depth. Intended for tests and the -checkindex
// maintenance command; it reads every node.
func (t *Snapshot) CheckInvariants() error {
	return t.CheckInvariantsTracked(nil)
}

// CheckInvariantsTracked is CheckInvariants with the walk's node reads
// attributed to tr. A nil tracker is allowed.
func (t *Snapshot) CheckInvariantsTracked(tr *storage.Tracker) error {
	if t.size == 0 {
		if t.rootEntry.Count != 0 {
			return fmt.Errorf("empty tree has root count %d", t.rootEntry.Count)
		}
		return nil
	}
	if t.rootEntry.Count != int32(t.size) {
		return fmt.Errorf("root entry count %d != tree size %d", t.rootEntry.Count, t.size)
	}
	if !t.space.ContainsRect(t.rootEntry.Rect) {
		return fmt.Errorf("root rect %v outside dataspace %v", t.rootEntry.Rect, t.space)
	}
	leafDepth := t.height - 1
	var check func(e Entry, depth int) error
	check = func(e Entry, depth int) error {
		if e.IsObject() {
			if e.Count != 1 {
				return fmt.Errorf("object %d has count %d", e.ObjID, e.Count)
			}
			if !e.Env.Int.Equal(e.Env.Uni) {
				return fmt.Errorf("object %d has non-degenerate envelope", e.ObjID)
			}
			return nil
		}
		n, err := t.ReadNodeTracked(e.Child, tr)
		if err != nil {
			return err
		}
		if n.Leaf && depth != leafDepth {
			return fmt.Errorf("node %d: leaf at depth %d, want %d (unbalanced tree)", e.Child, depth, leafDepth)
		}
		if !n.Leaf && depth >= leafDepth {
			return fmt.Errorf("node %d: internal node at depth %d, height %d", e.Child, depth, t.height)
		}
		if len(n.Entries) == 0 {
			return fmt.Errorf("node %d: empty non-root node", e.Child)
		}
		var count int32
		for i := range n.Entries {
			c := n.Entries[i]
			count += c.Count
			if !e.Rect.ContainsRect(c.Rect) {
				return fmt.Errorf("node %d: child rect %v outside parent %v", e.Child, c.Rect, e.Rect)
			}
			if !e.Env.Int.DominatedBy(c.Env.Int) {
				return fmt.Errorf("node %d: intersection vector not a lower bound", e.Child)
			}
			if !c.Env.Uni.DominatedBy(e.Env.Uni) {
				return fmt.Errorf("node %d: union vector not an upper bound", e.Child)
			}
			if err := check(c, depth+1); err != nil {
				return err
			}
		}
		if count != e.Count {
			return fmt.Errorf("node %d: children count %d != entry count %d", e.Child, count, e.Count)
		}
		var clusterTotal int32
		for _, cs := range e.Clusters {
			clusterTotal += cs.Count
			if !cs.Env.Valid() {
				return fmt.Errorf("node %d cluster %d: invalid envelope", e.Child, cs.Cluster)
			}
			if !e.Env.Int.DominatedBy(cs.Env.Int) {
				return fmt.Errorf("node %d cluster %d: cluster intersection below entry intersection", e.Child, cs.Cluster)
			}
			if !cs.Env.Uni.DominatedBy(e.Env.Uni) {
				return fmt.Errorf("node %d cluster %d: cluster union above entry union", e.Child, cs.Cluster)
			}
		}
		if len(e.Clusters) > 0 && clusterTotal != e.Count {
			return fmt.Errorf("node %d: cluster counts sum to %d, entry count %d", e.Child, clusterTotal, e.Count)
		}
		return nil
	}
	return check(t.rootEntry, 0)
}
