package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/cluster"
	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

func TestInsertIntoSealedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs := randObjects(rng, 300, 25)
	tr := buildIUR(t, objs[:150], false)
	for _, o := range objs[150:] {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every object reachable via Walk.
	seen := map[int32]bool{}
	if err := tr.Walk(func(n *Node, depth int) error {
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 300 {
		t.Errorf("walk found %d objects", len(seen))
	}
}

func TestInsertGrowsTreeAndSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := buildIUR(t, randObjects(rng, 5, 10), false)
	h0 := tr.Height()
	// Enough inserts to force at least one root split.
	for i := 0; i < 400; i++ {
		o := Object{
			ID:  int32(1000 + i),
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(map[vector.TermID]float64{vector.TermID(i % 20): 1}),
		}
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() <= h0 {
		t.Errorf("height did not grow: %d -> %d", h0, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Insert far outside the dataspace: maxD must grow.
	before := tr.MaxD()
	if err := tr.Insert(Object{ID: 9999, Loc: geom.Point{X: 5000, Y: 5000},
		Doc: vector.New(map[vector.TermID]float64{1: 1})}); err != nil {
		t.Fatal(err)
	}
	if tr.MaxD() <= before {
		t.Errorf("maxD did not grow: %g -> %g", before, tr.MaxD())
	}
}

func TestInsertIntoEmptyTree(t *testing.T) {
	tr := buildIUR(t, nil, false)
	o := Object{ID: 1, Loc: geom.Point{X: 2, Y: 3},
		Doc: vector.New(map[vector.TermID]float64{4: 1})}
	if err := tr.Insert(o); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.RootEntry().Count != 1 {
		t.Fatalf("Len=%d rootCount=%d", tr.Len(), tr.RootEntry().Count)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFromSealedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	objs := randObjects(rng, 250, 20)
	tr := buildIUR(t, objs, false)
	// Delete a random half.
	perm := rng.Perm(len(objs))
	for _, i := range perm[:125] {
		ok, err := tr.Delete(objs[i].ID, objs[i].Loc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%d) not found", objs[i].ID)
		}
	}
	if tr.Len() != 125 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted objects are gone; survivors remain.
	seen := map[int32]bool{}
	if err := tr.Walk(func(n *Node, depth int) error {
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, i := range perm[:125] {
		if seen[objs[i].ID] {
			t.Fatalf("deleted object %d still present", objs[i].ID)
		}
	}
	if len(seen) != 125 {
		t.Errorf("walk found %d survivors", len(seen))
	}
}

func TestDeleteMissingAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	objs := randObjects(rng, 20, 10)
	tr := buildIUR(t, objs, false)
	if ok, err := tr.Delete(999, geom.Point{X: 1, Y: 1}); err != nil || ok {
		t.Errorf("deleting unknown object: ok=%v err=%v", ok, err)
	}
	// Wrong location for a real ID.
	if ok, err := tr.Delete(objs[0].ID, geom.Point{X: -1e9, Y: -1e9}); err != nil || ok {
		t.Errorf("deleting with wrong location: ok=%v err=%v", ok, err)
	}
	for _, o := range objs {
		if ok, err := tr.Delete(o.ID, o.Loc); err != nil || !ok {
			t.Fatalf("Delete(%d): ok=%v err=%v", o.ID, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if ok, _ := tr.Delete(objs[0].ID, objs[0].Loc); ok {
		t.Error("delete from empty tree should find nothing")
	}
	// Tree remains usable.
	if err := tr.Insert(objs[0]); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("reinsert failed: Len = %d", tr.Len())
	}
}

func TestUpdatesRejectedOnClusteredTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	objs := randObjects(rng, 50, 10)
	docs := make([]vector.Vector, len(objs))
	for i := range objs {
		docs[i] = objs[i].Doc
	}
	tr, err := Build(objs, Config{
		Store:      storage.NewStore(),
		Clustering: cluster.Run(docs, cluster.Config{K: 3, Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(objs[0]); err != ErrClustered {
		t.Errorf("Insert on CIUR: %v", err)
	}
	if _, err := tr.Delete(objs[0].ID, objs[0].Loc); err != ErrClustered {
		t.Errorf("Delete on CIUR: %v", err)
	}
}

func TestInterleavedUpdatesKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := buildIUR(t, nil, false)
	live := map[int32]Object{}
	next := int32(0)
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Float64() < 0.65 {
			o := Object{
				ID:  next,
				Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Doc: vector.New(map[vector.TermID]float64{vector.TermID(rng.Intn(15)): 1 + rng.Float64()}),
			}
			next++
			if err := tr.Insert(o); err != nil {
				t.Fatal(err)
			}
			live[o.ID] = o
		} else {
			for id, o := range live {
				ok, err := tr.Delete(o.ID, o.Loc)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("step %d: live object %d not found", step, id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
