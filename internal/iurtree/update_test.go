package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/cluster"
	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// insertAll applies a sequence of COW inserts, rebinding the snapshot
// and collecting the retired node IDs.
func insertAll(t *testing.T, tr *Snapshot, objs []Object) (*Snapshot, []storage.NodeID) {
	t.Helper()
	var retired []storage.NodeID
	for _, o := range objs {
		next, rets, err := tr.Insert(o, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr = next
		retired = append(retired, rets...)
	}
	return tr, retired
}

func TestInsertIntoSealedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs := randObjects(rng, 300, 25)
	tr := buildIUR(t, objs[:150], false)
	tr, _ = insertAll(t, tr, objs[150:])
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every object reachable via Walk.
	seen := map[int32]bool{}
	if err := tr.Walk(func(n *Node, depth int) error {
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 300 {
		t.Errorf("walk found %d objects", len(seen))
	}
}

func TestInsertLeavesReceiverSnapshotIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	objs := randObjects(rng, 80, 15)
	before := buildIUR(t, objs[:60], false)
	after, retired, err := before.Insert(objs[60], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) == 0 {
		t.Fatal("insert retired no nodes")
	}
	// The receiver still describes the pre-insert dataset and remains
	// fully traversable (no retired node has been freed yet).
	if before.Len() != 60 || after.Len() != 61 {
		t.Fatalf("Len: before=%d after=%d", before.Len(), after.Len())
	}
	if err := before.CheckInvariants(); err != nil {
		t.Fatalf("receiver snapshot broken after COW insert: %v", err)
	}
	if err := after.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	if err := before.Walk(func(n *Node, depth int) error {
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen[objs[60].ID] {
		t.Error("old snapshot sees the new object")
	}
	if len(seen) != 60 {
		t.Errorf("old snapshot walk found %d objects, want 60", len(seen))
	}
}

func TestUpdateChargesWriteIO(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	objs := randObjects(rng, 100, 15)
	tr := buildIUR(t, objs[:99], false)
	var tracker storage.Tracker
	next, retired, err := tr.Insert(objs[99], &tracker)
	if err != nil {
		t.Fatal(err)
	}
	if tracker.Writes() == 0 || tracker.PagesWritten() == 0 {
		t.Errorf("insert charged no write I/O: writes=%d pages=%d",
			tracker.Writes(), tracker.PagesWritten())
	}
	// Path copying writes at least one fresh node per superseded node
	// (more on splits).
	if int(tracker.Writes()) < len(retired) {
		t.Errorf("writes=%d < retired=%d", tracker.Writes(), len(retired))
	}
	tracker.Reset()
	if _, _, ok, err := next.Delete(objs[0].ID, objs[0].Loc, &tracker); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if tracker.Writes() == 0 {
		t.Error("delete charged no write I/O")
	}
	if tracker.Reads() == 0 {
		t.Error("delete charged no read I/O for its descent")
	}
}

func TestInsertGrowsTreeAndSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := buildIUR(t, randObjects(rng, 5, 10), false)
	h0 := tr.Height()
	// Enough inserts to force at least one root split.
	for i := 0; i < 400; i++ {
		o := Object{
			ID:  int32(1000 + i),
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(map[vector.TermID]float64{vector.TermID(i % 20): 1}),
		}
		next, _, err := tr.Insert(o, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr = next
	}
	if tr.Height() <= h0 {
		t.Errorf("height did not grow: %d -> %d", h0, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Insert far outside the dataspace: maxD must grow.
	before := tr.MaxD()
	next, _, err := tr.Insert(Object{ID: 9999, Loc: geom.Point{X: 5000, Y: 5000},
		Doc: vector.New(map[vector.TermID]float64{1: 1})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.MaxD() <= before {
		t.Errorf("maxD did not grow: %g -> %g", before, next.MaxD())
	}
	// maxD is per snapshot: the receiver keeps its old normalizer.
	if tr.MaxD() != before {
		t.Errorf("receiver maxD changed: %g -> %g", before, tr.MaxD())
	}
}

func TestInsertIntoEmptyTree(t *testing.T) {
	tr := buildIUR(t, nil, false)
	o := Object{ID: 1, Loc: geom.Point{X: 2, Y: 3},
		Doc: vector.New(map[vector.TermID]float64{4: 1})}
	next, retired, err := tr.Insert(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 {
		t.Errorf("retired %d nodes, want the old empty root", len(retired))
	}
	if next.Len() != 1 || next.RootEntry().Count != 1 {
		t.Fatalf("Len=%d rootCount=%d", next.Len(), next.RootEntry().Count)
	}
	if err := next.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFromSealedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	objs := randObjects(rng, 250, 20)
	tr := buildIUR(t, objs, false)
	// Delete a random half.
	perm := rng.Perm(len(objs))
	for _, i := range perm[:125] {
		next, _, ok, err := tr.Delete(objs[i].ID, objs[i].Loc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Delete(%d) not found", objs[i].ID)
		}
		tr = next
	}
	if tr.Len() != 125 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted objects are gone; survivors remain.
	seen := map[int32]bool{}
	if err := tr.Walk(func(n *Node, depth int) error {
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, i := range perm[:125] {
		if seen[objs[i].ID] {
			t.Fatalf("deleted object %d still present", objs[i].ID)
		}
	}
	if len(seen) != 125 {
		t.Errorf("walk found %d survivors", len(seen))
	}
}

func TestDeleteMissingAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	objs := randObjects(rng, 20, 10)
	tr := buildIUR(t, objs, false)
	if next, retired, ok, err := tr.Delete(999, geom.Point{X: 1, Y: 1}, nil); err != nil || ok {
		t.Errorf("deleting unknown object: ok=%v err=%v", ok, err)
	} else if next != tr || len(retired) != 0 {
		t.Error("not-found delete must return the receiver unchanged")
	}
	// Wrong location for a real ID.
	if _, _, ok, err := tr.Delete(objs[0].ID, geom.Point{X: -1e9, Y: -1e9}, nil); err != nil || ok {
		t.Errorf("deleting with wrong location: ok=%v err=%v", ok, err)
	}
	for _, o := range objs {
		next, _, ok, err := tr.Delete(o.ID, o.Loc, nil)
		if err != nil || !ok {
			t.Fatalf("Delete(%d): ok=%v err=%v", o.ID, ok, err)
		}
		tr = next
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if _, _, ok, _ := tr.Delete(objs[0].ID, objs[0].Loc, nil); ok {
		t.Error("delete from empty tree should find nothing")
	}
	// Tree remains usable.
	next, _, err := tr.Insert(objs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Len() != 1 {
		t.Errorf("reinsert failed: Len = %d", next.Len())
	}
}

func TestUpdatesRejectedOnClusteredTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	objs := randObjects(rng, 50, 10)
	docs := make([]vector.Vector, len(objs))
	for i := range objs {
		docs[i] = objs[i].Doc
	}
	tr, err := Build(objs, Config{
		Store:      storage.NewStore(),
		Clustering: cluster.Run(docs, cluster.Config{K: 3, Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Insert(objs[0], nil); err != ErrClustered {
		t.Errorf("Insert on CIUR: %v", err)
	}
	if _, _, _, err := tr.Delete(objs[0].ID, objs[0].Loc, nil); err != ErrClustered {
		t.Errorf("Delete on CIUR: %v", err)
	}
}

func TestInterleavedUpdatesKeepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := buildIUR(t, nil, false)
	rec := storage.NewReclaimer(tr.Store())
	live := map[int32]Object{}
	next := int32(0)
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Float64() < 0.65 {
			o := Object{
				ID:  next,
				Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Doc: vector.New(map[vector.TermID]float64{vector.TermID(rng.Intn(15)): 1 + rng.Float64()}),
			}
			next++
			nt, retired, err := tr.Insert(o, nil)
			if err != nil {
				t.Fatal(err)
			}
			tr = nt
			rec.Retire(retired)
			live[o.ID] = o
		} else {
			for id, o := range live {
				nt, retired, ok, err := tr.Delete(o.ID, o.Loc, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("step %d: live object %d not found", step, id)
				}
				tr = nt
				rec.Retire(retired)
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With no pinned readers every retired node must have been freed
	// and live usage stays in step with the live object count: the
	// superseded-node leak is gone.
	if st := rec.Stats(); st.Pending != 0 || st.Freed == 0 {
		t.Errorf("reclaimer: pending=%d freed=%d", st.Pending, st.Freed)
	}
	store := tr.Store()
	if lb, tb := store.LiveBytes(), store.TotalBytes(); lb != tb {
		t.Errorf("LiveBytes=%d != TotalBytes=%d with all garbage freed", lb, tb)
	}
}
