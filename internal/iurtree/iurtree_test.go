package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/cluster"
	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

func randObjects(rng *rand.Rand, n, vocab int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		m := make(map[vector.TermID]float64)
		for j := 0; j < 1+rng.Intn(5); j++ {
			m[vector.TermID(rng.Intn(vocab))] = 0.5 + rng.Float64()*3
		}
		objs[i] = Object{
			ID:  int32(i),
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(m),
		}
	}
	return objs
}

func buildIUR(t *testing.T, objs []Object, incremental bool) *Snapshot {
	t.Helper()
	tr, err := Build(objs, Config{
		Store:       storage.NewStore(),
		Incremental: incremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("missing store should fail")
	}
	objs := []Object{{ID: 1}, {ID: 1}}
	if _, err := Build(objs, Config{Store: storage.NewStore()}); err == nil {
		t.Error("duplicate IDs should fail")
	}
	a := &cluster.Assignment{Clusters: 1, Of: []int{0}}
	if _, err := Build(objs, Config{Store: storage.NewStore(), Clustering: a}); err == nil {
		t.Error("clustering size mismatch should fail")
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	tr := buildIUR(t, nil, false)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if tr.MaxD() <= 0 {
		t.Error("MaxD must be positive even for empty trees")
	}

	one := []Object{{ID: 42, Loc: geom.Point{X: 1, Y: 2},
		Doc: vector.New(map[vector.TermID]float64{3: 1})}}
	tr = buildIUR(t, one, false)
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	root := tr.RootEntry()
	if root.Count != 1 {
		t.Errorf("root count = %d", root.Count)
	}
	n, err := tr.ReadNode(tr.RootID())
	if err != nil {
		t.Fatal(err)
	}
	if !n.Leaf || len(n.Entries) != 1 || n.Entries[0].ObjID != 42 {
		t.Errorf("unexpected root node: %+v", n)
	}
	if !n.Entries[0].IsObject() {
		t.Error("leaf entry should be an object entry")
	}
	if n.Entries[0].Loc() != (geom.Point{X: 1, Y: 2}) {
		t.Errorf("Loc = %v", n.Entries[0].Loc())
	}
	if !n.Entries[0].Doc().Equal(one[0].Doc) {
		t.Errorf("Doc = %v", n.Entries[0].Doc())
	}
}

func TestInvariantsBulkAndIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := randObjects(rng, 700, 40)
	for _, incremental := range []bool{false, true} {
		tr := buildIUR(t, objs, incremental)
		if tr.Len() != 700 {
			t.Fatalf("Len = %d", tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("incremental=%v: %v", incremental, err)
		}
		if tr.Clustered() {
			t.Error("plain build should not be clustered")
		}
	}
}

func TestRootEntrySummarizesCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 300, 25)
	tr := buildIUR(t, objs, false)
	root := tr.RootEntry()
	if int(root.Count) != len(objs) {
		t.Errorf("root count = %d", root.Count)
	}
	// The root union vector must dominate every document; the root
	// intersection vector must be dominated by every document.
	for _, o := range objs {
		if !root.Rect.Contains(o.Loc) {
			t.Fatalf("object %d outside root MBR", o.ID)
		}
		if !o.Doc.DominatedBy(root.Env.Uni) {
			t.Fatalf("object %d doc not dominated by root union", o.ID)
		}
		if !root.Env.Int.DominatedBy(o.Doc) {
			t.Fatalf("root intersection not dominated by object %d doc", o.ID)
		}
	}
	if tr.MaxD() != tr.Space().Diagonal() {
		t.Errorf("MaxD = %g, want space diagonal %g", tr.MaxD(), tr.Space().Diagonal())
	}
}

func TestCIURTreeClusterSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjects(rng, 400, 30)
	docs := make([]vector.Vector, len(objs))
	for i, o := range objs {
		docs[i] = o.Doc
	}
	asg := cluster.Run(docs, cluster.Config{K: 5, Seed: 1})
	tr, err := Build(objs, Config{Store: storage.NewStore(), Clustering: asg})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Clustered() || tr.NumClusters() != asg.Clusters {
		t.Fatalf("NumClusters = %d, want %d", tr.NumClusters(), asg.Clusters)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Root histogram must equal the assignment's sizes.
	root := tr.RootEntry()
	counts := root.ClusterCounts(tr.NumClusters())
	want := asg.Sizes()
	for c := range want {
		if counts[c] != want[c] {
			t.Errorf("cluster %d: root count %d, assignment %d", c, counts[c], want[c])
		}
	}
	// Per-cluster envelopes must contain the member documents.
	byCluster := make(map[int32]vector.Envelope)
	for _, cs := range root.Clusters {
		byCluster[cs.Cluster] = cs.Env
	}
	for i, o := range objs {
		env, ok := byCluster[int32(asg.Of[i])]
		if !ok {
			t.Fatalf("cluster %d missing from root", asg.Of[i])
		}
		if !env.Contains(o.Doc) {
			t.Fatalf("object %d doc outside its cluster envelope", o.ID)
		}
	}
}

func TestWalkVisitsAllObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	objs := randObjects(rng, 250, 20)
	tr := buildIUR(t, objs, false)
	seen := make(map[int32]bool)
	maxDepth := 0
	err := tr.Walk(func(n *Node, depth int) error {
		if depth > maxDepth {
			maxDepth = depth
		}
		if n.Leaf {
			for _, e := range n.Entries {
				seen[e.ObjID] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(objs) {
		t.Errorf("walk saw %d objects, want %d", len(seen), len(objs))
	}
	if maxDepth+1 != tr.Height() {
		t.Errorf("max depth %d inconsistent with height %d", maxDepth, tr.Height())
	}
}

func TestReadNodeChargesIO(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randObjects(rng, 200, 20)
	store := storage.NewStore()
	tr, err := Build(objs, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	if _, err := tr.ReadNode(tr.RootID()); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Reads != 1 || st.PagesRead < 1 {
		t.Errorf("stats after one read: %+v", st)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := randObjects(rng, 150, 20)
	store := storage.NewStore()
	docs := make([]vector.Vector, len(objs))
	for i, o := range objs {
		docs[i] = o.Doc
	}
	asg := cluster.Run(docs, cluster.Config{K: 3, Seed: 2})
	tr, err := Build(objs, Config{Store: store, Clustering: asg})
	if err != nil {
		t.Fatal(err)
	}
	headerID := tr.Save()
	got, err := Open(store, headerID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Height() != tr.Height() ||
		got.RootID() != tr.RootID() || got.MaxD() != tr.MaxD() ||
		got.NumClusters() != tr.NumClusters() || got.Space() != tr.Space() {
		t.Errorf("reopened tree differs: %+v vs %+v", got, tr)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOpenErrors(t *testing.T) {
	store := storage.NewStore()
	if _, err := Open(store, 0); err == nil {
		t.Error("open of missing blob should fail")
	}
	junk := store.Put([]byte("this is not a tree header, definitely"))
	if _, err := Open(store, junk); err == nil {
		t.Error("open of junk should fail")
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := &Node{Leaf: rng.Intn(2) == 0}
		count := rng.Intn(6)
		for i := 0; i < count; i++ {
			e := Entry{
				Rect: geom.Rect{
					Min: geom.Point{X: rng.Float64(), Y: rng.Float64()},
					Max: geom.Point{X: 1 + rng.Float64(), Y: 1 + rng.Float64()},
				},
				Child: storage.NodeID(rng.Intn(100)),
				ObjID: int32(rng.Intn(1000)),
				Count: int32(1 + rng.Intn(50)),
			}
			intv := randDoc(rng)
			e.Env = vector.Envelope{Int: intv, Uni: intv.Max(randDoc(rng))}
			if rng.Intn(2) == 0 {
				e.Clusters = []ClusterSummary{
					{Cluster: 0, Count: e.Count - 1, Env: e.Env},
					{Cluster: 3, Count: 1, Env: vector.Exact(randDoc(rng))},
				}
			}
			n.Entries = append(n.Entries, e)
		}
		blob := encodeNode(n)
		got, err := decodeNode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Leaf != n.Leaf || len(got.Entries) != len(n.Entries) {
			t.Fatalf("shape mismatch")
		}
		for i := range n.Entries {
			a, b := &n.Entries[i], &got.Entries[i]
			if a.Rect != b.Rect || a.Child != b.Child || a.ObjID != b.ObjID || a.Count != b.Count {
				t.Fatalf("entry %d header mismatch", i)
			}
			if !a.Env.Int.Equal(b.Env.Int) || !a.Env.Uni.Equal(b.Env.Uni) {
				t.Fatalf("entry %d envelope mismatch", i)
			}
			if len(a.Clusters) != len(b.Clusters) {
				t.Fatalf("entry %d cluster count mismatch", i)
			}
			for j := range a.Clusters {
				if a.Clusters[j].Cluster != b.Clusters[j].Cluster ||
					a.Clusters[j].Count != b.Clusters[j].Count {
					t.Fatalf("entry %d cluster %d mismatch", i, j)
				}
			}
		}
	}
}

func randDoc(rng *rand.Rand) vector.Vector {
	m := make(map[vector.TermID]float64)
	for j := 0; j < 1+rng.Intn(4); j++ {
		m[vector.TermID(rng.Intn(20))] = 0.5 + rng.Float64()
	}
	return vector.New(m)
}

func TestDecodeNodeErrors(t *testing.T) {
	if _, err := decodeNode(nil); err == nil {
		t.Error("nil blob should fail")
	}
	if _, err := decodeNode([]byte{1, 5, 0}); err == nil {
		t.Error("blob promising 5 entries with no data should fail")
	}
	n := &Node{Leaf: true, Entries: []Entry{{
		Rect:  geom.Point{X: 1, Y: 1}.Rect(),
		Child: storage.InvalidNode,
		ObjID: 1, Count: 1,
		Env: vector.Exact(vector.New(map[vector.TermID]float64{1: 1})),
	}}}
	blob := encodeNode(n)
	if _, err := decodeNode(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
	if _, err := decodeNode(append(blob, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestClusterCounts(t *testing.T) {
	e := Entry{Clusters: []ClusterSummary{{Cluster: 0, Count: 3}, {Cluster: 2, Count: 1}}}
	got := e.ClusterCounts(4)
	if got[0] != 3 || got[1] != 0 || got[2] != 1 || got[3] != 0 {
		t.Errorf("ClusterCounts = %v", got)
	}
	var plain Entry
	if plain.ClusterCounts(4) != nil {
		t.Error("unclustered entry should return nil")
	}
}
