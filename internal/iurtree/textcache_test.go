package iurtree

import (
	"math/rand"
	"testing"

	"rstknn/internal/storage"
)

// warmBoundCache reads every node of the snapshot through the zero-copy
// view path (populating the bound cache) and returns the visited IDs.
func warmBoundCache(t *testing.T, tr *Snapshot) []storage.NodeID {
	t.Helper()
	var ids []storage.NodeID
	var walk func(id storage.NodeID)
	walk = func(id storage.NodeID) {
		ids = append(ids, id)
		v, err := tr.ReadViewTracked(id, nil, nil)
		if err != nil {
			t.Fatalf("ReadViewTracked(%d): %v", id, err)
		}
		for i := 0; i < v.Len(); i++ {
			if !v.EntryIsObject(i) {
				walk(v.EntryChild(i))
			}
		}
	}
	walk(tr.RootID())
	return ids
}

func TestBoundCacheHitStillPaysIO(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs := randObjects(rng, 200, 20)
	store := storage.NewStore()
	tr, err := Build(objs, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var tk storage.Tracker
	if _, err := tr.ReadViewTracked(tr.RootID(), &tk, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadViewTracked(tr.RootID(), &tk, nil); err != nil {
		t.Fatal(err)
	}
	// Unlike the decoded-node cache, a bound cache hit re-decodes
	// nothing but must still charge the simulated page I/O: the paper's
	// I/O counts may not depend on cache warmth.
	if tk.Reads() != 2 || tk.CacheHits() != 0 {
		t.Fatalf("tracker %+v, want 2 charged reads and no cache hits", tk.Stats())
	}
	st := tr.BoundCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("bound cache stats %+v, want 1 hit 1 miss", st)
	}
}

// TestBoundCacheEvictedOnFree asserts a retired node's cached bounds are
// evicted through the reclaimer's on-free hook: freed slots are recycled
// by later inserts, so a stale entry under a reused NodeID would serve
// another node's bounds.
func TestBoundCacheEvictedOnFree(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	objs := randObjects(rng, 120, 20)
	store := storage.NewStore()
	tr, err := Build(objs[:100], Config{Store: store, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := storage.NewReclaimer(store)
	rec.SetOnFree(tr.InvalidateNode)

	warmBoundCache(t, tr)
	nt, retired, err := tr.Insert(objs[100], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) == 0 {
		t.Fatal("insert retired nothing")
	}
	for _, id := range retired {
		if !tr.boundCache.contains(id) {
			t.Fatalf("node %d not cached before retirement", id)
		}
	}
	rec.Retire(retired) // no pinned readers: frees (and evicts) immediately
	for _, id := range retired {
		if nt.boundCache.contains(id) {
			t.Errorf("node %d still cached after free", id)
		}
	}
}

// TestBoundCacheSurvivesPinnedChurn asserts the flip side: while a
// pinned reader can still reach a retired snapshot, its cached bounds
// stay resident and readable, and eviction happens only at unpin.
func TestBoundCacheSurvivesPinnedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	objs := randObjects(rng, 120, 20)
	store := storage.NewStore()
	tr, err := Build(objs[:100], Config{Store: store, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetNodeCache(256) // exercise both caches under churn
	rec := storage.NewReclaimer(store)
	rec.SetOnFree(tr.InvalidateNode)

	warmBoundCache(t, tr)
	tok := rec.Pin() // a reader holding the pre-insert snapshot
	nt, retired, err := tr.Insert(objs[100], nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Retire(retired)

	// The pin defers the frees: bounds stay cached and the old snapshot
	// still reads every retired node.
	for _, id := range retired {
		if !tr.boundCache.contains(id) {
			t.Fatalf("node %d evicted while still pinned", id)
		}
		if _, err := tr.ReadViewTracked(id, nil, nil); err != nil {
			t.Fatalf("pinned read of retired node %d: %v", id, err)
		}
	}

	rec.Release(tok)
	for _, id := range retired {
		if nt.boundCache.contains(id) {
			t.Errorf("node %d still in bound cache after unpin", id)
		}
		if _, ok := nt.nodeCache.get(id); ok {
			t.Errorf("node %d still in node cache after unpin", id)
		}
	}
}

// TestSetBoundCacheDisable asserts the ablation knob: with the cache off
// every read decodes eagerly and stats stay zero.
func TestSetBoundCacheDisable(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	objs := randObjects(rng, 100, 20)
	tr, err := Build(objs, Config{Store: storage.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetBoundCache(0)
	for i := 0; i < 2; i++ {
		v, err := tr.ReadViewTracked(tr.RootID(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() == 0 {
			t.Fatal("empty root view")
		}
	}
	if st := tr.BoundCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache has stats %+v", st)
	}
}

// TestBoundCacheEviction fills a tiny cache past capacity and checks the
// clock sweep keeps it bounded without ever evicting the entry it just
// inserted.
func TestBoundCacheEviction(t *testing.T) {
	c := newBoundCache(16) // below minBoundTextsPerShard: one shard, cap 16
	for id := storage.NodeID(0); id < 100; id++ {
		c.put(id, &nodeText{})
		if _, ok := c.get(id); !ok {
			t.Fatalf("entry %d evicted immediately after put", id)
		}
	}
	if n := c.entries(); n > 16 {
		t.Fatalf("cache holds %d entries, capacity 16", n)
	}
}
