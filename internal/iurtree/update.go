package iurtree

import (
	"errors"
	"math"

	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Dynamic updates by path-copying copy-on-write. The paper notes that
// IUR-tree maintenance mirrors the underlying R-tree: inserting an
// object descends by least enlargement, splits overflowing nodes, and
// refreshes the augmented summaries (count, intersection/union vectors)
// along the path; deletion removes the leaf entry and collapses empty
// nodes.
//
// Unlike the textbook in-place algorithm, nothing here mutates a stored
// node: every node along the root-to-leaf path is re-encoded into a
// FRESH blob (storage.Blobs.PutTracked) and the update returns a new
// immutable *Snapshot plus the list of superseded NodeIDs. The receiver
// snapshot stays fully queryable — concurrent readers traversing it
// never observe a half-applied update — and the caller decides when the
// superseded blobs are reclaimed (the engine routes them through
// storage.Reclaimer so they are freed only once no pinned reader can
// reach them).
//
// CIUR-trees are rejected: their per-cluster summaries depend on an
// offline clustering that a single insert cannot meaningfully extend
// (the paper likewise treats clustering as an index-construction step) —
// rebuild in the background and swap the fresh snapshot in.
//
// Deletion uses a simplified policy compared to Guttman's CondenseTree:
// underfull nodes are tolerated (queries remain exact; only packing
// quality degrades), empty nodes are removed. maxD only grows: inserts
// outside the original dataspace extend it, deletions never shrink it,
// so similarity scores remain comparable across the tree's lifetime.

// ErrClustered is returned by Insert/Delete on CIUR-trees.
var ErrClustered = errors.New("iurtree: clustered trees are sealed; rebuild to update")

// derive returns a copy of the snapshot header sharing the store, the
// decoded-node cache, and the bound cache; the update paths overwrite
// the fields they change. Sharing the caches is what lets the on-free
// eviction hook installed on the first snapshot cover every successor.
func (t *Snapshot) derive() *Snapshot {
	cp := *t
	return &cp
}

// Insert adds one object to an unclustered snapshot, returning the new
// snapshot and the NodeIDs it superseded. The receiver is unchanged and
// stays valid until the retired nodes are freed. Write and read I/O of
// the update is charged to tr (may be nil).
func (t *Snapshot) Insert(o Object, tr *storage.Tracker) (*Snapshot, []storage.NodeID, error) {
	if t.numClusters > 0 {
		return nil, nil, ErrClustered
	}
	if t.size == 0 {
		// Replace the empty root with a fresh singleton leaf.
		leaf := &Node{Leaf: true, Entries: []Entry{objectEntry(&o)}}
		next := t.derive()
		next.rootID = t.store.PutTracked(encodeNode(leaf), tr)
		next.rootEntry = summarize(leaf, next.rootID)
		next.size = 1
		next.height = 1
		next.space = o.Loc.Rect()
		next.maxD = 1
		return next, []storage.NodeID{t.rootID}, nil
	}

	// Descend by least enlargement, remembering the path.
	type step struct {
		id       storage.NodeID
		node     *Node
		childIdx int
	}
	var path []step
	id := t.rootID
	for {
		node, err := t.readNodeFresh(id, tr)
		if err != nil {
			return nil, nil, err
		}
		if node.Leaf {
			path = append(path, step{id: id, node: node})
			break
		}
		best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
		for i := range node.Entries {
			enl := node.Entries[i].Rect.Enlargement(o.Loc.Rect())
			area := node.Entries[i].Rect.Area()
			//rstknn:allow floatcmp exact tie-break between identical enlargements; any split is correct
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		path = append(path, step{id: id, node: node, childIdx: best})
		id = node.Entries[best].Child
	}

	// Insert into the leaf, then walk back up re-encoding every path
	// node into a fresh blob (splitting when over-full) and rewiring
	// each parent to its child's new NodeID.
	var retired []storage.NodeID
	leaf := path[len(path)-1]
	leaf.node.Entries = append(leaf.node.Entries, objectEntry(&o))
	pendingEntry, splitEntry, err := t.copyNode(leaf.id, leaf.node, tr, &retired)
	if err != nil {
		return nil, nil, err
	}
	for i := len(path) - 2; i >= 0; i-- {
		st := path[i]
		st.node.Entries[st.childIdx] = pendingEntry
		if splitEntry != nil {
			st.node.Entries = append(st.node.Entries, *splitEntry)
		}
		pendingEntry, splitEntry, err = t.copyNode(st.id, st.node, tr, &retired)
		if err != nil {
			return nil, nil, err
		}
	}
	next := t.derive()
	if splitEntry != nil {
		// The root itself split: grow a new root.
		newRoot := &Node{Leaf: false, Entries: []Entry{pendingEntry, *splitEntry}}
		next.rootID = t.store.PutTracked(encodeNode(newRoot), tr)
		next.rootEntry = summarize(newRoot, next.rootID)
		next.height = t.height + 1
	} else {
		next.rootID = pendingEntry.Child
		next.rootEntry = pendingEntry
	}
	next.size = t.size + 1
	next.space = t.space.Extend(o.Loc)
	if d := next.space.Diagonal(); d > next.maxD {
		next.maxD = d
	}
	return next, retired, nil
}

// copyNode persists node (splitting it when over-full) into fresh blobs,
// retiring the superseded id, and returns the refreshed parent entry
// plus the entry of the split-off sibling, if any.
func (t *Snapshot) copyNode(old storage.NodeID, node *Node, tr *storage.Tracker, retired *[]storage.NodeID) (Entry, *Entry, error) {
	*retired = append(*retired, old)
	if len(node.Entries) <= maxFanout {
		id := t.store.PutTracked(encodeNode(node), tr)
		return summarize(node, id), nil, nil
	}
	left, right := splitEntries(node.Entries)
	node.Entries = left
	sibling := &Node{Leaf: node.Leaf, Entries: right}
	id := t.store.PutTracked(encodeNode(node), tr)
	sibID := t.store.PutTracked(encodeNode(sibling), tr)
	se := summarize(sibling, sibID)
	return summarize(node, id), &se, nil
}

// maxFanout is the node capacity used by dynamic inserts. Static
// construction packs to the configured fan-out; updates use the same
// default ceiling.
const maxFanout = 32

// splitEntries divides an over-full entry list with Guttman's quadratic
// heuristics (seeds maximizing dead area, then least-enlargement
// assignment with a minimum-fill guarantee).
func splitEntries(entries []Entry) (left, right []Entry) {
	minFill := len(entries) * 2 / 5
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left = append(left, entries[s1])
	right = append(right, entries[s2])
	lRect, rRect := entries[s1].Rect, entries[s2].Rect
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		rest := len(entries) - i - 1 // entries after this one (excluding seeds already taken)
		switch {
		case len(left)+rest < minFill:
			left = append(left, e)
			lRect = lRect.Union(e.Rect)
			continue
		case len(right)+rest < minFill:
			right = append(right, e)
			rRect = rRect.Union(e.Rect)
			continue
		}
		d1, d2 := lRect.Enlargement(e.Rect), rRect.Enlargement(e.Rect)
		//rstknn:allow floatcmp exact tie-break between identical enlargements; any split is correct
		if d1 < d2 || (d1 == d2 && len(left) <= len(right)) {
			left = append(left, e)
			lRect = lRect.Union(e.Rect)
		} else {
			right = append(right, e)
			rRect = rRect.Union(e.Rect)
		}
	}
	return left, right
}

func objectEntry(o *Object) Entry {
	return Entry{
		Rect:  o.Loc.Rect(),
		Child: storage.InvalidNode,
		ObjID: o.ID,
		Count: 1,
		Env:   vector.Exact(o.Doc),
	}
}

// Delete removes the object with the given ID and location from an
// unclustered snapshot. It returns the new snapshot (the receiver when
// the object was not found), the superseded NodeIDs, and whether the
// object was found. The receiver is unchanged and stays valid until the
// retired nodes are freed.
func (t *Snapshot) Delete(id int32, loc geom.Point, tr *storage.Tracker) (*Snapshot, []storage.NodeID, bool, error) {
	if t.numClusters > 0 {
		return nil, nil, false, ErrClustered
	}
	if t.size == 0 {
		return t, nil, false, nil
	}
	var retired []storage.NodeID
	found, rootEntry, rootEmpty, err := t.deleteRec(t.rootID, id, loc, tr, &retired)
	if err != nil {
		return nil, nil, false, err
	}
	if !found {
		return t, nil, false, nil
	}
	next := t.derive()
	next.size = t.size - 1
	if rootEmpty {
		// The last object is gone: the new root is a fresh empty leaf.
		empty := &Node{Leaf: true}
		next.rootID = t.store.PutTracked(encodeNode(empty), tr)
		next.rootEntry = summarize(empty, next.rootID)
		next.height = 1
		return next, retired, true, nil
	}
	// Collapse a chain of single-child internal roots.
	rootID := rootEntry.Child
	rootNode, err := t.readNodeFresh(rootID, tr)
	if err != nil {
		return nil, nil, false, err
	}
	height := t.height
	for !rootNode.Leaf && len(rootNode.Entries) == 1 {
		retired = append(retired, rootID)
		rootID = rootNode.Entries[0].Child
		height--
		rootNode, err = t.readNodeFresh(rootID, tr)
		if err != nil {
			return nil, nil, false, err
		}
	}
	next.rootID = rootID
	next.rootEntry = summarize(rootNode, rootID)
	next.height = height
	return next, retired, true, nil
}

// deleteRec removes the object below node nid, copying every modified
// node into a fresh blob. It returns whether the object was found, the
// refreshed parent entry for the copied node (meaningless when the node
// became empty), and whether the node is now empty (so the parent
// unlinks it). Nodes on the modified path are appended to retired.
func (t *Snapshot) deleteRec(nid storage.NodeID, id int32, loc geom.Point, tr *storage.Tracker, retired *[]storage.NodeID) (found bool, newEntry Entry, empty bool, err error) {
	node, err := t.readNodeFresh(nid, tr)
	if err != nil {
		return false, Entry{}, false, err
	}
	if node.Leaf {
		for i := range node.Entries {
			if node.Entries[i].ObjID == id && node.Entries[i].Loc() == loc {
				node.Entries = append(node.Entries[:i], node.Entries[i+1:]...)
				*retired = append(*retired, nid)
				if len(node.Entries) == 0 {
					return true, Entry{}, true, nil
				}
				newID := t.store.PutTracked(encodeNode(node), tr)
				return true, summarize(node, newID), false, nil
			}
		}
		return false, Entry{}, false, nil
	}
	for i := range node.Entries {
		if !node.Entries[i].Rect.Contains(loc) {
			continue
		}
		childFound, childEntry, childEmpty, err := t.deleteRec(node.Entries[i].Child, id, loc, tr, retired)
		if err != nil {
			return false, Entry{}, false, err
		}
		if !childFound {
			continue
		}
		if childEmpty {
			node.Entries = append(node.Entries[:i], node.Entries[i+1:]...)
		} else {
			node.Entries[i] = childEntry
		}
		*retired = append(*retired, nid)
		if len(node.Entries) == 0 {
			return true, Entry{}, true, nil
		}
		newID := t.store.PutTracked(encodeNode(node), tr)
		return true, summarize(node, newID), false, nil
	}
	return false, Entry{}, false, nil
}
