package iurtree

import (
	"errors"

	"math"

	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Dynamic updates on a sealed IUR-tree. The paper notes that IUR-tree
// maintenance mirrors the underlying R-tree: inserting an object descends
// by least enlargement, splits overflowing nodes, and refreshes the
// augmented summaries (count, intersection/union vectors) along the
// path; deletion removes the leaf entry and collapses empty nodes.
//
// CIUR-trees are rejected: their per-cluster summaries depend on an
// offline clustering that a single insert cannot meaningfully extend
// (the paper likewise treats clustering as an index-construction step) —
// rebuild to refresh a clustered index.
//
// Deletion uses a simplified policy compared to Guttman's CondenseTree:
// underfull nodes are tolerated (queries remain exact; only packing
// quality degrades), empty nodes are removed. maxD only grows: inserts
// outside the original dataspace extend it, deletions never shrink it,
// so similarity scores remain comparable across the tree's lifetime.

// ErrClustered is returned by Insert/Delete on CIUR-trees.
var ErrClustered = errors.New("iurtree: clustered trees are sealed; rebuild to update")

// Insert adds one object to a sealed (unclustered) tree.
func (t *Tree) Insert(o Object) error {
	if t.numClusters > 0 {
		return ErrClustered
	}
	if t.size == 0 {
		// Rebuild the singleton tree in place.
		leaf := &Node{Leaf: true, Entries: []Entry{objectEntry(&o)}}
		if err := t.store.Update(t.rootID, encodeNode(leaf)); err != nil {
			return err
		}
		t.invalidateNode(t.rootID)
		t.rootEntry = summarize(leaf, t.rootID)
		t.size = 1
		t.height = 1
		t.space = o.Loc.Rect()
		t.maxD = 1
		return nil
	}

	// Descend by least enlargement, remembering the path.
	type step struct {
		id       storage.NodeID
		node     *Node
		childIdx int
	}
	var path []step
	id := t.rootID
	for {
		node, err := t.readNodeFresh(id)
		if err != nil {
			return err
		}
		if node.Leaf {
			path = append(path, step{id: id, node: node})
			break
		}
		best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
		for i := range node.Entries {
			enl := node.Entries[i].Rect.Enlargement(o.Loc.Rect())
			area := node.Entries[i].Rect.Area()
			//rstknn:allow floatcmp exact tie-break between identical enlargements; any split is correct
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		path = append(path, step{id: id, node: node, childIdx: best})
		id = node.Entries[best].Child
	}

	// Insert into the leaf, then walk back up splitting and refreshing
	// summaries.
	leaf := path[len(path)-1]
	leaf.node.Entries = append(leaf.node.Entries, objectEntry(&o))
	pendingEntry, splitEntry, err := t.writeNode(leaf.id, leaf.node)
	if err != nil {
		return err
	}
	for i := len(path) - 2; i >= 0; i-- {
		st := path[i]
		st.node.Entries[st.childIdx] = pendingEntry
		if splitEntry != nil {
			st.node.Entries = append(st.node.Entries, *splitEntry)
		}
		pendingEntry, splitEntry, err = t.writeNode(st.id, st.node)
		if err != nil {
			return err
		}
	}
	if splitEntry != nil {
		// The root itself split: grow a new root.
		newRoot := &Node{Leaf: false, Entries: []Entry{pendingEntry, *splitEntry}}
		t.rootID = t.store.Put(encodeNode(newRoot))
		t.rootEntry = summarize(newRoot, t.rootID)
		t.height++
	} else {
		t.rootEntry = pendingEntry
	}
	t.size++
	t.space = t.space.Extend(o.Loc)
	if d := t.space.Diagonal(); d > t.maxD {
		t.maxD = d
	}
	return nil
}

// writeNode persists node (splitting it when over-full) under id and
// returns the refreshed parent entry plus the entry of the split-off
// sibling, if any.
func (t *Tree) writeNode(id storage.NodeID, node *Node) (Entry, *Entry, error) {
	if len(node.Entries) <= maxFanout {
		if err := t.store.Update(id, encodeNode(node)); err != nil {
			return Entry{}, nil, err
		}
		t.invalidateNode(id)
		return summarize(node, id), nil, nil
	}
	left, right := splitEntries(node.Entries)
	node.Entries = left
	sibling := &Node{Leaf: node.Leaf, Entries: right}
	if err := t.store.Update(id, encodeNode(node)); err != nil {
		return Entry{}, nil, err
	}
	t.invalidateNode(id)
	sibID := t.store.Put(encodeNode(sibling))
	se := summarize(sibling, sibID)
	return summarize(node, id), &se, nil
}

// maxFanout is the node capacity used by dynamic inserts. Static
// construction packs to the configured fan-out; updates use the same
// default ceiling.
const maxFanout = 32

// splitEntries divides an over-full entry list with Guttman's quadratic
// heuristics (seeds maximizing dead area, then least-enlargement
// assignment with a minimum-fill guarantee).
func splitEntries(entries []Entry) (left, right []Entry) {
	minFill := len(entries) * 2 / 5
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left = append(left, entries[s1])
	right = append(right, entries[s2])
	lRect, rRect := entries[s1].Rect, entries[s2].Rect
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		rest := len(entries) - i - 1 // entries after this one (excluding seeds already taken)
		switch {
		case len(left)+rest < minFill:
			left = append(left, e)
			lRect = lRect.Union(e.Rect)
			continue
		case len(right)+rest < minFill:
			right = append(right, e)
			rRect = rRect.Union(e.Rect)
			continue
		}
		d1, d2 := lRect.Enlargement(e.Rect), rRect.Enlargement(e.Rect)
		//rstknn:allow floatcmp exact tie-break between identical enlargements; any split is correct
		if d1 < d2 || (d1 == d2 && len(left) <= len(right)) {
			left = append(left, e)
			lRect = lRect.Union(e.Rect)
		} else {
			right = append(right, e)
			rRect = rRect.Union(e.Rect)
		}
	}
	return left, right
}

func objectEntry(o *Object) Entry {
	return Entry{
		Rect:  o.Loc.Rect(),
		Child: storage.InvalidNode,
		ObjID: o.ID,
		Count: 1,
		Env:   vector.Exact(o.Doc),
	}
}

// Delete removes the object with the given ID and location from a sealed
// (unclustered) tree. It reports whether the object was found.
func (t *Tree) Delete(id int32, loc geom.Point) (bool, error) {
	if t.numClusters > 0 {
		return false, ErrClustered
	}
	if t.size == 0 {
		return false, nil
	}
	found, _, err := t.deleteRec(t.rootID, id, loc)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	// Refresh the root summary.
	rootNode, err := t.readNodeFresh(t.rootID)
	if err != nil {
		return false, err
	}
	// Collapse a chain of single-child internal roots.
	for !rootNode.Leaf && len(rootNode.Entries) == 1 {
		t.rootID = rootNode.Entries[0].Child
		t.height--
		rootNode, err = t.readNodeFresh(t.rootID)
		if err != nil {
			return false, err
		}
	}
	t.rootEntry = summarize(rootNode, t.rootID)
	return true, nil
}

// deleteRec removes the object below node id. It returns whether it was
// found and whether the node is now empty (so the parent unlinks it).
func (t *Tree) deleteRec(nid storage.NodeID, id int32, loc geom.Point) (found, empty bool, err error) {
	node, err := t.readNodeFresh(nid)
	if err != nil {
		return false, false, err
	}
	if node.Leaf {
		for i := range node.Entries {
			if node.Entries[i].ObjID == id && node.Entries[i].Loc() == loc {
				node.Entries = append(node.Entries[:i], node.Entries[i+1:]...)
				if err := t.store.Update(nid, encodeNode(node)); err != nil {
					return false, false, err
				}
				t.invalidateNode(nid)
				return true, len(node.Entries) == 0, nil
			}
		}
		return false, false, nil
	}
	for i := range node.Entries {
		if !node.Entries[i].Rect.Contains(loc) {
			continue
		}
		childFound, childEmpty, err := t.deleteRec(node.Entries[i].Child, id, loc)
		if err != nil {
			return false, false, err
		}
		if !childFound {
			continue
		}
		if childEmpty {
			node.Entries = append(node.Entries[:i], node.Entries[i+1:]...)
		} else {
			childNode, err := t.readNodeFresh(node.Entries[i].Child)
			if err != nil {
				return false, false, err
			}
			node.Entries[i] = summarize(childNode, node.Entries[i].Child)
		}
		if err := t.store.Update(nid, encodeNode(node)); err != nil {
			return false, false, err
		}
		t.invalidateNode(nid)
		return true, len(node.Entries) == 0, nil
	}
	return false, false, nil
}
