package iurtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"rstknn/internal/geom"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Node blob layout (little-endian):
//
//	u8   leaf flag
//	u16  entry count
//	per entry:
//	  4 * f64  rect (minX minY maxX maxY)
//	  i32      child node ID (InvalidNode for object entries)
//	  i32      object ID (only meaningful for object entries)
//	  i32      subtree object count
//	  u8       envelope shape: 0 = degenerate (one vector), 1 = full,
//	           2 = derived (no vectors: the envelope is the merge of the
//	           entry's cluster envelopes, reconstructed at decode time so
//	           clustered trees never store a term vector twice)
//	  vector | envelope | nothing
//	  u16      cluster summary count
//	  per cluster summary:
//	    i32 cluster, i32 count, u8 shape, vector | envelope
//
// Snapshot header blob layout (written by Save):
//
//	magic "IURT", u16 version
//	i32 root, i32 size, i32 height, i32 numClusters
//	4 * f64 space rect, f64 maxD
//	root entry encoded like a node entry

const (
	headerMagic   = "IURT"
	headerVersion = 1
)

func appendRect(dst []byte, r geom.Rect) []byte {
	for _, f := range [4]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

func decodeRect(buf []byte) (geom.Rect, int, error) {
	if len(buf) < 32 {
		return geom.Rect{}, 0, fmt.Errorf("truncated rect (%d bytes)", len(buf))
	}
	f := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return geom.Rect{
		Min: geom.Point{X: f(0), Y: f(1)},
		Max: geom.Point{X: f(2), Y: f(3)},
	}, 32, nil
}

func appendEnvelope(dst []byte, e vector.Envelope) []byte {
	if e.Int.Equal(e.Uni) {
		dst = append(dst, 0)
		return e.Int.AppendBinary(dst)
	}
	dst = append(dst, 1)
	return e.AppendBinary(dst)
}

func decodeEnvelopeShaped(buf []byte) (vector.Envelope, int, error) {
	if len(buf) < 1 {
		return vector.Envelope{}, 0, fmt.Errorf("truncated envelope shape byte")
	}
	shape := buf[0]
	switch shape {
	case 0:
		v, n, err := vector.DecodeVector(buf[1:])
		if err != nil {
			return vector.Envelope{}, 0, err
		}
		return vector.Exact(v), n + 1, nil
	case 1:
		e, n, err := vector.DecodeEnvelope(buf[1:])
		if err != nil {
			return vector.Envelope{}, 0, err
		}
		return e, n + 1, nil
	default:
		return vector.Envelope{}, 0, fmt.Errorf("unknown envelope shape %d", shape)
	}
}

func appendEntry(dst []byte, e *Entry) []byte {
	dst = appendRect(dst, e.Rect)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Child))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.ObjID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Count))
	if envDerivable(e) {
		dst = append(dst, 2)
	} else {
		dst = appendEnvelope(dst, e.Env)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Clusters)))
	for i := range e.Clusters {
		cs := &e.Clusters[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(cs.Cluster))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(cs.Count))
		dst = appendEnvelope(dst, cs.Env)
	}
	return dst
}

func decodeEntry(buf []byte) (Entry, int, error) {
	var e Entry
	r, off, err := decodeRect(buf)
	if err != nil {
		return e, 0, err
	}
	e.Rect = r
	if len(buf) < off+12 {
		return e, 0, fmt.Errorf("truncated entry header")
	}
	e.Child = storage.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	e.ObjID = int32(binary.LittleEndian.Uint32(buf[off+4:]))
	e.Count = int32(binary.LittleEndian.Uint32(buf[off+8:]))
	off += 12
	derived := false
	if len(buf) > off && buf[off] == 2 {
		derived = true
		off++
	} else {
		env, n, err := decodeEnvelopeShaped(buf[off:])
		if err != nil {
			return e, 0, err
		}
		e.Env = env
		off += n
	}
	if len(buf) < off+2 {
		return e, 0, fmt.Errorf("truncated cluster count")
	}
	nc := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if nc > 0 {
		// A cluster summary is at least 8 bytes of header plus an
		// envelope; reject impossible counts before allocating.
		if len(buf)-off < nc*9 {
			return e, 0, fmt.Errorf("cluster count %d exceeds blob size", nc)
		}
		e.Clusters = make([]ClusterSummary, nc)
		for i := 0; i < nc; i++ {
			if len(buf) < off+8 {
				return e, 0, fmt.Errorf("truncated cluster summary %d", i)
			}
			e.Clusters[i].Cluster = int32(binary.LittleEndian.Uint32(buf[off:]))
			e.Clusters[i].Count = int32(binary.LittleEndian.Uint32(buf[off+4:]))
			off += 8
			cenv, n, err := decodeEnvelopeShaped(buf[off:])
			if err != nil {
				return e, 0, err
			}
			e.Clusters[i].Env = cenv
			off += n
		}
	}
	if derived {
		if len(e.Clusters) == 0 {
			return e, 0, fmt.Errorf("derived envelope with no cluster summaries")
		}
		e.Env = e.Clusters[0].Env
		for _, cs := range e.Clusters[1:] {
			e.Env = vector.Merge(e.Env, cs.Env)
		}
	}
	return e, off, nil
}

// envDerivable reports whether the entry's envelope equals the merge of
// its cluster envelopes (always true for trees built by this package) so
// it can be omitted on disk.
func envDerivable(e *Entry) bool {
	if len(e.Clusters) == 0 {
		return false
	}
	m := e.Clusters[0].Env
	for _, cs := range e.Clusters[1:] {
		m = vector.Merge(m, cs.Env)
	}
	return m.Int.Equal(e.Env.Int) && m.Uni.Equal(e.Env.Uni)
}

func encodeNode(n *Node) []byte {
	buf := make([]byte, 0, 256)
	var leaf byte
	if n.Leaf {
		leaf = 1
	}
	buf = append(buf, leaf)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n.Entries)))
	for i := range n.Entries {
		buf = appendEntry(buf, &n.Entries[i])
	}
	return buf
}

func decodeNode(buf []byte) (*Node, error) {
	if len(buf) < 3 {
		return nil, fmt.Errorf("truncated node header")
	}
	n := &Node{Leaf: buf[0] == 1}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	off := 3
	// An entry is at least entryFixedSize bytes; reject impossible entry
	// counts before allocating for them.
	if len(buf)-off < count*entryFixedSize {
		return nil, fmt.Errorf("entry count %d exceeds blob size", count)
	}
	n.Entries = make([]Entry, count)
	for i := 0; i < count; i++ {
		e, sz, err := decodeEntry(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		n.Entries[i] = e
		off += sz
	}
	if off != len(buf) {
		return nil, fmt.Errorf("node blob has %d trailing bytes", len(buf)-off)
	}
	return n, nil
}

// Save serializes the tree header onto the store and returns its NodeID,
// allowing the tree to be reopened with Open against the same store.
func (t *Snapshot) Save() storage.NodeID {
	buf := make([]byte, 0, 128)
	buf = append(buf, headerMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, headerVersion)
	for _, v := range [4]int32{int32(t.rootID), int32(t.size), int32(t.height), int32(t.numClusters)} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = appendRect(buf, t.space)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.maxD))
	buf = appendEntry(buf, &t.rootEntry)
	return t.store.Put(buf)
}

// Open reopens a tree previously Saved under headerID on the given store.
func Open(store storage.Blobs, headerID storage.NodeID) (*Snapshot, error) {
	//rstknn:allow trackedio one-time header read at open, before any query exists
	buf, err := store.Get(headerID)
	if err != nil {
		return nil, err
	}
	if len(buf) < 6 || string(buf[:4]) != headerMagic {
		return nil, fmt.Errorf("iurtree: blob %d is not a tree header", headerID)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != headerVersion {
		return nil, fmt.Errorf("iurtree: unsupported header version %d", v)
	}
	off := 6
	if len(buf) < off+16 {
		return nil, fmt.Errorf("iurtree: truncated header")
	}
	t := &Snapshot{store: store, boundCache: newBoundCache(DefaultBoundCacheNodes)}
	t.rootID = storage.NodeID(binary.LittleEndian.Uint32(buf[off:]))
	t.size = int(int32(binary.LittleEndian.Uint32(buf[off+4:])))
	t.height = int(int32(binary.LittleEndian.Uint32(buf[off+8:])))
	t.numClusters = int(int32(binary.LittleEndian.Uint32(buf[off+12:])))
	off += 16
	r, n, err := decodeRect(buf[off:])
	if err != nil {
		return nil, fmt.Errorf("iurtree: header space: %w", err)
	}
	t.space = r
	off += n
	if len(buf) < off+8 {
		return nil, fmt.Errorf("iurtree: truncated maxD")
	}
	t.maxD = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	root, n, err := decodeEntry(buf[off:])
	if err != nil {
		return nil, fmt.Errorf("iurtree: header root entry: %w", err)
	}
	if off+n != len(buf) {
		return nil, fmt.Errorf("iurtree: header has trailing bytes")
	}
	t.rootEntry = root
	return t, nil
}
