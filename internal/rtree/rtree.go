// Package rtree implements the R-tree substrate the IUR-tree family is
// built on: a classic Guttman R-tree with quadratic split, deletion with
// tree condensation, and Sort-Tile-Recursive (STR) bulk loading, plus
// range and geometric k-nearest-neighbor queries.
//
// The tree is an in-memory structure over (ID, Rect) items. The IUR-tree
// layer (package iurtree) reuses the node topology produced here, augments
// the nodes with textual summaries, and serializes them onto the simulated
// disk. Keeping the purely spatial mechanics here lets them be tested in
// isolation against brute force.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"rstknn/internal/geom"
	"rstknn/internal/pq"
)

// Item is an indexed object: an opaque ID and its bounding rectangle
// (a degenerate rectangle for points).
type Item struct {
	ID   int32
	Rect geom.Rect
}

// Entry is one slot of a node: either a child pointer (internal node) or
// an item ID (leaf node), with the MBR of everything below it.
type Entry struct {
	Rect  geom.Rect
	Child *Node // nil in leaves
	ID    int32 // valid only in leaves
}

// Node is an R-tree node. Exported so augmenting layers can walk the
// topology; mutating nodes outside this package invalidates the tree.
type Node struct {
	Leaf    bool
	Entries []Entry
	parent  *Node
}

// MBR returns the minimum bounding rectangle of the node's entries.
func (n *Node) MBR() geom.Rect {
	r := geom.EmptyRect()
	for _, e := range n.Entries {
		r = r.Union(e.Rect)
	}
	return r
}

// Tree is an R-tree. Create one with New; the zero value is unusable.
type Tree struct {
	root       *Node
	minEntries int
	maxEntries int
	size       int
	height     int // number of levels; 1 for a lone leaf root
}

// DefaultMaxEntries is the default node fan-out: roughly what fits a 4 KiB
// page for 2-D rectangles with a child pointer.
const DefaultMaxEntries = 32

// New returns an empty tree with fan-out in [min, max]. min must be at
// least 2 and at most max/2 to keep splits well defined.
func New(min, max int) *Tree {
	if min < 2 || max < 4 || min > max/2 {
		panic(fmt.Sprintf("rtree: invalid fan-out [%d, %d]", min, max))
	}
	return &Tree{
		root:       &Node{Leaf: true},
		minEntries: min,
		maxEntries: max,
		height:     1,
	}
}

// NewDefault returns an empty tree with the default fan-out.
func NewDefault() *Tree { return New(DefaultMaxEntries*2/5, DefaultMaxEntries) }

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root node for read-only topology walks.
func (t *Tree) Root() *Node { return t.root }

// MinEntries returns the configured minimum fan-out.
func (t *Tree) MinEntries() int { return t.minEntries }

// MaxEntries returns the configured maximum fan-out.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	leaf := t.chooseLeaf(t.root, it.Rect)
	leaf.Entries = append(leaf.Entries, Entry{Rect: it.Rect, ID: it.ID})
	t.size++
	t.splitUpward(leaf)
}

// chooseLeaf descends from n to the leaf whose MBR needs the least
// enlargement to cover r (ties by smallest area) — Guttman's ChooseLeaf.
func (t *Tree) chooseLeaf(n *Node, r geom.Rect) *Node {
	for !n.Leaf {
		best := 0
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, e := range n.Entries {
			enl := e.Rect.Enlargement(r)
			area := e.Rect.Area()
			//rstknn:allow floatcmp exact tie-break between identical enlargements; any split is correct
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.Entries[best].Child
	}
	return n
}

// splitUpward splits overflowing nodes from n to the root, updating parent
// MBRs along the way.
func (t *Tree) splitUpward(n *Node) {
	for n != nil {
		if len(n.Entries) <= t.maxEntries {
			t.adjustMBRs(n)
			return
		}
		left, right := t.quadraticSplit(n)
		if n.parent == nil {
			// Grow a new root.
			newRoot := &Node{Leaf: false}
			left.parent, right.parent = newRoot, newRoot
			newRoot.Entries = []Entry{
				{Rect: left.MBR(), Child: left},
				{Rect: right.MBR(), Child: right},
			}
			t.root = newRoot
			t.height++
			return
		}
		parent := n.parent
		// Replace n's entry with left, append right.
		for i := range parent.Entries {
			if parent.Entries[i].Child == n {
				left.parent = parent
				parent.Entries[i] = Entry{Rect: left.MBR(), Child: left}
				break
			}
		}
		right.parent = parent
		parent.Entries = append(parent.Entries, Entry{Rect: right.MBR(), Child: right})
		n = parent
	}
}

// adjustMBRs refreshes the MBRs stored in ancestors of n.
func (t *Tree) adjustMBRs(n *Node) {
	for n.parent != nil {
		p := n.parent
		for i := range p.Entries {
			if p.Entries[i].Child == n {
				p.Entries[i].Rect = n.MBR()
				break
			}
		}
		n = p
	}
}

// quadraticSplit splits the overflowing node n into two nodes using
// Guttman's quadratic PickSeeds/PickNext heuristics. n is reused as the
// left node; the right node is returned new.
func (t *Tree) quadraticSplit(n *Node) (left, right *Node) {
	entries := n.Entries
	// PickSeeds: the pair wasting the most area if grouped together.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left = n
	right = &Node{Leaf: n.Leaf}
	lEnt := []Entry{entries[s1]}
	rEnt := []Entry{entries[s2]}
	lRect, rRect := entries[s1].Rect, entries[s2].Rect

	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one side must take all remaining entries
		// to reach minEntries.
		if len(lEnt)+len(rest) == t.minEntries {
			lEnt = append(lEnt, rest...)
			for _, e := range rest {
				lRect = lRect.Union(e.Rect)
			}
			break
		}
		if len(rEnt)+len(rest) == t.minEntries {
			rEnt = append(rEnt, rest...)
			for _, e := range rest {
				rRect = rRect.Union(e.Rect)
			}
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := lRect.Enlargement(e.Rect)
			d2 := rRect.Enlargement(e.Rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		d1 := lRect.Enlargement(e.Rect)
		d2 := rRect.Enlargement(e.Rect)
		takeLeft := d1 < d2 ||
			(d1 == d2 && lRect.Area() < rRect.Area()) || //rstknn:allow floatcmp quadratic-split tie-breaks; exact ties fall through to entry counts
			(d1 == d2 && lRect.Area() == rRect.Area() && len(lEnt) <= len(rEnt))
		if takeLeft {
			lEnt = append(lEnt, e)
			lRect = lRect.Union(e.Rect)
		} else {
			rEnt = append(rEnt, e)
			rRect = rRect.Union(e.Rect)
		}
	}
	left.Entries = lEnt
	right.Entries = rEnt
	if !n.Leaf {
		for i := range left.Entries {
			left.Entries[i].Child.parent = left
		}
		for i := range right.Entries {
			right.Entries[i].Child.parent = right
		}
	}
	return left, right
}

// Delete removes the item with the given ID and rectangle. It returns
// false when no such item is indexed.
func (t *Tree) Delete(it Item) bool {
	leaf, idx := t.findLeaf(t.root, it)
	if leaf == nil {
		return false
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root while it is an internal node with a single child.
	for !t.root.Leaf && len(t.root.Entries) == 1 {
		t.root = t.root.Entries[0].Child
		t.root.parent = nil
		t.height--
	}
	return true
}

func (t *Tree) findLeaf(n *Node, it Item) (*Node, int) {
	if n.Leaf {
		for i, e := range n.Entries {
			if e.ID == it.ID && e.Rect == it.Rect {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.Entries {
		if e.Rect.ContainsRect(it.Rect) {
			if leaf, i := t.findLeaf(e.Child, it); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

// condense handles underflow after a deletion: underfull nodes are removed
// and their surviving entries reinserted (Guttman's CondenseTree).
func (t *Tree) condense(n *Node) {
	var orphans []Entry
	var orphanLeaves []*Node
	for n.parent != nil {
		p := n.parent
		if len(n.Entries) < t.minEntries {
			// Detach n from its parent, queue its entries for reinsertion.
			for i := range p.Entries {
				if p.Entries[i].Child == n {
					p.Entries = append(p.Entries[:i], p.Entries[i+1:]...)
					break
				}
			}
			if n.Leaf {
				orphans = append(orphans, n.Entries...)
			} else {
				orphanLeaves = append(orphanLeaves, n)
			}
		} else {
			t.adjustMBRs(n)
		}
		n = p
	}
	// Reinsert leaf-level orphans as fresh items.
	for _, e := range orphans {
		t.size-- // Insert will re-increment
		t.Insert(Item{ID: e.ID, Rect: e.Rect})
	}
	// Reinsert the leaf entries found under orphaned internal nodes.
	for _, sub := range orphanLeaves {
		collectLeafEntries(sub, func(e Entry) {
			t.size--
			t.Insert(Item{ID: e.ID, Rect: e.Rect})
		})
	}
}

func collectLeafEntries(n *Node, emit func(Entry)) {
	if n.Leaf {
		for _, e := range n.Entries {
			emit(e)
		}
		return
	}
	for _, e := range n.Entries {
		collectLeafEntries(e.Child, emit)
	}
}

// Search returns the IDs of all items whose rectangles intersect r.
func (t *Tree) Search(r geom.Rect) []int32 {
	var out []int32
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, e := range n.Entries {
			if !e.Rect.Intersects(r) {
				continue
			}
			if n.Leaf {
				out = append(out, e.ID)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(t.root)
	return out
}

// Neighbor is one geometric kNN result.
type Neighbor struct {
	ID   int32
	Dist float64
}

// NearestNeighbors returns the k items nearest to p by MinDist, ascending.
// Fewer than k are returned when the tree is smaller than k. Ties are
// broken by insertion-queue order (deterministic for a fixed tree).
func (t *Tree) NearestNeighbors(p geom.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type qe struct {
		node *Node
		id   int32
		item bool
	}
	frontier := pq.NewMin[qe]()
	frontier.Push(qe{node: t.root}, 0)
	out := make([]Neighbor, 0, k)
	for !frontier.Empty() {
		e, d := frontier.Pop()
		if e.item {
			out = append(out, Neighbor{ID: e.id, Dist: d})
			if len(out) == k {
				return out
			}
			continue
		}
		for _, ent := range e.node.Entries {
			dist := ent.Rect.MinDistPoint(p)
			if e.node.Leaf {
				frontier.Push(qe{id: ent.ID, item: true}, dist)
			} else {
				frontier.Push(qe{node: ent.Child}, dist)
			}
		}
	}
	return out
}

// BulkLoad builds a tree from items using Sort-Tile-Recursive packing.
// It replaces the tree's current contents. STR produces nodes packed to
// maxEntries with spatially coherent tiles — the standard way to build a
// large static index before sealing it to disk.
func (t *Tree) BulkLoad(items []Item) {
	t.root = &Node{Leaf: true}
	t.size = len(items)
	t.height = 1
	if len(items) == 0 {
		return
	}
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect, ID: it.ID}
	}
	level := t.packLevel(entries, true)
	for len(level) > 1 {
		parents := make([]Entry, len(level))
		for i, n := range level {
			parents[i] = Entry{Rect: n.MBR(), Child: n}
		}
		level = t.packLevel(parents, false)
		t.height++
	}
	t.root = level[0]
	t.root.parent = nil
}

// packLevel groups entries into nodes of up to maxEntries using STR tiling
// and returns the created nodes.
func (t *Tree) packLevel(entries []Entry, leaf bool) []*Node {
	n := len(entries)
	cap1 := t.maxEntries
	nodeCount := (n + cap1 - 1) / cap1
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	sliceSize := sliceCount * cap1

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.Center().X < entries[j].Rect.Center().X
	})
	var nodes []*Node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for s := 0; s < len(slice); s += cap1 {
			e := s + cap1
			if e > len(slice) {
				e = len(slice)
			}
			node := &Node{Leaf: leaf, Entries: append([]Entry(nil), slice[s:e]...)}
			if !leaf {
				for i := range node.Entries {
					node.Entries[i].Child.parent = node
				}
			}
			nodes = append(nodes, node)
		}
	}
	return nodes
}

// CheckInvariants validates the structural invariants of the tree and
// returns a descriptive error on the first violation. Used by tests and
// available to callers after bulk operations.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	count := 0
	var walk func(n *Node, depth int, isRoot bool) error
	walk = func(n *Node, depth int, isRoot bool) error {
		if !isRoot {
			if len(n.Entries) < t.minEntries {
				// STR packing may leave one trailing node under-full per
				// level; accept >= 1 for leaves produced by bulk load.
				if len(n.Entries) < 1 {
					return fmt.Errorf("empty non-root node at depth %d", depth)
				}
			}
		}
		if len(n.Entries) > t.maxEntries {
			return fmt.Errorf("node overflow at depth %d: %d entries", depth, len(n.Entries))
		}
		if n.Leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at different depths: %d vs %d", leafDepth, depth)
			}
			count += len(n.Entries)
			return nil
		}
		for i, e := range n.Entries {
			if e.Child == nil {
				return fmt.Errorf("internal node with nil child at depth %d entry %d", depth, i)
			}
			if e.Child.parent != n {
				return fmt.Errorf("broken parent pointer at depth %d entry %d", depth, i)
			}
			if got := e.Child.MBR(); !e.Rect.ContainsRect(got) {
				return fmt.Errorf("entry MBR %v does not contain child MBR %v", e.Rect, got)
			}
			if err := walk(e.Child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size mismatch: counted %d, recorded %d", count, t.size)
	}
	if leafDepth != -1 && leafDepth+1 != t.height {
		return fmt.Errorf("height mismatch: leaves at depth %d, height %d", leafDepth, t.height)
	}
	return nil
}
