package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"rstknn/internal/geom"
)

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		items[i] = Item{ID: int32(i), Rect: p.Rect()}
	}
	return items
}

func bruteSearch(items []Item, r geom.Rect) []int32 {
	var out []int32
	for _, it := range items {
		if r.Intersects(it.Rect) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortIDs(ids []int32) []int32 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewPanicsOnBadFanout(t *testing.T) {
	for _, bad := range [][2]int{{1, 10}, {2, 3}, {6, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) should panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(2, 4)
	pts := []geom.Point{pt(1, 1), pt(2, 2), pt(3, 3), pt(10, 10), pt(11, 11), pt(12, 12)}
	for i, p := range pts {
		tr.Insert(Item{ID: int32(i), Rect: p.Rect()})
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := sortIDs(tr.Search(geom.Rect{Min: pt(0, 0), Max: pt(5, 5)}))
	if !equalIDs(got, []int32{0, 1, 2}) {
		t.Errorf("Search = %v", got)
	}
	if n := len(tr.Search(geom.Rect{Min: pt(100, 100), Max: pt(200, 200)})); n != 0 {
		t.Errorf("empty region returned %d results", n)
	}
}

func TestInsertRandomizedAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 800)
	tr := New(4, 10)
	for _, it := range items {
		tr.Insert(it)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		w, h := rng.Float64()*200, rng.Float64()*200
		r := geom.Rect{Min: pt(x, y), Max: pt(x+w, y+h)}
		got := sortIDs(tr.Search(r))
		want := sortIDs(bruteSearch(items, r))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
	}
}

func TestBulkLoadAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 33, 500, 2000} {
		items := randItems(rng, n)
		tr := NewDefault()
		tr.BulkLoad(items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 20; q++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			r := geom.Rect{Min: pt(x, y), Max: pt(x+150, y+150)}
			got := sortIDs(tr.Search(r))
			want := sortIDs(bruteSearch(items, r))
			if !equalIDs(got, want) {
				t.Fatalf("n=%d query %d mismatch: %d vs %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadPacksTightly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 1000)
	tr := NewDefault()
	tr.BulkLoad(items)
	// STR packs to ~full nodes: a 1000-item tree with fan-out 32 should
	// have height 3 (1000/32 = 32 leaves -> 1 root over 32).
	if tr.Height() > 3 {
		t.Errorf("height = %d, expected tightly packed <= 3", tr.Height())
	}
}

func TestNearestNeighborsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 600)
	tr := NewDefault()
	tr.BulkLoad(items)
	for q := 0; q < 30; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		got := tr.NearestNeighbors(p, k)
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Brute-force distances.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.Center().Dist(p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("rank %d: dist %g, want %g", i, nb.Dist, dists[i])
			}
			if i > 0 && got[i-1].Dist > nb.Dist {
				t.Fatal("neighbors not in ascending order")
			}
		}
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr := NewDefault()
	if got := tr.NearestNeighbors(pt(0, 0), 5); got != nil {
		t.Error("empty tree should return nil")
	}
	tr.Insert(Item{ID: 7, Rect: pt(1, 1).Rect()})
	if got := tr.NearestNeighbors(pt(0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	got := tr.NearestNeighbors(pt(0, 0), 10)
	if len(got) != 1 || got[0].ID != 7 {
		t.Errorf("k>size: %v", got)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 300)
	tr := New(3, 8)
	for _, it := range items {
		tr.Insert(it)
	}
	// Delete a random half, verifying search correctness afterwards.
	perm := rng.Perm(len(items))
	removed := make(map[int32]bool)
	for _, idx := range perm[:150] {
		if !tr.Delete(items[idx]) {
			t.Fatalf("Delete(%d) failed", items[idx].ID)
		}
		removed[items[idx].ID] = true
	}
	if tr.Len() != 150 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var remaining []Item
	for _, it := range items {
		if !removed[it.ID] {
			remaining = append(remaining, it)
		}
	}
	for q := 0; q < 30; q++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := geom.Rect{Min: pt(x, y), Max: pt(x+300, y+300)}
		got := sortIDs(tr.Search(r))
		want := sortIDs(bruteSearch(remaining, r))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after deletes: %d vs %d results", q, len(got), len(want))
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := NewDefault()
	tr.Insert(Item{ID: 1, Rect: pt(1, 1).Rect()})
	if tr.Delete(Item{ID: 2, Rect: pt(1, 1).Rect()}) {
		t.Error("deleting unknown ID should fail")
	}
	if tr.Delete(Item{ID: 1, Rect: pt(2, 2).Rect()}) {
		t.Error("deleting wrong rect should fail")
	}
	if !tr.Delete(Item{ID: 1, Rect: pt(1, 1).Rect()}) {
		t.Error("deleting existing item should succeed")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 120)
	tr := New(2, 5)
	for _, it := range items {
		tr.Insert(it)
	}
	for _, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("Delete(%d) failed", it.ID)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("after deleting all: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Tree is reusable after emptying.
	tr.Insert(items[0])
	if got := tr.Search(items[0].Rect); len(got) != 1 {
		t.Error("reuse after emptying failed")
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(2, 6)
	live := make(map[int32]Item)
	nextID := int32(0)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			it := Item{ID: nextID, Rect: p.Rect()}
			nextID++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			for id, it := range live {
				if !tr.Delete(it) {
					t.Fatalf("step %d: delete %d failed", step, id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all := geom.Rect{Min: pt(-1, -1), Max: pt(101, 101)}
	if got := tr.Search(all); len(got) != len(live) {
		t.Fatalf("full search = %d, want %d", len(got), len(live))
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 100; i++ {
		tr.Insert(Item{ID: int32(i), Rect: pt(float64(i), float64(i%10)).Rect()})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected >= 3 for 100 items with fan-out 4", tr.Height())
	}
}
