package textual_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rstknn/internal/textual"
)

// FuzzTextualPersist drives the vocabulary CSV codec with arbitrary
// bytes. Loading must never panic, and any input the loader accepts must
// survive a Save/Load cycle and reach a byte-stable Save after the first
// normalization (the loader tolerates CSV variations — quoting, \r\n —
// that Save writes canonically).
func FuzzTextualPersist(f *testing.F) {
	f.Add([]byte("docs,0\n"))
	f.Add([]byte("docs,3\nsushi,2\nnoodles,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v1, err := textual.LoadVocabulary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var save1 bytes.Buffer
		if err := v1.Save(&save1); err != nil {
			t.Fatalf("saving a loaded vocabulary failed: %v", err)
		}
		v2, err := textual.LoadVocabulary(bytes.NewReader(save1.Bytes()))
		if err != nil {
			t.Fatalf("reloading a saved vocabulary failed: %v\nsaved: %q", err, save1.String())
		}
		var save2 bytes.Buffer
		if err := v2.Save(&save2); err != nil {
			t.Fatalf("re-saving failed: %v", err)
		}
		if !bytes.Equal(save1.Bytes(), save2.Bytes()) {
			t.Fatalf("save is not a fixed point:\nsave1: %q\nsave2: %q", save1.String(), save2.String())
		}
	})
}

// TestWriteTextualFuzzCorpus regenerates the checked-in seed corpus from
// a real vocabulary. Run with RSTKNN_WRITE_CORPUS=1 to refresh testdata.
func TestWriteTextualFuzzCorpus(t *testing.T) {
	if os.Getenv("RSTKNN_WRITE_CORPUS") == "" {
		t.Skip("set RSTKNN_WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	v := textual.NewVocabulary()
	for _, doc := range [][]string{
		{"fresh", "sushi", "seafood"},
		{"hand", "pulled", "noodles"},
		{"sushi", "bar", "with, commas", `and "quotes"`},
	} {
		v.AddDocument(doc)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		[]byte("docs,0\n"),
		buf.Bytes(),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTextualPersist")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
