package textual

import (
	"bytes"
	"strings"
	"testing"
)

func TestVocabularySaveLoadRoundTrip(t *testing.T) {
	v := NewVocabulary()
	v.AddDocument([]string{"sushi", "seafood"})
	v.AddDocument([]string{"sushi", "noodles", "noodles"})
	v.AddDocument([]string{"ramen"})

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Docs() != v.Docs() || got.Size() != v.Size() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Docs(), got.Size(), v.Docs(), v.Size())
	}
	for _, term := range []string{"sushi", "seafood", "noodles", "ramen"} {
		wantID, _ := v.Lookup(term)
		gotID, ok := got.Lookup(term)
		if !ok || gotID != wantID {
			t.Errorf("term %q: id %d vs %d (ok=%v)", term, gotID, wantID, ok)
		}
		if got.DF(gotID) != v.DF(wantID) {
			t.Errorf("term %q: df %d vs %d", term, got.DF(gotID), v.DF(wantID))
		}
		if got.IDF(gotID) != v.IDF(wantID) {
			t.Errorf("term %q: idf differs", term)
		}
	}
}

func TestVocabularySaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewVocabulary().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 || got.Docs() != 0 {
		t.Errorf("empty vocab round trip: %d terms, %d docs", got.Size(), got.Docs())
	}
}

func TestLoadVocabularyErrors(t *testing.T) {
	cases := []string{
		"",                   // no header
		"nope,3\n",           // wrong header tag
		"docs,abc\n",         // bad count
		"docs,1\nterm,xyz\n", // bad df
		"docs,1\na,1\na,2\n", // duplicate term
	}
	for _, in := range cases {
		if _, err := LoadVocabulary(strings.NewReader(in)); err == nil {
			t.Errorf("LoadVocabulary(%q) should fail", in)
		}
	}
}

func TestVocabularyTermsWithCommasSurviveCSV(t *testing.T) {
	v := NewVocabulary()
	// Tokenize never produces commas, but the vocabulary API does not
	// forbid them; CSV quoting must keep the file parseable.
	v.AddDocument([]string{`a,b`, `say "hi"`})
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Lookup(`a,b`); !ok {
		t.Error("comma term lost")
	}
	if _, ok := got.Lookup(`say "hi"`); !ok {
		t.Error("quoted term lost")
	}
}
