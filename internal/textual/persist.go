package textual

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Vocabulary persistence. The format is CSV: a header record carrying the
// document count, then one record per term in TermID order (so reloading
// restores the exact term -> ID mapping the index was built with —
// envelope term IDs stored in tree nodes stay valid).
//
//	docs,<count>
//	<term>,<df>
//	...

// Save writes the vocabulary (terms in ID order plus corpus statistics).
func (v *Vocabulary) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"docs", strconv.Itoa(v.docs)}); err != nil {
		return err
	}
	for id, term := range v.terms {
		if err := cw.Write([]string{term, strconv.Itoa(v.df[id])}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadVocabulary reads a vocabulary written by Save, restoring term IDs,
// document frequencies, and the document count.
func LoadVocabulary(r io.Reader) (*Vocabulary, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("textual: reading vocabulary header: %w", err)
	}
	if head[0] != "docs" {
		return nil, fmt.Errorf("textual: bad vocabulary header %q", head[0])
	}
	docs, err := strconv.Atoi(head[1])
	if err != nil {
		return nil, fmt.Errorf("textual: bad document count %q: %w", head[1], err)
	}
	v := NewVocabulary()
	v.docs = docs
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		df, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("textual: bad df %q for term %q: %w", rec[1], rec[0], err)
		}
		if _, exists := v.ids[rec[0]]; exists {
			return nil, fmt.Errorf("textual: duplicate term %q in vocabulary", rec[0])
		}
		id := v.ID(rec[0])
		v.df[id] = df
	}
	return v, nil
}
