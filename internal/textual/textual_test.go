package textual

import (
	"math"
	"reflect"
	"testing"

	"rstknn/internal/vector"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Sushi, Seafood & Noodles!", []string{"sushi", "seafood", "noodles"}},
		{"", nil},
		{"   \t\n", nil},
		{"CAFE cafe CaFe", []string{"cafe", "cafe", "cafe"}},
		{"wi-fi 24x7", []string{"wi", "fi", "24x7"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVocabularyIDs(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("sushi")
	b := v.ID("noodles")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if got := v.ID("sushi"); got != a {
		t.Error("repeated ID lookup should be stable")
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
	if v.Term(a) != "sushi" || v.Term(b) != "noodles" {
		t.Error("Term round trip failed")
	}
	if _, ok := v.Lookup("pizza"); ok {
		t.Error("Lookup should not create terms")
	}
	if _, ok := v.Lookup("sushi"); !ok {
		t.Error("Lookup should find existing terms")
	}
}

func TestDocumentFrequencies(t *testing.T) {
	v := NewVocabulary()
	v.AddDocument([]string{"a", "a", "b"})
	v.AddDocument([]string{"b", "c"})
	v.AddDocument([]string{"b"})
	if v.Docs() != 3 {
		t.Fatalf("Docs = %d", v.Docs())
	}
	idA, _ := v.Lookup("a")
	idB, _ := v.Lookup("b")
	idC, _ := v.Lookup("c")
	if v.DF(idA) != 1 || v.DF(idB) != 3 || v.DF(idC) != 1 {
		t.Errorf("DF = %d/%d/%d, want 1/3/1", v.DF(idA), v.DF(idB), v.DF(idC))
	}
	// Rarer terms have strictly higher IDF.
	if !(v.IDF(idA) > v.IDF(idB)) {
		t.Errorf("IDF(a)=%g should exceed IDF(b)=%g", v.IDF(idA), v.IDF(idB))
	}
	if v.DF(vector.TermID(99)) != 0 {
		t.Error("unknown term DF should be 0")
	}
}

func TestIDFEmptyCorpus(t *testing.T) {
	v := NewVocabulary()
	if v.IDF(0) != 0 {
		t.Error("IDF with no documents should be 0")
	}
}

func TestWeighSchemes(t *testing.T) {
	v := NewVocabulary()
	counts := v.AddDocument([]string{"a", "a", "a", "b"})
	v.AddDocument([]string{"b"}) // make b common, a rare

	idA, _ := v.Lookup("a")
	idB, _ := v.Lookup("b")

	bin := Weigh(counts, Binary, v)
	if bin.WeightOf(idA) != 1 || bin.WeightOf(idB) != 1 {
		t.Errorf("binary weights = %v", bin)
	}

	tf := Weigh(counts, TF, v)
	wantA := 1 + math.Log(3)
	if math.Abs(tf.WeightOf(idA)-wantA) > 1e-12 || tf.WeightOf(idB) != 1 {
		t.Errorf("tf weights = %v", tf)
	}

	tfidf := Weigh(counts, TFIDF, v)
	if !(tfidf.WeightOf(idA) > tfidf.WeightOf(idB)) {
		t.Errorf("tfidf should favor the rarer, more frequent term: %v", tfidf)
	}
}

func TestWeighEmpty(t *testing.T) {
	if !Weigh(nil, TFIDF, NewVocabulary()).IsEmpty() {
		t.Error("weighing empty counts should give empty vector")
	}
	if !Weigh(map[vector.TermID]int{1: 0}, TF, NewVocabulary()).IsEmpty() {
		t.Error("zero counts should be dropped")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"binary", "tf", "tfidf"} {
		s, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("round trip %q -> %q", name, s.String())
		}
	}
	if _, err := SchemeByName("bm25"); err == nil {
		t.Error("unknown scheme should error")
	}
}

func TestCorpusVectors(t *testing.T) {
	c := NewCorpus(TFIDF)
	i := c.Add("sushi seafood")
	j := c.Add("sushi noodles noodles")
	k := c.AddTokens([]string{"seafood"})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	vecs := c.Vectors()
	if len(vecs) != 3 {
		t.Fatalf("Vectors len = %d", len(vecs))
	}
	sushi, _ := c.Vocab.Lookup("sushi")
	noodles, _ := c.Vocab.Lookup("noodles")
	seafood, _ := c.Vocab.Lookup("seafood")
	if !vecs[i].Has(sushi) || !vecs[i].Has(seafood) || vecs[i].Has(noodles) {
		t.Errorf("doc %d vector wrong: %v", i, vecs[i])
	}
	if !vecs[j].Has(noodles) {
		t.Errorf("doc %d vector wrong: %v", j, vecs[j])
	}
	if !vecs[k].Has(seafood) || vecs[k].Len() != 1 {
		t.Errorf("doc %d vector wrong: %v", k, vecs[k])
	}
	// IDF computed over the full corpus: "noodles" (df 1) outweighs
	// "sushi" (df 2) within doc j despite equal... tf differs; compare on
	// doc j: noodles tf=2 idf high, sushi tf=1 idf lower.
	if !(vecs[j].WeightOf(noodles) > vecs[j].WeightOf(sushi)) {
		t.Errorf("expected rarer+more frequent term to dominate: %v", vecs[j])
	}
}

func TestTermsAlphabetical(t *testing.T) {
	v := NewVocabulary()
	for _, s := range []string{"zebra", "apple", "mango"} {
		v.ID(s)
	}
	got := v.TermsAlphabetical()
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TermsAlphabetical = %v", got)
	}
}
