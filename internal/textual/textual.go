// Package textual turns raw text descriptions into the weighted sparse
// term vectors consumed by the rest of the library. It provides a
// vocabulary (string term -> dense TermID mapping), corpus-level document
// frequency statistics, a simple tokenizer, and the term weighting schemes
// discussed by the RSTkNN paper: binary presence (which makes Extended
// Jaccard collapse to keyword overlap), raw/sublinear TF, and TF-IDF.
package textual

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"rstknn/internal/vector"
)

// Vocabulary assigns dense TermIDs to term strings and tracks document
// frequencies. It is not safe for concurrent mutation; build it once, then
// share it read-only.
type Vocabulary struct {
	ids   map[string]vector.TermID
	terms []string
	df    []int // document frequency per TermID
	docs  int   // number of documents folded into df
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]vector.TermID)}
}

// ID returns the TermID for term, creating one when absent.
func (v *Vocabulary) ID(term string) vector.TermID {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := vector.TermID(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	v.df = append(v.df, 0)
	return id
}

// Lookup returns the TermID for term without creating it.
func (v *Vocabulary) Lookup(term string) (vector.TermID, bool) {
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the string for a TermID. It panics on unknown IDs.
func (v *Vocabulary) Term(id vector.TermID) string {
	return v.terms[id]
}

// Size returns the number of distinct terms.
func (v *Vocabulary) Size() int { return len(v.terms) }

// Docs returns the number of documents accumulated via AddDocument.
func (v *Vocabulary) Docs() int { return v.docs }

// DF returns the document frequency of a term.
func (v *Vocabulary) DF(id vector.TermID) int {
	if int(id) >= len(v.df) {
		return 0
	}
	return v.df[id]
}

// IDF returns the smoothed inverse document frequency
// log(1 + N/df); terms never seen in a document get the maximum
// IDF log(1 + N).
func (v *Vocabulary) IDF(id vector.TermID) float64 {
	n := float64(v.docs)
	if n == 0 {
		return 0
	}
	df := float64(v.DF(id))
	if df == 0 {
		df = 1
	}
	return math.Log(1 + n/df)
}

// AddDocument folds a document's distinct terms into the document
// frequency statistics and returns the per-term counts keyed by TermID.
func (v *Vocabulary) AddDocument(tokens []string) map[vector.TermID]int {
	counts := make(map[vector.TermID]int, len(tokens))
	for _, tok := range tokens {
		counts[v.ID(tok)]++
	}
	for id := range counts {
		v.df[id]++
	}
	v.docs++
	return counts
}

// TermsAlphabetical returns all terms sorted alphabetically; used by the
// CLI's stats output and by deterministic dataset serialization.
func (v *Vocabulary) TermsAlphabetical() []string {
	out := make([]string, len(v.terms))
	copy(out, v.terms)
	sort.Strings(out)
	return out
}

// Tokenize lower-cases the input and splits it into maximal runs of
// letters and digits. It is intentionally simple: the paper's collections
// are tag/keyword style descriptions.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Scheme is a term weighting scheme turning per-document term counts into
// a weighted vector.
type Scheme int

const (
	// Binary weights every present term 1. Extended Jaccard over binary
	// weights equals set Jaccard, i.e. the paper's keyword-overlap measure.
	Binary Scheme = iota
	// TF uses sublinear term frequency 1 + ln(tf).
	TF
	// TFIDF uses (1 + ln(tf)) * idf(term).
	TFIDF
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Binary:
		return "binary"
	case TF:
		return "tf"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SchemeByName parses a scheme name. Recognized: "binary", "tf", "tfidf".
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "binary":
		return Binary, nil
	case "tf":
		return TF, nil
	case "tfidf":
		return TFIDF, nil
	default:
		return 0, fmt.Errorf("textual: unknown weighting scheme %q", name)
	}
}

// Weigh turns per-document term counts into a weighted sparse vector using
// the scheme and the vocabulary's corpus statistics (for IDF).
func Weigh(counts map[vector.TermID]int, scheme Scheme, vocab *Vocabulary) vector.Vector {
	if len(counts) == 0 {
		return vector.Vector{}
	}
	w := make(map[vector.TermID]float64, len(counts))
	for id, c := range counts {
		if c <= 0 {
			continue
		}
		switch scheme {
		case Binary:
			w[id] = 1
		case TF:
			w[id] = 1 + math.Log(float64(c))
		case TFIDF:
			w[id] = (1 + math.Log(float64(c))) * vocab.IDF(id)
		}
	}
	return vector.New(w)
}

// Corpus couples a vocabulary with a weighting scheme and offers the
// one-call path from raw text to vector used by loaders and examples.
type Corpus struct {
	Vocab  *Vocabulary
	Scheme Scheme

	pending []map[vector.TermID]int
}

// NewCorpus returns an empty corpus with the given weighting scheme.
func NewCorpus(scheme Scheme) *Corpus {
	return &Corpus{Vocab: NewVocabulary(), Scheme: scheme}
}

// Add tokenizes and registers one document, deferring weighting until
// Vectors is called (IDF needs the full corpus first). It returns the
// document's index.
func (c *Corpus) Add(text string) int {
	c.pending = append(c.pending, c.Vocab.AddDocument(Tokenize(text)))
	return len(c.pending) - 1
}

// AddTokens registers one pre-tokenized document.
func (c *Corpus) AddTokens(tokens []string) int {
	c.pending = append(c.pending, c.Vocab.AddDocument(tokens))
	return len(c.pending) - 1
}

// Len returns the number of registered documents.
func (c *Corpus) Len() int { return len(c.pending) }

// Vectors weighs every registered document with the corpus statistics
// accumulated so far and returns them in registration order.
func (c *Corpus) Vectors() []vector.Vector {
	out := make([]vector.Vector, len(c.pending))
	for i, counts := range c.pending {
		out[i] = Weigh(counts, c.Scheme, c.Vocab)
	}
	return out
}
