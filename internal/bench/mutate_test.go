package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunMutate runs the mutation benchmark at test scale and checks the
// report's structural properties: both phases measured, every op charged
// write I/O, and all retired paths reclaimed once the run ends (the churn
// must have produced garbage that was then freed).
func TestRunMutate(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 0.01, Seed: 3}
	m, err := RunMutate(cfg, "unit", 40)
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "unit" || m.Schema != 1 {
		t.Errorf("label/schema = %q/%d, want unit/1", m.Label, m.Schema)
	}
	if m.Workload.Objects < 50 || m.Workload.Churn != 40 {
		t.Errorf("workload = %+v", m.Workload)
	}
	if len(m.Rows) != 2 || m.Rows[0].Op != "insert" || m.Rows[1].Op != "churn" {
		t.Fatalf("rows = %+v, want [insert churn]", m.Rows)
	}
	for _, r := range m.Rows {
		if r.Ops <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: ops=%d ns/op=%d, want > 0", r.Op, r.Ops, r.NsPerOp)
		}
		// Every COW op re-encodes at least the root-to-leaf path, so it
		// must charge at least one blob write and retire at least one node.
		if r.WritesPerOp < 1 {
			t.Errorf("%s: writes/op = %g, want >= 1", r.Op, r.WritesPerOp)
		}
		if r.PagesPerOp < r.WritesPerOp {
			t.Errorf("%s: pages/op %g < writes/op %g", r.Op, r.PagesPerOp, r.WritesPerOp)
		}
		if r.RetiredPerOp <= 0 {
			t.Errorf("%s: retired/op = %g, want > 0", r.Op, r.RetiredPerOp)
		}
	}
	if m.Storage.Pending != 0 {
		t.Errorf("pending reclaim = %d, want 0 with no pinned readers", m.Storage.Pending)
	}
	if m.Storage.Freed <= 0 {
		t.Errorf("nodes freed = %d, want > 0 after churn", m.Storage.Freed)
	}
	// With no pinned readers TryFree reclaims everything, so live bytes
	// converge back to the total — the bounded-churn guarantee.
	if m.Storage.LiveBytes <= 0 || m.Storage.LiveBytes != m.Storage.TotalBytes {
		t.Errorf("live bytes %d should be positive and equal total %d after reclamation",
			m.Storage.LiveBytes, m.Storage.TotalBytes)
	}
}

// TestRunMutateDeterministicCounters pins that the seed fully determines
// the write-amplification counters, so BENCH files from different
// machines are comparable on everything but ns/op.
func TestRunMutateDeterministicCounters(t *testing.T) {
	cfg := Config{Out: &bytes.Buffer{}, Scale: 0.01, Seed: 9}
	a, err := RunMutate(cfg, "a", 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMutate(cfg, "b", 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.WritesPerOp != rb.WritesPerOp || ra.PagesPerOp != rb.PagesPerOp ||
			ra.RetiredPerOp != rb.RetiredPerOp {
			t.Errorf("%s: counters differ across identical runs: %+v vs %+v", ra.Op, ra, rb)
		}
	}
	if a.Storage.TotalBytes != b.Storage.TotalBytes || a.Storage.LiveBytes != b.Storage.LiveBytes {
		t.Errorf("storage footprint differs across identical runs: %+v vs %+v", a.Storage, b.Storage)
	}
}

// TestMutateReportWriteFile round-trips the JSON record.
func TestMutateReportWriteFile(t *testing.T) {
	m := &MutateReport{Label: "rt", Schema: 1, Rows: []MutateRow{{Op: "insert", Ops: 1, NsPerOp: 5}}}
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got MutateReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.Label != "rt" || len(got.Rows) != 1 || got.Rows[0].Op != "insert" {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
