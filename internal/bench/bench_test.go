package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig runs every experiment at a small fraction of the paper scale
// so the full suite stays test-fast while exercising every code path.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.01, Queries: 3, Seed: 1}
}

func TestByID(t *testing.T) {
	if ByID("F1") == nil || ByID("f1") == nil || ByID("T1") == nil {
		t.Error("known experiments should resolve case-insensitively")
	}
	if ByID("F99") != nil {
		t.Error("unknown experiment should be nil")
	}
}

func TestExperimentsProduceTables(t *testing.T) {
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "== "+e.ID) {
				t.Errorf("output missing table header %q:\n%s", e.ID, out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 4 {
				t.Errorf("table looks empty:\n%s", out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments {
		if !strings.Contains(buf.String(), "== "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Out == nil || c.Scale != 1 || c.Queries != 20 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if got := (Config{Scale: 0.001}).scaled(20000); got != 50 {
		t.Errorf("scaled floor = %d, want 50", got)
	}
	if got := (Config{Scale: 0.5}).scaled(20000); got != 10000 {
		t.Errorf("scaled = %d, want 10000", got)
	}
}

func TestBuildMethodsVariants(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	col, queries := fixture(cfg.withDefaults(), 2000)
	methods, err := buildMethods(col.Objects, treeMethods, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(methods) != 4 {
		t.Fatalf("built %d methods", len(methods))
	}
	if methods[0].tree.Clustered() {
		t.Error("IUR should be unclustered")
	}
	for _, m := range methods[1:] {
		if !m.tree.Clustered() {
			t.Errorf("%s should be clustered", m.name)
		}
	}
	// All methods return identical result counts on the same query.
	var sizes []float64
	for i := range methods {
		m, err := methods[i].runQueries(queries, 5, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, m.Results)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Errorf("method %s mean result size %g != %g", methods[i].name, sizes[i], sizes[0])
		}
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable("demo", "a", "b")
	tab.add("1", "2")
	tab.add("333", "4444")
	tab.render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Errorf("render output:\n%s", out)
	}
}
