package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Comparing two BENCH_<label>.json records turns the checked-in baseline
// into a regression gate: `rstknn-bench -compare old.json new.json`
// prints the per-row deltas and exits non-zero when any cost metric
// regressed past the threshold. Wall-clock is noisy across machines (the
// Machine blocks are allowed to differ), so CI runs the comparison
// non-gating with a generous threshold; allocs/op and nodes-read are
// deterministic for a pinned workload and catch real regressions even on
// shared runners.

// ReadBaselineFile loads a BENCH_<label>.json written by WriteFile.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, b.Schema)
	}
	return &b, nil
}

// CompareMetric is one measured quantity's old/new pair. For every
// metric, larger is worse; DeltaPct is the relative change in percent
// (positive = regression, negative = improvement).
type CompareMetric struct {
	Name      string
	Old, New  float64
	DeltaPct  float64
	Regressed bool
}

// CompareRow is the metric-by-metric delta at one row of the record:
// one worker count for scaling baselines (Workers set, Label empty), one
// (batch size, mode) cell for batch records (Label set by CompareBatch).
type CompareRow struct {
	Workers int
	Label   string
	Metrics []CompareMetric
}

// Comparison is the result of diffing two records on the same workload.
// Compare fills Old/New; CompareBatch fills OldBatch/NewBatch.
type Comparison struct {
	Old, New           *Baseline
	OldBatch, NewBatch *BatchBench
	Rows               []CompareRow
	// Regressions lists every metric whose relative increase exceeded
	// the threshold, formatted for an error message.
	Regressions []string
}

// Compare diffs two baseline records row by row. The workloads must
// match in everything but Iters (more timed passes change variance, not
// the workload); rows are matched on the worker counts present in both
// files. A metric regresses when new exceeds old by more than
// thresholdPct percent.
func Compare(oldB, newB *Baseline, thresholdPct float64) (*Comparison, error) {
	ow, nw := oldB.Workload, newB.Workload
	ow.Iters, nw.Iters = 0, 0
	if ow != nw {
		return nil, fmt.Errorf("workloads differ: old %+v vs new %+v", ow, nw)
	}
	oldRows := make(map[int]BaselineRow, len(oldB.Rows))
	for _, r := range oldB.Rows {
		oldRows[r.Workers] = r
	}
	cmp := &Comparison{Old: oldB, New: newB}
	for _, nr := range newB.Rows {
		or, ok := oldRows[nr.Workers]
		if !ok {
			continue
		}
		row := CompareRow{Workers: nr.Workers}
		for _, m := range []CompareMetric{
			{Name: "ns/op", Old: float64(or.NsPerOp), New: float64(nr.NsPerOp)},
			{Name: "allocs/op", Old: float64(or.AllocsPerOp), New: float64(nr.AllocsPerOp)},
			{Name: "bytes/op", Old: float64(or.BytesPerOp), New: float64(nr.BytesPerOp)},
			{Name: "nodes-read", Old: or.NodesRead, New: nr.NodesRead},
		} {
			if m.Old != 0 {
				m.DeltaPct = (m.New - m.Old) / m.Old * 100
			} else if m.New != 0 {
				m.DeltaPct = 100
			}
			m.Regressed = m.DeltaPct > thresholdPct
			if m.Regressed {
				cmp.Regressions = append(cmp.Regressions,
					fmt.Sprintf("workers=%d %s %+.1f%% (%.0f -> %.0f)",
						nr.Workers, m.Name, m.DeltaPct, m.Old, m.New))
			}
			row.Metrics = append(row.Metrics, m)
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	if len(cmp.Rows) == 0 {
		return nil, fmt.Errorf("no common worker counts between %q and %q", oldB.Label, newB.Label)
	}
	return cmp, nil
}

// Render writes the comparison as a per-row table.
func (c *Comparison) Render(w io.Writer) {
	oldLabel, newLabel := "", ""
	var wl BaselineWorkload
	var mach BaselineMachine
	if c.NewBatch != nil {
		oldLabel, newLabel = c.OldBatch.Label, c.NewBatch.Label
		wl, mach = c.NewBatch.Workload, c.NewBatch.Machine
	} else {
		oldLabel, newLabel = c.Old.Label, c.New.Label
		wl, mach = c.New.Workload, c.New.Machine
	}
	fmt.Fprintf(w, "compare: %s -> %s  (%s/%s, %d objects, %d queries, seed %d)\n",
		oldLabel, newLabel, wl.Profile, mach.GOARCH,
		wl.Objects, wl.Queries, wl.Seed)
	for _, row := range c.Rows {
		if row.Label != "" {
			fmt.Fprintf(w, "%s\n", row.Label)
		} else {
			fmt.Fprintf(w, "workers=%d\n", row.Workers)
		}
		for _, m := range row.Metrics {
			flag := ""
			if m.Regressed {
				flag = "  REGRESSED"
			}
			fmt.Fprintf(w, "  %-10s %14.1f -> %14.1f  %+7.1f%%%s\n",
				m.Name, m.Old, m.New, m.DeltaPct, flag)
		}
	}
}
