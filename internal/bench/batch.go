package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/storage"
)

// The shared-traversal batch benchmark: the evidence record behind
// DESIGN.md §11. For each batch size it answers the same pinned query
// workload twice — independently (one core.RSTkNN call per query, the
// Options.SharedBatch ablation) and shared (one core.MultiRSTkNN
// traversal per batch) — and records the physical nodes read per query.
// `rstknn-bench -batch <label>` writes BENCH_<label>.json;
// `make bench-batch` regenerates the checked-in BENCH_batch.json with a
// pinned seed. Wall-clock columns are machine-dependent; nodes-read,
// shared-hits, and pages per query are deterministic for a given seed
// and comparable across machines.

// batchModeTag marks a BENCH json as a batch record (the scaling
// baselines written by RunBaseline have no mode field).
const batchModeTag = "batch"

// BatchBench is the serialized batch-amortization record.
type BatchBench struct {
	Label    string           `json:"label"`
	Schema   int              `json:"schema"`
	Mode     string           `json:"mode"`
	Machine  BaselineMachine  `json:"machine"`
	Workload BaselineWorkload `json:"workload"`
	// Rows pair, per batch size, the independent measurement with the
	// shared-traversal one (the latter absent under -sharedbatch=false).
	Rows []BatchBenchRow `json:"rows"`
}

// BatchBenchRow is the measurement of one (batch size, execution mode)
// cell. NodesRead counts PHYSICAL node fetches per query: in independent
// mode every logical read is physical, in shared mode each distinct node
// is fetched once per batch — the ratio of the two is Reduction.
type BatchBenchRow struct {
	BatchSize          int     `json:"batch_size"`
	Shared             bool    `json:"shared"`
	NsPerQuery         int64   `json:"ns_per_query"`
	NodesRead          float64 `json:"nodes_read_per_query"`
	SharedHitsPerQuery float64 `json:"shared_hits_per_query"`
	PagesPerQuery      float64 `json:"pages_per_query"`
	Results            float64 `json:"results_per_query"`
	// Reduction is the independent row's NodesRead over this row's, at
	// the same batch size (1 on independent rows by construction).
	Reduction float64 `json:"reduction_vs_independent"`
}

// batchPass is one measured execution of the whole workload in one mode.
type batchPass struct {
	nodes, sharedHits, pages, results float64
	sums                              []int64
}

// RunBatchBench measures the batch workload at each batch size,
// independent and (unless sharedEnabled is false — the ablation) shared,
// with iters timed passes per cell after an untimed warm-up pass that
// also verifies shared results are identical to independent ones.
func RunBatchBench(cfg Config, label string, sizes []int, sharedEnabled bool, iters int) (*BatchBench, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1, 4, 16, 64}
	}
	if iters <= 0 {
		iters = 1
	}
	col, queries := fixture(cfg, defaultN/2)
	methods, err := buildMethods(col.Objects, []method{treeMethods[0]}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	bm := &methods[0]

	b := &BatchBench{
		Label:  label,
		Schema: 1,
		Mode:   batchModeTag,
		Machine: BaselineMachine{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Workload: BaselineWorkload{
			Profile: fmt.Sprint(cfg.Profile),
			Objects: len(col.Objects),
			Queries: len(queries),
			K:       defaultK,
			Alpha:   defaultAlpha,
			Seed:    cfg.Seed,
			Iters:   iters,
		},
	}

	// The independent reference pass also yields the per-query result
	// checksums every shared warm-up is verified against.
	ref, err := runIndependentPass(bm, queries)
	if err != nil {
		return nil, err
	}

	for _, size := range sizes {
		if size < 1 {
			return nil, fmt.Errorf("bench: batch size %d must be positive", size)
		}
		indepRow := BatchBenchRow{
			BatchSize: size,
			NodesRead: ref.nodes, PagesPerQuery: ref.pages, Results: ref.results,
			Reduction: 1,
		}
		ns, err := timeBatchPasses(len(queries), iters, func() error {
			_, err := runIndependentPass(bm, queries)
			return err
		})
		if err != nil {
			return nil, err
		}
		indepRow.NsPerQuery = ns
		b.Rows = append(b.Rows, indepRow)

		if !sharedEnabled {
			continue
		}
		sp, err := runSharedPass(bm, queries, size)
		if err != nil {
			return nil, err
		}
		for i := range sp.sums {
			if sp.sums[i] != ref.sums[i] {
				return nil, fmt.Errorf("bench: query %d result differs between shared (batch=%d) and independent execution", i, size)
			}
		}
		sharedRow := BatchBenchRow{
			BatchSize: size, Shared: true,
			NodesRead: sp.nodes, SharedHitsPerQuery: sp.sharedHits,
			PagesPerQuery: sp.pages, Results: sp.results,
		}
		if sp.nodes > 0 {
			sharedRow.Reduction = ref.nodes / sp.nodes
		}
		ns, err = timeBatchPasses(len(queries), iters, func() error {
			_, err := runSharedPass(bm, queries, size)
			return err
		})
		if err != nil {
			return nil, err
		}
		sharedRow.NsPerQuery = ns
		b.Rows = append(b.Rows, sharedRow)
	}
	return b, nil
}

// runIndependentPass answers every query standalone (Workers:1, the
// paper's sequential cost model) and averages the per-query counters.
func runIndependentPass(bm *builtMethod, queries []dataset.QueryObject) (batchPass, error) {
	var p batchPass
	p.sums = make([]int64, len(queries))
	for i, q := range queries {
		var tracker storage.Tracker
		out, err := core.RSTkNN(bm.tree, core.Query{Loc: q.Loc, Doc: q.Doc}, core.Options{
			K: defaultK, Alpha: defaultAlpha, Strategy: bm.strategy,
			Workers: 1, Tracker: &tracker,
		})
		if err != nil {
			return p, err
		}
		p.sums[i] = resultChecksum(out.Results)
		p.nodes += float64(out.Metrics.NodesRead)
		p.pages += float64(tracker.PagesRead())
		p.results += float64(len(out.Results))
	}
	qn := float64(len(queries))
	p.nodes /= qn
	p.pages /= qn
	p.results /= qn
	return p, nil
}

// runSharedPass partitions the workload into consecutive batches of the
// given size (the last batch may be smaller) and answers each with one
// shared traversal.
func runSharedPass(bm *builtMethod, queries []dataset.QueryObject, size int) (batchPass, error) {
	var p batchPass
	p.sums = make([]int64, 0, len(queries))
	for lo := 0; lo < len(queries); lo += size {
		hi := lo + size
		if hi > len(queries) {
			hi = len(queries)
		}
		chunk := queries[lo:hi]
		items := make([]core.BatchItem, len(chunk))
		for i, q := range chunk {
			items[i] = core.BatchItem{Query: core.Query{Loc: q.Loc, Doc: q.Doc}, K: defaultK}
		}
		var tracker storage.Tracker
		mo, err := core.MultiRSTkNN(bm.tree, items, core.Options{
			Alpha: defaultAlpha, Strategy: bm.strategy,
			Workers: 1, Tracker: &tracker,
		})
		if err != nil {
			return p, err
		}
		for _, o := range mo.Outcomes {
			p.sums = append(p.sums, resultChecksum(o.Results))
			p.results += float64(len(o.Results))
		}
		p.nodes += float64(mo.Batch.NodesRead)
		p.sharedHits += float64(mo.Batch.SharedHits)
		p.pages += float64(tracker.PagesRead())
	}
	qn := float64(len(queries))
	p.nodes /= qn
	p.sharedHits /= qn
	p.pages /= qn
	p.results /= qn
	return p, nil
}

// timeBatchPasses runs iters timed passes of the workload and returns
// mean wall-clock per query.
func timeBatchPasses(queriesPerPass, iters int, pass func() error) (int64, error) {
	start := time.Now()
	for it := 0; it < iters; it++ {
		if err := pass(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(iters*queriesPerPass), nil
}

// resultChecksum folds a result-ID list into one comparable word.
func resultChecksum(ids []int32) int64 {
	var sum int64
	for _, id := range ids {
		sum = sum*1000003 + int64(id)
	}
	return sum
}

// WriteFile serializes the record to path as indented JSON.
func (b *BatchBench) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BenchFileMode returns the "mode" field of a BENCH json file: "" for
// the scaling baselines RunBaseline writes, "batch" for RunBatchBench
// records — so -compare can dispatch without a schema bump.
func BenchFileMode(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var head struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return head.Mode, nil
}

// ReadBatchBenchFile loads a BENCH_<label>.json written by
// BatchBench.WriteFile.
func ReadBatchBenchFile(path string) (*BatchBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BatchBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, b.Schema)
	}
	if b.Mode != batchModeTag {
		return nil, fmt.Errorf("%s: not a batch benchmark (mode %q)", path, b.Mode)
	}
	return &b, nil
}

// CompareBatch diffs two batch records row by row, the batch-mode
// counterpart of Compare: workloads must match in everything but Iters,
// rows are matched on (batch size, shared), and a metric regresses when
// new exceeds old by more than thresholdPct percent.
func CompareBatch(oldB, newB *BatchBench, thresholdPct float64) (*Comparison, error) {
	ow, nw := oldB.Workload, newB.Workload
	ow.Iters, nw.Iters = 0, 0
	if ow != nw {
		return nil, fmt.Errorf("workloads differ: old %+v vs new %+v", ow, nw)
	}
	type key struct {
		size   int
		shared bool
	}
	oldRows := make(map[key]BatchBenchRow, len(oldB.Rows))
	for _, r := range oldB.Rows {
		oldRows[key{r.BatchSize, r.Shared}] = r
	}
	cmp := &Comparison{OldBatch: oldB, NewBatch: newB}
	for _, nr := range newB.Rows {
		or, ok := oldRows[key{nr.BatchSize, nr.Shared}]
		if !ok {
			continue
		}
		mode := "independent"
		if nr.Shared {
			mode = "shared"
		}
		label := fmt.Sprintf("batch=%d %s", nr.BatchSize, mode)
		row := CompareRow{Label: label}
		for _, m := range []CompareMetric{
			{Name: "ns/query", Old: float64(or.NsPerQuery), New: float64(nr.NsPerQuery)},
			{Name: "nodes-read", Old: or.NodesRead, New: nr.NodesRead},
			{Name: "pages", Old: or.PagesPerQuery, New: nr.PagesPerQuery},
		} {
			if m.Old != 0 {
				m.DeltaPct = (m.New - m.Old) / m.Old * 100
			} else if m.New != 0 {
				m.DeltaPct = 100
			}
			m.Regressed = m.DeltaPct > thresholdPct
			if m.Regressed {
				cmp.Regressions = append(cmp.Regressions,
					fmt.Sprintf("%s %s %+.1f%% (%.0f -> %.0f)",
						label, m.Name, m.DeltaPct, m.Old, m.New))
			}
			row.Metrics = append(row.Metrics, m)
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	if len(cmp.Rows) == 0 {
		return nil, fmt.Errorf("no common (batch size, mode) rows between %q and %q", oldB.Label, newB.Label)
	}
	return cmp, nil
}
