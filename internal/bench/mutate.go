package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
)

// The mutation-regression baseline: a machine-readable record of the
// copy-on-write update path's cost. `rstknn-bench -mutate <label>`
// builds the tree over half the fixture, inserts the other half, then
// runs a steady-state insert/delete churn — every retired path handed to
// the epoch reclaimer — and records ns/op, blob writes and pages written
// per op, nodes retired per op, and the final live-vs-total footprint.
// WritesPerOp, PagesPerOp, RetiredPerOp, and the byte totals are
// deterministic for a given seed, so write-amplification regressions are
// comparable across machines; ns/op is hardware-dependent.

// MutateReport is the serialized mutation benchmark record.
type MutateReport struct {
	Label    string           `json:"label"`
	Schema   int              `json:"schema"`
	Machine  BaselineMachine  `json:"machine"`
	Workload MutateWorkload   `json:"workload"`
	Rows     []MutateRow      `json:"rows"`
	Storage  MutateStorageRow `json:"storage"`
}

// MutateWorkload pins the inputs of the measurement.
type MutateWorkload struct {
	Profile string `json:"profile"`
	Objects int    `json:"objects"`
	Churn   int    `json:"churn_ops"`
	Seed    int64  `json:"seed"`
}

// MutateRow is the measurement for one operation kind.
type MutateRow struct {
	Op           string  `json:"op"`
	Ops          int     `json:"ops"`
	NsPerOp      int64   `json:"ns_per_op"`
	WritesPerOp  float64 `json:"writes_per_op"`
	PagesPerOp   float64 `json:"pages_written_per_op"`
	RetiredPerOp float64 `json:"retired_per_op"`
}

// MutateStorageRow captures the footprint after the churn, proving
// reclamation keeps live usage bounded.
type MutateStorageRow struct {
	TotalBytes int64 `json:"total_bytes"`
	LiveBytes  int64 `json:"live_bytes"`
	Freed      int64 `json:"nodes_freed"`
	Pending    int   `json:"nodes_pending"`
}

// RunMutate builds the scaled fixture, loads half statically and half
// through COW inserts, then measures churn ops (default fixture size) of
// alternating insert/delete steady-state traffic.
func RunMutate(cfg Config, label string, churn int) (*MutateReport, error) {
	cfg = cfg.withDefaults()
	col, _ := fixture(cfg, defaultN/2)
	objs := col.Objects
	if churn <= 0 {
		churn = len(objs)
	}
	half := len(objs) / 2

	store := storage.NewStore()
	tree, err := iurtree.Build(objs[:half], iurtree.Config{Store: store})
	if err != nil {
		return nil, err
	}
	rec := storage.NewReclaimer(store)
	// The default-on bound cache keys by NodeID; freed slots are recycled
	// by later inserts, so eviction-on-free is required for correctness,
	// exactly as the engine wires it.
	rec.SetOnFree(tree.InvalidateNode)

	report := &MutateReport{
		Label:  label,
		Schema: 1,
		Machine: BaselineMachine{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Workload: MutateWorkload{
			Profile: fmt.Sprint(cfg.Profile),
			Objects: len(objs),
			Churn:   churn,
			Seed:    cfg.Seed,
		},
	}

	// Phase 1: grow the sealed tree to full size through the COW path.
	var tracker storage.Tracker
	var retired int64
	start := time.Now()
	for _, o := range objs[half:] {
		next, rets, err := tree.Insert(o, &tracker)
		if err != nil {
			return nil, err
		}
		tree = next
		retired += int64(len(rets))
		rec.Retire(rets) //rstknn:allow retirepub single-goroutine bench harness: the tree is a local, nothing is published, no reader can pin
	}
	report.Rows = append(report.Rows, mutateRow("insert", len(objs)-half, start, &tracker, retired))

	// Phase 2: steady-state churn — delete a random live object, insert
	// a replacement — at constant size.
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	live := append([]iurtree.Object(nil), objs...)
	nextID := int32(1 << 20)
	tracker.Reset()
	retired = 0
	var delOps, insOps int
	start = time.Now()
	for i := 0; i < churn; i++ {
		j := rng.Intn(len(live))
		victim := live[j]
		next, rets, ok, err := tree.Delete(victim.ID, victim.Loc, &tracker)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("bench: live object %d not found", victim.ID)
		}
		tree = next
		retired += int64(len(rets))
		rec.Retire(rets) //rstknn:allow retirepub single-goroutine bench harness: the tree is a local, nothing is published, no reader can pin
		delOps++

		repl := iurtree.Object{
			ID:  nextID,
			Loc: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Doc: victim.Doc,
		}
		nextID++
		next, rets, err = tree.Insert(repl, &tracker)
		if err != nil {
			return nil, err
		}
		tree = next
		retired += int64(len(rets))
		rec.Retire(rets) //rstknn:allow retirepub single-goroutine bench harness: the tree is a local, nothing is published, no reader can pin
		insOps++
		live[j] = repl
	}
	report.Rows = append(report.Rows, mutateRow("churn", delOps+insOps, start, &tracker, retired))

	rec.TryFree()
	rs := rec.Stats()
	report.Storage = MutateStorageRow{
		TotalBytes: store.TotalBytes(),
		LiveBytes:  store.LiveBytes(),
		Freed:      rs.Freed,
		Pending:    rs.Pending,
	}
	if err := tree.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("bench: tree corrupted by mutation workload: %w", err)
	}
	return report, nil
}

func mutateRow(op string, ops int, start time.Time, tr *storage.Tracker, retired int64) MutateRow {
	elapsed := time.Since(start)
	if ops <= 0 {
		ops = 1
	}
	return MutateRow{
		Op:           op,
		Ops:          ops,
		NsPerOp:      elapsed.Nanoseconds() / int64(ops),
		WritesPerOp:  float64(tr.Writes()) / float64(ops),
		PagesPerOp:   float64(tr.PagesWritten()) / float64(ops),
		RetiredPerOp: float64(retired) / float64(ops),
	}
}

// WriteFile serializes the report to path as indented JSON.
func (m *MutateReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
