package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func testBaseline(label string, rows []BaselineRow) *Baseline {
	return &Baseline{
		Label:  label,
		Schema: 1,
		Workload: BaselineWorkload{
			Profile: "gn", Objects: 2500, Queries: 16,
			K: 10, Alpha: 0.5, Seed: 7, Iters: 3,
		},
		Rows: rows,
	}
}

func TestCompareDeltasAndRegressions(t *testing.T) {
	oldB := testBaseline("old", []BaselineRow{
		{Workers: 1, NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000, NodesRead: 50},
		{Workers: 2, NsPerOp: 900, AllocsPerOp: 100, BytesPerOp: 10000, NodesRead: 50},
	})
	newB := testBaseline("new", []BaselineRow{
		{Workers: 1, NsPerOp: 1200, AllocsPerOp: 50, BytesPerOp: 10000, NodesRead: 50},
		{Workers: 2, NsPerOp: 900, AllocsPerOp: 50, BytesPerOp: 10000, NodesRead: 50},
	})
	// Iters may differ between records; only the workload itself gates.
	newB.Workload.Iters = 1

	cmp, err := Compare(oldB, newB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(cmp.Rows))
	}
	m := cmp.Rows[0].Metrics[0] // workers=1 ns/op: 1000 -> 1200
	if m.Name != "ns/op" || m.DeltaPct != 20 || !m.Regressed {
		t.Errorf("ns/op metric = %+v, want +20%% regressed", m)
	}
	a := cmp.Rows[0].Metrics[1] // allocs/op: 100 -> 50, an improvement
	if a.DeltaPct != -50 || a.Regressed {
		t.Errorf("allocs/op metric = %+v, want -50%% not regressed", a)
	}
	if len(cmp.Regressions) != 1 || !strings.Contains(cmp.Regressions[0], "workers=1 ns/op") {
		t.Errorf("regressions = %v, want exactly the workers=1 ns/op entry", cmp.Regressions)
	}

	var sb strings.Builder
	cmp.Render(&sb)
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("render output lacks REGRESSED marker:\n%s", sb.String())
	}
}

func TestCompareRejectsWorkloadMismatch(t *testing.T) {
	oldB := testBaseline("old", []BaselineRow{{Workers: 1, NsPerOp: 1}})
	newB := testBaseline("new", []BaselineRow{{Workers: 1, NsPerOp: 1}})
	newB.Workload.Seed = 8
	if _, err := Compare(oldB, newB, 10); err == nil {
		t.Fatal("Compare accepted baselines from different workloads")
	}
}

func TestCompareRejectsDisjointWorkers(t *testing.T) {
	oldB := testBaseline("old", []BaselineRow{{Workers: 1, NsPerOp: 1}})
	newB := testBaseline("new", []BaselineRow{{Workers: 4, NsPerOp: 1}})
	if _, err := Compare(oldB, newB, 10); err == nil {
		t.Fatal("Compare accepted baselines with no common worker count")
	}
}

func TestReadBaselineFileRoundTrip(t *testing.T) {
	b := testBaseline("rt", []BaselineRow{{Workers: 1, NsPerOp: 42, NodesRead: 7.5}})
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "rt" || len(got.Rows) != 1 || got.Rows[0].NsPerOp != 42 || got.Rows[0].NodesRead != 7.5 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
