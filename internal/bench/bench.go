// Package bench is the experiment harness that regenerates every table
// and figure of the RSTkNN paper's evaluation (as reconstructed in
// DESIGN.md §4). Each experiment builds the datasets and indexes it
// needs, runs the competing methods over a shared query workload, and
// prints a paper-style table of mean per-query cost; the same code backs
// the testing.B benchmarks in the repository root and the rstknn-bench
// CLI.
//
// Methods compared, using the paper's naming:
//
//	B       exhaustive baseline (per-query naive scan)
//	P       precomputation baseline (thresholds materialized offline)
//	IUR     branch-and-bound over the plain IUR-tree
//	CIUR    branch-and-bound over the cluster-enhanced IUR-tree
//	O-CIUR  CIUR with outlier detection and extraction
//	E-CIUR  CIUR with text-entropy refinement ordering
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"rstknn/internal/cluster"
	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Config scales and seeds a harness run.
type Config struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Scale multiplies the default dataset sizes; 1.0 is the full run,
	// tests use small fractions.
	Scale float64
	// Queries is the number of query objects averaged per data point.
	Queries int
	// Seed drives dataset generation and query sampling.
	Seed int64
	// Profile selects the dataset shape (default GN).
	Profile dataset.Profile
	// Parallelism is the worker count for the parallel-throughput
	// experiment (F13); <= 0 defaults to runtime.GOMAXPROCS(0).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	return c
}

// scaled returns n scaled by the config, with a floor to keep experiments
// meaningful at test scale.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 50 {
		v = 50
	}
	return v
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

// Experiments lists every experiment in paper order.
var Experiments = []Experiment{
	{"T1", "Dataset statistics", RunT1DatasetStats},
	{"T2", "Index construction cost and size", RunT2IndexConstruction},
	{"F1", "Query time vs k", RunF1VaryK},
	{"F2", "Page accesses vs k", RunF2PageAccess},
	{"F3", "Query time vs alpha", RunF3VaryAlpha},
	{"F4", "Scalability vs |D|", RunF4Scalability},
	{"F5", "Pruning effectiveness vs k", RunF5Pruning},
	{"F6", "Effect of CIUR cluster count", RunF6Clusters},
	{"F7", "Effect of document length", RunF7DocLength},
	{"F8", "Baselines vs branch-and-bound", RunF8Baselines},
	{"F9", "Text similarity measures", RunF9Measures},
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range Experiments {
		if strings.EqualFold(Experiments[i].ID, id) {
			return &Experiments[i]
		}
	}
	return nil
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	for _, e := range Experiments {
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// ------------------------------------------------------------------
// Method definitions

// method is one competitor: how to build its index and query it.
type method struct {
	name     string
	clusters int     // 0 = plain IUR
	outlier  float64 // O-CIUR outlier threshold
	strategy core.RefineStrategy
}

var treeMethods = []method{
	{name: "IUR"},
	{name: "CIUR", clusters: 16},
	{name: "O-CIUR", clusters: 16, outlier: 0.15},
	{name: "E-CIUR", clusters: 16, strategy: core.RefineByEntropy},
}

// builtMethod pairs a method with its sealed tree.
type builtMethod struct {
	method
	tree  *iurtree.Snapshot
	build time.Duration
}

// buildMethods seals one tree per method over the collection.
func buildMethods(objs []iurtree.Object, methods []method, seed int64) ([]builtMethod, error) {
	out := make([]builtMethod, 0, len(methods))
	docs := make([]vector.Vector, len(objs))
	for i := range objs {
		docs[i] = objs[i].Doc
	}
	for _, m := range methods {
		start := time.Now()
		cfg := iurtree.Config{Store: storage.NewStore()}
		if m.clusters > 0 {
			cfg.Clustering = cluster.Run(docs, cluster.Config{
				K: m.clusters, Seed: seed, OutlierThreshold: m.outlier,
			})
		}
		tree, err := iurtree.Build(objs, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, builtMethod{method: m, tree: tree, build: time.Since(start)})
	}
	return out, nil
}

// measurement aggregates per-query costs.
type measurement struct {
	Time       time.Duration // mean per query
	Pages      float64       // mean page accesses per query
	Nodes      float64       // mean nodes read
	Sims       float64       // mean exact similarity computations
	Bounds     float64       // mean bound evaluations
	GroupFrac  float64       // fraction of objects decided at node level
	Results    float64       // mean result-set size
	Refines    float64       // mean contributor refinements
	Candidates float64       // mean object-level candidates
}

// runQueries measures a built method over the query workload. Each query
// runs with its own storage.Tracker, so the per-query I/O numbers do not
// depend on resetting (or racing on) the store's global counters.
func (bm *builtMethod) runQueries(queries []dataset.QueryObject, k int, alpha float64, sim vector.TextSim) (measurement, error) {
	var agg measurement
	var total time.Duration
	n := bm.tree.Len()
	for _, q := range queries {
		var tracker storage.Tracker
		start := time.Now()
		// Workers is pinned to 1: these experiments reproduce the paper's
		// sequential per-query costs. Intra-query scaling is measured
		// separately by the -json baseline benchmark.
		out, err := core.RSTkNN(bm.tree, core.Query{Loc: q.Loc, Doc: q.Doc}, core.Options{
			K: k, Alpha: alpha, Sim: sim, Strategy: bm.strategy,
			Workers: 1, Tracker: &tracker,
		})
		if err != nil {
			return agg, err
		}
		total += time.Since(start)
		agg.Pages += float64(tracker.PagesRead())
		agg.Nodes += float64(out.Metrics.NodesRead)
		agg.Sims += float64(out.Metrics.ExactSims)
		agg.Bounds += float64(out.Metrics.BoundEvals)
		agg.Results += float64(len(out.Results))
		agg.Refines += float64(out.Metrics.Refinements)
		agg.Candidates += float64(out.Metrics.Candidates)
		if n > 0 {
			agg.GroupFrac += float64(out.Metrics.GroupPruned+out.Metrics.GroupReported) / float64(n)
		}
	}
	qn := float64(len(queries))
	agg.Time = time.Duration(float64(total) / qn)
	agg.Pages /= qn
	agg.Nodes /= qn
	agg.Sims /= qn
	agg.Bounds /= qn
	agg.Results /= qn
	agg.Refines /= qn
	agg.Candidates /= qn
	agg.GroupFrac /= qn
	return agg, nil
}

// ------------------------------------------------------------------
// Table rendering

type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.headers, "\t"))
	fmt.Fprintln(tw, strings.Repeat("-", 8))
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// ------------------------------------------------------------------
// Shared fixtures

// fixture builds the default dataset and query workload for an
// experiment, applying the scale.
func fixture(cfg Config, n int) (*dataset.Collection, []dataset.QueryObject) {
	col := dataset.Generate(cfg.Profile, dataset.Params{N: cfg.scaled(n), Seed: cfg.Seed})
	queries := col.Queries(cfg.Queries, cfg.Seed+1)
	return col, queries
}

const (
	defaultN     = 20000
	defaultK     = 10
	defaultAlpha = 0.5
)
