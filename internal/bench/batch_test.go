package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func testBatchBench(label string, rows []BatchBenchRow) *BatchBench {
	return &BatchBench{
		Label:  label,
		Schema: 1,
		Mode:   batchModeTag,
		Workload: BaselineWorkload{
			Profile: "gn", Objects: 2500, Queries: 16,
			K: 10, Alpha: 0.5, Seed: 7, Iters: 3,
		},
		Rows: rows,
	}
}

// TestRunBatchBench smoke-runs the harness at tiny scale and pins the
// row invariants: every requested size yields an independent row plus a
// shared row, shared rows read no more nodes than independent ones, and
// Reduction is their ratio.
func TestRunBatchBench(t *testing.T) {
	cfg := Config{Scale: 0.02, Queries: 6, Seed: 7}
	b, err := RunBatchBench(cfg, "t", []int{1, 3}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Mode != batchModeTag || b.Schema != 1 {
		t.Fatalf("header = mode %q schema %d", b.Mode, b.Schema)
	}
	if len(b.Rows) != 4 {
		t.Fatalf("rows = %d, want independent+shared per size", len(b.Rows))
	}
	for i := 0; i < len(b.Rows); i += 2 {
		ind, sh := b.Rows[i], b.Rows[i+1]
		if ind.Shared || !sh.Shared || ind.BatchSize != sh.BatchSize {
			t.Fatalf("row pair %d mispaired: %+v / %+v", i, ind, sh)
		}
		if ind.Reduction != 1 {
			t.Errorf("independent reduction = %g, want 1", ind.Reduction)
		}
		if sh.NodesRead > ind.NodesRead {
			t.Errorf("batch=%d: shared reads %.1f nodes/query, more than independent %.1f",
				sh.BatchSize, sh.NodesRead, ind.NodesRead)
		}
		if want := ind.NodesRead / sh.NodesRead; sh.Reduction != want {
			t.Errorf("batch=%d: reduction %g != %g", sh.BatchSize, sh.Reduction, want)
		}
		if sh.Results != ind.Results {
			t.Errorf("batch=%d: results/query drifted %g vs %g", sh.BatchSize, sh.Results, ind.Results)
		}
	}

	// The ablation records only independent rows.
	b, err = RunBatchBench(cfg, "t", []int{2}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 1 || b.Rows[0].Shared {
		t.Fatalf("ablation rows = %+v, want one independent row", b.Rows)
	}
}

func TestReadBatchBenchFileRoundTripAndMode(t *testing.T) {
	b := testBatchBench("rt", []BatchBenchRow{
		{BatchSize: 4, Shared: true, NsPerQuery: 42, NodesRead: 7.5, Reduction: 3.2},
	})
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	mode, err := BenchFileMode(path)
	if err != nil || mode != batchModeTag {
		t.Fatalf("mode probe = %q, %v", mode, err)
	}
	got, err := ReadBatchBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "rt" || len(got.Rows) != 1 || got.Rows[0].NodesRead != 7.5 || !got.Rows[0].Shared {
		t.Errorf("round-trip mismatch: %+v", got)
	}

	// A scaling baseline is not a batch record — and probes as mode "".
	sb := testBaseline("plain", []BaselineRow{{Workers: 1}})
	plain := filepath.Join(t.TempDir(), "BENCH_plain.json")
	if err := sb.WriteFile(plain); err != nil {
		t.Fatal(err)
	}
	if mode, err := BenchFileMode(plain); err != nil || mode != "" {
		t.Fatalf("baseline mode probe = %q, %v", mode, err)
	}
	if _, err := ReadBatchBenchFile(plain); err == nil {
		t.Fatal("ReadBatchBenchFile accepted a scaling baseline")
	}
}

func TestCompareBatchDeltasAndRegressions(t *testing.T) {
	oldB := testBatchBench("old", []BatchBenchRow{
		{BatchSize: 4, NsPerQuery: 1000, NodesRead: 50, PagesPerQuery: 60, Reduction: 1},
		{BatchSize: 4, Shared: true, NsPerQuery: 800, NodesRead: 10, PagesPerQuery: 12, Reduction: 5},
	})
	newB := testBatchBench("new", []BatchBenchRow{
		{BatchSize: 4, NsPerQuery: 1000, NodesRead: 50, PagesPerQuery: 60, Reduction: 1},
		{BatchSize: 4, Shared: true, NsPerQuery: 800, NodesRead: 25, PagesPerQuery: 30, Reduction: 2},
	})
	newB.Workload.Iters = 1 // iters never gates

	cmp, err := CompareBatch(oldB, newB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(cmp.Rows))
	}
	if cmp.Rows[1].Label != "batch=4 shared" {
		t.Errorf("shared row label = %q", cmp.Rows[1].Label)
	}
	m := cmp.Rows[1].Metrics[1] // shared nodes-read: 10 -> 25
	if m.Name != "nodes-read" || m.DeltaPct != 150 || !m.Regressed {
		t.Errorf("nodes-read metric = %+v, want +150%% regressed", m)
	}
	var matched int
	for _, r := range cmp.Regressions {
		if strings.Contains(r, "batch=4 shared nodes-read") {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("regressions = %v, want one batch=4 shared nodes-read entry", cmp.Regressions)
	}

	var sb strings.Builder
	cmp.Render(&sb)
	if !strings.Contains(sb.String(), "batch=4 shared") || !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("render output missing batch labels or REGRESSED marker:\n%s", sb.String())
	}

	newB.Workload.Seed = 8
	if _, err := CompareBatch(oldB, newB, 10); err == nil {
		t.Fatal("CompareBatch accepted records from different workloads")
	}
	newB.Workload.Seed = 7
	newB.Rows = []BatchBenchRow{{BatchSize: 64}}
	if _, err := CompareBatch(oldB, newB, 10); err == nil {
		t.Fatal("CompareBatch accepted records with no common rows")
	}
}
