package bench

import (
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/storage"
)

// BenchmarkPinnedWorkload runs the BENCH_baseline.json workload as a Go
// benchmark so the standard -benchmem/-memprofile tooling can attribute
// the query path's allocations (the JSON baseline only records totals).
func BenchmarkPinnedWorkload(b *testing.B) {
	cfg := Config{Scale: 0.25, Queries: 16, Seed: 7}.withDefaults()
	col, queries := fixture(cfg, defaultN/2)
	methods, err := buildMethods(col.Objects, []method{treeMethods[0]}, cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	bm := &methods[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			var tracker storage.Tracker
			_, err := core.RSTkNN(bm.tree, core.Query{Loc: q.Loc, Doc: q.Doc}, core.Options{
				K: defaultK, Alpha: defaultAlpha, Strategy: bm.strategy,
				Workers: 1, Tracker: &tracker,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
