package bench

import (
	"fmt"
	"time"

	"rstknn/internal/cluster"
	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Extension experiments beyond the paper's figures: dataset-profile
// sensitivity (F10), ablations of this implementation's design choices
// (F11), and warm-vs-cold buffer pool behaviour (F12). DESIGN.md calls
// these out as the "design choices to ablate".

func init() {
	Experiments = append(Experiments,
		Experiment{"F10", "Dataset profile sensitivity (where CIUR wins)", RunF10Profiles},
		Experiment{"F11", "Ablation: lazy bound inheritance and group refinement", RunF11Ablation},
		Experiment{"F12", "Buffer pool: cold vs warm page accesses", RunF12BufferPool},
	)
}

// RunF10Profiles compares IUR and CIUR across the dataset profiles. The
// expectation from the CIUR design: little to no gain on unstructured
// text (gn, uniform), a clear win in decided-at-node-level fraction and
// page accesses on topical text.
func RunF10Profiles(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(fmt.Sprintf("F10: profile sensitivity (k=%d, alpha=%g)", defaultK, defaultAlpha),
		"profile", "method", "time (ms)", "pages", "group-decided", "candidates")
	for _, p := range []dataset.Profile{dataset.GN, dataset.Uniform, dataset.Topical} {
		col := dataset.Generate(p, dataset.Params{N: cfg.scaled(defaultN / 2), Seed: cfg.Seed})
		queries := col.Queries(cfg.Queries, cfg.Seed+1)
		methods, err := buildMethods(col.Objects, []method{treeMethods[0], treeMethods[1]}, cfg.Seed)
		if err != nil {
			return err
		}
		for i := range methods {
			m, err := methods[i].runQueries(queries, defaultK, defaultAlpha, nil)
			if err != nil {
				return err
			}
			t.add(p.String(), methods[i].name, ms(m.Time), f1(m.Pages), pct(m.GroupFrac), f1(m.Candidates))
		}
	}
	t.render(cfg.Out)
	return nil
}

// RunF11Ablation toggles the implementation's two main knobs on the same
// workload: lazy vs eager bound inheritance, and the group refinement
// budget. Lazy bounds should cut bound evaluations without changing
// results; a small group budget trades extra node reads for group
// decisions.
func RunF11Ablation(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN/2)
	docs := make([]vector.Vector, len(col.Objects))
	for i := range col.Objects {
		docs[i] = col.Objects[i].Doc
	}
	asg := cluster.Run(docs, cluster.Config{K: 16, Seed: cfg.Seed})
	tree, err := iurtree.Build(col.Objects, iurtree.Config{
		Store:      storage.NewStore(),
		Clustering: asg,
	})
	if err != nil {
		return err
	}

	variants := []struct {
		name string
		opt  core.Options
	}{
		{"lazy (default)", core.Options{K: defaultK, Alpha: defaultAlpha}},
		{"eager bounds", core.Options{K: defaultK, Alpha: defaultAlpha, EagerBounds: true}},
		{"group-refine 2", core.Options{K: defaultK, Alpha: defaultAlpha, GroupRefine: 2}},
		{"group-refine 8", core.Options{K: defaultK, Alpha: defaultAlpha, GroupRefine: 8}},
		{"entropy strategy", core.Options{K: defaultK, Alpha: defaultAlpha, Strategy: core.RefineByEntropy}},
	}
	t := newTable(fmt.Sprintf("F11: ablation on CIUR (|D|=%d, k=%d, alpha=%g)", len(col.Objects), defaultK, defaultAlpha),
		"variant", "time (ms)", "pages", "bound evals", "rebounds", "refines", "|result|")
	var reference float64 = -1
	for _, v := range variants {
		var agg measurement
		var total time.Duration
		for _, q := range queries {
			var tracker storage.Tracker
			opt := v.opt
			opt.Tracker = &tracker
			start := time.Now()
			out, err := core.RSTkNN(tree, core.Query{Loc: q.Loc, Doc: q.Doc}, opt)
			if err != nil {
				return err
			}
			total += time.Since(start)
			agg.Pages += float64(tracker.PagesRead())
			agg.Bounds += float64(out.Metrics.BoundEvals)
			agg.Refines += float64(out.Metrics.Refinements)
			agg.Results += float64(len(out.Results))
			agg.Nodes += float64(out.Metrics.Rebounds) // reuse field for rebounds
		}
		qn := float64(len(queries))
		if reference < 0 {
			reference = agg.Results
			//rstknn:allow floatcmp both sides are sums of integer result counts, exactly representable in float64
		} else if agg.Results != reference {
			return fmt.Errorf("F11: variant %q changed the result set", v.name)
		}
		t.add(v.name,
			ms(time.Duration(float64(total)/qn)),
			f1(agg.Pages/qn), f1(agg.Bounds/qn), f1(agg.Nodes/qn),
			f1(agg.Refines/qn), f1(agg.Results/qn))
	}
	t.render(cfg.Out)
	return nil
}

// RunF12BufferPool measures the same query workload against stores with
// increasing LRU buffer pools: the first pass is cold, the second warm.
func RunF12BufferPool(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN/2)
	poolSizes := []int{0, 256, 1024, 8192}
	t := newTable(fmt.Sprintf("F12: buffer pool (|D|=%d, k=%d, alpha=%g; pages per query)", len(col.Objects), defaultK, defaultAlpha),
		"pool (pages)", "cold pages", "warm pages", "warm hit rate")
	for _, pool := range poolSizes {
		opts := []storage.Option{}
		if pool > 0 {
			opts = append(opts, storage.WithBufferPool(pool))
		}
		store := storage.NewStore(opts...)
		tree, err := iurtree.Build(col.Objects, iurtree.Config{Store: store})
		if err != nil {
			return err
		}
		store.DropCache()

		run := func() (pages, hits, reads float64, err error) {
			var pg, ht, rd int64
			for _, q := range queries {
				var tracker storage.Tracker
				if _, err := core.RSTkNN(tree, core.Query{Loc: q.Loc, Doc: q.Doc},
					core.Options{K: defaultK, Alpha: defaultAlpha, Tracker: &tracker}); err != nil {
					return 0, 0, 0, err
				}
				pg += tracker.PagesRead()
				ht += tracker.CacheHits()
				rd += tracker.Reads()
			}
			qn := float64(len(queries))
			return float64(pg) / qn, float64(ht) / qn, float64(rd) / qn, nil
		}
		cold, _, _, err := run()
		if err != nil {
			return err
		}
		warm, hits, reads, err := run()
		if err != nil {
			return err
		}
		rate := 0.0
		if hits+reads > 0 {
			rate = hits / (hits + reads)
		}
		t.add(fmt.Sprint(pool), f1(cold), f1(warm), pct(rate))
	}
	t.render(cfg.Out)
	return nil
}
