package bench

import (
	"fmt"
	"time"

	"rstknn/internal/baseline"
	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/iurtree"
	"rstknn/internal/vector"
)

// RunT1DatasetStats prints the dataset statistics table (paper Table:
// dataset properties) for the GN- and SB-profile collections at the run's
// scale.
func RunT1DatasetStats(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable("T1: dataset statistics (synthetic, paper-shaped)",
		"dataset", "objects", "unique terms", "total terms", "avg terms/obj")
	for _, p := range []dataset.Profile{dataset.GN, dataset.SB} {
		n := defaultN
		if p == dataset.SB {
			n = defaultN / 4 // SB-style collections are smaller, docs longer
		}
		col := dataset.Generate(p, dataset.Params{N: cfg.scaled(n), Seed: cfg.Seed})
		st := col.ComputeStats()
		t.add(p.String(),
			fmt.Sprint(st.Objects),
			fmt.Sprint(st.UniqueTerms),
			fmt.Sprint(st.TotalTerms),
			f2(st.AvgTermsPerObj))
	}
	t.render(cfg.Out)
	return nil
}

// RunT2IndexConstruction prints index build time and size for every tree
// variant (paper Table: index construction cost).
func RunT2IndexConstruction(cfg Config) error {
	cfg = cfg.withDefaults()
	col, _ := fixture(cfg, defaultN)
	methods, err := buildMethods(col.Objects, treeMethods, cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(fmt.Sprintf("T2: index construction (|D|=%d)", len(col.Objects)),
		"index", "build time", "nodes", "pages", "MiB")
	for _, m := range methods {
		store := m.tree.Store()
		t.add(m.name,
			m.build.Round(time.Millisecond).String(),
			fmt.Sprint(store.Len()),
			fmt.Sprint(store.TotalPages()),
			f2(float64(store.TotalBytes())/(1<<20)))
	}
	t.render(cfg.Out)
	return nil
}

// sweep runs every tree method over the query workload for each value of
// a swept parameter and returns measurements[methodIdx][valueIdx].
func sweep[T any](methods []builtMethod, queries []dataset.QueryObject, values []T,
	run func(bm *builtMethod, v T) (measurement, error)) ([][]measurement, error) {
	out := make([][]measurement, len(methods))
	for i := range methods {
		out[i] = make([]measurement, len(values))
		for j, v := range values {
			m, err := run(&methods[i], v)
			if err != nil {
				return nil, err
			}
			out[i][j] = m
		}
	}
	_ = queries
	return out, nil
}

// RunF1VaryK prints mean query time against k for every tree method
// (paper Figure: response time vs k).
func RunF1VaryK(cfg Config) error {
	return runKSweep(cfg, "F1: mean query time (ms) vs k",
		func(m measurement) string { return ms(m.Time) })
}

// RunF2PageAccess prints mean simulated page accesses against k (paper
// Figure: page accesses vs k).
func RunF2PageAccess(cfg Config) error {
	return runKSweep(cfg, "F2: mean page accesses vs k",
		func(m measurement) string { return f1(m.Pages) })
}

func runKSweep(cfg Config, title string, cell func(measurement) string) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN)
	methods, err := buildMethods(col.Objects, treeMethods, cfg.Seed)
	if err != nil {
		return err
	}
	ks := []int{1, 5, 10, 15, 20}
	res, err := sweep(methods, queries, ks, func(bm *builtMethod, k int) (measurement, error) {
		return bm.runQueries(queries, k, defaultAlpha, nil)
	})
	if err != nil {
		return err
	}
	headers := []string{"method"}
	for _, k := range ks {
		headers = append(headers, fmt.Sprintf("k=%d", k))
	}
	t := newTable(fmt.Sprintf("%s (|D|=%d, alpha=%g)", title, len(col.Objects), defaultAlpha), headers...)
	for i, m := range methods {
		row := []string{m.name}
		for j := range ks {
			row = append(row, cell(res[i][j]))
		}
		t.add(row...)
	}
	t.render(cfg.Out)
	return nil
}

// RunF3VaryAlpha prints mean query time against alpha (paper Figure:
// effect of the spatial/textual preference parameter).
func RunF3VaryAlpha(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN)
	methods, err := buildMethods(col.Objects, treeMethods, cfg.Seed)
	if err != nil {
		return err
	}
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	res, err := sweep(methods, queries, alphas, func(bm *builtMethod, a float64) (measurement, error) {
		return bm.runQueries(queries, defaultK, a, nil)
	})
	if err != nil {
		return err
	}
	headers := []string{"method"}
	for _, a := range alphas {
		headers = append(headers, fmt.Sprintf("a=%g", a))
	}
	t := newTable(fmt.Sprintf("F3: mean query time (ms) vs alpha (|D|=%d, k=%d)", len(col.Objects), defaultK), headers...)
	for i, m := range methods {
		row := []string{m.name}
		for j := range alphas {
			row = append(row, ms(res[i][j].Time))
		}
		t.add(row...)
	}
	t.render(cfg.Out)
	return nil
}

// RunF4Scalability prints query cost against dataset cardinality (paper
// Figure: scalability).
func RunF4Scalability(cfg Config) error {
	cfg = cfg.withDefaults()
	sizes := []int{defaultN / 2, defaultN, defaultN * 2, defaultN * 4}
	headers := []string{"method"}
	for _, n := range sizes {
		headers = append(headers, fmt.Sprint(cfg.scaled(n)))
	}
	tTime := newTable(fmt.Sprintf("F4a: mean query time (ms) vs |D| (k=%d, alpha=%g)", defaultK, defaultAlpha), headers...)
	tPages := newTable("F4b: mean page accesses vs |D|", headers...)
	rows := map[string][]string{}
	pageRows := map[string][]string{}
	var order []string
	for _, n := range sizes {
		col := dataset.Generate(cfg.Profile, dataset.Params{N: cfg.scaled(n), Seed: cfg.Seed})
		queries := col.Queries(cfg.Queries, cfg.Seed+1)
		methods, err := buildMethods(col.Objects, []method{treeMethods[0], treeMethods[1]}, cfg.Seed)
		if err != nil {
			return err
		}
		for i := range methods {
			m, err := methods[i].runQueries(queries, defaultK, defaultAlpha, nil)
			if err != nil {
				return err
			}
			name := methods[i].name
			if _, ok := rows[name]; !ok {
				order = append(order, name)
			}
			rows[name] = append(rows[name], ms(m.Time))
			pageRows[name] = append(pageRows[name], f1(m.Pages))
		}
	}
	for _, name := range order {
		tTime.add(append([]string{name}, rows[name]...)...)
		tPages.add(append([]string{name}, pageRows[name]...)...)
	}
	tTime.render(cfg.Out)
	tPages.render(cfg.Out)
	return nil
}

// RunF5Pruning prints the pruning effectiveness metrics (paper Figure:
// fraction of objects decided at node granularity, similarity
// computations per query).
func RunF5Pruning(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN)
	methods, err := buildMethods(col.Objects, treeMethods, cfg.Seed)
	if err != nil {
		return err
	}
	ks := []int{1, 5, 10, 15, 20}
	t := newTable(fmt.Sprintf("F5: pruning effectiveness (|D|=%d, alpha=%g)", len(col.Objects), defaultAlpha),
		"method", "k", "group-decided", "candidates", "exact sims", "bound evals", "refines")
	for i := range methods {
		for _, k := range ks {
			m, err := methods[i].runQueries(queries, k, defaultAlpha, nil)
			if err != nil {
				return err
			}
			t.add(methods[i].name, fmt.Sprint(k), pct(m.GroupFrac),
				f1(m.Candidates), f1(m.Sims), f1(m.Bounds), f1(m.Refines))
		}
	}
	t.render(cfg.Out)
	return nil
}

// RunF6Clusters prints CIUR query cost against the cluster count (paper
// Figure: effect of the number of clusters).
func RunF6Clusters(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN)
	counts := []int{4, 8, 16, 32, 64}
	t := newTable(fmt.Sprintf("F6: CIUR cost vs cluster count (|D|=%d, k=%d)", len(col.Objects), defaultK),
		"clusters", "time (ms)", "pages", "index MiB")
	for _, c := range counts {
		methods, err := buildMethods(col.Objects, []method{{name: "CIUR", clusters: c}}, cfg.Seed)
		if err != nil {
			return err
		}
		m, err := methods[0].runQueries(queries, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(c), ms(m.Time), f1(m.Pages),
			f2(float64(methods[0].tree.Store().TotalBytes())/(1<<20)))
	}
	t.render(cfg.Out)
	return nil
}

// RunF7DocLength prints query cost against document length (paper Figure:
// effect of the number of terms per object).
func RunF7DocLength(cfg Config) error {
	cfg = cfg.withDefaults()
	lengths := []int{2, 4, 8, 16, 32}
	t := newTable(fmt.Sprintf("F7: cost vs terms/object (k=%d, alpha=%g)", defaultK, defaultAlpha),
		"max terms", "IUR time (ms)", "IUR pages", "CIUR time (ms)", "CIUR pages")
	for _, L := range lengths {
		col := dataset.Generate(cfg.Profile, dataset.Params{
			N: cfg.scaled(defaultN / 2), Seed: cfg.Seed,
			MinTerms: 1, MaxTerms: L,
		})
		queries := col.Queries(cfg.Queries, cfg.Seed+1)
		methods, err := buildMethods(col.Objects, []method{treeMethods[0], treeMethods[1]}, cfg.Seed)
		if err != nil {
			return err
		}
		iur, err := methods[0].runQueries(queries, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		ciur, err := methods[1].runQueries(queries, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(L), ms(iur.Time), f1(iur.Pages), ms(ciur.Time), f1(ciur.Pages))
	}
	t.render(cfg.Out)
	return nil
}

// RunF8Baselines compares the exhaustive and precomputation baselines
// with the branch-and-bound methods on small cardinalities where the
// baselines remain feasible (paper Figure: comparison with baselines).
func RunF8Baselines(cfg Config) error {
	cfg = cfg.withDefaults()
	sizes := []int{500, 1000, 2000, 4000}
	t := newTable(fmt.Sprintf("F8: baselines vs branch-and-bound, mean query time (ms) (k=%d, alpha=%g)", defaultK, defaultAlpha),
		"|D|", "B (naive)", "P (precomp query)", "P (build, total ms)", "IUR", "CIUR")
	for _, n := range sizes {
		col := dataset.Generate(cfg.Profile, dataset.Params{N: cfg.scaled(n), Seed: cfg.Seed})
		queries := col.Queries(cfg.Queries, cfg.Seed+1)
		methods, err := buildMethods(col.Objects, []method{treeMethods[0], treeMethods[1]}, cfg.Seed)
		if err != nil {
			return err
		}
		maxD := methods[0].tree.MaxD()

		// B: per-query exhaustive scan.
		start := time.Now()
		for _, q := range queries {
			if _, err := baseline.Naive(col.Objects, core.Query{Loc: q.Loc, Doc: q.Doc},
				defaultK, defaultAlpha, maxD, nil); err != nil {
				return err
			}
		}
		naivePer := time.Duration(int64(time.Since(start)) / int64(len(queries)))

		// P: precompute once, then filter per query.
		start = time.Now()
		pre, err := baseline.BuildPrecompute(methods[0].tree, col.Objects, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		preBuild := time.Since(start)
		start = time.Now()
		for _, q := range queries {
			pre.Query(core.Query{Loc: q.Loc, Doc: q.Doc})
		}
		prePer := time.Duration(int64(time.Since(start)) / int64(len(queries)))

		iur, err := methods[0].runQueries(queries, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		ciur, err := methods[1].runQueries(queries, defaultK, defaultAlpha, nil)
		if err != nil {
			return err
		}
		t.add(fmt.Sprint(len(col.Objects)), ms(naivePer), ms(prePer),
			ms(preBuild), ms(iur.Time), ms(ciur.Time))
	}
	t.render(cfg.Out)
	return nil
}

// RunF9Measures compares the three text relevance measures the paper
// discusses: Extended Jaccard over weighted terms, cosine, and keyword
// overlap (Extended Jaccard over binary weights).
func RunF9Measures(cfg Config) error {
	cfg = cfg.withDefaults()
	col, queries := fixture(cfg, defaultN/2)
	measures := []struct {
		name   string
		sim    vector.TextSim
		binary bool
	}{
		{"EJ (weighted)", vector.EJ{}, false},
		{"cosine", vector.Cosine{}, false},
		{"keyword overlap", vector.EJ{}, true},
	}
	t := newTable(fmt.Sprintf("F9: text measures (|D|=%d, k=%d, alpha=%g)", len(col.Objects), defaultK, defaultAlpha),
		"measure", "IUR time (ms)", "pages", "mean |result|")
	for _, ms3 := range measures {
		objs := col.Objects
		qs := queries
		if ms3.binary {
			objs = binarize(col.Objects)
			qs = binarizeQueries(queries)
		}
		methods, err := buildMethods(objs, []method{{name: "IUR"}}, cfg.Seed)
		if err != nil {
			return err
		}
		m, err := methods[0].runQueries(qs, defaultK, defaultAlpha, ms3.sim)
		if err != nil {
			return err
		}
		t.add(ms3.name, ms(m.Time), f1(m.Pages), f1(m.Results))
	}
	t.render(cfg.Out)
	return nil
}

// binarize maps every document to binary weights (keyword-overlap
// semantics).
func binarize(objs []iurtree.Object) []iurtree.Object {
	out := make([]iurtree.Object, len(objs))
	for i, o := range objs {
		out[i] = iurtree.Object{ID: o.ID, Loc: o.Loc, Doc: binaryVector(o.Doc)}
	}
	return out
}

func binarizeQueries(qs []dataset.QueryObject) []dataset.QueryObject {
	out := make([]dataset.QueryObject, len(qs))
	for i, q := range qs {
		out[i] = dataset.QueryObject{Loc: q.Loc, Doc: binaryVector(q.Doc)}
	}
	return out
}

func binaryVector(v vector.Vector) vector.Vector {
	m := make(map[vector.TermID]float64, v.Len())
	for i := 0; i < v.Len(); i++ {
		m[v.Term(i)] = 1
	}
	return vector.New(m)
}
