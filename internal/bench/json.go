package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/storage"
)

// The benchmark-regression baseline: a machine-readable record of the
// query engine's cost on the F13 workload, comparing the sequential
// search against the intra-query parallel engine at several worker
// counts. `rstknn-bench -json <label>` writes BENCH_<label>.json;
// `make bench-baseline` regenerates the checked-in BENCH_baseline.json
// with a pinned seed so perf changes show up in review diffs.
//
// Wall-clock numbers are hardware-dependent (Machine records the
// environment; a 1-CPU container cannot show parallel speedup), but
// AllocsPerOp and NodesRead are deterministic for a given seed, so
// allocation and traversal regressions are comparable across machines.

// Baseline is the serialized benchmark record.
type Baseline struct {
	// Label names the record; the file is BENCH_<label>.json.
	Label string `json:"label"`
	// Schema versions the JSON layout.
	Schema int `json:"schema"`
	// Machine captures the environment the numbers came from.
	Machine BaselineMachine `json:"machine"`
	// Workload pins the benchmarked query workload.
	Workload BaselineWorkload `json:"workload"`
	// Rows holds one measurement per worker count; Workers == 1 is the
	// sequential engine every speedup is relative to.
	Rows []BaselineRow `json:"rows"`
}

// BaselineMachine describes the benchmarking environment.
type BaselineMachine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// BaselineWorkload pins every input of the measurement.
type BaselineWorkload struct {
	Profile string  `json:"profile"`
	Objects int     `json:"objects"`
	Queries int     `json:"queries"`
	K       int     `json:"k"`
	Alpha   float64 `json:"alpha"`
	Seed    int64   `json:"seed"`
	Iters   int     `json:"iters"`
}

// BaselineRow is the measurement at one worker count. NsPerOp is
// wall-clock per query; AllocsPerOp/BytesPerOp count heap allocations per
// query; NodesRead is the mean tree nodes read per query and must be
// identical across rows (the engine is deterministic in Workers).
type BaselineRow struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NodesRead   float64 `json:"nodes_read_per_query"`
	Results     float64 `json:"results_per_query"`
	Speedup     float64 `json:"speedup_vs_sequential"`
}

// RunBaseline builds the F13 workload at the config's scale and measures
// the RSTkNN engine at each worker count, iters timed passes per count
// (after one untimed warm-up pass that also verifies cross-count
// determinism). workerCounts must start with 1 or include it; speedups
// are computed against the Workers == 1 row.
func RunBaseline(cfg Config, label string, workerCounts []int, iters int) (*Baseline, error) {
	cfg = cfg.withDefaults()
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if iters <= 0 {
		iters = 1
	}
	col, queries := fixture(cfg, defaultN/2)
	methods, err := buildMethods(col.Objects, []method{treeMethods[0]}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	bm := &methods[0]

	b := &Baseline{
		Label:  label,
		Schema: 1,
		Machine: BaselineMachine{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Workload: BaselineWorkload{
			Profile: fmt.Sprint(cfg.Profile),
			Objects: len(col.Objects),
			Queries: len(queries),
			K:       defaultK,
			Alpha:   defaultAlpha,
			Seed:    cfg.Seed,
			Iters:   iters,
		},
	}

	var refSums []int64
	var seqNs int64
	for _, workers := range workerCounts {
		row, sums, err := measureWorkers(bm, queries, workers, iters)
		if err != nil {
			return nil, err
		}
		if refSums == nil {
			refSums = sums
		} else {
			for i := range sums {
				if sums[i] != refSums[i] {
					return nil, fmt.Errorf("bench: query %d result differs at %d workers — parallel engine is not deterministic", i, workers)
				}
			}
		}
		if workers == 1 {
			seqNs = row.NsPerOp
		}
		b.Rows = append(b.Rows, row)
	}
	for i := range b.Rows {
		if seqNs > 0 && b.Rows[i].NsPerOp > 0 {
			b.Rows[i].Speedup = float64(seqNs) / float64(b.Rows[i].NsPerOp)
		}
	}
	return b, nil
}

// measureWorkers times the workload at one worker count and returns the
// row plus the per-query result checksums of the warm-up pass (for the
// cross-count determinism check).
func measureWorkers(bm *builtMethod, queries []dataset.QueryObject, workers, iters int) (BaselineRow, []int64, error) {
	run := func(q dataset.QueryObject) (*core.Outcome, error) {
		var tracker storage.Tracker
		return core.RSTkNN(bm.tree, core.Query{Loc: q.Loc, Doc: q.Doc}, core.Options{
			K: defaultK, Alpha: defaultAlpha, Strategy: bm.strategy,
			Workers: workers, Tracker: &tracker,
		})
	}

	// Warm-up pass: populates scratch pools and collects the checksums
	// and work counters the timed passes are compared against.
	row := BaselineRow{Workers: workers}
	sums := make([]int64, len(queries))
	for i, q := range queries {
		out, err := run(q)
		if err != nil {
			return row, nil, err
		}
		var sum int64
		for _, id := range out.Results {
			sum = sum*1000003 + int64(id)
		}
		sums[i] = sum
		row.NodesRead += float64(out.Metrics.NodesRead)
		row.Results += float64(len(out.Results))
	}
	row.NodesRead /= float64(len(queries))
	row.Results /= float64(len(queries))

	ops := iters * len(queries)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, q := range queries {
			if _, err := run(q); err != nil {
				return row, nil, err
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	row.NsPerOp = elapsed.Nanoseconds() / int64(ops)
	row.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(ops)
	row.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(ops)
	return row, sums, nil
}

// WriteFile serializes the baseline to path as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
