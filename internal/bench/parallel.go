package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rstknn/internal/core"
	"rstknn/internal/dataset"
	"rstknn/internal/storage"
)

// F13 measures concurrent query throughput: the same workload run
// sequentially and then over a worker pool sharing one tree, exercising
// the per-query execution context (storage.Tracker) end to end. Beyond
// the speedup number, the experiment is a correctness check: the
// parallel run must produce identical result sets and identical
// per-query I/O attribution, or it fails.

func init() {
	Experiments = append(Experiments,
		Experiment{"F13", "Parallel query throughput (shared tree, per-query trackers)", RunF13Parallel},
	)
}

// queryOutcome is what one query contributes to the cross-run comparison.
type queryOutcome struct {
	checksum int64 // order-sensitive hash of the result IDs
	pages    int64 // tracker-attributed page accesses
	hits     int64 // tracker-attributed cache hits
}

// runWorkload executes the queries with `workers` goroutines (1 =
// sequential) against the shared tree and returns per-query outcomes in
// workload order plus the wall time.
func runWorkload(bm *builtMethod, queries []dataset.QueryObject, k int, alpha float64, workers int) ([]queryOutcome, time.Duration, error) {
	outcomes := make([]queryOutcome, len(queries))
	errs := make([]error, len(queries))
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				var tracker storage.Tracker
				// Workers: 1 — F13 isolates *inter*-query scaling; the
				// intra-query engine is benchmarked by RunBaseline.
				out, err := core.RSTkNN(bm.tree, core.Query{Loc: q.Loc, Doc: q.Doc}, core.Options{
					K: k, Alpha: alpha, Strategy: bm.strategy, Workers: 1, Tracker: &tracker,
				})
				if err != nil {
					errs[i] = err
					continue
				}
				var sum int64
				for _, id := range out.Results {
					sum = sum*1000003 + int64(id)
				}
				outcomes[i] = queryOutcome{
					checksum: sum,
					pages:    tracker.PagesRead(),
					hits:     tracker.CacheHits(),
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return outcomes, elapsed, nil
}

// RunF13Parallel compares sequential vs pooled execution of one workload
// over a shared tree. Results and per-query page counts must match the
// sequential run exactly; on a multi-core machine the pooled run should
// also be faster.
func RunF13Parallel(cfg Config) error {
	cfg = cfg.withDefaults()
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	col, queries := fixture(cfg, defaultN/2)
	methods, err := buildMethods(col.Objects, []method{treeMethods[0]}, cfg.Seed)
	if err != nil {
		return err
	}
	bm := &methods[0]

	seq, seqWall, err := runWorkload(bm, queries, defaultK, defaultAlpha, 1)
	if err != nil {
		return err
	}
	par, parWall, err := runWorkload(bm, queries, defaultK, defaultAlpha, workers)
	if err != nil {
		return err
	}
	var seqPages, parPages int64
	for i := range seq {
		if par[i].checksum != seq[i].checksum {
			return fmt.Errorf("F13: query %d result set differs between sequential and parallel runs", i)
		}
		if par[i].pages != seq[i].pages || par[i].hits != seq[i].hits {
			return fmt.Errorf("F13: query %d I/O attribution drifted under concurrency (seq %d+%d, par %d+%d)",
				i, seq[i].pages, seq[i].hits, par[i].pages, par[i].hits)
		}
		seqPages += seq[i].pages
		parPages += par[i].pages
	}

	qps := func(wall time.Duration) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(len(queries)) / wall.Seconds()
	}
	t := newTable(fmt.Sprintf("F13: parallel throughput (|D|=%d, k=%d, %d queries, %d workers)",
		len(col.Objects), defaultK, len(queries), workers),
		"mode", "wall (ms)", "QPS", "speedup", "pages/query")
	t.add("sequential", ms(seqWall), f1(qps(seqWall)), "1.00",
		f1(float64(seqPages)/float64(len(queries))))
	speedup := 0.0
	if parWall > 0 {
		speedup = float64(seqWall) / float64(parWall)
	}
	t.add(fmt.Sprintf("pool x%d", workers), ms(parWall), f1(qps(parWall)),
		f2(speedup), f1(float64(parPages)/float64(len(queries))))
	t.render(cfg.Out)
	return nil
}
