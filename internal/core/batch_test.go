package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/storage"
)

// TestBatchSharedMatchesIndependent is the equivalence property of the
// shared-traversal batch engine: for every tree variant and refinement
// strategy, MultiRSTkNN must reproduce N independent RSTkNN calls
// exactly — same per-query result IDs, same per-query Metrics, and
// bit-identical per-object kNN bounds — at every worker count, while
// physically reading each node at most once for the whole batch.
func TestBatchSharedMatchesIndependent(t *testing.T) {
	// The searcher clamps Workers to GOMAXPROCS, so on a 1-CPU machine
	// the multi-goroutine rounds would never spawn and the worker sweep
	// below would silently test the inline path four times. Raise the
	// cap for the duration of the test to exercise real concurrency
	// (and give -race something to bite on).
	if runtime.GOMAXPROCS(0) < 4 {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	rng := rand.New(rand.NewSource(42))
	configs := []struct {
		name        string
		clusters    int
		strategy    core.RefineStrategy
		groupRefine int
	}{
		{"iur-maxupper", 0, core.RefineByMaxUpper, 0},
		{"iur-entropy", 0, core.RefineByEntropy, 0},
		{"ciur-maxupper", 6, core.RefineByMaxUpper, 0},
		{"ciur-entropy", 6, core.RefineByEntropy, 0},
		{"iur-maxupper-refine", 0, core.RefineByMaxUpper, 2},
		{"ciur-entropy-refine", 6, core.RefineByEntropy, 2},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			objs := genObjects(rng, 220+rng.Intn(120), 40, 6)
			tree := buildTree(t, objs, cfg.clusters, false)
			const nq = 8
			queries := make([]core.Query, nq)
			ks := make([]int, nq)
			for i := range queries {
				queries[i] = genQuery(rng, 40, 6)
				ks[i] = []int{1, 3, 10}[rng.Intn(3)]
			}
			opt := func() core.Options {
				return core.Options{
					Alpha:       0.5,
					Strategy:    cfg.strategy,
					GroupRefine: cfg.groupRefine,
				}
			}

			// The independent reference: one standalone call per query.
			indep := make([]*core.Outcome, nq)
			indepRec := make([]*boundRecorder, nq)
			logical := 0
			for i := range queries {
				rec := newBoundRecorder()
				o := opt()
				o.K = ks[i]
				o.Workers = 1
				o.BoundTrace = rec.trace
				out, err := core.RSTkNN(tree, queries[i], o)
				if err != nil {
					t.Fatalf("independent query %d: %v", i, err)
				}
				indep[i] = out
				indepRec[i] = rec
				logical += out.Metrics.NodesRead
			}

			for _, workers := range []int{1, 2, 4, 8} {
				recs := make([]*boundRecorder, nq)
				trackers := make([]storage.Tracker, nq)
				items := make([]core.BatchItem, nq)
				for i := range items {
					recs[i] = newBoundRecorder()
					items[i] = core.BatchItem{
						Query:      queries[i],
						K:          ks[i],
						BoundTrace: recs[i].trace,
						Tracker:    &trackers[i],
					}
				}
				var batchTracker storage.Tracker
				o := opt()
				o.Workers = workers
				o.Tracker = &batchTracker
				mo, err := core.MultiRSTkNN(tree, items, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(mo.Outcomes) != nq {
					t.Fatalf("workers=%d: %d outcomes for %d items", workers, len(mo.Outcomes), nq)
				}
				for i := range items {
					tag := fmt.Sprintf("workers=%d query=%d k=%d", workers, i, ks[i])
					got, want := mo.Outcomes[i], indep[i]
					if !idsEqual(got.Results, want.Results) {
						t.Errorf("%s: results %v != independent %v", tag, got.Results, want.Results)
					}
					if got.Metrics != want.Metrics {
						t.Errorf("%s: metrics %+v != independent %+v", tag, got.Metrics, want.Metrics)
					}
					if got, want := trackers[i].SharedReads(), int64(mo.Outcomes[i].Metrics.NodesRead); got != want {
						t.Errorf("%s: %d shared reads, want one per logical read (%d)", tag, got, want)
					}
					if len(recs[i].bounds) != len(indepRec[i].bounds) {
						t.Errorf("%s: %d object verdicts != independent %d",
							tag, len(recs[i].bounds), len(indepRec[i].bounds))
					}
					for id, want := range indepRec[i].bounds {
						got, ok := recs[i].bounds[id]
						if !ok {
							t.Errorf("%s: object %d missing from batch verdicts", tag, id)
							continue
						}
						if got != want {
							t.Errorf("%s: object %d kNN bounds %v != independent %v", tag, id, got, want)
						}
					}
				}
				// The amortization accounting: the batch never fetches a
				// node twice, every logical read beyond the first fetch is
				// a shared hit, and the batch tracker carries exactly the
				// physical fetches.
				if mo.Batch.NodesRead > logical {
					t.Errorf("workers=%d: %d physical reads exceed %d logical", workers, mo.Batch.NodesRead, logical)
				}
				if mo.Batch.SharedHits != logical-mo.Batch.NodesRead {
					t.Errorf("workers=%d: SharedHits %d != logical %d - physical %d",
						workers, mo.Batch.SharedHits, logical, mo.Batch.NodesRead)
				}
				if mo.Batch.SharedHits <= 0 {
					t.Errorf("workers=%d: no shared hits across %d overlapping queries", workers, nq)
				}
				phys := batchTracker.Reads() + batchTracker.CacheHits()
				if phys != int64(mo.Batch.NodesRead) {
					t.Errorf("workers=%d: batch tracker saw %d reads, table counted %d",
						workers, phys, mo.Batch.NodesRead)
				}
			}
		})
	}
}

// TestMultiRSTkNNValidation pins the input checks: a non-positive
// per-item K and an out-of-range Alpha must fail the whole batch.
func TestMultiRSTkNNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := genObjects(rng, 40, 20, 4)
	tree := buildTree(t, objs, 0, false)
	q := genQuery(rng, 20, 4)
	if _, err := core.MultiRSTkNN(tree, []core.BatchItem{{Query: q, K: 3}, {Query: q, K: 0}},
		core.Options{Alpha: 0.5}); err == nil {
		t.Error("K=0 item accepted")
	}
	if _, err := core.MultiRSTkNN(tree, []core.BatchItem{{Query: q, K: 3}},
		core.Options{Alpha: 1.5}); err == nil {
		t.Error("Alpha=1.5 accepted")
	}
}

// TestMultiRSTkNNEdgeTrees pins the degenerate shapes: an empty batch, an
// empty tree, and the single-object tree (whose sole object is always a
// result, for every query of the batch, at one physical read total).
func TestMultiRSTkNNEdgeTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := genObjects(rng, 40, 20, 4)
	tree := buildTree(t, objs, 0, false)
	mo, err := core.MultiRSTkNN(tree, nil, core.Options{Alpha: 0.5})
	if err != nil || len(mo.Outcomes) != 0 {
		t.Fatalf("empty batch: outcomes=%d err=%v", len(mo.Outcomes), err)
	}

	single := buildTree(t, objs[:1], 0, false)
	var batchTracker storage.Tracker
	items := []core.BatchItem{
		{Query: genQuery(rng, 20, 4), K: 2},
		{Query: genQuery(rng, 20, 4), K: 5},
	}
	mo, err = core.MultiRSTkNN(single, items, core.Options{Alpha: 0.5, Tracker: &batchTracker})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range mo.Outcomes {
		if len(o.Results) != 1 || o.Results[0] != objs[0].ID {
			t.Errorf("query %d: results %v, want [%d]", i, o.Results, objs[0].ID)
		}
		if o.Metrics.NodesRead != 1 || o.Metrics.Candidates != 1 {
			t.Errorf("query %d: metrics %+v, want one read and one candidate", i, o.Metrics)
		}
	}
	if mo.Batch.NodesRead != 1 || mo.Batch.SharedHits != 1 {
		t.Errorf("single-object batch metrics %+v, want 1 physical read and 1 shared hit", mo.Batch)
	}
}

// TestMultiRSTkNNCancellation pins fail-fast on a done context.
func TestMultiRSTkNNCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	objs := genObjects(rng, 60, 20, 4)
	tree := buildTree(t, objs, 0, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.MultiRSTkNN(tree, []core.BatchItem{{Query: genQuery(rng, 20, 4), K: 3}},
		core.Options{Alpha: 0.5, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
