package core_test

import (
	"math/rand"
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/vector"
)

func TestCountExceedingMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	objs := genObjects(rng, 300, 25, 5)
	tree := buildTree(t, objs, 0, false)
	sc := core.NewScorer(0.5, tree.MaxD(), nil)
	for trial := 0; trial < 20; trial++ {
		q := genQuery(rng, 25, 5)
		// Pick a threshold near the similarity distribution.
		ref := objs[rng.Intn(len(objs))]
		threshold := sc.Exact(ref.Loc, ref.Doc, q.Loc, q.Doc)
		want := 0
		for i := range objs {
			if sc.Exact(objs[i].Loc, objs[i].Doc, q.Loc, q.Doc) > threshold {
				want++
			}
		}
		got, _, err := core.CountExceeding(tree, q, threshold, len(objs)+1, core.BichromaticOptions{Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: CountExceeding = %d, want %d", trial, got, want)
		}
		// With a limit, the count caps.
		if want > 2 {
			capped, _, err := core.CountExceeding(tree, q, threshold, 2, core.BichromaticOptions{Alpha: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if capped != 2 {
				t.Fatalf("trial %d: capped count = %d, want 2", trial, capped)
			}
		}
	}
}

func TestCountExceedingEdges(t *testing.T) {
	tree := buildTree(t, genObjects(rand.New(rand.NewSource(1)), 50, 10, 3), 0, false)
	if n, _, err := core.CountExceeding(tree, core.Query{}, 0, 0, core.BichromaticOptions{Alpha: 0.5}); err != nil || n != 0 {
		t.Errorf("limit 0: %d, %v", n, err)
	}
	if _, _, err := core.CountExceeding(tree, core.Query{}, 0, 1, core.BichromaticOptions{Alpha: 9}); err == nil {
		t.Error("bad alpha should fail")
	}
	empty := buildTree(t, nil, 0, false)
	if n, _, err := core.CountExceeding(empty, core.Query{}, 0, 5, core.BichromaticOptions{Alpha: 0.5}); err != nil || n != 0 {
		t.Errorf("empty tree: %d, %v", n, err)
	}
	// Threshold above max similarity: nothing exceeds it.
	if n, _, err := core.CountExceeding(tree, core.Query{}, 2, 5, core.BichromaticOptions{Alpha: 0.5}); err != nil || n != 0 {
		t.Errorf("threshold 2: %d, %v", n, err)
	}
}

// TestBichromaticMatchesBrute checks the bichromatic extension against a
// per-user exhaustive computation: u is influenced iff fewer than k
// facilities are strictly more similar to u than the query.
func TestBichromaticMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	facilities := genObjects(rng, 250, 25, 5)
	users := genObjects(rng, 80, 25, 5)
	tree := buildTree(t, facilities, 0, false)
	sc := core.NewScorer(0.4, tree.MaxD(), nil)
	for _, k := range []int{1, 3, 8} {
		q := genQuery(rng, 25, 5)
		var want []int32
		for i := range users {
			u := &users[i]
			s0 := sc.Exact(u.Loc, u.Doc, q.Loc, q.Doc)
			better := 0
			for j := range facilities {
				f := &facilities[j]
				if sc.Exact(u.Loc, u.Doc, f.Loc, f.Doc) > s0 {
					better++
				}
			}
			if better < k {
				want = append(want, u.ID)
			}
		}
		got, err := core.BichromaticRSTkNN(tree, users, q, core.BichromaticOptions{K: k, Alpha: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(got.UserIDs, want) {
			t.Fatalf("k=%d: got %v, want %v", k, got.UserIDs, want)
		}
		if got.Metrics.ExactSims == 0 {
			t.Error("metrics should record work")
		}
	}
}

func TestBichromaticValidation(t *testing.T) {
	tree := buildTree(t, genObjects(rand.New(rand.NewSource(2)), 20, 10, 3), 0, false)
	if _, err := core.BichromaticRSTkNN(tree, nil, core.Query{}, core.BichromaticOptions{K: 0, Alpha: 0.5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := core.BichromaticRSTkNN(tree, nil, core.Query{}, core.BichromaticOptions{K: 1, Alpha: -1}); err == nil {
		t.Error("bad alpha should fail")
	}
	got, err := core.BichromaticRSTkNN(tree, nil, core.Query{}, core.BichromaticOptions{K: 1, Alpha: 0.5})
	if err != nil || len(got.UserIDs) != 0 {
		t.Errorf("no users: %v, %v", got, err)
	}
}

func TestBichromaticKLargerThanFacilities(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	facilities := genObjects(rng, 5, 10, 3)
	users := genObjects(rng, 10, 10, 3)
	tree := buildTree(t, facilities, 0, false)
	got, err := core.BichromaticRSTkNN(tree, users, genQuery(rng, 10, 3),
		core.BichromaticOptions{K: 20, Alpha: 0.5, Sim: vector.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.UserIDs) != len(users) {
		t.Errorf("k > |facilities| should influence all users; got %d", len(got.UserIDs))
	}
}
