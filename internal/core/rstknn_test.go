package core_test

import (
	"math/rand"
	"testing"

	"rstknn/internal/baseline"
	"rstknn/internal/cluster"
	"rstknn/internal/core"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// genObjects builds a random spatial-textual dataset: Gaussian spatial
// clusters and Zipf-ish term draws from a vocabulary, mimicking the shape
// of the paper's collections at test scale.
func genObjects(rng *rand.Rand, n, vocab, maxTerms int) []iurtree.Object {
	objs := make([]iurtree.Object, n)
	// A handful of spatial cluster centers.
	centers := make([]geom.Point, 5)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	for i := range objs {
		c := centers[rng.Intn(len(centers))]
		loc := geom.Point{
			X: c.X + rng.NormFloat64()*8,
			Y: c.Y + rng.NormFloat64()*8,
		}
		m := make(map[vector.TermID]float64)
		nt := 1 + rng.Intn(maxTerms)
		for j := 0; j < nt; j++ {
			// Skewed term distribution: low IDs are common.
			t := vector.TermID(int(float64(vocab) * rng.Float64() * rng.Float64()))
			m[t] = 0.5 + rng.Float64()*2
		}
		objs[i] = iurtree.Object{ID: int32(i), Loc: loc, Doc: vector.New(m)}
	}
	return objs
}

func genQuery(rng *rand.Rand, vocab, maxTerms int) core.Query {
	m := make(map[vector.TermID]float64)
	for j := 0; j < 1+rng.Intn(maxTerms); j++ {
		m[vector.TermID(rng.Intn(vocab))] = 0.5 + rng.Float64()*2
	}
	return core.Query{
		Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		Doc: vector.New(m),
	}
}

func buildTree(t *testing.T, objs []iurtree.Object, clusters int, incremental bool) *iurtree.Snapshot {
	t.Helper()
	cfg := iurtree.Config{Store: storage.NewStore(), Incremental: incremental}
	if clusters > 0 {
		docs := make([]vector.Vector, len(objs))
		for i, o := range objs {
			docs[i] = o.Doc
		}
		cfg.Clustering = cluster.Run(docs, cluster.Config{K: clusters, Seed: 7, OutlierThreshold: 0.1})
	}
	tr, err := iurtree.Build(objs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRSTkNNMatchesNaive is the central correctness test of the
// repository: across dataset shapes, alphas, ks, similarity measures,
// tree variants, and refinement strategies, the branch-and-bound search
// must return exactly the oracle's answer.
func TestRSTkNNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	configs := []struct {
		name     string
		clusters int
		incr     bool
		strategy core.RefineStrategy
		group    int
		eager    bool
	}{
		{"iur", 0, false, core.RefineByMaxUpper, 0, false},
		{"iur-incremental", 0, true, core.RefineByMaxUpper, 0, false},
		{"iur-group-refine", 0, false, core.RefineByMaxUpper, 2, false},
		{"iur-eager", 0, false, core.RefineByMaxUpper, 0, true},
		{"ciur", 6, false, core.RefineByMaxUpper, 0, false},
		{"ciur-entropy", 6, false, core.RefineByEntropy, 0, false},
		{"ciur-entropy-group", 6, false, core.RefineByEntropy, 3, false},
		{"ciur-eager", 6, false, core.RefineByMaxUpper, 0, true},
	}
	sims := []vector.TextSim{vector.EJ{}, vector.Cosine{}}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			objs := genObjects(rng, 180+rng.Intn(120), 40, 6)
			tree := buildTree(t, objs, cfg.clusters, cfg.incr)
			for trial := 0; trial < 6; trial++ {
				k := []int{1, 2, 5, 10}[rng.Intn(4)]
				alpha := []float64{0, 0.1, 0.5, 0.9, 1}[rng.Intn(5)]
				sim := sims[rng.Intn(len(sims))]
				q := genQuery(rng, 40, 6)
				want, err := baseline.Naive(objs, q, k, alpha, tree.MaxD(), sim)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.RSTkNN(tree, q, core.Options{
					K: k, Alpha: alpha, Sim: sim,
					Strategy: cfg.strategy, GroupRefine: cfg.group,
					EagerBounds: cfg.eager,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(got.Results, want) {
					t.Fatalf("trial %d (k=%d alpha=%g sim=%s): got %d results %v, want %d %v",
						trial, k, alpha, sim.Name(), len(got.Results), got.Results, len(want), want)
				}
			}
		})
	}
}

func TestRSTkNNSmallDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 5, 8} {
		objs := genObjects(rng, n, 10, 3)
		tree := buildTree(t, objs, 0, false)
		for _, k := range []int{1, 2, 5} {
			q := genQuery(rng, 10, 3)
			want, err := baseline.Naive(objs, q, k, 0.5, tree.MaxD(), nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.RSTkNN(tree, q, core.Options{K: k, Alpha: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if !idsEqual(got.Results, want) {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got.Results, want)
			}
			// When k >= n, every object lacks a k-th neighbor and must be
			// reported.
			if k >= n && len(got.Results) != n {
				t.Fatalf("n=%d k=%d: expected all objects, got %d", n, k, len(got.Results))
			}
		}
	}
}

func TestRSTkNNEmptyTree(t *testing.T) {
	tree := buildTree(t, nil, 0, false)
	got, err := core.RSTkNN(tree, core.Query{}, core.Options{K: 3, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 0 {
		t.Errorf("empty tree returned %v", got.Results)
	}
}

func TestRSTkNNValidation(t *testing.T) {
	tree := buildTree(t, genObjects(rand.New(rand.NewSource(1)), 10, 10, 3), 0, false)
	if _, err := core.RSTkNN(tree, core.Query{}, core.Options{K: 0, Alpha: 0.5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := core.RSTkNN(tree, core.Query{}, core.Options{K: 1, Alpha: 1.5}); err == nil {
		t.Error("alpha out of range should fail")
	}
	if _, err := core.RSTkNN(tree, core.Query{}, core.Options{K: 1, Alpha: -0.1}); err == nil {
		t.Error("negative alpha should fail")
	}
}

func TestRSTkNNQueryIdenticalToObject(t *testing.T) {
	// The query coincides exactly with an indexed object: it must then be
	// in that object's top-k for any k (similarity 1 to itself... to the
	// co-located twin), and results still match the oracle.
	rng := rand.New(rand.NewSource(11))
	objs := genObjects(rng, 100, 20, 4)
	tree := buildTree(t, objs, 0, false)
	q := core.Query{Loc: objs[7].Loc, Doc: objs[7].Doc}
	want, err := baseline.Naive(objs, q, 3, 0.5, tree.MaxD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RSTkNN(tree, q, core.Options{K: 3, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !idsEqual(got.Results, want) {
		t.Fatalf("got %v, want %v", got.Results, want)
	}
	// The twin object itself must be a result: the query ties its
	// similarity-1 self-comparison.
	found := false
	for _, id := range got.Results {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Error("co-located identical object should be a result")
	}
}

func TestRSTkNNExtremeAlphas(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objs := genObjects(rng, 150, 25, 5)
	for _, clusters := range []int{0, 5} {
		tree := buildTree(t, objs, clusters, false)
		for _, alpha := range []float64{0, 1} {
			for trial := 0; trial < 3; trial++ {
				q := genQuery(rng, 25, 5)
				want, err := baseline.Naive(objs, q, 5, alpha, tree.MaxD(), nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.RSTkNN(tree, q, core.Options{K: 5, Alpha: alpha})
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(got.Results, want) {
					t.Fatalf("clusters=%d alpha=%g: got %v, want %v", clusters, alpha, got.Results, want)
				}
			}
		}
	}
}

func TestRSTkNNEmptyQueryDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objs := genObjects(rng, 120, 20, 4)
	tree := buildTree(t, objs, 4, false)
	q := core.Query{Loc: geom.Point{X: 50, Y: 50}} // no keywords at all
	want, err := baseline.Naive(objs, q, 4, 0.3, tree.MaxD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RSTkNN(tree, q, core.Options{K: 4, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !idsEqual(got.Results, want) {
		t.Fatalf("got %v, want %v", got.Results, want)
	}
}

func TestRSTkNNQueryFarOutsideSpace(t *testing.T) {
	// A query far outside the dataspace: spatial similarities to it go
	// negative (dist > maxD), which the algorithm must handle gracefully.
	rng := rand.New(rand.NewSource(19))
	objs := genObjects(rng, 100, 20, 4)
	tree := buildTree(t, objs, 0, false)
	q := genQuery(rng, 20, 4)
	q.Loc = geom.Point{X: 1e4, Y: -1e4}
	want, err := baseline.Naive(objs, q, 3, 0.7, tree.MaxD(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RSTkNN(tree, q, core.Options{K: 3, Alpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if !idsEqual(got.Results, want) {
		t.Fatalf("got %v, want %v", got.Results, want)
	}
}

func TestMetricsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	objs := genObjects(rng, 300, 30, 5)
	tree := buildTree(t, objs, 0, false)
	store := tree.Store()
	store.ResetStats()
	got, err := core.RSTkNN(tree, genQuery(rng, 30, 5), core.Options{K: 5, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m := got.Metrics
	if m.NodesRead <= 0 || m.ExactSims <= 0 || m.BoundEvals <= 0 {
		t.Errorf("metrics look empty: %+v", m)
	}
	st := store.Stats()
	if st.Reads != int64(m.NodesRead) {
		t.Errorf("store reads %d != NodesRead %d", st.Reads, m.NodesRead)
	}
	// Every object is accounted for exactly once: group-pruned,
	// group-reported, or individually examined.
	if m.GroupPruned+m.GroupReported+m.Candidates != len(objs) {
		t.Errorf("accounting mismatch: %d + %d + %d != %d",
			m.GroupPruned, m.GroupReported, m.Candidates, len(objs))
	}
}

// TestRSTkNNAfterDynamicUpdates verifies the search remains exact on a
// tree mutated after sealing: build on half the objects, insert the
// rest, delete a slice, then compare against the oracle over the final
// object set.
func TestRSTkNNAfterDynamicUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	objs := genObjects(rng, 260, 30, 5)
	tree := buildTree(t, objs[:130], 0, false)
	for _, o := range objs[130:] {
		next, _, err := tree.Insert(o, nil)
		if err != nil {
			t.Fatal(err)
		}
		tree = next
	}
	final := append([]iurtree.Object(nil), objs...)
	// Delete every 7th object.
	var kept []iurtree.Object
	for i, o := range final {
		if i%7 == 0 {
			next, _, ok, err := tree.Delete(o.ID, o.Loc, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("Delete(%d) not found", o.ID)
			}
			tree = next
			continue
		}
		kept = append(kept, o)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		k := []int{1, 3, 8}[rng.Intn(3)]
		alpha := []float64{0.2, 0.5, 0.8}[rng.Intn(3)]
		q := genQuery(rng, 30, 5)
		want, err := baseline.Naive(kept, q, k, alpha, tree.MaxD(), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.RSTkNN(tree, q, core.Options{K: k, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(got.Results, want) {
			t.Fatalf("trial %d (k=%d alpha=%g): got %v, want %v",
				trial, k, alpha, got.Results, want)
		}
	}
}
