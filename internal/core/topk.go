package core

import (
	"context"
	"fmt"
	"sort"

	"rstknn/internal/iurtree"
	"rstknn/internal/pq"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Neighbor is one result of a spatial-textual top-k search.
type Neighbor struct {
	ID  int32
	Sim float64
}

// TopKOptions configure a top-k SimST search.
type TopKOptions struct {
	K     int
	Alpha float64
	Sim   vector.TextSim
	// Exclude drops one object ID from consideration; used to compute an
	// indexed object's k-th NN among the *other* objects. Set to a
	// negative value to exclude nothing.
	Exclude int32
	// Ctx, when non-nil, cancels the search: it is checked before every
	// node read and the search aborts with ctx.Err().
	Ctx context.Context
	// Tracker, when non-nil, receives the query's simulated I/O charges
	// for exact per-query accounting under concurrency.
	Tracker *storage.Tracker
}

// TopK returns the k indexed objects most similar to the query under
// SimST, best-first over the tree using the query upper bound MaxST as
// priority — the standard spatial-textual top-k search the paper's
// precomputation baseline relies on. Results are sorted by descending
// similarity (ties by ascending ID). The returned metrics count node
// reads and similarity evaluations.
func TopK(t *iurtree.Snapshot, q Query, opt TopKOptions) ([]Neighbor, Metrics, error) {
	var m Metrics
	if opt.K <= 0 {
		return nil, m, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, m, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	if t.Len() == 0 {
		return nil, m, nil
	}
	sc := NewScorer(opt.Alpha, t.MaxD(), opt.Sim)
	top := pq.NewTopK[Neighbor](opt.K)

	frontier := pq.NewMax[iurtree.Entry]()
	root := t.RootEntry()
	frontier.Push(root, sc.queryBounds(sideOf(&root), &q).hi)

	for !frontier.Empty() {
		e, hi := frontier.Pop()
		if top.Full() && hi < top.Threshold() {
			break // no remaining entry can improve the result
		}
		if e.IsObject() {
			if e.ObjID == opt.Exclude {
				continue
			}
			top.Offer(Neighbor{ID: e.ObjID, Sim: hi}, hi)
			continue
		}
		if err := checkCtx(opt.Ctx); err != nil {
			return nil, m, err
		}
		node, err := t.ReadNodeTracked(e.Child, opt.Tracker)
		if err != nil {
			return nil, m, err
		}
		m.NodesRead++
		for i := range node.Entries {
			child := &node.Entries[i]
			b := sc.queryBounds(sideOf(child), &q)
			if top.Full() && b.hi < top.Threshold() {
				continue
			}
			frontier.Push(*child, b.hi)
		}
	}
	vs, _ := top.Drain()
	sort.Slice(vs, func(i, j int) bool {
		//rstknn:allow floatcmp sort comparator needs a strict weak order; epsilon ties would break transitivity
		if vs[i].Sim != vs[j].Sim {
			return vs[i].Sim > vs[j].Sim
		}
		return vs[i].ID < vs[j].ID
	})
	m.ExactSims = sc.ExactCount
	m.BoundEvals = sc.BoundCount
	return vs, m, nil
}

// KthSimilarity returns the similarity of the query's k-th most similar
// indexed object (excluding `exclude`), or -Inf when fewer than k other
// objects exist. This is the threshold the reverse query compares
// against: o is an RSTkNN result iff SimST(o, q) >= KthSimilarity(o).
func KthSimilarity(t *iurtree.Snapshot, q Query, opt TopKOptions) (float64, Metrics, error) {
	nbs, m, err := TopK(t, q, opt)
	if err != nil {
		return 0, m, err
	}
	if len(nbs) < opt.K {
		return negInf, m, nil
	}
	return nbs[opt.K-1].Sim, m, nil
}
