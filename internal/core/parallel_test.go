package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
)

// boundRecorder collects the final kNN bounds of every object-level
// verdict via Options.BoundTrace, locked because the parallel engine
// fires the hook from multiple workers.
type boundRecorder struct {
	mu     sync.Mutex
	bounds map[int32][2]float64
}

func newBoundRecorder() *boundRecorder {
	return &boundRecorder{bounds: make(map[int32][2]float64)}
}

func (r *boundRecorder) trace(objID int32, knnl, knnu float64) {
	r.mu.Lock()
	r.bounds[objID] = [2]float64{knnl, knnu}
	r.mu.Unlock()
}

// TestBichromaticParallelMatchesSequential pins the same property for
// the bichromatic per-user fan-out: influenced-user sets and summed
// Metrics are identical at every worker count.
func TestBichromaticParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	facilities := genObjects(rng, 250, 25, 5)
	users := genObjects(rng, 90, 25, 5)
	tree := buildTree(t, facilities, 0, false)
	for _, k := range []int{1, 3, 8} {
		q := genQuery(rng, 25, 5)
		run := func(workers int) *core.BichromaticOutcome {
			got, err := core.BichromaticRSTkNN(tree, users, q, core.BichromaticOptions{
				K: k, Alpha: 0.4, Workers: workers,
			})
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			return got
		}
		seq := run(1)
		for _, workers := range []int{2, 4, 8} {
			par := run(workers)
			if !idsEqual(par.UserIDs, seq.UserIDs) {
				t.Errorf("k=%d workers=%d: users %v != sequential %v",
					k, workers, par.UserIDs, seq.UserIDs)
			}
			if par.Metrics != seq.Metrics {
				t.Errorf("k=%d workers=%d: metrics %+v != sequential %+v",
					k, workers, par.Metrics, seq.Metrics)
			}
		}
	}
}

// TestBoundCacheMatchesEagerDecode pins the zero-copy read path's
// equivalence ablation: with the bound cache disabled every node visit
// decodes eagerly, and the outcome — result IDs, Metrics, and
// bit-identical per-object kNN bounds — must not change, sequentially or
// across the worker pool. (Simulated I/O parity is inherent: bound cache
// hits never skip the page charge, see Metrics.NodesRead equality.)
func TestBoundCacheMatchesEagerDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, clusters := range []int{0, 6} {
		objs := genObjects(rng, 220, 40, 6)
		tree := buildTree(t, objs, clusters, false)
		for trial := 0; trial < 3; trial++ {
			k := []int{1, 3, 10}[rng.Intn(3)]
			q := genQuery(rng, 40, 6)
			run := func(workers int) (*core.Outcome, *boundRecorder) {
				rec := newBoundRecorder()
				out, err := core.RSTkNN(tree, q, core.Options{
					K: k, Alpha: 0.5, Workers: workers, BoundTrace: rec.trace,
				})
				if err != nil {
					t.Fatal(err)
				}
				return out, rec
			}
			cached, cachedRec := run(1)
			cachedPar, _ := run(4)
			tree.SetBoundCache(0)
			eager, eagerRec := run(1)
			tree.SetBoundCache(iurtree.DefaultBoundCacheNodes)

			tag := fmt.Sprintf("clusters=%d trial=%d k=%d", clusters, trial, k)
			if !idsEqual(cached.Results, eager.Results) || !idsEqual(cachedPar.Results, eager.Results) {
				t.Errorf("%s: results differ between cached and eager decode", tag)
			}
			if cached.Metrics != eager.Metrics {
				t.Errorf("%s: metrics %+v != eager %+v", tag, cached.Metrics, eager.Metrics)
			}
			if len(cachedRec.bounds) != len(eagerRec.bounds) {
				t.Errorf("%s: %d verdicts != eager %d", tag, len(cachedRec.bounds), len(eagerRec.bounds))
			}
			for id, want := range eagerRec.bounds {
				if got, ok := cachedRec.bounds[id]; !ok || got != want {
					t.Errorf("%s: object %d bounds %v != eager %v", tag, id, got, want)
				}
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism property test for the
// intra-query parallel engine: for random datasets across tree variants,
// refinement strategies, k, and alpha, the parallel search at every
// worker count must reproduce the sequential run exactly — same result
// IDs, same Metrics, and bit-identical per-object kNN bounds.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	configs := []struct {
		name     string
		clusters int
		strategy core.RefineStrategy
		// mutated routes half the dataset through the copy-on-write
		// Insert/Delete path instead of the static bulk load, so the
		// determinism property is pinned on write-path snapshots too.
		mutated bool
	}{
		{"iur-maxupper", 0, core.RefineByMaxUpper, false},
		{"iur-entropy", 0, core.RefineByEntropy, false},
		{"ciur-maxupper", 6, core.RefineByMaxUpper, false},
		{"ciur-entropy", 6, core.RefineByEntropy, false},
		{"iur-maxupper-cow", 0, core.RefineByMaxUpper, true},
		{"iur-entropy-cow", 0, core.RefineByEntropy, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			objs := genObjects(rng, 200+rng.Intn(150), 40, 6)
			var tree *iurtree.Snapshot
			if cfg.mutated {
				tree = buildTree(t, objs[:len(objs)/2], cfg.clusters, false)
				for _, o := range objs[len(objs)/2:] {
					next, _, err := tree.Insert(o, nil)
					if err != nil {
						t.Fatal(err)
					}
					tree = next
				}
				for i := 0; i < len(objs); i += 9 {
					next, _, ok, err := tree.Delete(objs[i].ID, objs[i].Loc, nil)
					if err != nil || !ok {
						t.Fatalf("Delete(%d): ok=%v err=%v", objs[i].ID, ok, err)
					}
					tree = next
				}
			} else {
				tree = buildTree(t, objs, cfg.clusters, false)
			}
			for trial := 0; trial < 4; trial++ {
				k := []int{1, 3, 10}[rng.Intn(3)]
				alpha := []float64{0, 0.5, 1}[rng.Intn(3)]
				q := genQuery(rng, 40, 6)

				run := func(workers int) (*core.Outcome, *boundRecorder) {
					rec := newBoundRecorder()
					var tracker storage.Tracker
					out, err := core.RSTkNN(tree, q, core.Options{
						K: k, Alpha: alpha, Strategy: cfg.strategy,
						Workers: workers, Tracker: &tracker,
						BoundTrace: rec.trace,
					})
					if err != nil {
						t.Fatalf("workers=%d k=%d alpha=%g: %v", workers, k, alpha, err)
					}
					return out, rec
				}

				seq, seqRec := run(1)
				for _, workers := range []int{2, 4, 8} {
					par, parRec := run(workers)
					tag := fmt.Sprintf("trial %d k=%d alpha=%g workers=%d", trial, k, alpha, workers)
					if !idsEqual(par.Results, seq.Results) {
						t.Errorf("%s: results %v != sequential %v", tag, par.Results, seq.Results)
					}
					if par.Metrics != seq.Metrics {
						t.Errorf("%s: metrics %+v != sequential %+v", tag, par.Metrics, seq.Metrics)
					}
					if len(parRec.bounds) != len(seqRec.bounds) {
						t.Errorf("%s: %d object verdicts != sequential %d",
							tag, len(parRec.bounds), len(seqRec.bounds))
					}
					for id, want := range seqRec.bounds {
						got, ok := parRec.bounds[id]
						if !ok {
							t.Errorf("%s: object %d missing from parallel verdicts", tag, id)
							continue
						}
						if got != want {
							t.Errorf("%s: object %d kNN bounds %v != sequential %v", tag, id, got, want)
						}
					}
				}
			}
		})
	}
}
