package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/iurtree"
	"rstknn/internal/vector"
)

// bruteTopK computes the top-k by exhaustive scan, mirroring TopK's
// semantics (ties by ascending ID, optional exclusion).
func bruteTopK(objs []iurtree.Object, q core.Query, k int, alpha, maxD float64, sim vector.TextSim, exclude int32) []core.Neighbor {
	sc := core.NewScorer(alpha, maxD, sim)
	out := make([]core.Neighbor, 0, len(objs))
	for i := range objs {
		if objs[i].ID == exclude {
			continue
		}
		out = append(out, core.Neighbor{
			ID:  objs[i].ID,
			Sim: sc.Exact(objs[i].Loc, objs[i].Doc, q.Loc, q.Doc),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestTopKMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, clusters := range []int{0, 5} {
		objs := genObjects(rng, 400, 30, 5)
		tree := buildTree(t, objs, clusters, false)
		for trial := 0; trial < 15; trial++ {
			k := 1 + rng.Intn(12)
			alpha := rng.Float64()
			q := genQuery(rng, 30, 5)
			got, _, err := core.TopK(tree, q, core.TopKOptions{K: k, Alpha: alpha, Exclude: -1})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(objs, q, k, alpha, tree.MaxD(), vector.EJ{}, -1)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
			}
			for i := range got {
				// Similarities must match exactly; IDs may differ only on
				// exact similarity ties.
				if got[i].Sim != want[i].Sim {
					t.Fatalf("trial %d rank %d: sim %g, want %g", trial, i, got[i].Sim, want[i].Sim)
				}
			}
		}
	}
}

func TestTopKExclude(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	objs := genObjects(rng, 100, 20, 4)
	tree := buildTree(t, objs, 0, false)
	o := objs[5]
	q := core.Query{Loc: o.Loc, Doc: o.Doc}
	got, _, err := core.TopK(tree, q, core.TopKOptions{K: 3, Alpha: 0.5, Exclude: o.ID})
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range got {
		if nb.ID == o.ID {
			t.Fatal("excluded object appeared in results")
		}
	}
	want := bruteTopK(objs, q, 3, 0.5, tree.MaxD(), vector.EJ{}, o.ID)
	for i := range got {
		if got[i].Sim != want[i].Sim {
			t.Fatalf("rank %d: sim %g, want %g", i, got[i].Sim, want[i].Sim)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	objs := genObjects(rng, 4, 10, 3)
	tree := buildTree(t, objs, 0, false)
	got, _, err := core.TopK(tree, genQuery(rng, 10, 3), core.TopKOptions{K: 10, Alpha: 0.5, Exclude: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("got %d results, want all 4", len(got))
	}
}

func TestTopKEmptyTreeAndValidation(t *testing.T) {
	tree := buildTree(t, nil, 0, false)
	got, _, err := core.TopK(tree, core.Query{}, core.TopKOptions{K: 3, Alpha: 0.5, Exclude: -1})
	if err != nil || len(got) != 0 {
		t.Errorf("empty tree: %v, %v", got, err)
	}
	small := buildTree(t, genObjects(rand.New(rand.NewSource(2)), 5, 10, 3), 0, false)
	if _, _, err := core.TopK(small, core.Query{}, core.TopKOptions{K: 0, Alpha: 0.5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, _, err := core.TopK(small, core.Query{}, core.TopKOptions{K: 1, Alpha: 2}); err == nil {
		t.Error("bad alpha should fail")
	}
}

func TestKthSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	objs := genObjects(rng, 50, 15, 4)
	tree := buildTree(t, objs, 0, false)
	q := genQuery(rng, 15, 4)
	kth, _, err := core.KthSimilarity(tree, q, core.TopKOptions{K: 5, Alpha: 0.5, Exclude: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTopK(objs, q, 5, 0.5, tree.MaxD(), vector.EJ{}, -1)[4].Sim
	if kth != want {
		t.Errorf("KthSimilarity = %g, want %g", kth, want)
	}
	// Fewer than k objects: -Inf.
	tiny := buildTree(t, genObjects(rng, 3, 10, 3), 0, false)
	kth, _, err = core.KthSimilarity(tiny, q, core.TopKOptions{K: 5, Alpha: 0.5, Exclude: -1})
	if err != nil {
		t.Fatal(err)
	}
	if kth > -1e308 {
		t.Errorf("KthSimilarity with < k objects = %g, want -Inf", kth)
	}
}

func TestTopKPrunesNodes(t *testing.T) {
	// The best-first search must read far fewer nodes than the whole tree
	// on a spatially selective query.
	rng := rand.New(rand.NewSource(39))
	objs := genObjects(rng, 3000, 50, 5)
	tree := buildTree(t, objs, 0, false)
	totalNodes := 0
	if err := tree.Walk(func(n *iurtree.Node, depth int) error {
		totalNodes++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	q := core.Query{Loc: objs[0].Loc, Doc: objs[0].Doc}
	_, m, err := core.TopK(tree, q, core.TopKOptions{K: 5, Alpha: 0.9, Exclude: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NodesRead >= totalNodes/2 {
		t.Errorf("TopK read %d of %d nodes; expected strong pruning", m.NodesRead, totalNodes)
	}
}
