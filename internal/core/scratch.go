package core

import (
	"sync"

	"rstknn/internal/iurtree"
)

// The branch-and-bound hot path evaluates bounds for every (candidate,
// contributor) pair it touches; done naively that is one short-lived
// []part per evaluation plus selector state per pruning check, and the
// allocator dominates the profile. A scratch bundles every reusable
// buffer one worker needs so the steady-state scoring path allocates
// nothing: kthSelector heaps, arena-carved part and contributor slices,
// and the transient buffers of refinement and expansion. Scratches are
// pooled across queries; each query checks one out per worker and
// returns them all when it finishes, so arena memory is recycled without
// ever being shared between two live queries.

// arena is a chunked bump allocator for slices of T. Carved slices stay
// valid until reset; reset recycles every chunk for the next query
// instead of returning memory to the garbage collector.
type arena[T any] struct {
	// chunk is the allocation granularity; requests larger than chunk
	// get a dedicated chunk of exactly their size.
	chunk int
	// clearOnReset zeroes recycled chunks so value types holding
	// pointers (e.g. contributor, whose parts and entry reference other
	// allocations) do not retain a finished query's memory.
	clearOnReset bool

	cur   []T   // current chunk; len = high-water mark of carved space
	used  [][]T // exhausted chunks awaiting reset
	spare [][]T // recycled chunks ready for reuse
}

// alloc carves a slice with length 0 and capacity n from the arena. The
// caller appends at most n elements; appending beyond n falls back to the
// heap via the ordinary append growth path (correct, merely allocating).
//
//rstknn:hotpath one carve per bound evaluation in the steady state
func (a *arena[T]) alloc(n int) []T {
	if cap(a.cur)-len(a.cur) < n {
		a.grow(n)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	return a.cur[off : off : off+n]
}

// grow is the arena's amortized cold path: it runs once per chunk, not
// once per carve, so its allocations are blessed below.
func (a *arena[T]) grow(n int) {
	if a.cur != nil {
		a.used = append(a.used, a.cur) //rstknn:allow hotalloc chunk bookkeeping, amortized over chunk-many carves
		a.cur = nil
	}
	// Prefer a recycled chunk large enough for the request.
	for i := len(a.spare) - 1; i >= 0; i-- {
		if cap(a.spare[i]) >= n {
			a.cur = a.spare[i]
			a.spare[i] = a.spare[len(a.spare)-1]
			a.spare[len(a.spare)-1] = nil
			a.spare = a.spare[:len(a.spare)-1]
			return
		}
	}
	size := a.chunk
	if size < n {
		size = n
	}
	a.cur = make([]T, 0, size) //rstknn:allow hotalloc chunk allocation, recycled across queries by reset
}

// reset recycles every chunk. Previously carved slices become invalid.
func (a *arena[T]) reset() {
	if a.cur != nil {
		a.used = append(a.used, a.cur)
		a.cur = nil
	}
	for _, c := range a.used {
		if a.clearOnReset {
			clear(c[:cap(c)])
		}
		a.spare = append(a.spare, c[:0])
	}
	a.used = a.used[:0]
}

// scratch is the per-worker reusable state of one search worker. It is
// owned by exactly one goroutine at a time; slices carved from its arenas
// may be *read* by other workers in later rounds (candidate expansion
// publishes them via the round barrier) but are only ever written by the
// owner before publication.
type scratch struct {
	// selLo/selHi are the kNN-bound selectors, reused across every
	// pruning check so their heap storage is allocated once.
	selLo, selHi kthSelector
	// parts backs every bound computation ([]part carves).
	parts arena[part]
	// contribs backs the long-lived contributor lists of groups.
	contribs arena[contributor]
	// repl is the transient replacement buffer of refine(): replace()
	// copies it into the contribution list, so it never outlives a call.
	repl []contributor
	// sibParts is the transient per-expansion sibling-bounds buffer.
	sibParts [][]part
	// entries is the transient entry-materialization buffer of the
	// zero-copy read path: expansion and refinement fill it from a
	// NodeView, and everything downstream copies the Entry values it
	// needs, so the buffer is reusable as soon as the call returns.
	entries []iurtree.Entry
	// viewBufs stacks recycled NodeView offset tables. A stack (not a
	// single buffer) because collect() recurses with the parent's view
	// still live; depth never exceeds the tree height.
	viewBufs [][]int32
}

var scratchPool = sync.Pool{New: func() any {
	s := &scratch{}
	s.parts.chunk = 1024
	s.contribs.chunk = 256
	s.contribs.clearOnReset = true
	return s
}}

// getScratch checks a warm scratch out of the pool.
func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// release recycles the scratch for the next query. Must only be called
// once every reference into the scratch's arenas is dead (query end).
func (s *scratch) release() {
	s.parts.reset()
	s.contribs.reset()
	clear(s.repl)
	s.repl = s.repl[:0]
	clear(s.sibParts)
	s.sibParts = s.sibParts[:0]
	clear(s.entries)
	s.entries = s.entries[:0]
	// viewBufs hold only int32 offsets — no references to retain — and
	// stay warm across queries.
	scratchPool.Put(s)
}

// getViewBuf pops a recycled offset buffer for a NodeView, or returns
// nil (ReadViewTracked then grows a fresh one that putViewBuf captures).
func (s *scratch) getViewBuf() []int32 {
	if n := len(s.viewBufs); n > 0 {
		b := s.viewBufs[n-1]
		s.viewBufs = s.viewBufs[:n-1]
		return b
	}
	return nil
}

// putViewBuf returns a finished view's offset buffer to the stack.
func (s *scratch) putViewBuf(b []int32) {
	if b != nil {
		s.viewBufs = append(s.viewBufs, b)
	}
}

// allocParts carves a part slice from the scratch arena, or falls back to
// the heap when no scratch is threaded through (external callers of the
// bound helpers, e.g. white-box tests).
//
//rstknn:hotpath one carve per bound evaluation
func allocParts(sc *scratch, n int) []part {
	if sc != nil {
		return sc.parts.alloc(n)
	}
	return make([]part, 0, n) //rstknn:allow hotalloc heap fallback for scratch-less callers (tests)
}

// allocContribs mirrors allocParts for contributor slices. extra reserves
// growth headroom: contribution lists grow in place when a refinement
// replaces one contributor with a node's children, and headroom keeps
// those appends inside the arena instead of spilling to the heap.
//
//rstknn:hotpath one carve per candidate expansion
func allocContribs(sc *scratch, n, extra int) []contributor {
	if sc != nil {
		return sc.contribs.alloc(n + extra)
	}
	return make([]contributor, 0, n+extra) //rstknn:allow hotalloc heap fallback for scratch-less callers (tests)
}
