// Package core implements the query processing contribution of the
// RSTkNN paper (Lu, Lu, Cong — SIGMOD 2011): the branch-and-bound reverse
// spatial-textual kNN search over IUR-trees/CIUR-trees, driven by
// per-entry contribution lists that bound the similarity of every object's
// k-th nearest neighbor, plus the spatial-textual top-k search used by the
// precomputation baseline and the bichromatic extension.
package core

import (
	"math"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/vector"
)

// Query is a query object: a location and a document vector. In the
// monochromatic RSTkNN problem the query is an object of the same kind as
// the data set (typically a new, not-yet-indexed object).
type Query struct {
	Loc geom.Point
	Doc vector.Vector
}

// boundsPad is the absolute slack added to node-level (non-exact)
// similarity bounds. The bounds are mathematically valid in real
// arithmetic; the pad absorbs float64 rounding so a bound can never be
// tighter than the exact similarity it must dominate. Exact object-object
// similarities are never padded, so accept/reject decisions agree
// bit-for-bit with the exhaustive baseline.
const boundsPad = 1e-12

// Scorer evaluates the combined spatial-textual similarity
//
//	SimST(a, b) = alpha * (1 - dist(a,b)/maxD) + (1-alpha) * SimT(a.doc, b.doc)
//
// and its envelope bounds. A Scorer is bound to one tree's normalization
// distance maxD.
type Scorer struct {
	Alpha float64
	MaxD  float64
	Sim   vector.TextSim

	// ExactCount is incremented for every exact similarity evaluation and
	// BoundCount for every entry-level bound evaluation; the experiment
	// harness reports both.
	ExactCount int64
	BoundCount int64
}

// NewScorer returns a scorer for the given tree parameters. A nil sim
// defaults to Extended Jaccard.
func NewScorer(alpha, maxD float64, sim vector.TextSim) *Scorer {
	if sim == nil {
		sim = vector.EJ{}
	}
	if maxD <= 0 {
		maxD = 1
	}
	return &Scorer{Alpha: alpha, MaxD: maxD, Sim: sim}
}

// Exact returns SimST between two concrete objects.
func (s *Scorer) Exact(aLoc geom.Point, aDoc vector.Vector, bLoc geom.Point, bDoc vector.Vector) float64 {
	s.ExactCount++
	spatial := 1 - aLoc.Dist(bLoc)/s.MaxD
	return s.Alpha*spatial + (1-s.Alpha)*s.Sim.Exact(aDoc, bDoc)
}

// ExactEntryQuery returns SimST between an object entry and the query.
func (s *Scorer) ExactEntryQuery(e *iurtree.Entry, q *Query) float64 {
	return s.Exact(e.Loc(), e.Doc(), q.Loc, q.Doc)
}

// interval is a [lo, hi] similarity interval.
type interval struct {
	lo, hi float64
}

// side is one side of a bound computation: a spatial extent, a textual
// envelope, and whether the side is a single concrete object (making
// exact similarity available when the other side is concrete too).
type side struct {
	rect  geom.Rect
	env   vector.Envelope
	exact bool
}

// sideOf builds the bound side of a whole entry.
func sideOf(e *iurtree.Entry) side {
	return side{rect: e.Rect, env: e.Env, exact: e.IsObject()}
}

// queryBounds returns bounds of SimST(o, q) over every object o
// represented by side a. For concrete objects the interval collapses to
// the exact value.
func (s *Scorer) queryBounds(a side, q *Query) interval {
	if a.exact {
		v := s.Exact(a.rect.Min, a.env.Int, q.Loc, q.Doc)
		return interval{v, v}
	}
	s.BoundCount++
	qr := q.Loc.Rect()
	maxS := 1 - a.rect.MinDist(qr)/s.MaxD
	minS := 1 - a.rect.MaxDist(qr)/s.MaxD
	qEnv := vector.Exact(q.Doc)
	loT, hiT := s.Sim.Bounds(a.env, qEnv)
	return interval{
		lo: s.Alpha*minS + (1-s.Alpha)*loT - boundsPad,
		hi: s.Alpha*maxS + (1-s.Alpha)*hiT + boundsPad,
	}
}

// part is one contribution: `count` objects whose similarity to every
// object of the candidate lies within [lo, hi].
type part struct {
	lo, hi float64
	count  int32
}

// entryBounds returns the contribution parts of contributor x with
// respect to candidate side a: bounds of SimST(o, y) valid for every
// object o covered by a and every object y below x. For a clustered
// contributor the textual bounds are computed per cluster (the CIUR-tree
// improvement); the spatial bounds always come from the MBRs.
//
// When both sides are concrete objects the single part is the exact
// similarity (unpadded).
func (s *Scorer) entryBounds(a side, x *iurtree.Entry) []part {
	return s.entryBoundsInto(nil, a, x)
}

// entryBoundsInto is the allocation-free form of entryBounds: the part
// slice is carved from the worker's scratch arena (heap-allocated when sc
// is nil), so the steady-state scoring path performs no allocation.
//
//rstknn:hotpath one call per (candidate, contributor) bound evaluation
func (s *Scorer) entryBoundsInto(sc *scratch, a side, x *iurtree.Entry) []part {
	if a.exact && x.IsObject() {
		v := s.Exact(a.rect.Min, a.env.Int, x.Loc(), x.Doc())
		return append(allocParts(sc, 1), part{lo: v, hi: v, count: 1})
	}
	s.BoundCount++
	maxS := 1 - a.rect.MinDist(x.Rect)/s.MaxD
	minS := 1 - a.rect.MaxDist(x.Rect)/s.MaxD
	if len(x.Clusters) > 1 {
		parts := allocParts(sc, len(x.Clusters))
		for i := range x.Clusters {
			cs := &x.Clusters[i]
			loT, hiT := s.Sim.Bounds(a.env, cs.Env)
			parts = append(parts, part{
				lo:    s.Alpha*minS + (1-s.Alpha)*loT - boundsPad,
				hi:    s.Alpha*maxS + (1-s.Alpha)*hiT + boundsPad,
				count: cs.Count,
			})
		}
		return parts
	}
	loT, hiT := s.Sim.Bounds(a.env, x.Env)
	return append(allocParts(sc, 1), part{
		lo:    s.Alpha*minS + (1-s.Alpha)*loT - boundsPad,
		hi:    s.Alpha*maxS + (1-s.Alpha)*hiT + boundsPad,
		count: x.Count,
	})
}

// selfParts returns the contribution of a candidate's own subtree to each
// of the candidate's objects. For a whole-node candidate (cluster < 0)
// every object has entry.Count-1 co-members bounded by the node envelope
// paired with itself. For a cluster-scoped candidate the within-cluster
// co-members are bounded by the cluster envelope (tight) and every other
// cluster contributes its own envelope pair — the candidate-side
// per-cluster bounding that gives the CIUR-tree its pruning power.
// Spatial bounds use MinDist 0 and MaxDist = the node MBR diagonal.
func (s *Scorer) selfParts(e *iurtree.Entry, clusterID int32, env vector.Envelope, count int32) []part {
	return s.selfPartsInto(nil, e, clusterID, env, count)
}

// selfPartsInto is the allocation-free form of selfParts (see
// entryBoundsInto).
//
//rstknn:hotpath one call per candidate expansion and rebinding
func (s *Scorer) selfPartsInto(sc *scratch, e *iurtree.Entry, clusterID int32, env vector.Envelope, count int32) []part {
	if e.Count <= 1 {
		return nil
	}
	minS := 1 - e.Rect.Diagonal()/s.MaxD
	if clusterID < 0 || len(e.Clusters) == 0 {
		p := s.selfPart(env, e.Env, minS, e.Count-1)
		if p.count <= 0 {
			return nil
		}
		return append(allocParts(sc, 1), p)
	}
	parts := allocParts(sc, len(e.Clusters))
	for i := range e.Clusters {
		cs := &e.Clusters[i]
		n := cs.Count
		if cs.Cluster == clusterID {
			n-- // an object is not its own neighbor
		}
		if n <= 0 {
			continue
		}
		parts = append(parts, s.selfPart(env, cs.Env, minS, n))
	}
	return parts
}

// selfPart bounds one envelope pairing of a candidate's own subtree:
// spatial bounds [minS, 1] combined with the textual envelope bounds of
// the candidate-side envelope against one co-member envelope.
func (s *Scorer) selfPart(env, other vector.Envelope, minS float64, n int32) part {
	s.BoundCount++
	loT, hiT := s.Sim.Bounds(env, other)
	return part{
		lo:    s.Alpha*minS + (1-s.Alpha)*loT - boundsPad,
		hi:    s.Alpha*1 + (1-s.Alpha)*hiT + boundsPad,
		count: n,
	}
}

// negInf is the similarity of a non-existent neighbor: an object with
// fewer than k neighbors has k-th NN similarity -Inf, so the query always
// ranks within its top-k.
var negInf = math.Inf(-1)
