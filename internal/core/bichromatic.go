package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rstknn/internal/iurtree"
	"rstknn/internal/pq"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// Bichromatic reverse spatial-textual kNN — the extension the follow-up
// literature (e.g. the MaxBRSTkNN work that cites this paper) builds on.
// Given a set of *facilities* indexed by a tree and a set of *users*, a
// query facility q "influences" user u when q would rank within u's top-k
// facilities. BichromaticRSTkNN returns all influenced users.
//
// The key observation that avoids computing every user's exact k-th
// facility similarity: u is influenced iff strictly fewer than k
// facilities are more similar to u than q is. CountExceeding answers that
// with a best-first tree descent that stops as soon as k facilities beat
// the query's similarity, pruning every subtree whose upper bound cannot.

// CountExceeding returns min(limit, |{o : SimST(o, q) > threshold}|),
// reading as little of the tree as the bound allows. Metrics report the
// traversal work. Only opt.Alpha, opt.Sim, opt.Ctx, and opt.Tracker are
// consulted; the count cutoff is the explicit limit parameter, not opt.K.
func CountExceeding(t *iurtree.Snapshot, q Query, threshold float64, limit int, opt BichromaticOptions) (int, Metrics, error) {
	var m Metrics
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return 0, m, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	if limit <= 0 || t.Len() == 0 {
		return 0, m, nil
	}
	sc := NewScorer(opt.Alpha, t.MaxD(), opt.Sim)
	frontier := pq.NewMax[iurtree.Entry]()
	root := t.RootEntry()
	if b := sc.queryBounds(sideOf(&root), &q); b.hi > threshold {
		frontier.Push(root, b.hi)
	}
	count := 0
	for !frontier.Empty() && count < limit {
		e, _ := frontier.Pop()
		if e.IsObject() {
			// Object entries were pushed with their exact similarity as
			// priority, already checked > threshold.
			count++
			continue
		}
		if err := checkCtx(opt.Ctx); err != nil {
			return 0, m, err
		}
		node, err := t.ReadNodeTracked(e.Child, opt.Tracker)
		if err != nil {
			return 0, m, err
		}
		m.NodesRead++
		for i := range node.Entries {
			child := &node.Entries[i]
			if b := sc.queryBounds(sideOf(child), &q); b.hi > threshold {
				frontier.Push(*child, b.hi)
			}
		}
	}
	m.ExactSims = sc.ExactCount
	m.BoundEvals = sc.BoundCount
	return count, m, nil
}

// User is one element of the bichromatic user set.
type User struct {
	ID  int32
	Loc Query // reuse Query as the (Loc, Doc) pair
}

// BichromaticOptions configure a bichromatic reverse query.
type BichromaticOptions struct {
	K     int
	Alpha float64
	Sim   vector.TextSim
	// Workers bounds the parallelism of the per-user loop, which is
	// embarrassingly parallel: each user's influence test is independent.
	// Values <= 0 default to runtime.GOMAXPROCS(0); 1 runs sequentially.
	// The outcome is identical at every worker count.
	Workers int
	// Ctx, when non-nil, cancels the query: it is checked before every
	// node read and between users.
	Ctx context.Context
	// Tracker, when non-nil, receives the query's simulated I/O charges.
	Tracker *storage.Tracker
}

// BichromaticOutcome reports the influenced users and traversal totals.
type BichromaticOutcome struct {
	// UserIDs lists the influenced users, ascending.
	UserIDs []int32
	Metrics Metrics
}

// BichromaticRSTkNN returns every user u (from the in-memory user set) for
// whom the query facility q would rank within u's top-k facilities among
// the indexed facility set.
func BichromaticRSTkNN(facilities *iurtree.Snapshot, users []iurtree.Object, q Query, opt BichromaticOptions) (*BichromaticOutcome, error) {
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	out := &BichromaticOutcome{}
	workers := effectiveWorkers(opt.Workers)
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		sc := NewScorer(opt.Alpha, facilities.MaxD(), opt.Sim)
		for i := range users {
			if err := checkCtx(opt.Ctx); err != nil {
				return nil, err
			}
			influenced, m, err := testUser(facilities, &users[i], &q, sc, opt)
			if err != nil {
				return nil, err
			}
			out.Metrics.add(&m)
			if influenced {
				out.UserIDs = append(out.UserIDs, users[i].ID)
			}
		}
		out.Metrics.ExactSims += sc.ExactCount
		sort.Slice(out.UserIDs, func(i, j int) bool { return out.UserIDs[i] < out.UserIDs[j] })
		return out, nil
	}

	// Each user's influence test is independent, so the loop fans out
	// across a worker pool. Every worker has a private scorer and private
	// accumulators; metrics are sums and the ID set is sorted, so the
	// merged outcome is identical to the sequential loop's.
	type tally struct {
		ids     []int32
		metrics Metrics
		err     error
	}
	tallies := make([]tally, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(t *tally) {
			defer wg.Done()
			sc := NewScorer(opt.Alpha, facilities.MaxD(), opt.Sim)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(users) {
					break
				}
				if err := checkCtx(opt.Ctx); err != nil {
					t.err = err
					return
				}
				influenced, m, err := testUser(facilities, &users[i], &q, sc, opt)
				if err != nil {
					t.err = err
					return
				}
				t.metrics.add(&m)
				if influenced {
					t.ids = append(t.ids, users[i].ID)
				}
			}
			t.metrics.ExactSims += sc.ExactCount
		}(&tallies[w])
	}
	wg.Wait()
	for i := range tallies {
		if tallies[i].err != nil {
			return nil, tallies[i].err
		}
		out.Metrics.add(&tallies[i].metrics)
		out.UserIDs = append(out.UserIDs, tallies[i].ids...)
	}
	sort.Slice(out.UserIDs, func(i, j int) bool { return out.UserIDs[i] < out.UserIDs[j] })
	return out, nil
}

// testUser decides whether the query facility influences one user: it is
// influenced iff strictly fewer than opt.K facilities beat the query's
// similarity to the user. The caller-owned scorer accumulates the exact
// similarity evaluated here; traversal work is returned in m.
func testUser(facilities *iurtree.Snapshot, u *iurtree.Object, q *Query, sc *Scorer, opt BichromaticOptions) (influenced bool, m Metrics, err error) {
	uq := Query{Loc: u.Loc, Doc: u.Doc}
	s0 := sc.Exact(u.Loc, u.Doc, q.Loc, q.Doc)
	better, m, err := CountExceeding(facilities, uq, s0, opt.K, opt)
	if err != nil {
		return false, m, err
	}
	return better < opt.K, m, nil
}
