package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// White-box tests of the contribution-list machinery. These avoid the
// baseline package (which imports core) by computing the oracle locally.

func wbObjects(rng *rand.Rand, n int) []iurtree.Object {
	objs := make([]iurtree.Object, n)
	for i := range objs {
		m := make(map[vector.TermID]float64)
		for j := 0; j < 1+rng.Intn(4); j++ {
			m[vector.TermID(rng.Intn(20))] = 0.5 + rng.Float64()*2
		}
		objs[i] = iurtree.Object{
			ID:  int32(i),
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(m),
		}
	}
	return objs
}

// wbKth computes object i's k-th NN similarity exhaustively.
func wbKth(sc *Scorer, objs []iurtree.Object, i, k int) float64 {
	if len(objs)-1 < k {
		return negInf
	}
	sims := make([]float64, 0, len(objs)-1)
	for j := range objs {
		if j == i {
			continue
		}
		sims = append(sims, sc.Exact(objs[i].Loc, objs[i].Doc, objs[j].Loc, objs[j].Doc))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
	return sims[k-1]
}

// TestKNNBoundsBracketTruth verifies the core guarantee behind both
// pruning rules: the (kNNL, kNNU) derived from a seed contribution list of
// the root's children brackets the true k-th NN similarity of every
// object in each child's subtree.
func TestKNNBoundsBracketTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		objs := wbObjects(rng, 100+rng.Intn(100))
		tree, err := iurtree.Build(objs, iurtree.Config{Store: storage.NewStore()})
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(6)
		sc := NewScorer(0.5, tree.MaxD(), nil)
		truth := make([]float64, len(objs))
		for i := range objs {
			truth[i] = wbKth(sc, objs, i, k)
		}

		rootNode, err := tree.ReadNode(tree.RootEntry().Child)
		if err != nil {
			t.Fatal(err)
		}
		if rootNode.Leaf {
			continue // single-node tree: no node-granularity bounds to test
		}
		for i := range rootNode.Entries {
			e := &rootNode.Entries[i]
			var cl contributionList
			cl.self = sc.selfParts(e, -1, e.Env, e.Count)
			for j := range rootNode.Entries {
				if j == i {
					continue
				}
				cl.contributors = append(cl.contributors, contributor{
					entry: rootNode.Entries[j],
					parts: sc.entryBounds(sideOf(e), &rootNode.Entries[j]),
				})
			}
			knnl, knnu := cl.knnBounds(k)
			if err := wbCheckSubtree(tree, e, truth, knnl, knnu); err != nil {
				t.Fatalf("trial %d entry %d: %v", trial, i, err)
			}
		}
	}
}

func wbCheckSubtree(tree *iurtree.Snapshot, e *iurtree.Entry, truth []float64, knnl, knnu float64) error {
	if e.IsObject() {
		kth := truth[e.ObjID]
		if kth < knnl-1e-9 {
			return fmt.Errorf("object %d: kth %g < kNNL %g", e.ObjID, kth, knnl)
		}
		if kth > knnu+1e-9 {
			return fmt.Errorf("object %d: kth %g > kNNU %g", e.ObjID, kth, knnu)
		}
		return nil
	}
	n, err := tree.ReadNode(e.Child)
	if err != nil {
		return err
	}
	for i := range n.Entries {
		if err := wbCheckSubtree(tree, &n.Entries[i], truth, knnl, knnu); err != nil {
			return err
		}
	}
	return nil
}

func TestKNNBoundsFewerThanK(t *testing.T) {
	var cl contributionList
	cl.self = []part{{lo: 0.3, hi: 0.8, count: 2}}
	cl.contributors = []contributor{{parts: []part{{lo: 0.1, hi: 0.9, count: 3}}}}
	// Total neighbors = 5; asking for the 6th must signal "no such
	// neighbor" with -Inf bounds.
	knnl, knnu := cl.knnBounds(6)
	if knnl != negInf || knnu != negInf {
		t.Errorf("bounds = %g, %g; want -Inf, -Inf", knnl, knnu)
	}
	knnl, knnu = cl.knnBounds(5)
	if knnl != 0.1 || knnu != 0.8 {
		t.Errorf("k=5 bounds = %g, %g; want 0.1, 0.8", knnl, knnu)
	}
}

func TestKNNBoundsAccumulation(t *testing.T) {
	// Three parts with known ordering; verify the k-th accumulation for
	// every k.
	var cl contributionList
	cl.contributors = []contributor{
		{parts: []part{{lo: 0.9, hi: 0.95, count: 1}}},
		{parts: []part{{lo: 0.5, hi: 0.7, count: 2}}},
		{parts: []part{{lo: 0.2, hi: 0.3, count: 3}}},
	}
	wantL := []float64{0.9, 0.5, 0.5, 0.2, 0.2, 0.2}
	wantU := []float64{0.95, 0.7, 0.7, 0.3, 0.3, 0.3}
	for k := 1; k <= 6; k++ {
		knnl, knnu := cl.knnBounds(k)
		if knnl != wantL[k-1] || knnu != wantU[k-1] {
			t.Errorf("k=%d: bounds (%g, %g), want (%g, %g)", k, knnl, knnu, wantL[k-1], wantU[k-1])
		}
	}
}

func TestKNNBoundsSkipsZeroCountParts(t *testing.T) {
	var cl contributionList
	cl.contributors = []contributor{
		{parts: []part{{lo: 0.99, hi: 0.99, count: 0}}},
		{parts: []part{{lo: 0.4, hi: 0.6, count: 1}}},
	}
	knnl, knnu := cl.knnBounds(1)
	if knnl != 0.4 || knnu != 0.6 {
		t.Errorf("zero-count part leaked into bounds: (%g, %g)", knnl, knnu)
	}
}

func TestRefinableStrategySelection(t *testing.T) {
	node := func(hi float64, clusters []iurtree.ClusterSummary) contributor {
		return contributor{
			entry: iurtree.Entry{Child: 1, Count: 5, Clusters: clusters},
			parts: []part{{lo: 0, hi: hi, count: 5}},
		}
	}
	object := func(hi float64) contributor {
		return contributor{
			entry: iurtree.Entry{Child: storage.InvalidNode, Count: 1},
			parts: []part{{lo: hi, hi: hi, count: 1}},
		}
	}
	var cl contributionList
	cl.contributors = []contributor{
		object(0.99), // objects are never refinable
		node(0.5, []iurtree.ClusterSummary{{Cluster: 0, Count: 5}}),                         // pure: entropy 0
		node(0.3, []iurtree.ClusterSummary{{Cluster: 0, Count: 2}, {Cluster: 1, Count: 3}}), // mixed
	}
	if got := cl.refinable(RefineByMaxUpper, 2, 0); got != 1 {
		t.Errorf("max-upper picked %d, want 1 (hi=0.5)", got)
	}
	if got := cl.refinable(RefineByEntropy, 2, 0); got != 2 {
		t.Errorf("entropy picked %d, want 2 (mixed clusters)", got)
	}
	// All objects -> nothing refinable.
	cl.contributors = []contributor{object(0.1), object(0.2)}
	if got := cl.refinable(RefineByMaxUpper, 2, 0); got != -1 {
		t.Errorf("refinable over objects = %d, want -1", got)
	}
}

func TestReplacePreservesOthers(t *testing.T) {
	var cl contributionList
	mk := func(id int32) contributor {
		return contributor{entry: iurtree.Entry{ObjID: id, Child: storage.InvalidNode}}
	}
	cl.contributors = []contributor{mk(0), mk(1), mk(2)}
	cl.replace(nil, 1, []contributor{mk(10), mk(11)})
	ids := map[int32]bool{}
	for _, c := range cl.contributors {
		ids[c.entry.ObjID] = true
	}
	if len(cl.contributors) != 4 || !ids[0] || !ids[2] || !ids[10] || !ids[11] || ids[1] {
		t.Errorf("replace result: %v", ids)
	}
}

func TestSelfPartCounts(t *testing.T) {
	sc := NewScorer(0.5, 100, nil)
	obj := iurtree.Entry{Child: storage.InvalidNode, Count: 1}
	if ps := sc.selfParts(&obj, -1, obj.Env, 1); len(ps) != 0 {
		t.Errorf("object self parts = %v", ps)
	}
	env := vector.Exact(vector.New(map[vector.TermID]float64{1: 1}))
	node := iurtree.Entry{
		Child: 3, Count: 7,
		Rect: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 3, Y: 4}},
		Env:  env,
	}
	ps := sc.selfParts(&node, -1, node.Env, node.Count)
	if len(ps) != 1 {
		t.Fatalf("self parts = %v", ps)
	}
	p := ps[0]
	if p.count != 6 {
		t.Errorf("self part count = %d, want 6", p.count)
	}
	// Spatial component of lo: 1 - diagonal/maxD = 1 - 5/100 = 0.95.
	wantLo := 0.5*0.95 + 0.5*1 - boundsPad // identical docs: text bounds collapse to 1
	if diff := p.lo - wantLo; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("self lo = %g, want %g", p.lo, wantLo)
	}
	if p.hi < 1-1e-9 {
		t.Errorf("self hi = %g, want ~1", p.hi)
	}
}

func TestScorerCounts(t *testing.T) {
	sc := NewScorer(0.5, 100, nil)
	a := iurtree.Entry{Child: storage.InvalidNode, Count: 1,
		Rect: geom.Point{X: 1, Y: 1}.Rect(),
		Env:  vector.Exact(vector.New(map[vector.TermID]float64{1: 1}))}
	q := Query{Loc: geom.Point{X: 2, Y: 2}, Doc: vector.New(map[vector.TermID]float64{1: 1})}
	sc.ExactEntryQuery(&a, &q)
	if sc.ExactCount != 1 {
		t.Errorf("ExactCount = %d", sc.ExactCount)
	}
	node := iurtree.Entry{Child: 5, Count: 3,
		Rect: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 9, Y: 9}},
		Env:  a.Env}
	sc.queryBounds(sideOf(&node), &q)
	if sc.BoundCount != 1 {
		t.Errorf("BoundCount = %d", sc.BoundCount)
	}
}

func TestNewScorerDefaults(t *testing.T) {
	sc := NewScorer(0.5, 0, nil)
	if sc.MaxD != 1 {
		t.Errorf("MaxD defaulted to %g, want 1", sc.MaxD)
	}
	if sc.Sim == nil || sc.Sim.Name() != "ej" {
		t.Error("Sim should default to Extended Jaccard")
	}
}

// TestKthSelectorAgainstSort is the property test for the streaming
// weighted k-th selection: expanding the weighted multiset and sorting
// must give the same k-th largest value.
func TestKthSelectorAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(20)
		var sel kthSelector
		sel.reset(k)
		var expanded []float64
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			val := rng.Float64()
			count := int32(1 + rng.Intn(5))
			sel.add(val, count)
			for c := int32(0); c < count; c++ {
				expanded = append(expanded, val)
			}
		}
		want := negInf
		if len(expanded) >= k {
			sort.Sort(sort.Reverse(sort.Float64Slice(expanded)))
			want = expanded[k-1]
		}
		if got := sel.kth(); got != want {
			t.Fatalf("trial %d (k=%d, %d values): kth = %g, want %g",
				trial, k, len(expanded), got, want)
		}
	}
}

// TestKthSelectorReuse checks reset really clears state between uses.
func TestKthSelectorReuse(t *testing.T) {
	var sel kthSelector
	sel.reset(2)
	sel.add(0.9, 1)
	sel.add(0.8, 1)
	if got := sel.kth(); got != 0.8 {
		t.Fatalf("first use: %g", got)
	}
	sel.reset(1)
	sel.add(0.5, 3)
	if got := sel.kth(); got != 0.5 {
		t.Fatalf("after reset: %g", got)
	}
	sel.reset(5)
	if got := sel.kth(); got != negInf {
		t.Fatalf("empty selector: %g", got)
	}
}
