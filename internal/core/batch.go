package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
)

// Shared-traversal batch execution.
//
// Answering N reverse queries independently reads the top levels of the
// IUR-tree N times: every query descends through the same root fan-out,
// and on clustered workloads the frontiers overlap far below that. The
// multi-query driver in this file runs ONE branch-and-bound traversal for
// the whole batch instead. Each frontier slot is a tree entry together
// with its *active-query set* — the batch queries that still have
// undecided groups below that entry. A node page is fetched (and its
// NodeView parsed) at most once per batch, through a once-per-node view
// table; the fetched node is then scored against every active query, and
// each query's membership is pruned independently via the same
// Scorer/contributionList/kthSelector machinery the single-query search
// uses. Queries drop out of a subtree exactly when an independent run
// would have pruned or reported it, so per-query Results, Metrics, and
// kNN bounds are bit-identical to N independent RSTkNN calls — only the
// physical I/O is amortized.
//
// Determinism contract: the driver keeps the round-based fan-out of the
// single-query engine — workers split the frontier by node, never by
// query — and every verdict depends only on the (query, group)'s own
// contribution list, so results and per-query Metrics are identical at
// every worker count, and Workers:1 is bit-for-bit deterministic.
//
// Tracker attribution rule: physical I/O (ChargeRead/ChargeCacheHit) is
// charged exactly once per distinct node, to the batch-level
// opt.Tracker. Every query that consumes a node — including the one
// whose expansion triggered the fetch — records one ChargeSharedRead on
// its own BatchItem.Tracker and counts the node in its Metrics.NodesRead,
// keeping the per-query logical counters identical to an independent run.

// BatchItem is one query of a shared-traversal batch: the per-query
// inputs that vary across the batch, while everything shared (alpha,
// similarity measure, refinement strategy, worker pool, context, the
// batch-level tracker) comes from the Options passed to MultiRSTkNN.
type BatchItem struct {
	Query Query
	// K is this query's rank cutoff (Options.K is ignored by
	// MultiRSTkNN).
	K int
	// BoundTrace, when non-nil, receives this query's final kNN bounds
	// for every object-level candidate, exactly as Options.BoundTrace
	// does for RSTkNN. It must be safe for concurrent use when the batch
	// runs with more than one worker.
	BoundTrace func(objID int32, knnl, knnu float64)
	// Tracker, when non-nil, receives this query's shared-read
	// attributions (one ChargeSharedRead per logical node read).
	Tracker *storage.Tracker
}

// BatchMetrics reports the batch-level amortization the shared traversal
// achieved. Per-query work lives in the per-query Outcomes.
type BatchMetrics struct {
	// NodesRead is the number of distinct nodes physically fetched for
	// the whole batch — the I/O an independent run would multiply.
	NodesRead int
	// SharedHits counts the logical node reads served by a node the
	// batch had already fetched: the sum of per-query
	// Metrics.NodesRead minus NodesRead.
	SharedHits int
}

// MultiOutcome is the result of one shared-traversal batch: one Outcome
// per BatchItem, in item order, plus the batch-level amortization
// metrics.
type MultiOutcome struct {
	Outcomes []*Outcome
	Batch    BatchMetrics
}

// batchTable is the once-per-node view table of one batch: the first
// query to need a node fetches it (charging the physical I/O to the
// batch tracker) and every later consumer gets the already-parsed view.
// Views and their offset buffers are owned by the table for the batch's
// lifetime, so they may be shared across worker goroutines — NodeView
// accessors are read-only.
type batchTable struct {
	tree *iurtree.Snapshot
	tr   *storage.Tracker
	phys atomic.Int64

	mu    sync.Mutex
	nodes map[storage.NodeID]*batchSlot
}

// batchSlot is one node's entry in the table. The sync.Once serializes
// the fetch without holding the table mutex across I/O.
type batchSlot struct {
	once sync.Once
	view iurtree.NodeView
	err  error
}

func newBatchTable(tree *iurtree.Snapshot, tr *storage.Tracker) *batchTable {
	return &batchTable{tree: tree, tr: tr, nodes: make(map[storage.NodeID]*batchSlot)}
}

// load returns the node's shared view, fetching it on first use.
func (b *batchTable) load(id storage.NodeID) (iurtree.NodeView, error) {
	b.mu.Lock()
	s := b.nodes[id]
	if s == nil {
		s = &batchSlot{}
		b.nodes[id] = s
	}
	b.mu.Unlock()
	s.once.Do(func() {
		b.phys.Add(1)
		s.view, s.err = b.tree.ReadViewTracked(id, b.tr, nil)
	})
	return s.view, s.err
}

// activeQuery is one batch query's stake in a frontier slot: its index
// in the batch plus its still-undecided groups below the slot's entry.
type activeQuery struct {
	qi     int
	groups []*group
}

// batchCandidate is one frontier slot of the shared traversal: a tree
// entry plus the queries still active on it, kept in ascending query
// order for determinism.
type batchCandidate struct {
	entry  iurtree.Entry
	idx    int
	active []activeQuery
}

// lane is one worker's private accumulator for one query. Totals are
// order-independent sums, so adding the lanes of all workers yields the
// same Metrics an independent run would report.
type lane struct {
	metrics Metrics
	results []int32
}

// batchWorker wraps one search worker with per-query lanes. Before any
// per-query work (deciding groups, charging a logical read, building
// children) it retargets the worker's lane state to that query via
// begin, and parks the accumulators back via end — so the entire
// single-query decision machinery runs unmodified in between.
type batchWorker struct {
	w     *worker
	items []BatchItem
	lanes []lane
	// e0/b0 snapshot the worker's scorer counters at begin so end can
	// attribute the delta to the active query's lane.
	e0, b0 int64
}

func newBatchWorker(s *searcher, table *batchTable, items []BatchItem) *batchWorker {
	w := s.newWorker()
	w.batch = table
	return &batchWorker{w: w, items: items, lanes: make([]lane, len(items))}
}

// begin retargets the worker at query qi's lane.
//
//rstknn:hotpath per-query lane switch in the shared-traversal inner loop
func (bw *batchWorker) begin(qi int) {
	it := &bw.items[qi]
	w := bw.w
	w.k = it.K
	w.trace = it.BoundTrace
	w.qtr = it.Tracker
	ln := &bw.lanes[qi]
	w.metrics = ln.metrics
	w.results = ln.results
	bw.e0 = w.scorer.ExactCount
	bw.b0 = w.scorer.BoundCount
}

// end parks the worker's accumulators back into query qi's lane,
// folding the scorer-counter delta since begin into the lane's
// similarity tallies.
//
//rstknn:hotpath per-query lane switch in the shared-traversal inner loop
func (bw *batchWorker) end(qi int) {
	w := bw.w
	ln := &bw.lanes[qi]
	ln.metrics = w.metrics
	ln.metrics.ExactSims += w.scorer.ExactCount - bw.e0
	ln.metrics.BoundEvals += w.scorer.BoundCount - bw.b0
	bw.e0 = w.scorer.ExactCount
	bw.b0 = w.scorer.BoundCount
	ln.results = w.results
}

// release recycles the worker's scratch. Call only after the frontier is
// fully drained AND the lanes have been harvested: live candidates of
// any query may reference arena-backed bounds owned by this scratch.
func (bw *batchWorker) release() {
	bw.w.scratch.release()
	bw.w.scratch = nil
}

// process drives one frontier slot: every active query's groups are
// decided (or kept pending), then — if any query still needs the
// subtree — the entry's node is expanded once and each pending query's
// children are merged back into shared child slots by entry index.
func (bw *batchWorker) process(bc *batchCandidate) ([]*batchCandidate, error) {
	c := candidate{entry: bc.entry, idx: bc.idx}
	var pending []activeQuery
	for _, aq := range bc.active {
		bw.begin(aq.qi)
		var pend []*group
		for _, g := range aq.groups {
			v, err := bw.w.decideGroup(&c, g)
			if err != nil {
				return nil, err
			}
			if v == verdictExpand {
				pend = append(pend, g)
				continue
			}
			if err := bw.w.settle(&c, g, v); err != nil {
				return nil, err
			}
		}
		bw.end(aq.qi)
		if len(pend) > 0 {
			pending = append(pending, activeQuery{qi: aq.qi, groups: pend})
		}
	}
	if len(pending) == 0 {
		return nil, nil
	}
	// Expansion: every pending query charges one logical read (keeping
	// its NodesRead identical to an independent run); the table fetches
	// the node at most once for the whole batch.
	var v iurtree.NodeView
	for _, p := range pending {
		bw.begin(p.qi)
		var err error
		v, err = bw.w.readView(bc.entry.Child)
		bw.end(p.qi)
		if err != nil {
			return nil, err
		}
	}
	// Materialize the fan-out once; Entry values are pure copies whose
	// Env/Clusters reference the shared cached decodes, so one slice
	// serves every pending query's expansion.
	children := v.AppendEntries(bw.w.scratch.entries[:0])
	slots := make([]*batchCandidate, len(children))
	for _, p := range pending {
		bw.begin(p.qi)
		qcs := bw.w.buildChildren(&bc.entry, children, p.groups, &bw.items[p.qi].Query)
		bw.end(p.qi)
		for _, qc := range qcs {
			slot := slots[qc.c.idx]
			if slot == nil {
				slot = &batchCandidate{entry: qc.c.entry, idx: qc.c.idx}
				slots[qc.c.idx] = slot
			}
			slot.active = append(slot.active, activeQuery{qi: p.qi, groups: qc.c.groups})
		}
	}
	bw.w.scratch.entries = children[:0]
	// Children enter the next round in entry order, active sets in
	// ascending query order (pending preserves it) — deterministic
	// regardless of which worker expanded the slot.
	out := make([]*batchCandidate, 0, len(slots))
	for _, slot := range slots {
		if slot != nil {
			out = append(out, slot)
		}
	}
	return out, nil
}

// MultiRSTkNN answers a batch of reverse spatial-textual k nearest
// neighbor queries in one shared tree traversal. Per-query inputs (the
// query point/vector, K, BoundTrace, the attribution Tracker) come from
// the items; everything else — Alpha, Sim, Strategy, GroupRefine,
// EagerBounds, Workers, Ctx, and the batch-level Tracker the physical
// I/O is charged to — comes from opt (opt.K and opt.BoundTrace are
// ignored). The returned Outcomes are index-aligned with items and
// bit-identical — Results, Metrics, and traced kNN bounds — to
// independent RSTkNN calls with the same per-query options, at every
// worker count.
func MultiRSTkNN(t *iurtree.Snapshot, items []BatchItem, opt Options) (*MultiOutcome, error) {
	for i := range items {
		if items[i].K <= 0 {
			return nil, fmt.Errorf("core: item %d: K must be positive, got %d", i, items[i].K)
		}
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	if err := checkCtx(opt.Ctx); err != nil {
		return nil, err
	}
	mo := &MultiOutcome{Outcomes: make([]*Outcome, len(items))}
	for i := range mo.Outcomes {
		mo.Outcomes[i] = &Outcome{}
	}
	if len(items) == 0 || t.Len() == 0 {
		return mo, nil
	}

	s := &searcher{tree: t, opt: opt, workers: effectiveWorkers(opt.Workers)}
	table := newBatchTable(t, opt.Tracker)
	bws := make([]*batchWorker, s.workers)
	for i := range bws {
		bws[i] = newBatchWorker(s, table, items)
	}
	// Scratches are recycled only after the frontier is fully drained
	// and every lane harvested — candidates built by one worker may
	// reference arena-backed bounds owned by another until decided.
	defer func() {
		for _, bw := range bws {
			bw.release()
		}
	}()

	frontier, err := seedBatch(bws[0], items)
	if err != nil {
		return nil, err
	}
	if err := runBatchRounds(s, bws, frontier); err != nil {
		return nil, err
	}

	for _, bw := range bws {
		for qi := range items {
			mo.Outcomes[qi].Metrics.add(&bw.lanes[qi].metrics)
			mo.Outcomes[qi].Results = append(mo.Outcomes[qi].Results, bw.lanes[qi].results...)
		}
	}
	logical := 0
	for _, o := range mo.Outcomes {
		sort.Slice(o.Results, func(i, j int) bool { return o.Results[i] < o.Results[j] })
		logical += o.Metrics.NodesRead
	}
	mo.Batch.NodesRead = int(table.phys.Load())
	mo.Batch.SharedHits = logical - mo.Batch.NodesRead
	return mo, nil
}

// seedBatch mirrors searcher.run's seed phase for every query at once:
// the root's child node is fetched once, each query charges its logical
// read, and the per-query seed candidates are merged into shared
// frontier slots by entry index.
func seedBatch(bw *batchWorker, items []BatchItem) ([]*batchCandidate, error) {
	s := bw.w.s
	root := s.tree.RootEntry()
	if root.Count == 1 {
		// A single object: no neighbors, k-th NN similarity -Inf, always
		// a result — for every query of the batch.
		for qi := range items {
			bw.begin(qi)
			v, err := bw.w.readView(root.Child)
			if err != nil {
				bw.end(qi)
				return nil, err
			}
			bw.w.metrics.Candidates++
			bw.w.results = append(bw.w.results, v.EntryObjID(0))
			bw.end(qi)
		}
		return nil, nil
	}

	var rootView iurtree.NodeView
	for qi := range items {
		bw.begin(qi)
		var err error
		rootView, err = bw.w.readView(root.Child)
		bw.end(qi)
		if err != nil {
			return nil, err
		}
	}
	rootEntries := rootView.AppendEntries(bw.w.scratch.entries[:0])
	// The pseudo parent groups carry empty contribution lists and are
	// never mutated by buildChildren, so one seed slice serves every
	// query.
	seeds := make([]*group, 0, len(root.Clusters)+1)
	if s.tree.Clustered() && len(root.Clusters) > 0 {
		for _, cs := range root.Clusters {
			seeds = append(seeds, &group{cluster: cs.Cluster})
		}
	} else {
		seeds = append(seeds, &group{cluster: -1})
	}
	slots := make([]*batchCandidate, len(rootEntries))
	for qi := range items {
		bw.begin(qi)
		qcs := bw.w.buildChildren(&root, rootEntries, seeds, &items[qi].Query)
		bw.end(qi)
		for _, qc := range qcs {
			slot := slots[qc.c.idx]
			if slot == nil {
				slot = &batchCandidate{entry: qc.c.entry, idx: qc.c.idx}
				slots[qc.c.idx] = slot
			}
			slot.active = append(slot.active, activeQuery{qi: qi, groups: qc.c.groups})
		}
	}
	bw.w.scratch.entries = rootEntries[:0]
	out := make([]*batchCandidate, 0, len(slots))
	for _, slot := range slots {
		if slot != nil {
			out = append(out, slot)
		}
	}
	return out, nil
}

// runBatchRounds drains the shared frontier exactly like the
// single-query runRounds: whole frontier per round, slots fanned across
// the worker pool by an atomic counter, children merged back in frontier
// order. Every (query, group) verdict depends only on its own
// contribution list, so the merged outcome is identical at every worker
// count; the frontier-order merge keeps runs reproducible.
func runBatchRounds(s *searcher, bws []*batchWorker, first []*batchCandidate) error {
	round := first
	var firstErr error
	for len(round) > 0 && firstErr == nil {
		children := make([][]*batchCandidate, len(round))
		errs := make([]error, len(round))
		if s.workers == 1 || len(round) < minFanoutRound {
			// Small frontier (or a sequential pool): run inline on worker
			// 0 — verdicts are order-independent, so this changes
			// wall-clock only.
			for j := range round {
				children[j], errs[j] = bws[0].process(round[j])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			spawn := s.workers
			if spawn > len(round) {
				spawn = len(round)
			}
			for i := 0; i < spawn; i++ {
				wg.Add(1)
				go func(bw *batchWorker) {
					defer wg.Done()
					for {
						j := int(next.Add(1)) - 1
						if j >= len(round) {
							return
						}
						children[j], errs[j] = bw.process(round[j])
					}
				}(bws[i])
			}
			wg.Wait()
		}
		var next []*batchCandidate
		for i := range children {
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
			next = append(next, children[i]...)
		}
		round = next
	}
	return firstErr
}
