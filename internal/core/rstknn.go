package core

import (
	"context"
	"fmt"
	"sort"

	"rstknn/internal/iurtree"
	"rstknn/internal/pq"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// RefineStrategy selects which contributor a candidate refines next when
// its contribution list is too coarse to decide.
type RefineStrategy int

const (
	// RefineByMaxUpper refines the contributor with the largest upper
	// bound first — the one most likely to hold real top-k neighbors.
	// This is the plain IUR/CIUR search order.
	RefineByMaxUpper RefineStrategy = iota
	// RefineByEntropy refines the textually most mixed contributor first
	// (highest cluster entropy) among the decision-relevant ones, the
	// paper's E-CIUR optimization. Falls back to RefineByMaxUpper
	// ordering on unclustered trees.
	RefineByEntropy
)

// String implements fmt.Stringer.
func (s RefineStrategy) String() string {
	switch s {
	case RefineByMaxUpper:
		return "max-upper"
	case RefineByEntropy:
		return "entropy"
	default:
		return fmt.Sprintf("RefineStrategy(%d)", int(s))
	}
}

// Options configure an RSTkNN query.
type Options struct {
	// K is the rank cutoff: an object is a result when the query is at
	// least as similar as the object's k-th nearest neighbor.
	K int
	// Alpha weights spatial proximity against textual similarity.
	Alpha float64
	// Sim is the textual measure; nil defaults to Extended Jaccard.
	Sim vector.TextSim
	// Strategy picks the contribution refinement order.
	Strategy RefineStrategy
	// GroupRefine allows up to this many contributor node refinements
	// (each one node read) on an *internal* candidate group before the
	// candidate is expanded into its children. Free rebounds of inherited
	// bounds are always performed; 0 expands as soon as rebounds stop
	// helping.
	GroupRefine int
	// EagerBounds disables the lazy bound inheritance: every contributor
	// of every new candidate group is bounded against the group
	// immediately at expansion time instead of on first use. Exists for
	// the DESIGN.md ablation; lazy (false) is strictly better in
	// practice because pruned groups never pay for tight bounds.
	EagerBounds bool
	// Ctx, when non-nil, makes the query cancellable: it is checked
	// before every node read (expansions and contributor refinements),
	// and the search aborts with ctx.Err() once it is done.
	Ctx context.Context
	// Tracker is the query's execution context at the storage layer:
	// when non-nil, every node read charges its simulated I/O here as
	// well as on the store's global counters, so per-query cost stays
	// exact while other queries run concurrently.
	Tracker *storage.Tracker
}

// checkCtx returns the context's error, if a context is set and done.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Metrics reports the work one query performed. Simulated I/O is tracked
// separately on the tree's storage layer.
type Metrics struct {
	// NodesRead is the number of tree nodes fetched from storage.
	NodesRead int
	// ExactSims and BoundEvals count similarity computations.
	ExactSims  int64
	BoundEvals int64
	// GroupPruned / GroupReported count objects decided at node
	// granularity (never visited individually) by the two pruning rules.
	GroupPruned   int
	GroupReported int
	// Candidates is the number of object-level candidates examined.
	Candidates int
	// Refinements counts contributor refinements (node reads replacing a
	// contributor with its children); Rebounds counts the free, CPU-only
	// re-tightenings of inherited bounds.
	Refinements int
	Rebounds    int
}

// Outcome is the result of one RSTkNN query.
type Outcome struct {
	// Results holds the IDs of all objects whose top-k would include the
	// query, sorted ascending for determinism.
	Results []int32
	Metrics Metrics
}

// group is one decision unit: the objects of one text cluster below the
// candidate's entry (or all of them, cluster = -1, on unclustered trees).
// Scoping decisions to (entry, cluster) is what makes the CIUR-tree
// effective: the candidate-side textual envelope is the cluster's, not
// the node's mixture, so both the query bounds and the kNN bounds
// tighten dramatically for textually clustered data.
type group struct {
	cluster int32
	env     vector.Envelope
	count   int32
	q       interval
	cl      contributionList
}

// candidate is a tree entry with its still-undecided groups. Keeping the
// groups of one entry together means expansion reads the node exactly
// once no matter how many clusters remain undecided.
type candidate struct {
	entry  iurtree.Entry
	groups []*group
}

// RSTkNN answers the reverse spatial-textual k nearest neighbor query on
// a sealed IUR-tree or CIUR-tree: it returns every indexed object o such
// that SimST(o, q) >= SimST(o, o_k), where o_k is o's k-th most similar
// indexed object (excluding o itself). Objects with fewer than k
// neighbors are always results.
func RSTkNN(t *iurtree.Tree, q Query, opt Options) (*Outcome, error) {
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	if err := checkCtx(opt.Ctx); err != nil {
		return nil, err
	}
	out := &Outcome{}
	if t.Len() == 0 {
		return out, nil
	}
	s := &searcher{
		tree:   t,
		scorer: NewScorer(opt.Alpha, t.MaxD(), opt.Sim),
		opt:    opt,
		out:    out,
	}
	if err := s.run(&q); err != nil {
		return nil, err
	}
	out.Metrics.ExactSims = s.scorer.ExactCount
	out.Metrics.BoundEvals = s.scorer.BoundCount
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i] < out.Results[j] })
	return out, nil
}

type searcher struct {
	tree   *iurtree.Tree
	scorer *Scorer
	opt    Options
	out    *Outcome
	// selLo/selHi are reused across every kNN-bound evaluation of the
	// query to avoid per-iteration allocation.
	selLo, selHi kthSelector
}

func (s *searcher) readNode(id storage.NodeID) (*iurtree.Node, error) {
	if err := checkCtx(s.opt.Ctx); err != nil {
		return nil, err
	}
	n, err := s.tree.ReadNodeTracked(id, s.opt.Tracker)
	if err != nil {
		return nil, err
	}
	s.out.Metrics.NodesRead++
	return n, nil
}

func (s *searcher) run(q *Query) error {
	root := s.tree.RootEntry()
	if root.Count == 1 {
		// A single object: it has no neighbors, so the k-th NN similarity
		// is -Inf and the object is always a result.
		n, err := s.readNode(root.Child)
		if err != nil {
			return err
		}
		s.out.Metrics.Candidates++
		s.out.Results = append(s.out.Results, n.Entries[0].ObjID)
		return nil
	}

	// Seed: the root's children, every cluster group undecided, each
	// child contributing to the others. The pseudo parent groups carry
	// empty contribution lists.
	rootNode, err := s.readNode(root.Child)
	if err != nil {
		return err
	}
	seeds := make([]*group, 0, len(root.Clusters)+1)
	if s.tree.Clustered() && len(root.Clusters) > 0 {
		for _, cs := range root.Clusters {
			seeds = append(seeds, &group{cluster: cs.Cluster})
		}
	} else {
		seeds = append(seeds, &group{cluster: -1})
	}
	queue := pq.NewMax[*candidate]()
	s.pushChildren(queue, &root, rootNode.Entries, seeds, q)

	for !queue.Empty() {
		c, _ := queue.Pop()
		if err := s.process(queue, c, q); err != nil {
			return err
		}
	}
	return nil
}

// clusterGroupOf returns the child's cluster summary matching the parent
// group's cluster, or nil when the child holds no such objects. For
// whole-node groups (cluster -1) it synthesizes a summary covering the
// entire entry.
func clusterGroupOf(e *iurtree.Entry, cluster int32) *iurtree.ClusterSummary {
	if cluster < 0 {
		return &iurtree.ClusterSummary{Cluster: -1, Count: e.Count, Env: e.Env}
	}
	for i := range e.Clusters {
		if e.Clusters[i].Cluster == cluster {
			return &e.Clusters[i]
		}
	}
	return nil
}

// pushChildren turns the entries of an expanded node into candidates.
// Each surviving parent group is projected onto every child that holds
// objects of its cluster; the child group inherits the parent group's
// contribution list and gains the child's siblings as contributors.
// Inherited and sibling bounds are kept at parent/node granularity and
// marked stale — valid for the group because its objects are a subset of
// what the bounds cover — and are tightened lazily when the group is
// processed, keeping expansion cost linear in the fan-out.
func (s *searcher) pushChildren(queue *pq.Queue[*candidate], parent *iurtree.Entry, children []iurtree.Entry, parentGroups []*group, q *Query) {
	parentSide := sideOf(parent)
	var sibParts [][]part // lazily computed once, shared by all groups
	for i := range children {
		child := &children[i]
		var groups []*group
		for _, pg := range parentGroups {
			cs := clusterGroupOf(child, pg.cluster)
			if cs == nil || cs.Count == 0 {
				continue
			}
			if sibParts == nil {
				sibParts = make([][]part, len(children))
				for j := range children {
					sibParts[j] = s.scorer.entryBounds(parentSide, &children[j])
				}
			}
			g := &group{
				cluster: pg.cluster,
				env:     cs.Env,
				count:   cs.Count,
			}
			g.q = s.scorer.queryBounds(side{rect: child.Rect, env: cs.Env, exact: child.IsObject()}, q)
			g.cl.self = s.scorer.selfParts(child, pg.cluster, cs.Env, cs.Count)
			g.cl.contributors = make([]contributor, 0, len(pg.cl.contributors)+len(children)-1)
			for j := range pg.cl.contributors {
				g.cl.contributors = append(g.cl.contributors, contributor{
					entry: pg.cl.contributors[j].entry,
					parts: pg.cl.contributors[j].parts,
					stale: true,
				})
			}
			for j := range children {
				if j == i {
					continue
				}
				g.cl.contributors = append(g.cl.contributors, contributor{
					entry: children[j],
					parts: sibParts[j],
					stale: true,
				})
			}
			if s.opt.EagerBounds {
				gSide := side{rect: child.Rect, env: cs.Env, exact: child.IsObject()}
				s.reboundStale(gSide, &g.cl)
			}
			groups = append(groups, g)
		}
		if len(groups) == 0 {
			continue
		}
		best := negInf
		for _, g := range groups {
			if g.q.hi > best {
				best = g.q.hi
			}
		}
		queue.Push(&candidate{entry: *child, groups: groups}, best)
	}
}

// verdict is the outcome of deciding one group.
type verdict int

const (
	verdictPruned verdict = iota
	verdictReported
	verdictExpand
)

// process drives every group of a candidate to a decision, expanding the
// entry (one node read) for the groups that stay undecided.
func (s *searcher) process(queue *pq.Queue[*candidate], c *candidate, q *Query) error {
	var pending []*group
	for _, g := range c.groups {
		v, err := s.decideGroup(c, g)
		if err != nil {
			return err
		}
		switch v {
		case verdictPruned:
			if c.entry.IsObject() {
				s.out.Metrics.Candidates++
			} else {
				s.out.Metrics.GroupPruned += int(g.count)
			}
		case verdictReported:
			if c.entry.IsObject() {
				s.out.Metrics.Candidates++
				s.out.Results = append(s.out.Results, c.entry.ObjID)
			} else {
				s.out.Metrics.GroupReported += int(g.count)
				if err := s.collect(&c.entry, g.cluster); err != nil {
					return err
				}
			}
		case verdictExpand:
			pending = append(pending, g)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	node, err := s.readNode(c.entry.Child)
	if err != nil {
		return err
	}
	s.pushChildren(queue, &c.entry, node.Entries, pending, q)
	return nil
}

// decideGroup evaluates one group against the two pruning rules,
// tightening its contribution list in two tiers: *rebounds* recompute the
// stale inherited bounds against this group (pure CPU), *refinements*
// replace a contributor node with its children (one node read each).
// Object-level groups always reach a decision; internal groups may return
// verdictExpand once rebounds and the refinement budget are exhausted.
func (s *searcher) decideGroup(c *candidate, g *group) (verdict, error) {
	groupBudget := s.opt.GroupRefine
	gSide := side{rect: c.entry.Rect, env: g.env, exact: c.entry.IsObject()}
	for {
		s.selLo.reset(s.opt.K)
		s.selHi.reset(s.opt.K)
		g.cl.knnBoundsInto(&s.selLo, &s.selHi)
		knnl, knnu := s.selLo.kth(), s.selHi.kth()
		if g.q.hi < knnl {
			// Rule 1: the query can never reach any member's top-k.
			return verdictPruned, nil
		}
		if g.q.lo >= knnu {
			// Rule 2: the query ranks within every member's top-k.
			return verdictReported, nil
		}
		// Tier 1: make every inherited bound group-relative (pure CPU).
		// Loose ancestor-level lower bounds keep kNNL artificially low,
		// so all of them are tightened in one pass the first time the
		// group turns out to be undecided.
		if s.reboundStale(gSide, &g.cl) {
			continue
		}
		idx := g.cl.refinable(s.opt.Strategy, s.tree.NumClusters(), knnu)
		if c.entry.IsObject() {
			// Undecided object: refine its contribution list. The loop
			// is guaranteed to decide once every contributor is a fresh
			// object, because then knnl == knnu and the two rules are
			// exhaustive.
			if idx < 0 {
				return 0, fmt.Errorf("core: undecidable object %d with exact bounds [%g, %g], query %g",
					c.entry.ObjID, knnl, knnu, g.q.lo)
			}
			if err := s.refine(gSide, &g.cl, idx); err != nil {
				return 0, err
			}
			continue
		}
		if groupBudget > 0 && idx >= 0 {
			groupBudget--
			if err := s.refine(gSide, &g.cl, idx); err != nil {
				return 0, err
			}
			continue
		}
		return verdictExpand, nil
	}
}

// reboundStale recomputes every stale contributor's bounds against the
// group itself (they were inherited from an ancestor). No I/O. Returns
// true when anything changed.
func (s *searcher) reboundStale(gSide side, cl *contributionList) bool {
	changed := false
	for i := range cl.contributors {
		ct := &cl.contributors[i]
		if !ct.stale {
			continue
		}
		ct.parts = s.scorer.entryBounds(gSide, &ct.entry)
		ct.stale = false
		s.out.Metrics.Rebounds++
		changed = true
	}
	return changed
}

// refine replaces contributor idx with its children, re-bounded against
// the group.
func (s *searcher) refine(gSide side, cl *contributionList, idx int) error {
	node, err := s.readNode(cl.contributors[idx].entry.Child)
	if err != nil {
		return err
	}
	s.out.Metrics.Refinements++
	repl := make([]contributor, len(node.Entries))
	for i := range node.Entries {
		repl[i] = contributor{
			entry: node.Entries[i],
			parts: s.scorer.entryBounds(gSide, &node.Entries[i]),
		}
	}
	cl.replace(idx, repl)
	return nil
}

// collect appends the object IDs below e belonging to the given cluster
// (every object when cluster < 0) to the result set, reading the subtree
// (the I/O is charged like any other access).
func (s *searcher) collect(e *iurtree.Entry, cluster int32) error {
	if e.IsObject() {
		s.out.Results = append(s.out.Results, e.ObjID)
		return nil
	}
	node, err := s.readNode(e.Child)
	if err != nil {
		return err
	}
	for i := range node.Entries {
		child := &node.Entries[i]
		if cluster >= 0 && clusterCount(child, cluster) == 0 {
			continue
		}
		if err := s.collect(child, cluster); err != nil {
			return err
		}
	}
	return nil
}

// clusterCount returns the number of objects of the given cluster below
// the entry.
func clusterCount(e *iurtree.Entry, cluster int32) int32 {
	for i := range e.Clusters {
		if e.Clusters[i].Cluster == cluster {
			return e.Clusters[i].Count
		}
	}
	return 0
}
