package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rstknn/internal/iurtree"
	"rstknn/internal/pq"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

// RefineStrategy selects which contributor a candidate refines next when
// its contribution list is too coarse to decide.
type RefineStrategy int

const (
	// RefineByMaxUpper refines the contributor with the largest upper
	// bound first — the one most likely to hold real top-k neighbors.
	// This is the plain IUR/CIUR search order.
	RefineByMaxUpper RefineStrategy = iota
	// RefineByEntropy refines the textually most mixed contributor first
	// (highest cluster entropy) among the decision-relevant ones, the
	// paper's E-CIUR optimization. Falls back to RefineByMaxUpper
	// ordering on unclustered trees.
	RefineByEntropy
)

// String implements fmt.Stringer.
func (s RefineStrategy) String() string {
	switch s {
	case RefineByMaxUpper:
		return "max-upper"
	case RefineByEntropy:
		return "entropy"
	default:
		return fmt.Sprintf("RefineStrategy(%d)", int(s))
	}
}

// Options configure an RSTkNN query.
type Options struct {
	// K is the rank cutoff: an object is a result when the query is at
	// least as similar as the object's k-th nearest neighbor.
	K int
	// Alpha weights spatial proximity against textual similarity.
	Alpha float64
	// Sim is the textual measure; nil defaults to Extended Jaccard.
	Sim vector.TextSim
	// Strategy picks the contribution refinement order.
	Strategy RefineStrategy
	// GroupRefine allows up to this many contributor node refinements
	// (each one node read) on an *internal* candidate group before the
	// candidate is expanded into its children. Free rebounds of inherited
	// bounds are always performed; 0 expands as soon as rebounds stop
	// helping.
	GroupRefine int
	// EagerBounds disables the lazy bound inheritance: every contributor
	// of every new candidate group is bounded against the group
	// immediately at expansion time instead of on first use. Exists for
	// the DESIGN.md ablation; lazy (false) is strictly better in
	// practice because pruned groups never pay for tight bounds.
	EagerBounds bool
	// Workers bounds the intra-query parallelism: the candidate frontier
	// is processed in rounds, fanning the per-candidate work (bound
	// tightening, hit/prune decisions, node reads) across this many
	// goroutines. Values <= 0 default to runtime.GOMAXPROCS(0); 1 runs
	// the classic sequential best-first loop; values above GOMAXPROCS
	// are clamped to it (idle goroutines on a saturated CPU only add
	// scheduling overhead). Every verdict depends only on the
	// candidate's own contribution list, so results and Metrics are
	// identical at every worker count.
	Workers int
	// BoundTrace, when non-nil, is invoked with the final kNN bounds of
	// every object-level candidate the moment it is decided. It exists
	// for determinism tests and debugging; it must be safe for
	// concurrent use when Workers != 1.
	BoundTrace func(objID int32, knnl, knnu float64)
	// Ctx, when non-nil, makes the query cancellable: it is checked
	// before every node read (expansions and contributor refinements),
	// and the search aborts with ctx.Err() once it is done.
	Ctx context.Context
	// Tracker is the query's execution context at the storage layer:
	// when non-nil, every node read charges its simulated I/O here as
	// well as on the store's global counters, so per-query cost stays
	// exact while other queries run concurrently.
	Tracker *storage.Tracker
}

// checkCtx returns the context's error, if a context is set and done.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// effectiveWorkers resolves the Workers option to a concrete pool size.
// Requests beyond runtime.GOMAXPROCS(0) are clamped: with every CPU
// already saturated an extra goroutine can only add scheduling overhead,
// never speedup — the pinned 1-CPU baseline measured Workers=2 at 0.93x
// sequential before the clamp. Results are identical either way.
func effectiveWorkers(w int) int {
	mp := runtime.GOMAXPROCS(0)
	if w <= 0 || w > mp {
		return mp
	}
	return w
}

// Metrics reports the work one query performed. Simulated I/O is tracked
// separately on the tree's storage layer. Every counter is a sum of
// per-candidate contributions, so the totals are identical whether the
// candidates were processed sequentially or across a worker pool.
type Metrics struct {
	// NodesRead is the number of tree nodes fetched from storage.
	NodesRead int
	// ExactSims and BoundEvals count similarity computations.
	ExactSims  int64
	BoundEvals int64
	// GroupPruned / GroupReported count objects decided at node
	// granularity (never visited individually) by the two pruning rules.
	GroupPruned   int
	GroupReported int
	// Candidates is the number of object-level candidates examined.
	Candidates int
	// Refinements counts contributor refinements (node reads replacing a
	// contributor with its children); Rebounds counts the free, CPU-only
	// re-tightenings of inherited bounds.
	Refinements int
	Rebounds    int
}

// add accumulates o into m.
func (m *Metrics) add(o *Metrics) {
	m.NodesRead += o.NodesRead
	m.ExactSims += o.ExactSims
	m.BoundEvals += o.BoundEvals
	m.GroupPruned += o.GroupPruned
	m.GroupReported += o.GroupReported
	m.Candidates += o.Candidates
	m.Refinements += o.Refinements
	m.Rebounds += o.Rebounds
}

// Outcome is the result of one RSTkNN query.
type Outcome struct {
	// Results holds the IDs of all objects whose top-k would include the
	// query, sorted ascending for determinism.
	Results []int32
	Metrics Metrics
}

// group is one decision unit: the objects of one text cluster below the
// candidate's entry (or all of them, cluster = -1, on unclustered trees).
// Scoping decisions to (entry, cluster) is what makes the CIUR-tree
// effective: the candidate-side textual envelope is the cluster's, not
// the node's mixture, so both the query bounds and the kNN bounds
// tighten dramatically for textually clustered data.
type group struct {
	cluster int32
	env     vector.Envelope
	count   int32
	q       interval
	cl      contributionList
}

// candidate is a tree entry with its still-undecided groups. Keeping the
// groups of one entry together means expansion reads the node exactly
// once no matter how many clusters remain undecided.
type candidate struct {
	entry iurtree.Entry
	// idx is the entry's position within its parent node. Single-query
	// search never consults it; the shared-traversal batch driver uses it
	// as the merge key that folds the per-query children of one expanded
	// node back into one frontier slot per child (see batch.go).
	idx    int
	groups []*group
}

// queued is a candidate with its queue priority (the best query upper
// bound among its groups).
type queued struct {
	c   *candidate
	pri float64
}

// RSTkNN answers the reverse spatial-textual k nearest neighbor query on
// a sealed IUR-tree or CIUR-tree: it returns every indexed object o such
// that SimST(o, q) >= SimST(o, o_k), where o_k is o's k-th most similar
// indexed object (excluding o itself). Objects with fewer than k
// neighbors are always results.
func RSTkNN(t *iurtree.Snapshot, q Query, opt Options) (*Outcome, error) {
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	if opt.Alpha < 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("core: Alpha must be in [0,1], got %g", opt.Alpha)
	}
	if err := checkCtx(opt.Ctx); err != nil {
		return nil, err
	}
	out := &Outcome{}
	if t.Len() == 0 {
		return out, nil
	}
	s := &searcher{
		tree:    t,
		opt:     opt,
		out:     out,
		workers: effectiveWorkers(opt.Workers),
	}
	if err := s.run(&q); err != nil {
		return nil, err
	}
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i] < out.Results[j] })
	return out, nil
}

// searcher coordinates one query: it seeds the candidate frontier, drives
// it to exhaustion (sequentially or in parallel rounds), and merges the
// per-worker tallies into the Outcome.
type searcher struct {
	tree    *iurtree.Snapshot
	opt     Options
	out     *Outcome
	workers int
}

// worker owns everything one goroutine touches while deciding candidates:
// a private Scorer (so similarity counters need no synchronization), a
// pooled scratch, and local result/metric accumulators. All cross-worker
// aggregates are sums or sets, so the merge is order-independent and the
// outcome identical to a sequential run.
type worker struct {
	s       *searcher
	scorer  Scorer
	scratch *scratch
	metrics Metrics
	results []int32

	// Per-query lane state. Single-query search fixes k and trace from
	// the searcher's Options at newWorker time; the shared-traversal
	// batch driver retargets all four fields per active query (see
	// batchWorker.begin), so the decision machinery below never consults
	// opt.K or opt.BoundTrace directly.
	k     int
	trace func(objID int32, knnl, knnu float64)
	// qtr is the per-query tracker shared reads are attributed to in
	// batch mode; single-query mode charges s.opt.Tracker via the store.
	qtr *storage.Tracker
	// batch, when non-nil, routes every node read through the batch's
	// once-per-node view table instead of the store.
	batch *batchTable
}

// newWorker prepares one worker for the searcher.
func (s *searcher) newWorker() *worker {
	return &worker{
		s:       s,
		scorer:  *NewScorer(s.opt.Alpha, s.tree.MaxD(), s.opt.Sim),
		scratch: getScratch(),
		k:       s.opt.K,
		trace:   s.opt.BoundTrace,
	}
}

// close merges the worker's tallies into the outcome and recycles its
// scratch. Call only after every candidate referencing the scratch's
// arenas is decided.
func (w *worker) close() {
	w.metrics.ExactSims += w.scorer.ExactCount
	w.metrics.BoundEvals += w.scorer.BoundCount
	w.s.out.Metrics.add(&w.metrics)
	w.s.out.Results = append(w.s.out.Results, w.results...)
	w.scratch.release()
	w.scratch = nil
}

// readView fetches a node through the zero-copy view path: same
// simulated I/O and cancellation semantics as an eager read, but no
// *Node materialization — fixed entry fields come straight from the page
// bytes and the textual payload from the snapshot's bound cache. Pair
// every successful read with doneView to recycle the offset buffer.
func (w *worker) readView(id storage.NodeID) (iurtree.NodeView, error) {
	if err := checkCtx(w.s.opt.Ctx); err != nil {
		return iurtree.NodeView{}, err
	}
	if w.batch != nil {
		// Shared-traversal batch: the table fetches each node at most
		// once per batch (charging the physical I/O to the batch
		// tracker); this query records the logical read — NodesRead stays
		// bit-identical to an independent run — plus one shared-read
		// attribution on its own tracker.
		v, err := w.batch.load(id)
		if err != nil {
			return iurtree.NodeView{}, err
		}
		w.qtr.ChargeSharedRead()
		w.metrics.NodesRead++
		return v, nil
	}
	v, err := w.s.tree.ReadViewTracked(id, w.s.opt.Tracker, w.scratch.getViewBuf())
	if err != nil {
		return iurtree.NodeView{}, err
	}
	w.metrics.NodesRead++
	return v, nil
}

// doneView recycles a view's offset buffer once no accessor will be
// called on it again. Batch-table views keep their buffers — the table
// owns them for the lifetime of the batch, and other queries may still
// read through the same view.
func (w *worker) doneView(v *iurtree.NodeView) {
	if w.batch != nil {
		return
	}
	w.scratch.putViewBuf(v.RecycleBuf())
}

// run seeds the frontier with the root's children and drains it.
func (s *searcher) run(q *Query) error {
	root := s.tree.RootEntry()
	w0 := s.newWorker()
	if root.Count == 1 {
		// A single object: it has no neighbors, so the k-th NN similarity
		// is -Inf and the object is always a result.
		v, err := w0.readView(root.Child)
		if err != nil {
			w0.close()
			return err
		}
		w0.metrics.Candidates++
		w0.results = append(w0.results, v.EntryObjID(0))
		w0.doneView(&v)
		w0.close()
		return nil
	}

	// Seed: the root's children, every cluster group undecided, each
	// child contributing to the others. The pseudo parent groups carry
	// empty contribution lists.
	rootView, err := w0.readView(root.Child)
	if err != nil {
		w0.close()
		return err
	}
	rootEntries := rootView.AppendEntries(w0.scratch.entries[:0])
	w0.doneView(&rootView)
	seeds := make([]*group, 0, len(root.Clusters)+1)
	if s.tree.Clustered() && len(root.Clusters) > 0 {
		for _, cs := range root.Clusters {
			seeds = append(seeds, &group{cluster: cs.Cluster})
		}
	} else {
		seeds = append(seeds, &group{cluster: -1})
	}
	first := w0.buildChildren(&root, rootEntries, seeds, q)
	w0.scratch.entries = rootEntries[:0]

	if s.workers == 1 {
		err = s.runSequential(w0, first, q)
		w0.close()
		return err
	}
	return s.runRounds(w0, first, q)
}

// runSequential is the classic best-first loop: one candidate at a time,
// popped in descending query-upper-bound order.
func (s *searcher) runSequential(w *worker, first []queued, q *Query) error {
	queue := pq.NewMax[*candidate]()
	for _, qc := range first {
		queue.Push(qc.c, qc.pri)
	}
	for !queue.Empty() {
		c, _ := queue.Pop()
		children, err := w.process(c, q)
		if err != nil {
			return err
		}
		for _, qc := range children {
			queue.Push(qc.c, qc.pri)
		}
	}
	return nil
}

// minFanoutRound is the smallest frontier size a round fans out across
// the worker pool; smaller rounds run inline on worker 0. The tail of a
// search is many rounds of a handful of candidates each, and paying a
// goroutine spawn plus a barrier per tiny round is why the pinned
// baseline showed Workers=2 running 0.93x sequential on a 1-CPU machine.
const minFanoutRound = 8

// runRounds is the intra-query parallel engine: the whole frontier is
// processed per round, with candidates fanned across the worker pool.
// Every group's verdict depends only on its own contribution list — never
// on another candidate or on processing order — so the only coordination
// is the round barrier, and the merged outcome is bit-identical to the
// sequential engine's. w0 (which already carries the seed-phase tallies)
// serves as worker 0.
func (s *searcher) runRounds(w0 *worker, first []queued, q *Query) error {
	ws := make([]*worker, s.workers)
	ws[0] = w0
	for i := 1; i < len(ws); i++ {
		ws[i] = s.newWorker()
	}
	// Workers are closed (merging tallies, recycling arenas) only after
	// the frontier is fully drained: a candidate built by one worker may
	// reference arena-backed bounds owned by another until it is decided.
	defer func() {
		for _, w := range ws {
			w.close()
		}
	}()

	round := first
	var firstErr error
	for len(round) > 0 && firstErr == nil {
		children := make([][]queued, len(round))
		errs := make([]error, len(round))
		if len(round) < minFanoutRound {
			// Small frontier: goroutine spawn plus the round barrier cost
			// more than the candidates' work, so run them inline on
			// worker 0. Verdicts depend only on each candidate's own
			// contribution list, so this changes wall-clock only.
			for j := range round {
				children[j], errs[j] = ws[0].process(round[j].c, q)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			spawn := s.workers
			if spawn > len(round) {
				spawn = len(round)
			}
			for i := 0; i < spawn; i++ {
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					for {
						j := int(next.Add(1)) - 1
						if j >= len(round) {
							return
						}
						children[j], errs[j] = w.process(round[j].c, q)
					}
				}(ws[i])
			}
			wg.Wait()
		}
		// Deterministic merge: children enter the next round in frontier
		// order. (Order does not affect verdicts; it keeps runs
		// reproducible for debugging.)
		var next []queued
		for i := range children {
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
			next = append(next, children[i]...)
		}
		round = next
	}
	return firstErr
}

// clusterGroupOf returns the child's cluster summary matching the parent
// group's cluster, or nil when the child holds no such objects. For
// whole-node groups (cluster -1) it synthesizes a summary covering the
// entire entry.
func clusterGroupOf(e *iurtree.Entry, cluster int32) *iurtree.ClusterSummary {
	if cluster < 0 {
		return &iurtree.ClusterSummary{Cluster: -1, Count: e.Count, Env: e.Env}
	}
	for i := range e.Clusters {
		if e.Clusters[i].Cluster == cluster {
			return &e.Clusters[i]
		}
	}
	return nil
}

// contribHeadroom is the arena growth slack reserved on every new
// contribution list so in-place refinement appends (which replace one
// contributor with a node's children) usually stay inside the carve.
const contribHeadroom = 8

// buildChildren turns the entries of an expanded node into candidates.
// Each surviving parent group is projected onto every child that holds
// objects of its cluster; the child group inherits the parent group's
// contribution list and gains the child's siblings as contributors.
// Inherited and sibling bounds are kept at parent/node granularity and
// marked stale — valid for the group because its objects are a subset of
// what the bounds cover — and are tightened lazily when the group is
// processed, keeping expansion cost linear in the fan-out.
//
// The returned candidates (and the arena-backed bounds they reference)
// are only published to other workers through the round barrier, so the
// scratch-owning worker is the sole writer until then.
func (w *worker) buildChildren(parent *iurtree.Entry, children []iurtree.Entry, parentGroups []*group, q *Query) []queued {
	parentSide := sideOf(parent)
	sibParts := w.scratch.sibParts[:0] // lazily filled once, shared by all groups
	var out []queued
	for i := range children {
		child := &children[i]
		var groups []*group
		for _, pg := range parentGroups {
			cs := clusterGroupOf(child, pg.cluster)
			if cs == nil || cs.Count == 0 {
				continue
			}
			if len(sibParts) == 0 {
				for j := range children {
					sibParts = append(sibParts, w.scorer.entryBoundsInto(w.scratch, parentSide, &children[j]))
				}
			}
			g := &group{
				cluster: pg.cluster,
				env:     cs.Env,
				count:   cs.Count,
			}
			g.q = w.scorer.queryBounds(side{rect: child.Rect, env: cs.Env, exact: child.IsObject()}, q)
			g.cl.self = w.scorer.selfPartsInto(w.scratch, child, pg.cluster, cs.Env, cs.Count)
			g.cl.contributors = allocContribs(w.scratch, len(pg.cl.contributors)+len(children)-1, contribHeadroom)
			for j := range pg.cl.contributors {
				g.cl.contributors = append(g.cl.contributors, contributor{
					entry: pg.cl.contributors[j].entry,
					parts: pg.cl.contributors[j].parts,
					stale: true,
				})
			}
			for j := range children {
				if j == i {
					continue
				}
				g.cl.contributors = append(g.cl.contributors, contributor{
					entry: children[j],
					parts: sibParts[j],
					stale: true,
				})
			}
			if w.s.opt.EagerBounds {
				gSide := side{rect: child.Rect, env: cs.Env, exact: child.IsObject()}
				w.reboundStale(gSide, &g.cl)
			}
			groups = append(groups, g)
		}
		if len(groups) == 0 {
			continue
		}
		best := negInf
		for _, g := range groups {
			if g.q.hi > best {
				best = g.q.hi
			}
		}
		out = append(out, queued{c: &candidate{entry: *child, idx: i, groups: groups}, pri: best})
	}
	w.scratch.sibParts = sibParts[:0]
	return out
}

// verdict is the outcome of deciding one group.
type verdict int

const (
	verdictPruned verdict = iota
	verdictReported
	verdictExpand
)

// process drives every group of a candidate to a decision, expanding the
// entry (one node read) for the groups that stay undecided, and returns
// the resulting child candidates.
func (w *worker) process(c *candidate, q *Query) ([]queued, error) {
	var pending []*group
	for _, g := range c.groups {
		v, err := w.decideGroup(c, g)
		if err != nil {
			return nil, err
		}
		if v == verdictExpand {
			pending = append(pending, g)
			continue
		}
		if err := w.settle(c, g, v); err != nil {
			return nil, err
		}
	}
	if len(pending) == 0 {
		return nil, nil
	}
	v, err := w.readView(c.entry.Child)
	if err != nil {
		return nil, err
	}
	children := v.AppendEntries(w.scratch.entries[:0])
	w.doneView(&v)
	out := w.buildChildren(&c.entry, children, pending, q)
	w.scratch.entries = children[:0]
	return out, nil
}

// settle applies one decided group's verdict: the metrics bookkeeping,
// result emission, and subtree collection shared by the single-query and
// batch drivers, so their accounting is bit-identical by construction.
func (w *worker) settle(c *candidate, g *group, v verdict) error {
	switch v {
	case verdictPruned:
		if c.entry.IsObject() {
			w.metrics.Candidates++
		} else {
			w.metrics.GroupPruned += int(g.count)
		}
	case verdictReported:
		if c.entry.IsObject() {
			w.metrics.Candidates++
			w.results = append(w.results, c.entry.ObjID)
		} else {
			w.metrics.GroupReported += int(g.count)
			return w.collect(&c.entry, g.cluster)
		}
	}
	return nil
}

// decideGroup evaluates one group against the two pruning rules,
// tightening its contribution list in two tiers: *rebounds* recompute the
// stale inherited bounds against this group (pure CPU), *refinements*
// replace a contributor node with its children (one node read each).
// Object-level groups always reach a decision; internal groups may return
// verdictExpand once rebounds and the refinement budget are exhausted.
func (w *worker) decideGroup(c *candidate, g *group) (verdict, error) {
	groupBudget := w.s.opt.GroupRefine
	gSide := side{rect: c.entry.Rect, env: g.env, exact: c.entry.IsObject()}
	sc := w.scratch
	for {
		sc.selLo.reset(w.k)
		sc.selHi.reset(w.k)
		g.cl.knnBoundsInto(&sc.selLo, &sc.selHi)
		knnl, knnu := sc.selLo.kth(), sc.selHi.kth()
		if g.q.hi < knnl {
			// Rule 1: the query can never reach any member's top-k.
			if c.entry.IsObject() && w.trace != nil {
				w.trace(c.entry.ObjID, knnl, knnu)
			}
			return verdictPruned, nil
		}
		if g.q.lo >= knnu {
			// Rule 2: the query ranks within every member's top-k.
			if c.entry.IsObject() && w.trace != nil {
				w.trace(c.entry.ObjID, knnl, knnu)
			}
			return verdictReported, nil
		}
		// Tier 1: make every inherited bound group-relative (pure CPU).
		// Loose ancestor-level lower bounds keep kNNL artificially low,
		// so all of them are tightened in one pass the first time the
		// group turns out to be undecided.
		if w.reboundStale(gSide, &g.cl) {
			continue
		}
		idx := g.cl.refinable(w.s.opt.Strategy, w.s.tree.NumClusters(), knnu)
		if c.entry.IsObject() {
			// Undecided object: refine its contribution list. The loop
			// is guaranteed to decide once every contributor is a fresh
			// object, because then knnl == knnu and the two rules are
			// exhaustive.
			if idx < 0 {
				return 0, fmt.Errorf("core: undecidable object %d with exact bounds [%g, %g], query %g",
					c.entry.ObjID, knnl, knnu, g.q.lo)
			}
			if err := w.refine(gSide, &g.cl, idx); err != nil {
				return 0, err
			}
			continue
		}
		if groupBudget > 0 && idx >= 0 {
			groupBudget--
			if err := w.refine(gSide, &g.cl, idx); err != nil {
				return 0, err
			}
			continue
		}
		return verdictExpand, nil
	}
}

// reboundStale recomputes every stale contributor's bounds against the
// group itself (they were inherited from an ancestor). No I/O. Returns
// true when anything changed. The fresh parts replace the inherited slice
// (which may be shared with sibling groups) — they never mutate it.
func (w *worker) reboundStale(gSide side, cl *contributionList) bool {
	changed := false
	for i := range cl.contributors {
		ct := &cl.contributors[i]
		if !ct.stale {
			continue
		}
		ct.parts = w.scorer.entryBoundsInto(w.scratch, gSide, &ct.entry)
		ct.stale = false
		w.metrics.Rebounds++
		changed = true
	}
	return changed
}

// refine replaces contributor idx with its children, re-bounded against
// the group. The replacement buffer is scratch-owned: replace() copies it
// into the contribution list, so it is reusable immediately.
func (w *worker) refine(gSide side, cl *contributionList, idx int) error {
	v, err := w.readView(cl.contributors[idx].entry.Child)
	if err != nil {
		return err
	}
	w.metrics.Refinements++
	children := v.AppendEntries(w.scratch.entries[:0])
	w.doneView(&v)
	repl := w.scratch.repl[:0]
	for i := range children {
		repl = append(repl, contributor{
			entry: children[i],
			parts: w.scorer.entryBoundsInto(w.scratch, gSide, &children[i]),
		})
	}
	cl.replace(w.scratch, idx, repl)
	w.scratch.repl = repl[:0]
	w.scratch.entries = children[:0]
	return nil
}

// collect appends the object IDs below e belonging to the given cluster
// (every object when cluster < 0) to the result set, reading the subtree
// (the I/O is charged like any other access).
func (w *worker) collect(e *iurtree.Entry, cluster int32) error {
	if e.IsObject() {
		w.results = append(w.results, e.ObjID)
		return nil
	}
	return w.collectNode(e.Child, cluster)
}

// collectNode is collect below one node, via views: object IDs are read
// straight off the page bytes, and only entries passing the cluster
// filter recurse. The parent's view stays live across the recursion,
// which is why the scratch keeps a stack of offset buffers.
func (w *worker) collectNode(id storage.NodeID, cluster int32) error {
	v, err := w.readView(id)
	if err != nil {
		return err
	}
	n := v.Len()
	for i := 0; i < n; i++ {
		if cluster >= 0 && clusterCountIn(v.EntryClusters(i), cluster) == 0 {
			continue
		}
		if v.EntryIsObject(i) {
			w.results = append(w.results, v.EntryObjID(i))
			continue
		}
		if err := w.collectNode(v.EntryChild(i), cluster); err != nil {
			w.doneView(&v)
			return err
		}
	}
	w.doneView(&v)
	return nil
}

// clusterCountIn returns the number of objects of the given cluster
// among the summaries.
func clusterCountIn(clusters []iurtree.ClusterSummary, cluster int32) int32 {
	for i := range clusters {
		if clusters[i].Cluster == cluster {
			return clusters[i].Count
		}
	}
	return 0
}
