package core

import (
	"rstknn/internal/cluster"
	"rstknn/internal/iurtree"
)

// contributor is one element of a candidate's contribution list: a tree
// entry (node or object) outside the candidate's subtree together with
// similarity bounds of its objects against the candidate's objects. A
// clustered contributor carries one part per cluster.
//
// Bounds are inherited lazily: when a candidate is created by expanding
// its parent, contributors keep the parts computed against the parent (or
// an even higher ancestor). Those bounds remain *valid* for the child —
// every object below the child is also below the parent — just looser,
// so they are marked stale. The search re-tightens a contributor against
// the candidate only when the refinement strategy actually selects it,
// which keeps expansion cost linear in the fan-out instead of quadratic.
type contributor struct {
	entry iurtree.Entry
	parts []part
	// stale marks parts computed against an ancestor of the candidate
	// rather than the candidate itself. Rebinding (recomputing parts
	// against the candidate) is pure CPU — no I/O.
	stale bool
}

// maxHi returns the largest upper bound among the contributor's parts.
func (c *contributor) maxHi() float64 {
	hi := negInf
	for _, p := range c.parts {
		if p.count > 0 && p.hi > hi {
			hi = p.hi
		}
	}
	return hi
}

// contributionList is the candidate-relative list plus the candidate's
// self contribution. It answers the two questions the pruning rules ask:
// kNNL (a lower bound on the k-th NN similarity of every object below the
// candidate) and kNNU (the matching upper bound).
type contributionList struct {
	contributors []contributor
	self         []part
}

// knnBounds computes (kNNL, kNNU) for the given k.
//
// kNNL: every object below the candidate has, for contribution part p,
// p.count neighbors with similarity >= p.lo. Sorting parts by lo
// descending and accumulating counts, the lo at which the running count
// first reaches k is a valid lower bound of the k-th NN similarity.
//
// kNNU mirrors the construction over hi: the k-th largest element of the
// multiset of upper bounds dominates the k-th largest true similarity.
//
// When fewer than k neighbors exist in total both bounds are -Inf: the
// k-th NN does not exist, so any query similarity qualifies.
func (cl *contributionList) knnBounds(k int) (knnl, knnu float64) {
	var lo, hi kthSelector
	lo.reset(k)
	hi.reset(k)
	cl.knnBoundsInto(&lo, &hi)
	return lo.kth(), hi.kth()
}

// knnBoundsInto is the allocation-conscious form: the selectors are reset
// and filled; callers reuse them across iterations.
//
//rstknn:hotpath one call per pruning check of every live candidate
func (cl *contributionList) knnBoundsInto(lo, hi *kthSelector) {
	for _, p := range cl.self {
		if p.count > 0 {
			lo.add(p.lo, p.count)
			hi.add(p.hi, p.count)
		}
	}
	for i := range cl.contributors {
		for _, p := range cl.contributors[i].parts {
			if p.count <= 0 {
				continue
			}
			lo.add(p.lo, p.count)
			hi.add(p.hi, p.count)
		}
	}
}

// kthSelector computes the k-th largest value of a weighted multiset in
// one streaming pass. It keeps a min-heap of the largest values whose
// cumulative count reaches k, evicting the minimum whenever the rest
// still covers k; the heap therefore holds at most k entries and add is
// O(1) for the common case of a value below the current k-th.
type kthSelector struct {
	k      int64
	total  int64 // count sum over all added values (including evicted)
	kept   int64 // count sum over heap entries
	vals   []float64
	counts []int64
}

// reset prepares the selector for a fresh selection of the k-th largest.
//
//rstknn:hotpath selector reuse across pruning checks
func (s *kthSelector) reset(k int) {
	s.k = int64(k)
	s.total = 0
	s.kept = 0
	s.vals = s.vals[:0]
	s.counts = s.counts[:0]
}

// add feeds `count` copies of val into the multiset.
//
//rstknn:hotpath one call per contribution part per pruning check
func (s *kthSelector) add(val float64, count int32) {
	c := int64(count)
	s.total += c
	// Fast path: the heap already covers k with values >= val, so val can
	// never be the k-th largest.
	if s.kept >= s.k && len(s.vals) > 0 && val <= s.vals[0] {
		return
	}
	// Push (val, c). The heaps hold at most k entries, so after a warm
	// first selection the appends below reuse existing capacity.
	s.vals = append(s.vals, val)   //rstknn:allow hotalloc amortized heap growth, capacity is reused once warm
	s.counts = append(s.counts, c) //rstknn:allow hotalloc amortized heap growth, capacity is reused once warm
	s.kept += c
	i := len(s.vals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.vals[parent] <= s.vals[i] {
			break
		}
		s.vals[parent], s.vals[i] = s.vals[i], s.vals[parent]
		s.counts[parent], s.counts[i] = s.counts[i], s.counts[parent]
		i = parent
	}
	// Evict minima no longer needed to cover k.
	for len(s.vals) > 0 && s.kept-s.counts[0] >= s.k {
		s.kept -= s.counts[0]
		s.popMin()
	}
}

func (s *kthSelector) popMin() {
	last := len(s.vals) - 1
	s.vals[0], s.counts[0] = s.vals[last], s.counts[last]
	s.vals = s.vals[:last]
	s.counts = s.counts[:last]
	i := 0
	n := len(s.vals)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.vals[l] < s.vals[m] {
			m = l
		}
		if r < n && s.vals[r] < s.vals[m] {
			m = r
		}
		if m == i {
			return
		}
		s.vals[m], s.vals[i] = s.vals[i], s.vals[m]
		s.counts[m], s.counts[i] = s.counts[i], s.counts[m]
		i = m
	}
}

// kth returns the k-th largest value seen, or -Inf when fewer than k
// values were added in total.
//
//rstknn:hotpath read once per pruning check
func (s *kthSelector) kth() float64 {
	if s.total < s.k || len(s.vals) == 0 {
		return negInf
	}
	return s.vals[0]
}

// refinable returns the index of the contributor the strategy wants to
// tighten next, or -1 when every contributor is a fresh object entry
// (bounds are exact). Stale contributors (any kind) qualify for a free
// rebound; fresh internal nodes qualify for an I/O refinement.
//
// Only contributors that can influence the pending decision are worth
// tightening: lowering kNNU requires shrinking a contributor whose upper
// bound currently occupies one of the top-k slots (maxHi >= knnu). The
// strategy ranks within that decision-relevant set — by upper bound
// (RefineByMaxUpper) or by textual entropy (RefineByEntropy, the E-CIUR
// optimization: mixed contributors have the loosest envelopes, so
// tightening them moves the bounds furthest). When no contributor
// reaches knnu (the bound is held by exact parts), the loosest remaining
// contributor is chosen so kNNL keeps improving.
func (cl *contributionList) refinable(strategy RefineStrategy, numClusters int, knnu float64) int {
	best := -1
	bestKey, bestTie := negInf, negInf
	bestRelevant := false
	for i := range cl.contributors {
		c := &cl.contributors[i]
		if !c.stale && c.entry.IsObject() {
			continue // already exact
		}
		hi := c.maxHi()
		relevant := hi >= knnu
		if bestRelevant && !relevant {
			continue // never prefer an irrelevant contributor over a relevant one
		}
		var key, tie float64
		switch strategy {
		case RefineByEntropy:
			key = cluster.Entropy(c.entry.ClusterCounts(numClusters))
			tie = hi
		default: // RefineByMaxUpper
			key = hi
			tie = float64(c.entry.Count)
		}
		if best == -1 || (relevant && !bestRelevant) ||
			key > bestKey || (key == bestKey && tie > bestTie) { //rstknn:allow floatcmp exact tie on the refinement key falls through to the secondary criterion
			best, bestKey, bestTie, bestRelevant = i, key, tie, relevant
		}
	}
	return best
}

// replace substitutes the contributor at index i with the given
// replacements (its children, with candidate-relative bounds). When the
// grown list no longer fits its arena carve the list is moved to a fresh
// carve with geometric headroom instead of letting append spill to the
// heap: refinement calls replace hundreds of times per query, and the
// spilled copies used to dominate the whole query's allocation profile.
//
//rstknn:hotpath one call per contributor refinement
func (cl *contributionList) replace(sc *scratch, i int, repl []contributor) {
	last := len(cl.contributors) - 1
	cl.contributors[i] = cl.contributors[last]
	cl.contributors = cl.contributors[:last]
	if need := last + len(repl); need > cap(cl.contributors) {
		grown := allocContribs(sc, need, need/2)
		grown = append(grown, cl.contributors...)
		cl.contributors = grown
	}
	cl.contributors = append(cl.contributors, repl...)
}
