package core

import (
	"math/rand"
	"testing"
)

// Warm scratch state must make the scoring hot path allocation-free:
// selectors reuse their heap storage across pruning checks and arenas
// recycle their chunks across queries. These tests pin that property.

func TestKthSelectorWarmReuseAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 64)
	counts := make([]int32, 64)
	for i := range vals {
		vals[i] = rng.Float64()
		counts[i] = int32(1 + rng.Intn(4))
	}
	sc := getScratch()
	defer sc.release()
	// Warm pass grows the selector heaps to steady-state capacity.
	sel := &sc.selLo
	sel.reset(10)
	for i := range vals {
		sel.add(vals[i], counts[i])
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sel.reset(10)
		for i := range vals {
			sel.add(vals[i], counts[i])
		}
		sink += sel.kth()
	})
	if allocs != 0 {
		t.Errorf("warm kthSelector allocates %v per selection, want 0", allocs)
	}
	_ = sink
}

func TestArenaWarmReuseAllocFree(t *testing.T) {
	sc := getScratch()
	defer sc.release()
	carve := func() {
		for i := 0; i < 32; i++ {
			p := allocParts(sc, 16)
			_ = append(p, part{})
			c := allocContribs(sc, 4, 4)
			_ = append(c, contributor{})
		}
	}
	// Warm pass makes the arenas grow their chunks once.
	carve()
	sc.parts.reset()
	sc.contribs.reset()
	allocs := testing.AllocsPerRun(50, func() {
		carve()
		sc.parts.reset()
		sc.contribs.reset()
	})
	if allocs != 0 {
		t.Errorf("warm arena carving allocates %v per query, want 0", allocs)
	}
}
