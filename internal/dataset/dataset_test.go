package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

func TestGenerateProfiles(t *testing.T) {
	for _, p := range []Profile{GN, SB, Uniform} {
		t.Run(p.String(), func(t *testing.T) {
			c := Generate(p, Params{N: 500, Seed: 1})
			if len(c.Objects) != 500 {
				t.Fatalf("generated %d objects", len(c.Objects))
			}
			st := c.ComputeStats()
			if st.Objects != 500 || st.UniqueTerms == 0 || st.TotalTerms == 0 {
				t.Errorf("stats look wrong: %+v", st)
			}
			if st.AvgTermsPerObj < float64(c.Params.MinTerms) ||
				st.AvgTermsPerObj > float64(c.Params.MaxTerms) {
				t.Errorf("avg terms %g outside [%d, %d]",
					st.AvgTermsPerObj, c.Params.MinTerms, c.Params.MaxTerms)
			}
			for _, o := range c.Objects {
				if o.Doc.Len() < c.Params.MinTerms || o.Doc.Len() > c.Params.MaxTerms {
					t.Fatalf("object %d has %d terms", o.ID, o.Doc.Len())
				}
				if !st.SpaceMBR.Contains(o.Loc) {
					t.Fatalf("object %d outside MBR", o.ID)
				}
			}
		})
	}
}

func TestProfileShapesDiffer(t *testing.T) {
	gn := Generate(GN, Params{N: 2000, Seed: 2}).ComputeStats()
	sb := Generate(SB, Params{N: 2000, Seed: 2}).ComputeStats()
	if !(sb.AvgTermsPerObj > gn.AvgTermsPerObj*2) {
		t.Errorf("SB documents should be much longer: gn=%g sb=%g",
			gn.AvgTermsPerObj, sb.AvgTermsPerObj)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GN, Params{N: 100, Seed: 9})
	b := Generate(GN, Params{N: 100, Seed: 9})
	for i := range a.Objects {
		if a.Objects[i].Loc != b.Objects[i].Loc || !a.Objects[i].Doc.Equal(b.Objects[i].Doc) {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := Generate(GN, Params{N: 100, Seed: 10})
	same := true
	for i := range a.Objects {
		if a.Objects[i].Loc != c.Objects[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical locations")
	}
}

func TestGeneratePanicsWithoutN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with N=0 should panic")
		}
	}()
	Generate(GN, Params{})
}

func TestQueriesFollowData(t *testing.T) {
	c := Generate(GN, Params{N: 300, Seed: 3})
	qs := c.Queries(50, 4)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	st := c.ComputeStats()
	outside := 0
	for _, q := range qs {
		if q.Doc.IsEmpty() {
			t.Fatal("query with empty document")
		}
		// Perturbed by 1% of space: allow a loose margin around the MBR.
		grown := st.SpaceMBR
		grown.Min.X -= 100
		grown.Min.Y -= 100
		grown.Max.X += 100
		grown.Max.Y += 100
		if !grown.Contains(q.Loc) {
			outside++
		}
	}
	if outside > 0 {
		t.Errorf("%d queries far outside the dataspace", outside)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"gn", "sb", "uniform"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Errorf("round trip %q -> %q", name, p.String())
		}
	}
	if _, err := ProfileByName("flickr"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := Generate(GN, Params{N: 120, Seed: 5})
	vocab := SyntheticVocabulary(c.Params.Vocab)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c.Objects, vocab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), vocab)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.Objects) {
		t.Fatalf("read %d objects, wrote %d", len(got), len(c.Objects))
	}
	for i := range got {
		if got[i].ID != c.Objects[i].ID || got[i].Loc != c.Objects[i].Loc {
			t.Fatalf("object %d header mismatch", i)
		}
		if !got[i].Doc.Equal(c.Objects[i].Doc) {
			t.Fatalf("object %d doc mismatch:\n got %v\nwant %v", i, got[i].Doc, c.Objects[i].Doc)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	vocab := textual.NewVocabulary()
	cases := []string{
		"x,1,2,a:1\n",      // bad id
		"1,x,2,a:1\n",      // bad x
		"1,2,x,a:1\n",      // bad y
		"1,2,3,noweight\n", // bad term format
		"1,2,3,a:notnum\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), vocab); err == nil {
			t.Errorf("ReadCSV(%q) should fail", in)
		}
	}
}

func TestReadRawCSV(t *testing.T) {
	in := "1,10,20,sushi seafood noodles\n2,30,40,sushi bar\n3,50,60,\n"
	objs, vocab, err := ReadRawCSV(strings.NewReader(in), textual.TFIDF)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("read %d objects", len(objs))
	}
	sushi, ok := vocab.Lookup("sushi")
	if !ok {
		t.Fatal("sushi not in vocabulary")
	}
	if !objs[0].Doc.Has(sushi) || !objs[1].Doc.Has(sushi) {
		t.Error("sushi missing from docs")
	}
	if !objs[2].Doc.IsEmpty() {
		t.Error("empty text should give empty doc")
	}
	// Rarer terms weigh more under TF-IDF.
	seafood, _ := vocab.Lookup("seafood")
	if !(objs[0].Doc.WeightOf(seafood) > objs[0].Doc.WeightOf(sushi)) {
		t.Error("rare term should outweigh common term")
	}
	if _, _, err := ReadRawCSV(strings.NewReader("bad,1,2,x\n"), textual.TF); err == nil {
		t.Error("bad id should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "objs.csv")
	c := Generate(SB, Params{N: 40, Seed: 6})
	vocab := SyntheticVocabulary(c.Params.Vocab)
	if err := SaveFile(path, c.Objects, vocab); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, vocab)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("loaded %d objects", len(got))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv"), vocab); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSyntheticVocabulary(t *testing.T) {
	v := SyntheticVocabulary(10)
	if v.Size() != 10 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Term(vector.TermID(3)) != "t3" {
		t.Errorf("Term(3) = %q", v.Term(3))
	}
}

func TestTopicalProfileIsTopicStructured(t *testing.T) {
	c := Generate(Topical, Params{N: 400, Seed: 8})
	if c.Params.Topics <= 1 {
		t.Fatalf("Topics = %d", c.Params.Topics)
	}
	topicSize := c.Params.Vocab / c.Params.Topics
	topicOf := func(term vector.TermID) int { return int(term) / topicSize }
	for _, o := range c.Objects {
		if o.Doc.IsEmpty() {
			t.Fatal("empty doc in topical profile")
		}
		first := topicOf(o.Doc.Term(0))
		for i := 1; i < o.Doc.Len(); i++ {
			if topicOf(o.Doc.Term(i)) != first {
				t.Fatalf("object %d mixes topics %d and %d",
					o.ID, first, topicOf(o.Doc.Term(i)))
			}
		}
	}
	// Queries reuse anchor-object terms, so they are topic-pure too.
	for _, q := range c.Queries(30, 9) {
		first := topicOf(q.Doc.Term(0))
		for i := 1; i < q.Doc.Len(); i++ {
			if topicOf(q.Doc.Term(i)) != first {
				t.Fatal("topical query mixes topics")
			}
		}
	}
}

func TestGNProfileMixesHeadAndTopicTerms(t *testing.T) {
	c := Generate(GN, Params{N: 3000, Seed: 10})
	// The Zipf head should produce a few very common terms across the
	// collection while topical tails stay rare: the most frequent term
	// should appear in far more documents than the median term.
	df := map[vector.TermID]int{}
	for _, o := range c.Objects {
		for i := 0; i < o.Doc.Len(); i++ {
			df[o.Doc.Term(i)]++
		}
	}
	maxDF := 0
	for _, d := range df {
		if d > maxDF {
			maxDF = d
		}
	}
	if maxDF < 100 {
		t.Errorf("expected a heavy head term, max df = %d", maxDF)
	}
}
