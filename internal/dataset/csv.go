package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

// CSV format: one object per record,
//
//	id,x,y,term:weight term:weight ...
//
// where terms are raw strings. WriteCSV/ReadCSV round-trip a collection
// through a vocabulary; ReadRawCSV builds a collection (and vocabulary)
// from files where the fourth field is free text instead of weighted
// terms, weighting it with the given scheme.

// WriteCSV writes the collection using vocab to render term strings.
func WriteCSV(w io.Writer, objs []iurtree.Object, vocab *textual.Vocabulary) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for _, o := range objs {
		var sb strings.Builder
		for i := 0; i < o.Doc.Len(); i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s:%g", vocab.Term(o.Doc.Term(i)), o.Doc.Weight(i))
		}
		rec := []string{
			strconv.FormatInt(int64(o.ID), 10),
			strconv.FormatFloat(o.Loc.X, 'g', -1, 64),
			strconv.FormatFloat(o.Loc.Y, 'g', -1, 64),
			sb.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses objects written by WriteCSV, interning terms into vocab.
func ReadCSV(r io.Reader, vocab *textual.Vocabulary) ([]iurtree.Object, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var objs []iurtree.Object
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		id, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: bad id %q: %w", line, rec[0], err)
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: bad x %q: %w", line, rec[1], err)
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: bad y %q: %w", line, rec[2], err)
		}
		weights := make(map[vector.TermID]float64)
		if rec[3] != "" {
			for _, tok := range strings.Fields(rec[3]) {
				parts := strings.SplitN(tok, ":", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("dataset: record %d: bad term %q", line, tok)
				}
				w, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: record %d: bad weight in %q: %w", line, tok, err)
				}
				weights[vocab.ID(parts[0])] = w
			}
		}
		objs = append(objs, iurtree.Object{
			ID:  int32(id),
			Loc: geom.Point{X: x, Y: y},
			Doc: vector.New(weights),
		})
	}
	return objs, nil
}

// ReadRawCSV parses records of the form id,x,y,free text. The text fields
// are tokenized and weighted with the given scheme over the file's own
// corpus statistics, which is how a real collection (e.g. a POI dump)
// would be ingested.
func ReadRawCSV(r io.Reader, scheme textual.Scheme) ([]iurtree.Object, *textual.Vocabulary, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	corpus := textual.NewCorpus(scheme)
	type header struct {
		id   int32
		x, y float64
	}
	var heads []header
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		line++
		id, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: record %d: bad id %q: %w", line, rec[0], err)
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: record %d: bad x %q: %w", line, rec[1], err)
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: record %d: bad y %q: %w", line, rec[2], err)
		}
		heads = append(heads, header{int32(id), x, y})
		corpus.Add(rec[3])
	}
	vecs := corpus.Vectors()
	objs := make([]iurtree.Object, len(heads))
	for i, h := range heads {
		objs[i] = iurtree.Object{ID: h.id, Loc: geom.Point{X: h.x, Y: h.y}, Doc: vecs[i]}
	}
	return objs, corpus.Vocab, nil
}

// SaveFile writes the collection to path in CSV form.
func SaveFile(path string, objs []iurtree.Object, vocab *textual.Vocabulary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, objs, vocab); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a WriteCSV-format collection from path.
func LoadFile(path string, vocab *textual.Vocabulary) ([]iurtree.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, vocab)
}

// SyntheticVocabulary builds a vocabulary with the synthetic term names
// ("t0".."tN-1") matching the TermIDs Generate produces, so generated
// collections can be serialized with WriteCSV.
func SyntheticVocabulary(size int) *textual.Vocabulary {
	v := textual.NewVocabulary()
	for i := 0; i < size; i++ {
		v.ID("t" + strconv.Itoa(i))
	}
	return v
}
