// Package dataset generates and loads the spatial-textual collections the
// experiment suite runs on.
//
// The RSTkNN paper evaluates on two real collections (GeographicNames and
// a shop-branch collection) that are not redistributable and unreachable
// offline. This package substitutes synthetic collections whose *shape*
// matches the paper's descriptions — object counts, terms-per-object,
// vocabulary skew, and spatial clustering — so the experiments exercise
// identical code paths and reproduce the paper's relative trends. The
// substitution is documented in DESIGN.md and EXPERIMENTS.md.
//
// Three profiles are provided:
//
//   - GN: large collection, very short documents (few tags per object),
//     a heavily skewed Zipf head vocabulary (the "lake"/"creek"/"hill"
//     generic words of geographic names) combined with topical tail
//     terms (regional proper-name families), spatially clustered points —
//     GeographicNames-like.
//   - SB: smaller collection, longer documents, flatter vocabulary —
//     shop/branch-like (each object is a business with a description).
//   - Uniform: uniform space and vocabulary; the stress-test control.
//
// Generation is fully deterministic given the seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/vector"
)

// Profile selects the statistical shape of a generated collection.
type Profile int

const (
	// GN mimics GeographicNames: short documents, skewed vocabulary,
	// clustered locations.
	GN Profile = iota
	// SB mimics a shop/branch collection: longer documents, flatter
	// vocabulary, semi-clustered locations.
	SB
	// Uniform is the uniform control: uniform locations and vocabulary.
	Uniform
	// Topical generates documents from mostly-disjoint per-topic
	// vocabularies — the regime where textual clustering (CIUR) has
	// structure to exploit. Locations are uniform so the spatial and
	// textual dimensions are independent.
	Topical
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case GN:
		return "gn"
	case SB:
		return "sb"
	case Uniform:
		return "uniform"
	case Topical:
		return "topical"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// ProfileByName parses a profile name ("gn", "sb", "uniform").
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "gn":
		return GN, nil
	case "sb":
		return SB, nil
	case "uniform":
		return Uniform, nil
	case "topical":
		return Topical, nil
	default:
		return 0, fmt.Errorf("dataset: unknown profile %q", name)
	}
}

// Params control generation beyond the profile defaults. Zero values are
// filled from the profile.
type Params struct {
	N          int     // number of objects (required)
	Vocab      int     // vocabulary size
	MinTerms   int     // minimum distinct terms per document
	MaxTerms   int     // maximum distinct terms per document
	ZipfS      float64 // Zipf skew of term selection (1.0+ = heavy skew)
	SpaceSize  float64 // side of the square dataspace
	ClusterCnt int     // number of spatial clusters (0 = uniform space)
	ClusterStd float64 // std deviation of each spatial cluster
	Topics     int     // number of disjoint text topics (Topical profile)
	Seed       int64
}

// defaults fills zero fields from the profile.
func (p *Params) defaults(profile Profile) {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	switch profile {
	case GN:
		def(&p.Vocab, 2000)
		def(&p.MinTerms, 1)
		def(&p.MaxTerms, 7)
		deff(&p.ZipfS, 1.2)
		deff(&p.SpaceSize, 1000)
		def(&p.ClusterCnt, 24)
		deff(&p.ClusterStd, 25)
		def(&p.Topics, 20)
	case SB:
		def(&p.Vocab, 4000)
		def(&p.MinTerms, 8)
		def(&p.MaxTerms, 40)
		deff(&p.ZipfS, 1.05)
		deff(&p.SpaceSize, 1000)
		def(&p.ClusterCnt, 8)
		deff(&p.ClusterStd, 60)
	case Uniform:
		def(&p.Vocab, 1000)
		def(&p.MinTerms, 2)
		def(&p.MaxTerms, 6)
		deff(&p.ZipfS, 1.01) // zipf requires s > 1
		deff(&p.SpaceSize, 1000)
		// ClusterCnt stays 0: uniform locations.
	case Topical:
		def(&p.Topics, 16)
		def(&p.Vocab, p.Topics*60)
		def(&p.MinTerms, 3)
		def(&p.MaxTerms, 8)
		deff(&p.ZipfS, 1.01)
		deff(&p.SpaceSize, 1000)
		// ClusterCnt stays 0: locations independent of topics.
	}
}

// Collection is a generated or loaded dataset.
type Collection struct {
	Objects []iurtree.Object
	Profile Profile
	Params  Params
}

// Generate builds a synthetic collection with the given profile and
// parameters. It panics if N <= 0.
func Generate(profile Profile, params Params) *Collection {
	if params.N <= 0 {
		panic("dataset: Params.N must be positive")
	}
	params.defaults(profile)
	rng := rand.New(rand.NewSource(params.Seed))

	// Zipf over the vocabulary: term 0 is the most common.
	zipf := rand.NewZipf(rng, params.ZipfS, 1, uint64(params.Vocab-1))

	// Spatial cluster centers.
	var centers []geom.Point
	for i := 0; i < params.ClusterCnt; i++ {
		centers = append(centers, geom.Point{
			X: rng.Float64() * params.SpaceSize,
			Y: rng.Float64() * params.SpaceSize,
		})
	}
	clamp := func(v float64) float64 {
		return math.Max(0, math.Min(params.SpaceSize, v))
	}

	drawTerm := func() vector.TermID { return vector.TermID(zipf.Uint64()) }
	topicSize := 0
	if (profile == Topical || profile == GN) && params.Topics > 0 {
		topicSize = params.Vocab / params.Topics
	}
	// GN documents mix a generic Zipf head (shared toponym words) with a
	// topical tail (regional name families): ~half the terms of a
	// document come from its topic's range, the rest from the head.
	headMix := profile == GN

	objs := make([]iurtree.Object, params.N)
	for i := range objs {
		var loc geom.Point
		if len(centers) == 0 {
			loc = geom.Point{X: rng.Float64() * params.SpaceSize, Y: rng.Float64() * params.SpaceSize}
		} else {
			c := centers[rng.Intn(len(centers))]
			loc = geom.Point{
				X: clamp(c.X + rng.NormFloat64()*params.ClusterStd),
				Y: clamp(c.Y + rng.NormFloat64()*params.ClusterStd),
			}
		}
		span := params.MaxTerms - params.MinTerms
		nt := params.MinTerms
		if span > 0 {
			nt += rng.Intn(span + 1)
		}
		m := make(map[vector.TermID]float64, nt)
		if topicSize > 0 {
			topic := rng.Intn(params.Topics)
			base := topic * topicSize
			for len(m) < nt {
				if headMix && rng.Intn(2) == 0 {
					// Generic head term (Zipf over the whole vocabulary).
					m[drawTerm()] = 0.5 + rng.Float64()*3
				} else {
					m[vector.TermID(base+rng.Intn(topicSize))] = 0.5 + rng.Float64()*3
				}
			}
		} else {
			for len(m) < nt {
				// Sub-linear TF-style weights in [0.5, 3.5).
				m[drawTerm()] = 0.5 + rng.Float64()*3
			}
		}
		objs[i] = iurtree.Object{ID: int32(i), Loc: loc, Doc: vector.New(m)}
	}
	return &Collection{Objects: objs, Profile: profile, Params: params}
}

// Queries derives nq query objects from the collection: each query takes
// the (perturbed) location of a random object and a fresh document drawn
// from the same term distribution — the paper's "queries follow the data
// distribution" setup.
func (c *Collection) Queries(nq int, seed int64) []QueryObject {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, c.Params.ZipfS, 1, uint64(c.Params.Vocab-1))
	out := make([]QueryObject, nq)
	for i := range out {
		base := c.Objects[rng.Intn(len(c.Objects))]
		loc := geom.Point{
			X: base.Loc.X + rng.NormFloat64()*c.Params.SpaceSize*0.01,
			Y: base.Loc.Y + rng.NormFloat64()*c.Params.SpaceSize*0.01,
		}
		span := c.Params.MaxTerms - c.Params.MinTerms
		nt := c.Params.MinTerms
		if span > 0 {
			nt += rng.Intn(span + 1)
		}
		m := make(map[vector.TermID]float64, nt)
		if (c.Profile == Topical || c.Profile == GN) && base.Doc.Len() > 0 {
			// Topic-coherent queries: resample terms from the anchor
			// object's topic by reusing (a subset of) its terms.
			for len(m) < nt && len(m) < base.Doc.Len() {
				m[base.Doc.Term(rng.Intn(base.Doc.Len()))] = 0.5 + rng.Float64()*3
			}
		} else {
			for len(m) < nt {
				m[vector.TermID(zipf.Uint64())] = 0.5 + rng.Float64()*3
			}
		}
		out[i] = QueryObject{Loc: loc, Doc: vector.New(m)}
	}
	return out
}

// QueryObject is a generated query: a location and a document.
type QueryObject struct {
	Loc geom.Point
	Doc vector.Vector
}

// Stats summarizes a collection the way the paper's dataset table does.
type Stats struct {
	Objects        int
	UniqueTerms    int
	TotalTerms     int64
	AvgTermsPerObj float64
	SpaceMBR       geom.Rect
}

// ComputeStats scans the collection and returns its summary statistics.
func (c *Collection) ComputeStats() Stats {
	var s Stats
	s.Objects = len(c.Objects)
	s.SpaceMBR = geom.EmptyRect()
	seen := make(map[vector.TermID]bool)
	for _, o := range c.Objects {
		s.SpaceMBR = s.SpaceMBR.Extend(o.Loc)
		s.TotalTerms += int64(o.Doc.Len())
		for i := 0; i < o.Doc.Len(); i++ {
			seen[o.Doc.Term(i)] = true
		}
	}
	s.UniqueTerms = len(seen)
	if s.Objects > 0 {
		s.AvgTermsPerObj = float64(s.TotalTerms) / float64(s.Objects)
	}
	return s
}
