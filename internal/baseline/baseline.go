// Package baseline provides the two reference methods the RSTkNN paper
// compares its branch-and-bound search against:
//
//   - Naive: exhaustive scan computing, per query, every object's k-th NN
//     similarity from scratch (O(n^2) similarity computations). It is the
//     correctness oracle for every integration test in this repository.
//   - Precompute: materialize every object's k-th NN similarity once
//     (using the spatial-textual top-k search over the tree), then answer
//     reverse queries by a filter pass. Queries are cheap, but the
//     structure is welded to one (k, alpha, measure) triple and must be
//     rebuilt whenever the data or parameters change — the paper's
//     argument for an index-time-free algorithm.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"rstknn/internal/core"
	"rstknn/internal/iurtree"
	"rstknn/internal/vector"
)

// Naive answers an RSTkNN query by exhaustive computation. maxD must be
// the same normalization distance the tree-based search uses (the
// dataspace diagonal) so results agree exactly. The result IDs are sorted
// ascending.
func Naive(objs []iurtree.Object, q core.Query, k int, alpha, maxD float64, sim vector.TextSim) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: K must be positive, got %d", k)
	}
	sc := core.NewScorer(alpha, maxD, sim)
	var out []int32
	sims := make([]float64, 0, len(objs))
	for i := range objs {
		o := &objs[i]
		kth := kthSimilarity(sc, objs, i, k, &sims)
		if sc.Exact(o.Loc, o.Doc, q.Loc, q.Doc) >= kth {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// KthSimilarities returns every object's k-th NN similarity (aligned with
// objs), computed exhaustively. Exposed for tests that validate the
// tree-based bound machinery.
func KthSimilarities(objs []iurtree.Object, k int, alpha, maxD float64, sim vector.TextSim) []float64 {
	sc := core.NewScorer(alpha, maxD, sim)
	out := make([]float64, len(objs))
	sims := make([]float64, 0, len(objs))
	for i := range objs {
		out[i] = kthSimilarity(sc, objs, i, k, &sims)
	}
	return out
}

// kthSimilarity computes the k-th largest similarity between objs[i] and
// every other object, or -Inf when fewer than k others exist. The scratch
// slice is reused across calls.
func kthSimilarity(sc *core.Scorer, objs []iurtree.Object, i, k int, scratch *[]float64) float64 {
	if len(objs)-1 < k {
		return negInf
	}
	sims := (*scratch)[:0]
	o := &objs[i]
	for j := range objs {
		if j == i {
			continue
		}
		x := &objs[j]
		sims = append(sims, sc.Exact(o.Loc, o.Doc, x.Loc, x.Doc))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
	*scratch = sims
	return sims[k-1]
}

var negInf = math.Inf(-1)

// Precompute is the precomputation baseline: per-object k-th NN
// similarity thresholds materialized against a sealed tree.
type Precompute struct {
	k     int
	alpha float64
	maxD  float64
	sim   vector.TextSim
	objs  []iurtree.Object
	// Thresholds[i] is the k-th NN similarity of objs[i].
	Thresholds []float64
	// BuildMetrics accumulates the work done materializing thresholds.
	BuildMetrics core.Metrics
}

// BuildPrecompute computes every object's threshold using the
// spatial-textual top-k search over the tree. The cost of this pass —
// |D| top-k searches — is exactly the paper's motivation for avoiding
// precomputation.
func BuildPrecompute(t *iurtree.Snapshot, objs []iurtree.Object, k int, alpha float64, sim vector.TextSim) (*Precompute, error) {
	if k <= 0 {
		return nil, fmt.Errorf("baseline: K must be positive, got %d", k)
	}
	p := &Precompute{
		k:          k,
		alpha:      alpha,
		maxD:       t.MaxD(),
		sim:        sim,
		objs:       objs,
		Thresholds: make([]float64, len(objs)),
	}
	for i := range objs {
		o := &objs[i]
		kth, m, err := core.KthSimilarity(t, core.Query{Loc: o.Loc, Doc: o.Doc}, core.TopKOptions{
			K: k, Alpha: alpha, Sim: sim, Exclude: o.ID,
		})
		if err != nil {
			return nil, err
		}
		p.Thresholds[i] = kth
		p.BuildMetrics.NodesRead += m.NodesRead
		p.BuildMetrics.ExactSims += m.ExactSims
		p.BuildMetrics.BoundEvals += m.BoundEvals
	}
	return p, nil
}

// K returns the rank the thresholds were built for.
func (p *Precompute) K() int { return p.k }

// Query answers an RSTkNN query by filtering against the materialized
// thresholds: one similarity evaluation per object.
func (p *Precompute) Query(q core.Query) []int32 {
	sc := core.NewScorer(p.alpha, p.maxD, p.sim)
	var out []int32
	for i := range p.objs {
		o := &p.objs[i]
		if sc.Exact(o.Loc, o.Doc, q.Loc, q.Doc) >= p.Thresholds[i] {
			out = append(out, o.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
