package baseline

import (
	"math"
	"math/rand"
	"testing"

	"rstknn/internal/core"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/vector"
)

func genObjects(rng *rand.Rand, n int) []iurtree.Object {
	objs := make([]iurtree.Object, n)
	for i := range objs {
		m := make(map[vector.TermID]float64)
		for j := 0; j < 1+rng.Intn(4); j++ {
			m[vector.TermID(rng.Intn(25))] = 0.5 + rng.Float64()*2
		}
		objs[i] = iurtree.Object{
			ID:  int32(i),
			Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Doc: vector.New(m),
		}
	}
	return objs
}

func genQuery(rng *rand.Rand) core.Query {
	m := make(map[vector.TermID]float64)
	for j := 0; j < 3; j++ {
		m[vector.TermID(rng.Intn(25))] = 0.5 + rng.Float64()*2
	}
	return core.Query{
		Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		Doc: vector.New(m),
	}
}

func TestNaiveHandConstructed(t *testing.T) {
	// Three collinear objects with identical docs: ranking is purely
	// spatial. maxD = 10.
	doc := vector.New(map[vector.TermID]float64{1: 1})
	objs := []iurtree.Object{
		{ID: 0, Loc: geom.Point{X: 0, Y: 0}, Doc: doc},
		{ID: 1, Loc: geom.Point{X: 5, Y: 0}, Doc: doc},
		{ID: 2, Loc: geom.Point{X: 10, Y: 0}, Doc: doc},
	}
	// Query at x=1 with the same doc, alpha=1 (pure spatial), k=1.
	// 1-NN of 0 is 1 (dist 5); sim(0,q)=1-1/10=0.9 > sim(0,1)=0.5: hit.
	// 1-NN of 1 is 0 or 2 (dist 5, sim 0.5); sim(1,q)=1-4/10=0.6: hit.
	// 1-NN of 2 is 1 (dist 5, sim 0.5); sim(2,q)=1-9/10=0.1 < 0.5: miss.
	q := core.Query{Loc: geom.Point{X: 1, Y: 0}, Doc: doc}
	got, err := Naive(objs, q, 1, 1, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Naive = %v, want [0 1]", got)
	}
}

func TestNaiveKValidation(t *testing.T) {
	if _, err := Naive(nil, core.Query{}, 0, 0.5, 1, nil); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestNaiveFewerThanKReportsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := genObjects(rng, 4)
	got, err := Naive(objs, genQuery(rng), 10, 0.5, 150, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("all objects lack a 10th NN; got %d results", len(got))
	}
}

func TestKthSimilaritiesMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := genObjects(rng, 60)
	k1 := KthSimilarities(objs, 1, 0.5, 150, nil)
	k5 := KthSimilarities(objs, 5, 0.5, 150, nil)
	for i := range objs {
		if k5[i] > k1[i] {
			t.Fatalf("object %d: 5th NN sim %g exceeds 1st NN sim %g", i, k5[i], k1[i])
		}
	}
}

func TestPrecomputeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := genObjects(rng, 250)
	tree, err := iurtree.Build(objs, iurtree.Config{Store: storage.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		p, err := BuildPrecompute(tree, objs, k, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.K() != k {
			t.Errorf("K() = %d", p.K())
		}
		if p.BuildMetrics.NodesRead == 0 {
			t.Error("build metrics should record work")
		}
		for trial := 0; trial < 10; trial++ {
			q := genQuery(rng)
			want, err := Naive(objs, q, k, 0.5, tree.MaxD(), nil)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Query(q)
			if len(got) != len(want) {
				t.Fatalf("k=%d trial %d: %d results, want %d", k, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d trial %d: mismatch at %d", k, trial, i)
				}
			}
		}
	}
}

func TestPrecomputeThresholdsMatchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := genObjects(rng, 120)
	tree, err := iurtree.Build(objs, iurtree.Config{Store: storage.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPrecompute(tree, objs, 4, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := KthSimilarities(objs, 4, 0.3, tree.MaxD(), nil)
	for i := range objs {
		if math.Abs(p.Thresholds[i]-want[i]) > 0 {
			t.Fatalf("object %d: precompute threshold %g != exhaustive %g",
				i, p.Thresholds[i], want[i])
		}
	}
}

func TestBuildPrecomputeValidation(t *testing.T) {
	tree, err := iurtree.Build(nil, iurtree.Config{Store: storage.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPrecompute(tree, nil, 0, 0.5, nil); err == nil {
		t.Error("k=0 should fail")
	}
}
