package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEqual(got, tc.want) {
			t.Errorf("Dist(%v, %v) = %g, want %g", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); !almostEqual(got, tc.want*tc.want) {
			t.Errorf("Dist2(%v, %v) = %g, want %g", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	// Bound the coordinates: quick generates magnitudes near MaxFloat64
	// where Dist legitimately overflows to +Inf.
	f := func(ax, ay, bx, by float64) bool {
		p := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		q := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		return almostEqual(p.Dist(q), q.Dist(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	if e.Area() != 0 || e.Perimeter() != 0 || e.Diagonal() != 0 {
		t.Error("empty rect should have zero measures")
	}
	r := Rect{Point{1, 2}, Point{3, 4}}
	if got := e.Union(r); got != r {
		t.Errorf("empty.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(empty) = %v, want %v", got, r)
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty rect contains a point")
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects something")
	}
	if !r.ContainsRect(e) {
		t.Error("every rect should contain the empty rect")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 5}}
	in := []Point{{0, 0}, {10, 5}, {5, 2.5}, {0, 5}, {10, 0}}
	out := []Point{{-0.001, 0}, {10.001, 5}, {5, 5.001}, {5, -0.001}}
	for _, p := range in {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range out {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{4, 4}}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{Point{1, 1}, Point{2, 2}}, true},    // contained
		{Rect{Point{4, 4}, Point{6, 6}}, true},    // corner touch
		{Rect{Point{-2, -2}, Point{0, 0}}, true},  // corner touch
		{Rect{Point{5, 5}, Point{7, 7}}, false},   // disjoint diagonal
		{Rect{Point{0, 5}, Point{4, 6}}, false},   // above
		{Rect{Point{-3, 0}, Point{-1, 4}}, false}, // left
		{Rect{Point{-1, -1}, Point{5, 5}}, true},  // covers
		{Rect{Point{2, -10}, Point{3, 10}}, true}, // vertical slab
	}
	for _, tc := range tests {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", tc.b, a, got, tc.want)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	tests := []struct {
		name     string
		b        Rect
		min, max float64
	}{
		{"identical", a, 0, a.Diagonal()},
		{"overlap", Rect{Point{1, 1}, Point{3, 3}}, 0, math.Hypot(3, 3)},
		{"right gap", Rect{Point{5, 0}, Point{6, 2}}, 3, math.Hypot(6, 2)},
		{"diag gap", Rect{Point{5, 6}, Point{7, 8}}, math.Hypot(3, 4), math.Hypot(7, 8)},
		{"contained", Rect{Point{0.5, 0.5}, Point{1, 1}}, 0, math.Hypot(1.5, 1.5)},
	}
	for _, tc := range tests {
		if got := a.MinDist(tc.b); !almostEqual(got, tc.min) {
			t.Errorf("%s: MinDist = %g, want %g", tc.name, got, tc.min)
		}
		if got := a.MaxDist(tc.b); !almostEqual(got, tc.max) {
			t.Errorf("%s: MaxDist = %g, want %g", tc.name, got, tc.max)
		}
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := MBR([]Point{{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}, {math.Mod(bx, 1e6), math.Mod(by, 1e6)}})
		b := MBR([]Point{{math.Mod(cx, 1e6), math.Mod(cy, 1e6)}, {math.Mod(dx, 1e6), math.Mod(dy, 1e6)}})
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) &&
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMinDistIsLowerBound verifies the core geometric guarantee used by the
// similarity bounds: for random rectangles and random points inside them,
// MinDist <= dist(p, q) <= MaxDist.
func TestMinDistIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randRect := func() Rect {
		x1, y1 := rng.Float64()*100-50, rng.Float64()*100-50
		x2, y2 := x1+rng.Float64()*20, y1+rng.Float64()*20
		return Rect{Point{x1, y1}, Point{x2, y2}}
	}
	randIn := func(r Rect) Point {
		return Point{
			r.Min.X + rng.Float64()*(r.Max.X-r.Min.X),
			r.Min.Y + rng.Float64()*(r.Max.Y-r.Min.Y),
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := randRect(), randRect()
		p, q := randIn(a), randIn(b)
		d := p.Dist(q)
		if min := a.MinDist(b); d < min-1e-9 {
			t.Fatalf("iter %d: dist %g < MinDist %g for %v %v", i, d, min, a, b)
		}
		if max := a.MaxDist(b); d > max+1e-9 {
			t.Fatalf("iter %d: dist %g > MaxDist %g for %v %v", i, d, max, a, b)
		}
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{{3, 1}, {-2, 7}, {0, 0}, {5, -4}}
	r := MBR(pts)
	want := Rect{Point{-2, -4}, Point{5, 7}}
	if r != want {
		t.Errorf("MBR = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR %v does not contain %v", r, p)
		}
	}
	if !MBR(nil).IsEmpty() {
		t.Error("MBR(nil) should be empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	if got := a.Enlargement(Rect{Point{1, 1}, Point{2, 2}}); got != 0 {
		t.Errorf("enlargement for contained rect = %g, want 0", got)
	}
	if got := a.Enlargement(Rect{Point{0, 0}, Point{4, 2}}); !almostEqual(got, 4) {
		t.Errorf("enlargement = %g, want 4", got)
	}
}

func TestCenterAndDiagonal(t *testing.T) {
	r := Rect{Point{0, 0}, Point{4, 2}}
	if c := r.Center(); c != (Point{2, 1}) {
		t.Errorf("Center = %v", c)
	}
	if d := r.Diagonal(); !almostEqual(d, math.Hypot(4, 2)) {
		t.Errorf("Diagonal = %g", d)
	}
}

func TestValid(t *testing.T) {
	if !(Rect{Point{0, 0}, Point{1, 1}}).Valid() {
		t.Error("normal rect should be valid")
	}
	if (Rect{Point{1, 1}, Point{0, 0}}).Valid() {
		t.Error("inverted rect should be invalid")
	}
	if EmptyRect().Valid() {
		t.Error("empty rect should be invalid")
	}
	nan := math.NaN()
	if (Rect{Point{nan, 0}, Point{1, 1}}).Valid() {
		t.Error("NaN rect should be invalid")
	}
}

func TestMinDistPointMatchesRect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	p := Point{5, 6}
	if got, want := r.MinDistPoint(p), r.MinDist(p.Rect()); !almostEqual(got, want) {
		t.Errorf("MinDistPoint = %g, want %g", got, want)
	}
	if got, want := r.MaxDistPoint(p), r.MaxDist(p.Rect()); !almostEqual(got, want) {
		t.Errorf("MaxDistPoint = %g, want %g", got, want)
	}
}
