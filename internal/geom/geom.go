// Package geom provides the planar geometric primitives used throughout the
// RSTkNN library: points, axis-aligned rectangles (MBRs), and the
// minimum/maximum distance functions between them that drive the spatial
// part of every similarity bound.
//
// All coordinates are float64. Rectangles are closed: a point on the
// boundary is contained. The zero Rect is the empty rectangle (see
// EmptyRect); it is the identity for Union and contains nothing.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect returns the degenerate rectangle covering exactly p.
func (p Point) Rect() Rect {
	return Rect{Min: p, Max: p}
}

func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Rect is an axis-aligned rectangle (minimum bounding rectangle). Min must
// be coordinate-wise <= Max for a non-empty rectangle.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the canonical empty rectangle: Min at +inf, Max at
// -inf, so that Union with any rectangle yields the other rectangle.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{
		Min: Point{inf, inf},
		Max: Point{-inf, -inf},
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool {
	return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y
}

// Valid reports whether r is a well-formed (possibly degenerate) rectangle
// with finite coordinates.
func (r Rect) Valid() bool {
	return !r.IsEmpty() &&
		!math.IsInf(r.Min.X, 0) && !math.IsInf(r.Min.Y, 0) &&
		!math.IsInf(r.Max.X, 0) && !math.IsInf(r.Max.Y, 0) &&
		!math.IsNaN(r.Min.X) && !math.IsNaN(r.Min.Y) &&
		!math.IsNaN(r.Max.X) && !math.IsNaN(r.Max.Y)
}

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Extend grows r in place to cover s and returns the result.
func (r Rect) Extend(p Point) Rect {
	return r.Union(p.Rect())
}

// Area returns the area of r (0 for degenerate or empty rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Perimeter returns half the perimeter (the classic R*-tree "margin"),
// i.e. width + height. Empty rectangles have margin 0.
func (r Rect) Perimeter() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Diagonal returns the length of r's diagonal: the maximum distance between
// any two points inside r.
func (r Rect) Diagonal() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Min.Dist(r.Max)
}

// Enlargement returns the increase in area needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance between any point of r and
// any point of s. Overlapping rectangles have distance 0. This is a lower
// bound of the distance between any member point of r and any member point
// of s, used for upper-bounding spatial similarity.
func (r Rect) MinDist(s Rect) float64 {
	dx := axisGap(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := axisGap(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Hypot(dx, dy)
}

// MinDistPoint returns the minimum distance from point p to rectangle r.
func (r Rect) MinDistPoint(p Point) float64 {
	return r.MinDist(p.Rect())
}

// MaxDist returns the maximum Euclidean distance between any point of r and
// any point of s: the distance between the farthest pair of corners. It is
// an upper bound of the distance between any member point of r and any
// member point of s, used for lower-bounding spatial similarity. MaxDist of
// a rectangle with itself is its diagonal.
func (r Rect) MaxDist(s Rect) float64 {
	dx := axisSpan(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := axisSpan(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Hypot(dx, dy)
}

// MaxDistPoint returns the maximum distance from point p to rectangle r.
func (r Rect) MaxDistPoint(p Point) float64 {
	return r.MaxDist(p.Rect())
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// axisGap returns the separation between intervals [a1,a2] and [b1,b2] on
// one axis, or 0 when they overlap.
func axisGap(a1, a2, b1, b2 float64) float64 {
	switch {
	case b1 > a2:
		return b1 - a2
	case a1 > b2:
		return a1 - b2
	default:
		return 0
	}
}

// axisSpan returns the largest distance between a point of [a1,a2] and a
// point of [b1,b2] on one axis.
func axisSpan(a1, a2, b1, b2 float64) float64 {
	return math.Max(math.Abs(a2-b1), math.Abs(b2-a1))
}

// MBR returns the minimum bounding rectangle of the given points.
// It returns the empty rectangle when pts is empty.
func MBR(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}
