package geom

import "math"

// Epsilon is the default tolerance for approximate float comparisons:
// scores and distances in this library accumulate only a handful of
// floating-point operations, so anything within a few ULPs of 1e-9
// relative error is "equal" for ranking purposes.
const Epsilon = 1e-9

// ApproxEqual reports whether a and b are equal within a mixed
// absolute/relative tolerance of Epsilon. It is the comparison the
// floatcmp analyzer points code at instead of ==: exact equality on
// computed similarities or distances silently diverges across
// compilers, FMA contraction, and summation orders.
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, Epsilon)
}

// ApproxEqualTol is ApproxEqual with an explicit tolerance. Two NaNs
// compare unequal (as with ==); infinities compare equal only to the
// same infinity.
func ApproxEqualTol(a, b, tol float64) bool {
	// Exact fast path; also the only correct way to treat equal
	// infinities. geom is exempt from floatcmp precisely so helpers
	// like this can be written.
	if a == b {
		return true
	}
	// An infinity equals only itself, which the fast path handled; the
	// relative test below would otherwise accept Inf <= tol*Inf.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
