package geom

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},             // well within relative tolerance
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance scales
		{0, 1e-12, true},                 // absolute tolerance near zero
		{1, 1.001, false},
		{0, 1e-6, false},
		{inf, inf, true},
		{inf, -inf, false},
		{inf, 1e308, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ApproxEqual(c.b, c.a); got != c.want {
			t.Errorf("ApproxEqual(%g, %g) = %v, want %v (not symmetric)", c.b, c.a, got, c.want)
		}
	}
	if !ApproxEqualTol(1, 1.05, 0.1) {
		t.Error("ApproxEqualTol should honor a custom tolerance")
	}
	if ApproxEqualTol(1, 1.5, 0.1) {
		t.Error("ApproxEqualTol accepted a difference beyond its tolerance")
	}
}
