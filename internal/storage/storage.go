// Package storage simulates the disk layer under the spatial-textual
// indexes. The RSTkNN paper evaluates algorithms by *simulated I/O*: every
// tree-node visit costs one page access, and loading a node whose payload
// spans b pages costs b accesses. This package provides exactly that
// model: a blob store with a fixed page size, per-read accounting, and an
// optional LRU buffer pool so both cold and warm query behaviour can be
// measured.
//
// Blobs are node-sized byte slices produced by the trees' serializers.
// The store is safe for concurrent use: reads take a shared lock, the
// global I/O counters are atomics, and the buffer pool is sharded by
// NodeID so concurrent queries do not serialize on one cache mutex.
// Per-query cost attribution goes through a Tracker passed to GetTracked;
// the global counters keep index-wide totals.
package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize matches the 4 KiB page used throughout the literature.
const DefaultPageSize = 4096

// NodeID identifies a stored blob. IDs are dense, starting at 0.
type NodeID int32

// InvalidNode is the sentinel for "no node".
const InvalidNode NodeID = -1

// Stats aggregates the simulated I/O counters of a Store.
type Stats struct {
	// Reads is the number of Get calls that missed the buffer pool.
	Reads int64
	// PagesRead is the number of pages transferred by those reads
	// (ceil(blobSize / pageSize) per read, minimum 1).
	PagesRead int64
	// CacheHits counts Get calls served by the buffer pool.
	CacheHits int64
	// Writes and PagesWritten mirror the read counters for Put/Update.
	Writes       int64
	PagesWritten int64
}

// Add returns the sum of two stat snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:        s.Reads + o.Reads,
		PagesRead:    s.PagesRead + o.PagesRead,
		CacheHits:    s.CacheHits + o.CacheHits,
		Writes:       s.Writes + o.Writes,
		PagesWritten: s.PagesWritten + o.PagesWritten,
	}
}

// Sub returns the difference s - o. Note that deltas of the global
// counters are NOT a safe way to measure one query under concurrency —
// use a Tracker for per-query attribution.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:        s.Reads - o.Reads,
		PagesRead:    s.PagesRead - o.PagesRead,
		CacheHits:    s.CacheHits - o.CacheHits,
		Writes:       s.Writes - o.Writes,
		PagesWritten: s.PagesWritten - o.PagesWritten,
	}
}

// Tracker is the per-query execution context of the storage layer: every
// tracked read charges its simulated I/O here, so one query's cost can be
// measured exactly while other queries run against the same store. The
// zero value is ready to use. All methods are safe for concurrent use and
// nil-receiver safe (a nil tracker charges nothing).
type Tracker struct {
	reads     atomic.Int64
	pagesRead atomic.Int64
	cacheHits atomic.Int64
}

// ChargeRead records one read transferring the given number of pages.
func (t *Tracker) ChargeRead(pages int64) {
	if t == nil {
		return
	}
	t.reads.Add(1)
	t.pagesRead.Add(pages)
}

// ChargeCacheHit records one read served from a cache.
func (t *Tracker) ChargeCacheHit() {
	if t == nil {
		return
	}
	t.cacheHits.Add(1)
}

// Reads returns the number of reads that missed every cache.
func (t *Tracker) Reads() int64 {
	if t == nil {
		return 0
	}
	return t.reads.Load()
}

// PagesRead returns the pages transferred by the tracked reads.
func (t *Tracker) PagesRead() int64 {
	if t == nil {
		return 0
	}
	return t.pagesRead.Load()
}

// CacheHits returns the reads served from a cache.
func (t *Tracker) CacheHits() int64 {
	if t == nil {
		return 0
	}
	return t.cacheHits.Load()
}

// Stats returns the tracker's counters as a Stats snapshot (write
// counters are zero: trackers attribute query-time reads only).
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{Reads: t.Reads(), PagesRead: t.PagesRead(), CacheHits: t.CacheHits()}
}

// Reset zeroes the tracker so it can be reused for another query.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.reads.Store(0)
	t.pagesRead.Store(0)
	t.cacheHits.Store(0)
}

// counters are the store-global I/O totals, atomics so concurrent readers
// never contend on a stats mutex.
type counters struct {
	reads        atomic.Int64
	pagesRead    atomic.Int64
	cacheHits    atomic.Int64
	writes       atomic.Int64
	pagesWritten atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:        c.reads.Load(),
		PagesRead:    c.pagesRead.Load(),
		CacheHits:    c.cacheHits.Load(),
		Writes:       c.writes.Load(),
		PagesWritten: c.pagesWritten.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.pagesRead.Store(0)
	c.cacheHits.Store(0)
	c.writes.Store(0)
	c.pagesWritten.Store(0)
}

// chargeRead records a cache-missing read on the global counters and the
// tracker (if any).
func (c *counters) chargeRead(pages int64, t *Tracker) {
	c.reads.Add(1)
	c.pagesRead.Add(pages)
	t.ChargeRead(pages)
}

// chargeHit records a buffer-pool hit on the global counters and the
// tracker (if any).
func (c *counters) chargeHit(t *Tracker) {
	c.cacheHits.Add(1)
	t.ChargeCacheHit()
}

func (c *counters) chargeWrite(pages int64) {
	c.writes.Add(1)
	c.pagesWritten.Add(pages)
}

// Blobs is the storage abstraction the index layers build on: a blob
// store with simulated-I/O accounting. Two implementations exist: the
// in-memory Store and the persistent FileStore. Both are safe for
// concurrent readers; writes (Put/Update) must not race with each other
// but may run against a quiescent store only.
type Blobs interface {
	// Put stores a new blob and returns its NodeID.
	Put(data []byte) NodeID
	// Update replaces the blob stored under id.
	Update(id NodeID, data []byte) error
	// Get returns the blob stored under id, charging simulated I/O
	// unless a buffer pool holds it. The returned slice is read-only.
	Get(id NodeID) ([]byte, error)
	// GetTracked is Get with per-query attribution: the simulated I/O is
	// charged to tr (when non-nil) in addition to the global counters.
	GetTracked(id NodeID, tr *Tracker) ([]byte, error)
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// DropCache empties the buffer pool, if any.
	DropCache()
	// PageSize returns the simulated page size in bytes.
	PageSize() int
	// Len returns the number of stored blobs.
	Len() int
	// TotalPages returns the live page footprint.
	TotalPages() int64
	// TotalBytes returns the live payload bytes.
	TotalBytes() int64
}

// Store is a simulated disk. The zero value is not usable; call NewStore.
type Store struct {
	mu       sync.RWMutex // guards blobs (Store) / offsets+file (FileStore)
	pageSize int
	blobs    [][]byte
	stats    counters
	cache    *pool // nil when no buffer pool is configured
}

// Option configures a Store.
type Option func(*Store)

// WithPageSize overrides the default 4 KiB page size.
func WithPageSize(bytes int) Option {
	if bytes <= 0 {
		panic("storage: page size must be positive")
	}
	return func(s *Store) { s.pageSize = bytes }
}

// WithBufferPool enables an LRU buffer pool holding up to capacityPages
// pages worth of blobs. Reads served from the pool cost no simulated I/O.
// Large pools are sharded by NodeID so concurrent readers do not contend
// on one mutex; small pools stay single-sharded and keep exact global LRU
// order.
func WithBufferPool(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newPool(capacityPages)
		}
	}
}

// NewStore returns an empty simulated disk.
func NewStore(opts ...Option) *Store {
	s := &Store{pageSize: DefaultPageSize}
	for _, o := range opts {
		o(s)
	}
	return s
}

// PageSize returns the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Len returns the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// TotalPages returns the total page footprint of all stored blobs — the
// simulated index size on disk.
func (s *Store) TotalPages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(s.pagesFor(len(b)))
	}
	return n
}

// TotalBytes returns the summed blob sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

func (s *Store) pagesFor(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + s.pageSize - 1) / s.pageSize
}

// Put stores a new blob and returns its NodeID. The blob is copied.
func (s *Store) Put(data []byte) NodeID {
	s.mu.Lock()
	id := NodeID(len(s.blobs))
	s.blobs = append(s.blobs, cloneBytes(data))
	b := s.blobs[id]
	s.mu.Unlock()
	s.stats.chargeWrite(int64(s.pagesFor(len(data))))
	if s.cache != nil {
		s.cache.put(id, b, s.pagesFor(len(data)))
	}
	return id
}

// Update replaces the blob stored under id. The blob is copied.
func (s *Store) Update(id NodeID, data []byte) error {
	s.mu.Lock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		s.mu.Unlock()
		return fmt.Errorf("storage: update of unknown node %d", id)
	}
	s.blobs[id] = cloneBytes(data)
	b := s.blobs[id]
	s.mu.Unlock()
	s.stats.chargeWrite(int64(s.pagesFor(len(data))))
	if s.cache != nil {
		s.cache.put(id, b, s.pagesFor(len(data)))
	}
	return nil
}

// Get returns the blob stored under id, charging simulated I/O unless the
// buffer pool holds it. The returned slice must not be modified.
func (s *Store) Get(id NodeID) ([]byte, error) { return s.GetTracked(id, nil) }

// GetTracked is Get with per-query attribution: the charge lands on the
// global counters and, when tr is non-nil, on the caller's tracker.
func (s *Store) GetTracked(id NodeID, tr *Tracker) ([]byte, error) {
	s.mu.RLock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		s.mu.RUnlock()
		return nil, fmt.Errorf("storage: read of unknown node %d", id)
	}
	b := s.blobs[id]
	s.mu.RUnlock()
	if s.cache != nil {
		if cached, ok := s.cache.get(id); ok {
			s.stats.chargeHit(tr)
			return cached, nil
		}
	}
	pages := s.pagesFor(len(b))
	s.stats.chargeRead(int64(pages), tr)
	if s.cache != nil {
		s.cache.put(id, b, pages)
	}
	return b, nil
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats { return s.stats.snapshot() }

// ResetStats zeroes the I/O counters (e.g. after index construction, so
// query measurements start clean).
func (s *Store) ResetStats() { s.stats.reset() }

// DropCache empties the buffer pool, simulating a cold start.
func (s *Store) DropCache() {
	if s.cache != nil {
		s.cache.clear()
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ------------------------------------------------------------------
// Sharded buffer pool

const (
	// maxPoolShards bounds the shard count of a buffer pool.
	maxPoolShards = 16
	// minShardPages is the smallest per-shard page budget worth sharding
	// for: pools below 2*minShardPages stay single-sharded, preserving
	// exact global LRU semantics for tiny pools.
	minShardPages = 64
)

// pool is a buffer pool of blobs, split into independently locked LRU
// shards keyed by NodeID so concurrent readers touch disjoint mutexes.
type pool struct {
	shards []poolShard
	mask   uint32 // len(shards)-1; shard count is a power of two
}

type poolShard struct {
	mu  sync.Mutex
	lru *lru
}

func newPool(capacityPages int) *pool {
	n := 1
	for n < maxPoolShards && capacityPages/(n*2) >= minShardPages {
		n *= 2
	}
	p := &pool{shards: make([]poolShard, n), mask: uint32(n - 1)}
	per := capacityPages / n
	extra := capacityPages % n
	for i := range p.shards {
		c := per
		if i < extra {
			c++
		}
		p.shards[i].lru = newLRU(c)
	}
	return p
}

func (p *pool) shardFor(id NodeID) *poolShard {
	return &p.shards[uint32(id)&p.mask]
}

func (p *pool) get(id NodeID) ([]byte, bool) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	b, ok := sh.lru.get(id)
	sh.mu.Unlock()
	return b, ok
}

func (p *pool) put(id NodeID, data []byte, pages int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	sh.lru.put(id, data, pages)
	sh.mu.Unlock()
}

func (p *pool) clear() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.lru.clear()
		sh.mu.Unlock()
	}
}

// ------------------------------------------------------------------
// LRU shard

// lru is a page-budgeted LRU cache of blobs. Callers synchronize.
type lru struct {
	capacity int // in pages
	used     int
	order    *list.List // front = most recent; values are *lruEntry
	index    map[NodeID]*list.Element
}

type lruEntry struct {
	id    NodeID
	data  []byte
	pages int
}

func newLRU(capacityPages int) *lru {
	return &lru{
		capacity: capacityPages,
		order:    list.New(),
		index:    make(map[NodeID]*list.Element),
	}
}

func (c *lru) get(id NodeID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lru) put(id NodeID, data []byte, pages int) {
	if el, ok := c.index[id]; ok {
		ent := el.Value.(*lruEntry)
		c.used += pages - ent.pages
		ent.data, ent.pages = data, pages
		c.order.MoveToFront(el)
		c.evict()
		return
	}
	if pages > c.capacity {
		return // blob larger than the whole shard: never cached
	}
	el := c.order.PushFront(&lruEntry{id: id, data: data, pages: pages})
	c.index[id] = el
	c.used += pages
	c.evict()
}

func (c *lru) evict() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.index, ent.id)
		c.used -= ent.pages
	}
}

func (c *lru) clear() {
	c.order.Init()
	c.index = make(map[NodeID]*list.Element)
	c.used = 0
}
