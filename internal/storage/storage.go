// Package storage simulates the disk layer under the spatial-textual
// indexes. The RSTkNN paper evaluates algorithms by *simulated I/O*: every
// tree-node visit costs one page access, and loading a node whose payload
// spans b pages costs b accesses. This package provides exactly that
// model: a blob store with a fixed page size, per-read accounting, and an
// optional LRU buffer pool so both cold and warm query behaviour can be
// measured.
//
// Blobs are node-sized byte slices produced by the trees' serializers.
// The store is safe for concurrent use.
package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultPageSize matches the 4 KiB page used throughout the literature.
const DefaultPageSize = 4096

// NodeID identifies a stored blob. IDs are dense, starting at 0.
type NodeID int32

// InvalidNode is the sentinel for "no node".
const InvalidNode NodeID = -1

// Stats aggregates the simulated I/O counters of a Store.
type Stats struct {
	// Reads is the number of Get calls that missed the buffer pool.
	Reads int64
	// PagesRead is the number of pages transferred by those reads
	// (ceil(blobSize / pageSize) per read, minimum 1).
	PagesRead int64
	// CacheHits counts Get calls served by the buffer pool.
	CacheHits int64
	// Writes and PagesWritten mirror the read counters for Put/Update.
	Writes       int64
	PagesWritten int64
}

// Add returns the sum of two stat snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:        s.Reads + o.Reads,
		PagesRead:    s.PagesRead + o.PagesRead,
		CacheHits:    s.CacheHits + o.CacheHits,
		Writes:       s.Writes + o.Writes,
		PagesWritten: s.PagesWritten + o.PagesWritten,
	}
}

// Sub returns the difference s - o; useful for measuring one query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:        s.Reads - o.Reads,
		PagesRead:    s.PagesRead - o.PagesRead,
		CacheHits:    s.CacheHits - o.CacheHits,
		Writes:       s.Writes - o.Writes,
		PagesWritten: s.PagesWritten - o.PagesWritten,
	}
}

// Blobs is the storage abstraction the index layers build on: a blob
// store with simulated-I/O accounting. Two implementations exist: the
// in-memory Store and the persistent FileStore.
type Blobs interface {
	// Put stores a new blob and returns its NodeID.
	Put(data []byte) NodeID
	// Update replaces the blob stored under id.
	Update(id NodeID, data []byte) error
	// Get returns the blob stored under id, charging simulated I/O
	// unless a buffer pool holds it. The returned slice is read-only.
	Get(id NodeID) ([]byte, error)
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// DropCache empties the buffer pool, if any.
	DropCache()
	// PageSize returns the simulated page size in bytes.
	PageSize() int
	// Len returns the number of stored blobs.
	Len() int
	// TotalPages returns the live page footprint.
	TotalPages() int64
	// TotalBytes returns the live payload bytes.
	TotalBytes() int64
}

// Store is a simulated disk. The zero value is not usable; call NewStore.
type Store struct {
	mu       sync.Mutex
	pageSize int
	blobs    [][]byte
	stats    Stats
	cache    *lru // nil when no buffer pool is configured
}

// Option configures a Store.
type Option func(*Store)

// WithPageSize overrides the default 4 KiB page size.
func WithPageSize(bytes int) Option {
	if bytes <= 0 {
		panic("storage: page size must be positive")
	}
	return func(s *Store) { s.pageSize = bytes }
}

// WithBufferPool enables an LRU buffer pool holding up to capacityPages
// pages worth of blobs. Reads served from the pool cost no simulated I/O.
func WithBufferPool(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newLRU(capacityPages)
		}
	}
}

// NewStore returns an empty simulated disk.
func NewStore(opts ...Option) *Store {
	s := &Store{pageSize: DefaultPageSize}
	for _, o := range opts {
		o(s)
	}
	return s
}

// PageSize returns the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Len returns the number of stored blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// TotalPages returns the total page footprint of all stored blobs — the
// simulated index size on disk.
func (s *Store) TotalPages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(s.pagesFor(len(b)))
	}
	return n
}

// TotalBytes returns the summed blob sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

func (s *Store) pagesFor(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + s.pageSize - 1) / s.pageSize
}

// Put stores a new blob and returns its NodeID. The blob is copied.
func (s *Store) Put(data []byte) NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := NodeID(len(s.blobs))
	s.blobs = append(s.blobs, cloneBytes(data))
	s.stats.Writes++
	s.stats.PagesWritten += int64(s.pagesFor(len(data)))
	if s.cache != nil {
		s.cache.put(id, s.blobs[id], s.pagesFor(len(data)))
	}
	return id
}

// Update replaces the blob stored under id. The blob is copied.
func (s *Store) Update(id NodeID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		return fmt.Errorf("storage: update of unknown node %d", id)
	}
	s.blobs[id] = cloneBytes(data)
	s.stats.Writes++
	s.stats.PagesWritten += int64(s.pagesFor(len(data)))
	if s.cache != nil {
		s.cache.put(id, s.blobs[id], s.pagesFor(len(data)))
	}
	return nil
}

// Get returns the blob stored under id, charging simulated I/O unless the
// buffer pool holds it. The returned slice must not be modified.
func (s *Store) Get(id NodeID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		return nil, fmt.Errorf("storage: read of unknown node %d", id)
	}
	if s.cache != nil {
		if b, ok := s.cache.get(id); ok {
			s.stats.CacheHits++
			return b, nil
		}
	}
	b := s.blobs[id]
	s.stats.Reads++
	s.stats.PagesRead += int64(s.pagesFor(len(b)))
	if s.cache != nil {
		s.cache.put(id, b, s.pagesFor(len(b)))
	}
	return b, nil
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the I/O counters (e.g. after index construction, so
// query measurements start clean).
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// DropCache empties the buffer pool, simulating a cold start.
func (s *Store) DropCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		s.cache.clear()
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// lru is a page-budgeted LRU cache of blobs.
type lru struct {
	capacity int // in pages
	used     int
	order    *list.List // front = most recent; values are *lruEntry
	index    map[NodeID]*list.Element
}

type lruEntry struct {
	id    NodeID
	data  []byte
	pages int
}

func newLRU(capacityPages int) *lru {
	return &lru{
		capacity: capacityPages,
		order:    list.New(),
		index:    make(map[NodeID]*list.Element),
	}
}

func (c *lru) get(id NodeID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lru) put(id NodeID, data []byte, pages int) {
	if el, ok := c.index[id]; ok {
		ent := el.Value.(*lruEntry)
		c.used += pages - ent.pages
		ent.data, ent.pages = data, pages
		c.order.MoveToFront(el)
		c.evict()
		return
	}
	if pages > c.capacity {
		return // blob larger than the whole pool: never cached
	}
	el := c.order.PushFront(&lruEntry{id: id, data: data, pages: pages})
	c.index[id] = el
	c.used += pages
	c.evict()
}

func (c *lru) evict() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.index, ent.id)
		c.used -= ent.pages
	}
}

func (c *lru) clear() {
	c.order.Init()
	c.index = make(map[NodeID]*list.Element)
	c.used = 0
}
