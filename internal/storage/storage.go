// Package storage simulates the disk layer under the spatial-textual
// indexes. The RSTkNN paper evaluates algorithms by *simulated I/O*: every
// tree-node visit costs one page access, and loading a node whose payload
// spans b pages costs b accesses. This package provides exactly that
// model: a blob store with a fixed page size, per-read accounting, and an
// optional LRU buffer pool so both cold and warm query behaviour can be
// measured.
//
// Blobs are node-sized byte slices produced by the trees' serializers.
// The store is safe for concurrent use: reads take a shared lock, the
// global I/O counters are atomics, and the buffer pool is sharded by
// NodeID so concurrent queries do not serialize on one cache mutex.
// Per-query cost attribution goes through a Tracker passed to GetTracked;
// the global counters keep index-wide totals.
package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize matches the 4 KiB page used throughout the literature.
const DefaultPageSize = 4096

// NodeID identifies a stored blob. IDs are dense, starting at 0. Freed
// IDs are recycled by later Puts, so a NodeID names a slot, not a
// version: holding an ID across a Free is only safe under the epoch
// protocol (see Reclaimer).
type NodeID int32

// InvalidNode is the sentinel for "no node".
const InvalidNode NodeID = -1

// ErrFreed is wrapped by reads of a slot that was freed and not yet
// reused. Maintenance scans (persistence, compaction) detect it with
// errors.Is to emit tombstones instead of failing.
var ErrFreed = errors.New("storage: node freed")

// Stats aggregates the simulated I/O counters of a Store.
type Stats struct {
	// Reads is the number of Get calls that missed the buffer pool.
	Reads int64
	// PagesRead is the number of pages transferred by those reads
	// (ceil(blobSize / pageSize) per read, minimum 1).
	PagesRead int64
	// CacheHits counts Get calls served by the buffer pool.
	CacheHits int64
	// Writes and PagesWritten mirror the read counters for Put/Update.
	Writes       int64
	PagesWritten int64
}

// Add returns the sum of two stat snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:        s.Reads + o.Reads,
		PagesRead:    s.PagesRead + o.PagesRead,
		CacheHits:    s.CacheHits + o.CacheHits,
		Writes:       s.Writes + o.Writes,
		PagesWritten: s.PagesWritten + o.PagesWritten,
	}
}

// Sub returns the difference s - o. Note that deltas of the global
// counters are NOT a safe way to measure one query under concurrency —
// use a Tracker for per-query attribution.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:        s.Reads - o.Reads,
		PagesRead:    s.PagesRead - o.PagesRead,
		CacheHits:    s.CacheHits - o.CacheHits,
		Writes:       s.Writes - o.Writes,
		PagesWritten: s.PagesWritten - o.PagesWritten,
	}
}

// Tracker is the per-query execution context of the storage layer: every
// tracked read charges its simulated I/O here, so one query's cost can be
// measured exactly while other queries run against the same store. The
// zero value is ready to use. All methods are safe for concurrent use and
// nil-receiver safe (a nil tracker charges nothing).
type Tracker struct {
	reads        atomic.Int64
	pagesRead    atomic.Int64
	cacheHits    atomic.Int64
	writes       atomic.Int64
	pagesWritten atomic.Int64
	sharedReads  atomic.Int64
}

// ChargeRead records one read transferring the given number of pages.
func (t *Tracker) ChargeRead(pages int64) {
	if t == nil {
		return
	}
	t.reads.Add(1)
	t.pagesRead.Add(pages)
}

// ChargeWrite records one blob write transferring the given number of
// pages — the mirror of ChargeRead for the update paths, so an insert or
// delete can report exactly the write I/O it caused.
func (t *Tracker) ChargeWrite(pages int64) {
	if t == nil {
		return
	}
	t.writes.Add(1)
	t.pagesWritten.Add(pages)
}

// ChargeCacheHit records one read served from a cache.
func (t *Tracker) ChargeCacheHit() {
	if t == nil {
		return
	}
	t.cacheHits.Add(1)
}

// ChargeSharedRead records one logical node read served by a physical
// read another consumer already paid for — the attribution used by
// shared-traversal batch execution, where one fetched node is scored
// against many queries. The physical I/O (ChargeRead/ChargeCacheHit) is
// charged exactly once, to the batch-level tracker; every query that
// consumes the node records one shared read here on its own tracker.
// Shared reads deliberately stay out of Stats: they are attribution
// bookkeeping, not additional I/O.
func (t *Tracker) ChargeSharedRead() {
	if t == nil {
		return
	}
	t.sharedReads.Add(1)
}

// SharedReads returns the logical reads served by batch-shared physical
// reads (see ChargeSharedRead).
func (t *Tracker) SharedReads() int64 {
	if t == nil {
		return 0
	}
	return t.sharedReads.Load()
}

// Reads returns the number of reads that missed every cache.
func (t *Tracker) Reads() int64 {
	if t == nil {
		return 0
	}
	return t.reads.Load()
}

// PagesRead returns the pages transferred by the tracked reads.
func (t *Tracker) PagesRead() int64 {
	if t == nil {
		return 0
	}
	return t.pagesRead.Load()
}

// CacheHits returns the reads served from a cache.
func (t *Tracker) CacheHits() int64 {
	if t == nil {
		return 0
	}
	return t.cacheHits.Load()
}

// Writes returns the number of tracked blob writes.
func (t *Tracker) Writes() int64 {
	if t == nil {
		return 0
	}
	return t.writes.Load()
}

// PagesWritten returns the pages transferred by the tracked writes.
func (t *Tracker) PagesWritten() int64 {
	if t == nil {
		return 0
	}
	return t.pagesWritten.Load()
}

// Stats returns the tracker's counters as a Stats snapshot.
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Reads:        t.Reads(),
		PagesRead:    t.PagesRead(),
		CacheHits:    t.CacheHits(),
		Writes:       t.Writes(),
		PagesWritten: t.PagesWritten(),
	}
}

// Reset zeroes the tracker so it can be reused for another query.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.reads.Store(0)
	t.pagesRead.Store(0)
	t.cacheHits.Store(0)
	t.writes.Store(0)
	t.pagesWritten.Store(0)
	t.sharedReads.Store(0)
}

// counters are the store-global I/O totals, atomics so concurrent readers
// never contend on a stats mutex.
type counters struct {
	reads        atomic.Int64
	pagesRead    atomic.Int64
	cacheHits    atomic.Int64
	writes       atomic.Int64
	pagesWritten atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:        c.reads.Load(),
		PagesRead:    c.pagesRead.Load(),
		CacheHits:    c.cacheHits.Load(),
		Writes:       c.writes.Load(),
		PagesWritten: c.pagesWritten.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.pagesRead.Store(0)
	c.cacheHits.Store(0)
	c.writes.Store(0)
	c.pagesWritten.Store(0)
}

// chargeRead records a cache-missing read on the global counters and the
// tracker (if any).
func (c *counters) chargeRead(pages int64, t *Tracker) {
	c.reads.Add(1)
	c.pagesRead.Add(pages)
	t.ChargeRead(pages)
}

// chargeHit records a buffer-pool hit on the global counters and the
// tracker (if any).
func (c *counters) chargeHit(t *Tracker) {
	c.cacheHits.Add(1)
	t.ChargeCacheHit()
}

// chargeWrite records a blob write on the global counters and the
// tracker (if any).
func (c *counters) chargeWrite(pages int64, t *Tracker) {
	c.writes.Add(1)
	c.pagesWritten.Add(pages)
	t.ChargeWrite(pages)
}

// Blobs is the storage abstraction the index layers build on: a blob
// store with simulated-I/O accounting. Two implementations exist: the
// in-memory Store and the persistent FileStore. Both are safe for
// concurrent readers; writes (Put/Update/Retire/Free) must be issued by
// one writer at a time, but may run concurrently with readers — the
// copy-on-write update path never touches a blob a published snapshot
// references.
type Blobs interface {
	// Put stores a new blob and returns its NodeID, reusing a freed slot
	// when one is available.
	Put(data []byte) NodeID
	// PutTracked is Put with per-writer attribution: the write I/O is
	// charged to tr (when non-nil) in addition to the global counters.
	PutTracked(data []byte, tr *Tracker) NodeID
	// Update replaces the blob stored under id.
	Update(id NodeID, data []byte) error
	// Get returns the blob stored under id, charging simulated I/O
	// unless a buffer pool holds it. The returned slice is read-only.
	Get(id NodeID) ([]byte, error)
	// GetTracked is Get with per-query attribution: the simulated I/O is
	// charged to tr (when non-nil) in addition to the global counters.
	GetTracked(id NodeID, tr *Tracker) ([]byte, error)
	// Retire marks the blob as superseded garbage: it stays readable (a
	// pinned snapshot may still reference it) but no longer counts as
	// live. Free reclaims it once no reader can hold it.
	Retire(id NodeID)
	// Free reclaims a slot: the blob becomes unreadable (reads return
	// ErrFreed) and the ID is recycled by a later Put.
	Free(id NodeID) error
	// Stats returns a snapshot of the I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// DropCache empties the buffer pool, if any.
	DropCache()
	// PageSize returns the simulated page size in bytes.
	PageSize() int
	// Len returns the number of slots (live, retired, and freed).
	Len() int
	// TotalPages returns the page footprint of every non-freed blob,
	// including retired garbage awaiting reclamation.
	TotalPages() int64
	// TotalBytes returns the payload bytes of every non-freed blob.
	TotalBytes() int64
	// LivePages returns the page footprint of the blobs the current
	// index version references (TotalPages minus retired garbage).
	LivePages() int64
	// LiveBytes returns the payload bytes of those live blobs.
	LiveBytes() int64
}

// Store is a simulated disk. The zero value is not usable; call NewStore.
type Store struct {
	mu       sync.RWMutex // guards blobs+slot state (Store) / offsets+file (FileStore)
	pageSize int
	blobs    [][]byte
	stats    counters
	cache    *pool // nil when no buffer pool is configured

	// Slot lifecycle, shared with FileStore through embedding: a slot is
	// live, retired (superseded garbage still readable by pinned
	// snapshots), or freed (reclaimed, ID queued for reuse).
	retired []bool
	freed   []bool
	freeIDs []NodeID
}

// ensureSlotState grows the slot-state arrays to cover n slots. Caller
// holds the lock.
func (s *Store) ensureSlotState(n int) {
	for len(s.retired) < n {
		s.retired = append(s.retired, false)
		s.freed = append(s.freed, false)
	}
}

// takeFreeSlot pops a recycled NodeID, if any. Caller holds the lock.
func (s *Store) takeFreeSlot() (NodeID, bool) {
	if len(s.freeIDs) == 0 {
		return InvalidNode, false
	}
	id := s.freeIDs[len(s.freeIDs)-1]
	s.freeIDs = s.freeIDs[:len(s.freeIDs)-1]
	s.retired[id] = false
	s.freed[id] = false
	return id, true
}

// markRetired flags slot id as garbage. Caller holds the lock.
func (s *Store) markRetired(id NodeID, n int) {
	if int(id) < 0 || int(id) >= n {
		return
	}
	s.ensureSlotState(n)
	if !s.freed[id] {
		s.retired[id] = true
	}
}

// markFreed transitions slot id to freed and queues it for reuse.
// Caller holds the lock; returns false when already freed or unknown.
func (s *Store) markFreed(id NodeID, n int) bool {
	if int(id) < 0 || int(id) >= n {
		return false
	}
	s.ensureSlotState(n)
	if s.freed[id] {
		return false
	}
	s.freed[id] = true
	s.retired[id] = false
	s.freeIDs = append(s.freeIDs, id)
	return true
}

// slotFreed reports whether id is freed. Caller holds the lock.
func (s *Store) slotFreed(id NodeID) bool {
	return int(id) < len(s.freed) && s.freed[id]
}

// slotRetired reports whether id is retired. Caller holds the lock.
func (s *Store) slotRetired(id NodeID) bool {
	return int(id) < len(s.retired) && s.retired[id]
}

// Option configures a Store.
type Option func(*Store)

// WithPageSize overrides the default 4 KiB page size.
func WithPageSize(bytes int) Option {
	if bytes <= 0 {
		panic("storage: page size must be positive")
	}
	return func(s *Store) { s.pageSize = bytes }
}

// WithBufferPool enables an LRU buffer pool holding up to capacityPages
// pages worth of blobs. Reads served from the pool cost no simulated I/O.
// Large pools are sharded by NodeID so concurrent readers do not contend
// on one mutex; small pools stay single-sharded and keep exact global LRU
// order.
func WithBufferPool(capacityPages int) Option {
	return func(s *Store) {
		if capacityPages > 0 {
			s.cache = newPool(capacityPages)
		}
	}
}

// NewStore returns an empty simulated disk.
func NewStore(opts ...Option) *Store {
	s := &Store{pageSize: DefaultPageSize}
	for _, o := range opts {
		o(s)
	}
	return s
}

// PageSize returns the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Len returns the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// TotalPages returns the total page footprint of all non-freed blobs —
// the simulated index size on disk, including retired garbage that
// awaits reclamation.
func (s *Store) TotalPages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for id, b := range s.blobs {
		if s.slotFreed(NodeID(id)) {
			continue
		}
		n += int64(s.pagesFor(len(b)))
	}
	return n
}

// TotalBytes returns the summed sizes of all non-freed blobs.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for id, b := range s.blobs {
		if s.slotFreed(NodeID(id)) {
			continue
		}
		n += int64(len(b))
	}
	return n
}

// LivePages returns the page footprint of the blobs the current index
// version references: TotalPages minus retired-but-unreclaimed garbage.
func (s *Store) LivePages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for id, b := range s.blobs {
		if s.slotFreed(NodeID(id)) || s.slotRetired(NodeID(id)) {
			continue
		}
		n += int64(s.pagesFor(len(b)))
	}
	return n
}

// LiveBytes returns the payload bytes of the live blobs.
func (s *Store) LiveBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for id, b := range s.blobs {
		if s.slotFreed(NodeID(id)) || s.slotRetired(NodeID(id)) {
			continue
		}
		n += int64(len(b))
	}
	return n
}

func (s *Store) pagesFor(size int) int {
	if size <= 0 {
		return 1
	}
	return (size + s.pageSize - 1) / s.pageSize
}

// Put stores a new blob and returns its NodeID, reusing a freed slot
// when one is available. The blob is copied.
func (s *Store) Put(data []byte) NodeID { return s.PutTracked(data, nil) }

// PutTracked is Put with per-writer attribution: the write I/O lands on
// the global counters and, when tr is non-nil, on the caller's tracker.
func (s *Store) PutTracked(data []byte, tr *Tracker) NodeID {
	s.mu.Lock()
	id, reused := s.takeFreeSlot()
	if reused {
		s.blobs[id] = cloneBytes(data)
	} else {
		id = NodeID(len(s.blobs))
		s.blobs = append(s.blobs, cloneBytes(data))
		s.ensureSlotState(len(s.blobs))
	}
	b := s.blobs[id]
	s.mu.Unlock()
	s.stats.chargeWrite(int64(s.pagesFor(len(data))), tr)
	if s.cache != nil {
		s.cache.put(id, b, s.pagesFor(len(data)))
	}
	return id
}

// Retire marks the blob as superseded garbage: still readable for
// pinned snapshots, excluded from LivePages/LiveBytes. Retiring a freed
// or unknown slot is a no-op.
func (s *Store) Retire(id NodeID) {
	s.mu.Lock()
	s.markRetired(id, len(s.blobs))
	s.mu.Unlock()
}

// Free reclaims a slot: the payload is dropped, reads return ErrFreed,
// and the ID is recycled by a later Put. Freeing twice is an error.
func (s *Store) Free(id NodeID) error {
	s.mu.Lock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		s.mu.Unlock()
		return fmt.Errorf("storage: free of unknown node %d", id)
	}
	if !s.markFreed(id, len(s.blobs)) {
		s.mu.Unlock()
		return fmt.Errorf("storage: double free of node %d: %w", id, ErrFreed)
	}
	s.blobs[id] = nil
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.remove(id)
	}
	return nil
}

// Update replaces the blob stored under id. The blob is copied.
func (s *Store) Update(id NodeID, data []byte) error {
	s.mu.Lock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		s.mu.Unlock()
		return fmt.Errorf("storage: update of unknown node %d", id)
	}
	if s.slotFreed(id) {
		s.mu.Unlock()
		return fmt.Errorf("storage: update of node %d: %w", id, ErrFreed)
	}
	s.blobs[id] = cloneBytes(data)
	b := s.blobs[id]
	s.mu.Unlock()
	s.stats.chargeWrite(int64(s.pagesFor(len(data))), nil)
	if s.cache != nil {
		s.cache.put(id, b, s.pagesFor(len(data)))
	}
	return nil
}

// Get returns the blob stored under id, charging simulated I/O unless the
// buffer pool holds it. The returned slice must not be modified.
func (s *Store) Get(id NodeID) ([]byte, error) { return s.GetTracked(id, nil) }

// GetTracked is Get with per-query attribution: the charge lands on the
// global counters and, when tr is non-nil, on the caller's tracker.
func (s *Store) GetTracked(id NodeID, tr *Tracker) ([]byte, error) {
	s.mu.RLock()
	if int(id) < 0 || int(id) >= len(s.blobs) {
		s.mu.RUnlock()
		return nil, fmt.Errorf("storage: read of unknown node %d", id)
	}
	if s.slotFreed(id) {
		s.mu.RUnlock()
		return nil, fmt.Errorf("storage: read of node %d: %w", id, ErrFreed)
	}
	b := s.blobs[id]
	s.mu.RUnlock()
	if s.cache != nil {
		if cached, ok := s.cache.get(id); ok {
			s.stats.chargeHit(tr)
			return cached, nil
		}
	}
	pages := s.pagesFor(len(b))
	s.stats.chargeRead(int64(pages), tr)
	if s.cache != nil {
		s.cache.put(id, b, pages)
	}
	return b, nil
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats { return s.stats.snapshot() }

// ResetStats zeroes the I/O counters (e.g. after index construction, so
// query measurements start clean).
func (s *Store) ResetStats() { s.stats.reset() }

// DropCache empties the buffer pool, simulating a cold start.
func (s *Store) DropCache() {
	if s.cache != nil {
		s.cache.clear()
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ------------------------------------------------------------------
// Sharded buffer pool

const (
	// maxPoolShards bounds the shard count of a buffer pool.
	maxPoolShards = 16
	// minShardPages is the smallest per-shard page budget worth sharding
	// for: pools below 2*minShardPages stay single-sharded, preserving
	// exact global LRU semantics for tiny pools.
	minShardPages = 64
)

// pool is a buffer pool of blobs, split into independently locked LRU
// shards keyed by NodeID so concurrent readers touch disjoint mutexes.
type pool struct {
	shards []poolShard
	mask   uint32 // len(shards)-1; shard count is a power of two
}

type poolShard struct {
	mu  sync.Mutex
	lru *lru
}

func newPool(capacityPages int) *pool {
	n := 1
	for n < maxPoolShards && capacityPages/(n*2) >= minShardPages {
		n *= 2
	}
	p := &pool{shards: make([]poolShard, n), mask: uint32(n - 1)}
	per := capacityPages / n
	extra := capacityPages % n
	for i := range p.shards {
		c := per
		if i < extra {
			c++
		}
		p.shards[i].lru = newLRU(c)
	}
	return p
}

func (p *pool) shardFor(id NodeID) *poolShard {
	return &p.shards[uint32(id)&p.mask]
}

func (p *pool) get(id NodeID) ([]byte, bool) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	b, ok := sh.lru.get(id)
	sh.mu.Unlock()
	return b, ok
}

func (p *pool) put(id NodeID, data []byte, pages int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	sh.lru.put(id, data, pages)
	sh.mu.Unlock()
}

// remove drops one blob from the pool (after its slot was freed), so a
// recycled NodeID can never serve the previous occupant's bytes.
func (p *pool) remove(id NodeID) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	sh.lru.remove(id)
	sh.mu.Unlock()
}

func (p *pool) clear() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.lru.clear()
		sh.mu.Unlock()
	}
}

// ------------------------------------------------------------------
// LRU shard

// lru is a page-budgeted LRU cache of blobs. Callers synchronize.
type lru struct {
	capacity int // in pages
	used     int
	order    *list.List // front = most recent; values are *lruEntry
	index    map[NodeID]*list.Element
}

type lruEntry struct {
	id    NodeID
	data  []byte
	pages int
}

func newLRU(capacityPages int) *lru {
	return &lru{
		capacity: capacityPages,
		order:    list.New(),
		index:    make(map[NodeID]*list.Element),
	}
}

func (c *lru) get(id NodeID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lru) put(id NodeID, data []byte, pages int) {
	if el, ok := c.index[id]; ok {
		ent := el.Value.(*lruEntry)
		c.used += pages - ent.pages
		ent.data, ent.pages = data, pages
		c.order.MoveToFront(el)
		c.evict()
		return
	}
	if pages > c.capacity {
		return // blob larger than the whole shard: never cached
	}
	el := c.order.PushFront(&lruEntry{id: id, data: data, pages: pages})
	c.index[id] = el
	c.used += pages
	c.evict()
}

func (c *lru) evict() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.index, ent.id)
		c.used -= ent.pages
	}
}

func (c *lru) remove(id NodeID) {
	el, ok := c.index[id]
	if !ok {
		return
	}
	ent := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.index, id)
	c.used -= ent.pages
}

func (c *lru) clear() {
	c.order.Init()
	c.index = make(map[NodeID]*list.Element)
	c.used = 0
}
