package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newTestFileStore(t *testing.T, opts ...Option) *FileStore {
	t.Helper()
	fs, err := CreateFileStore(filepath.Join(t.TempDir(), "blobs.log"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestFileStoreImplementsBlobs(t *testing.T) {
	var _ Blobs = newTestFileStore(t)
	var _ Blobs = NewStore()
}

func TestFileStorePutGet(t *testing.T) {
	fs := newTestFileStore(t, WithPageSize(100))
	a := fs.Put([]byte("alpha"))
	b := fs.Put(make([]byte, 250))
	got, err := fs.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("alpha")) {
		t.Errorf("Get(a) = %q", got)
	}
	if fs.Len() != 2 {
		t.Errorf("Len = %d", fs.Len())
	}
	fs.ResetStats()
	fs.Get(b)
	st := fs.Stats()
	if st.Reads != 1 || st.PagesRead != 3 {
		t.Errorf("I/O accounting: %+v", st)
	}
	if _, err := fs.Get(NodeID(99)); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestFileStoreUpdate(t *testing.T) {
	fs := newTestFileStore(t)
	id := fs.Put([]byte("v1"))
	if err := fs.Update(id, []byte("version-two")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Get(id)
	if !bytes.Equal(got, []byte("version-two")) {
		t.Errorf("after update: %q", got)
	}
	if err := fs.Update(NodeID(42), nil); err == nil {
		t.Error("update of unknown node should fail")
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blobs.log")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, fs.Put([]byte(fmt.Sprintf("blob-%d", i))))
	}
	fs.Update(ids[3], []byte("blob-3-updated"))
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 20 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	for i, id := range ids {
		want := fmt.Sprintf("blob-%d", i)
		if i == 3 {
			want = "blob-3-updated"
		}
		got, err := re.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("blob %d = %q, want %q", i, got, want)
		}
	}
}

func TestFileStoreOpenMissing(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Error("opening a missing file should fail")
	}
}

// TestFileStoreOpenCorruptID: a record header whose node ID field holds
// garbage must fail the reopen scan. The pre-fix scan indexed offsets[id]
// straight off the decoded value — 0x80000000 flips negative as int32
// (index panic) and a large positive id grows the index without bound.
func TestFileStoreOpenCorruptID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blobs.log")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.Put([]byte("payload"))
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint32{0x80000000, 0xFFFFFFFF, 1 << 20} {
		data := append([]byte(nil), pristine...)
		binary.LittleEndian.PutUint32(data, id)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		if re, err := OpenFileStore(path); err == nil {
			re.Close()
			t.Errorf("OpenFileStore accepted corrupt record id %#x", id)
		}
	}
}

func TestFileStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blobs.log")
	fs, err := CreateFileStore(path, WithPageSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id := fs.Put(make([]byte, 100))
	for i := 0; i < 10; i++ {
		if err := fs.Update(id, []byte(fmt.Sprintf("final-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	other := fs.Put([]byte("other"))
	before := fileSize(t, path)
	if err := fs.Compact(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, path)
	if after >= before {
		t.Errorf("compact did not shrink the log: %d -> %d", before, after)
	}
	got, err := fs.Get(id)
	if err != nil || string(got) != "final-9" {
		t.Errorf("post-compact Get = %q, %v", got, err)
	}
	if got, _ := fs.Get(other); string(got) != "other" {
		t.Errorf("post-compact other = %q", got)
	}
	// Store still writable after compaction.
	third := fs.Put([]byte("third"))
	if got, _ := fs.Get(third); string(got) != "third" {
		t.Error("store unusable after compact")
	}
}

func TestFileStoreBufferPool(t *testing.T) {
	fs := newTestFileStore(t, WithPageSize(64), WithBufferPool(4))
	id := fs.Put([]byte("cached"))
	fs.ResetStats()
	fs.Get(id)
	if st := fs.Stats(); st.CacheHits != 1 {
		t.Errorf("Put should prime the pool: %+v", st)
	}
	fs.DropCache()
	fs.ResetStats()
	fs.Get(id)
	fs.Get(id)
	st := fs.Stats()
	if st.Reads != 1 || st.CacheHits != 1 {
		t.Errorf("cold/warm: %+v", st)
	}
}

func TestFileStoreTotals(t *testing.T) {
	fs := newTestFileStore(t, WithPageSize(100))
	fs.Put(make([]byte, 150))
	fs.Put(make([]byte, 10))
	if got := fs.TotalPages(); got != 3 {
		t.Errorf("TotalPages = %d", got)
	}
	if got := fs.TotalBytes(); got != 160 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
