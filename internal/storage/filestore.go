package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File-backed mode: blobs live in an append-only log file instead of
// memory, so a sealed index survives the process. The simulated-I/O
// accounting is identical to the in-memory store (the page counters model
// the paper's cost metric, not the host filesystem).
//
// Record format, little-endian:
//
//	u32 node ID
//	u32 payload length
//	payload bytes
//
// Update appends a new record under the same ID; the highest-offset
// record wins on reopen. Compact rewrites the log dropping superseded
// records.

// FileStore is a Store whose blobs are persisted to a log file. It keeps
// only the offset index in memory.
type FileStore struct {
	Store // embedded for options plumbing; blobs field unused

	f       *os.File
	path    string
	offsets []recordRef // indexed by NodeID
}

type recordRef struct {
	off  int64
	size int32
}

const fileRecordHeader = 8

// CreateFileStore creates (or truncates) a log file and returns an empty
// file-backed store.
func CreateFileStore(path string, opts ...Option) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{f: f, path: path}
	fs.pageSize = DefaultPageSize
	for _, o := range opts {
		o(&fs.Store)
	}
	return fs, nil
}

// OpenFileStore reopens an existing log file, rebuilding the offset index
// by scanning the records.
func OpenFileStore(path string, opts ...Option) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{f: f, path: path}
	fs.pageSize = DefaultPageSize
	for _, o := range opts {
		o(&fs.Store)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //rstknn:allow errlost best-effort close; the stat error is returned
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	// Every record needs at least a header, so no valid id can reach
	// size/fileRecordHeader — checking decoded ids against it bounds the
	// offset index (and the append loop growing it) by the file size,
	// whatever a corrupt header claims.
	maxID := st.Size() / fileRecordHeader
	var off int64
	var header [fileRecordHeader]byte
	for {
		_, err = f.ReadAt(header[:], off)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close() //rstknn:allow errlost best-effort close; the scan error is returned
			return nil, fmt.Errorf("storage: scanning %s at %d: %w", path, off, err)
		}
		id := NodeID(binary.LittleEndian.Uint32(header[0:]))
		size := int32(binary.LittleEndian.Uint32(header[4:]))
		if id < 0 || int64(id) >= maxID {
			f.Close() //rstknn:allow errlost best-effort close; the corruption error is returned
			return nil, fmt.Errorf("storage: corrupt record id %d at %d", id, off)
		}
		if size < 0 {
			f.Close() //rstknn:allow errlost best-effort close; the corruption error is returned
			return nil, fmt.Errorf("storage: corrupt record size %d at %d", size, off)
		}
		for int(id) >= len(fs.offsets) {
			fs.offsets = append(fs.offsets, recordRef{off: -1})
		}
		fs.offsets[id] = recordRef{off: off + fileRecordHeader, size: size}
		off += fileRecordHeader + int64(size)
	}
	for i, r := range fs.offsets {
		if r.off < 0 {
			f.Close() //rstknn:allow errlost best-effort close; the missing-record error is returned
			return nil, fmt.Errorf("storage: missing record for node %d", i)
		}
	}
	return fs, nil
}

// Close flushes and closes the log file.
func (fs *FileStore) Close() error { return fs.f.Close() }

// Path returns the log file path.
func (fs *FileStore) Path() string { return fs.path }

// Len returns the number of stored blobs.
func (fs *FileStore) Len() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.offsets)
}

// Put appends a new blob and returns its NodeID, reusing a freed slot
// when one is available.
func (fs *FileStore) Put(data []byte) NodeID { return fs.PutTracked(data, nil) }

// PutTracked is Put with per-writer attribution: the write I/O lands on
// the global counters and, when tr is non-nil, on the caller's tracker.
func (fs *FileStore) PutTracked(data []byte, tr *Tracker) NodeID {
	fs.mu.Lock()
	id, reused := fs.takeFreeSlot()
	if !reused {
		id = NodeID(len(fs.offsets))
	}
	if err := fs.append(id, data); err != nil {
		// The in-memory Store's Put cannot fail; keep the signature and
		// surface the failure at the next read instead.
		if !reused {
			fs.offsets = append(fs.offsets, recordRef{off: -1})
			fs.ensureSlotState(len(fs.offsets))
		} else {
			fs.offsets[id] = recordRef{off: -1}
		}
		fs.mu.Unlock()
		return id
	}
	if !reused {
		fs.ensureSlotState(len(fs.offsets))
	}
	fs.mu.Unlock()
	fs.stats.chargeWrite(int64(fs.pagesFor(len(data))), tr)
	if fs.cache != nil {
		fs.cache.put(id, cloneBytes(data), fs.pagesFor(len(data)))
	}
	return id
}

// Retire marks the blob as superseded garbage: still readable for
// pinned snapshots, excluded from LivePages/LiveBytes.
func (fs *FileStore) Retire(id NodeID) {
	fs.mu.Lock()
	fs.markRetired(id, len(fs.offsets))
	fs.mu.Unlock()
}

// Free reclaims a slot: reads return ErrFreed and the ID is recycled by
// a later Put. The superseded record stays in the log until Compact
// rewrites it as an empty tombstone (ID density is required on reopen).
func (fs *FileStore) Free(id NodeID) error {
	fs.mu.Lock()
	if int(id) < 0 || int(id) >= len(fs.offsets) {
		fs.mu.Unlock()
		return fmt.Errorf("storage: free of unknown node %d", id)
	}
	if !fs.markFreed(id, len(fs.offsets)) {
		fs.mu.Unlock()
		return fmt.Errorf("storage: double free of node %d: %w", id, ErrFreed)
	}
	fs.mu.Unlock()
	if fs.cache != nil {
		fs.cache.remove(id)
	}
	return nil
}

// Update replaces the blob stored under id by appending a fresh record.
func (fs *FileStore) Update(id NodeID, data []byte) error {
	fs.mu.Lock()
	if int(id) < 0 || int(id) >= len(fs.offsets) {
		fs.mu.Unlock()
		return fmt.Errorf("storage: update of unknown node %d", id)
	}
	if fs.slotFreed(id) {
		fs.mu.Unlock()
		return fmt.Errorf("storage: update of node %d: %w", id, ErrFreed)
	}
	// append overwrites fs.offsets[id] only on success, so a failed
	// update leaves the previous record visible.
	prev := fs.offsets[id]
	if err := fs.append(id, data); err != nil {
		fs.offsets[id] = prev
		fs.mu.Unlock()
		return err
	}
	fs.mu.Unlock()
	fs.stats.chargeWrite(int64(fs.pagesFor(len(data))), nil)
	if fs.cache != nil {
		fs.cache.put(id, cloneBytes(data), fs.pagesFor(len(data)))
	}
	return nil
}

// append writes a record at the end of the log and records its offset.
// Caller holds the lock.
func (fs *FileStore) append(id NodeID, data []byte) error {
	end, err := fs.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	var header [fileRecordHeader]byte
	binary.LittleEndian.PutUint32(header[0:], uint32(id))
	binary.LittleEndian.PutUint32(header[4:], uint32(len(data)))
	if _, err := fs.f.Write(header[:]); err != nil {
		return err
	}
	if _, err := fs.f.Write(data); err != nil {
		return err
	}
	ref := recordRef{off: end + fileRecordHeader, size: int32(len(data))}
	if int(id) == len(fs.offsets) {
		fs.offsets = append(fs.offsets, ref)
	} else {
		fs.offsets[id] = ref
	}
	return nil
}

// Get returns the blob stored under id, charging simulated I/O unless the
// buffer pool holds it.
func (fs *FileStore) Get(id NodeID) ([]byte, error) { return fs.GetTracked(id, nil) }

// GetTracked is Get with per-query attribution: the charge lands on the
// global counters and, when tr is non-nil, on the caller's tracker.
// os.File.ReadAt is safe for concurrent use, so readers only share-lock
// the offset index.
func (fs *FileStore) GetTracked(id NodeID, tr *Tracker) ([]byte, error) {
	fs.mu.RLock()
	if int(id) < 0 || int(id) >= len(fs.offsets) {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("storage: read of unknown node %d", id)
	}
	if fs.slotFreed(id) {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("storage: read of node %d: %w", id, ErrFreed)
	}
	ref := fs.offsets[id]
	fs.mu.RUnlock()
	if fs.cache != nil {
		if b, ok := fs.cache.get(id); ok {
			fs.stats.chargeHit(tr)
			return b, nil
		}
	}
	if ref.off < 0 {
		return nil, fmt.Errorf("storage: node %d has no durable record (failed write?)", id)
	}
	buf := make([]byte, ref.size)
	if _, err := fs.f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("storage: reading node %d: %w", id, err)
	}
	fs.stats.chargeRead(int64(fs.pagesFor(len(buf))), tr)
	if fs.cache != nil {
		fs.cache.put(id, buf, fs.pagesFor(len(buf)))
	}
	return buf, nil
}

// TotalPages returns the page footprint of every non-freed blob
// (log records superseded by Update are not counted; see Compact).
func (fs *FileStore) TotalPages() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for id, r := range fs.offsets {
		if fs.slotFreed(NodeID(id)) {
			continue
		}
		n += int64(fs.pagesFor(int(r.size)))
	}
	return n
}

// TotalBytes returns the payload bytes of every non-freed blob.
func (fs *FileStore) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for id, r := range fs.offsets {
		if fs.slotFreed(NodeID(id)) {
			continue
		}
		n += int64(r.size)
	}
	return n
}

// LivePages returns the page footprint of the blobs the current index
// version references (TotalPages minus retired garbage).
func (fs *FileStore) LivePages() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for id, r := range fs.offsets {
		if fs.slotFreed(NodeID(id)) || fs.slotRetired(NodeID(id)) {
			continue
		}
		n += int64(fs.pagesFor(int(r.size)))
	}
	return n
}

// LiveBytes returns the payload bytes of the live blobs.
func (fs *FileStore) LiveBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for id, r := range fs.offsets {
		if fs.slotFreed(NodeID(id)) || fs.slotRetired(NodeID(id)) {
			continue
		}
		n += int64(r.size)
	}
	return n
}

// Compact rewrites the log keeping only the live record of every node,
// reclaiming space left by updates. The store remains usable afterwards.
func (fs *FileStore) Compact() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	tmpPath := fs.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	newOffsets := make([]recordRef, len(fs.offsets))
	var off int64
	for id, ref := range fs.offsets {
		var buf []byte
		if !fs.slotFreed(NodeID(id)) {
			buf = make([]byte, ref.size)
			if _, err := fs.f.ReadAt(buf, ref.off); err != nil {
				tmp.Close()        //rstknn:allow errlost best-effort cleanup; the read error is returned
				os.Remove(tmpPath) //rstknn:allow errlost best-effort cleanup; the read error is returned
				return err
			}
		}
		// Freed slots compact to empty tombstone records: reopening
		// requires every ID to be present, and a zero payload keeps the
		// slot's accounting at zero until Put recycles it.
		var header [fileRecordHeader]byte
		binary.LittleEndian.PutUint32(header[0:], uint32(id))
		binary.LittleEndian.PutUint32(header[4:], uint32(len(buf)))
		if _, err := tmp.Write(header[:]); err != nil {
			tmp.Close()        //rstknn:allow errlost best-effort cleanup; the write error is returned
			os.Remove(tmpPath) //rstknn:allow errlost best-effort cleanup; the write error is returned
			return err
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()        //rstknn:allow errlost best-effort cleanup; the write error is returned
			os.Remove(tmpPath) //rstknn:allow errlost best-effort cleanup; the write error is returned
			return err
		}
		newOffsets[id] = recordRef{off: off + fileRecordHeader, size: int32(len(buf))}
		off += fileRecordHeader + int64(len(buf))
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, fs.path); err != nil {
		return err
	}
	f, err := os.OpenFile(fs.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	fs.f = f
	fs.offsets = newOffsets
	if fs.cache != nil {
		fs.cache.clear()
	}
	return nil
}
