package storage

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	a := s.Put([]byte("hello"))
	b := s.Put([]byte("world"))
	if a == b {
		t.Fatal("distinct blobs share an ID")
	}
	got, err := s.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Get(a) = %q", got)
	}
	got, err = s.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("world")) {
		t.Errorf("Get(b) = %q", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPutCopies(t *testing.T) {
	s := NewStore()
	buf := []byte("mutable")
	id := s.Put(buf)
	buf[0] = 'X'
	got, _ := s.Get(id)
	if got[0] != 'm' {
		t.Error("Put must copy the caller's buffer")
	}
}

func TestUpdate(t *testing.T) {
	s := NewStore()
	id := s.Put([]byte("v1"))
	if err := s.Update(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(id)
	if !bytes.Equal(got, []byte("v2")) {
		t.Errorf("after update: %q", got)
	}
	if err := s.Update(NodeID(99), nil); err == nil {
		t.Error("update of unknown node should fail")
	}
}

func TestGetErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Get(InvalidNode); err == nil {
		t.Error("Get(InvalidNode) should fail")
	}
	if _, err := s.Get(NodeID(0)); err == nil {
		t.Error("Get of unknown node should fail")
	}
}

func TestIOAccounting(t *testing.T) {
	s := NewStore(WithPageSize(100))
	small := s.Put(make([]byte, 50))  // 1 page
	large := s.Put(make([]byte, 250)) // 3 pages
	empty := s.Put(nil)               // still 1 page (a node occupies a page)
	st := s.Stats()
	if st.Writes != 3 || st.PagesWritten != 1+3+1 {
		t.Errorf("write stats = %+v", st)
	}
	s.ResetStats()
	s.Get(small)
	s.Get(large)
	s.Get(large)
	s.Get(empty)
	st = s.Stats()
	if st.Reads != 4 {
		t.Errorf("Reads = %d, want 4", st.Reads)
	}
	if st.PagesRead != 1+3+3+1 {
		t.Errorf("PagesRead = %d, want 8", st.PagesRead)
	}
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d without a pool", st.CacheHits)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Reads: 5, PagesRead: 9, CacheHits: 1, Writes: 2, PagesWritten: 3}
	b := Stats{Reads: 2, PagesRead: 4, CacheHits: 1, Writes: 1, PagesWritten: 1}
	d := a.Sub(b)
	if d.Reads != 3 || d.PagesRead != 5 || d.CacheHits != 0 || d.Writes != 1 || d.PagesWritten != 2 {
		t.Errorf("Sub = %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Errorf("Add(Sub) != original: %+v", got)
	}
}

func TestBufferPoolHits(t *testing.T) {
	s := NewStore(WithPageSize(100), WithBufferPool(10))
	id := s.Put(make([]byte, 80))
	s.ResetStats()
	s.Get(id) // Put primed the cache, so this is already a hit
	st := s.Stats()
	if st.CacheHits != 1 || st.Reads != 0 {
		t.Errorf("first read stats = %+v", st)
	}
	s.DropCache()
	s.ResetStats()
	s.Get(id) // cold
	s.Get(id) // warm
	st = s.Stats()
	if st.Reads != 1 || st.CacheHits != 1 {
		t.Errorf("cold/warm stats = %+v", st)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	// Pool of 2 pages; three 1-page blobs force LRU eviction.
	s := NewStore(WithPageSize(100), WithBufferPool(2))
	a := s.Put(make([]byte, 10))
	b := s.Put(make([]byte, 10))
	c := s.Put(make([]byte, 10)) // evicts a (least recently used)
	s.ResetStats()
	s.Get(a)
	if st := s.Stats(); st.Reads != 1 {
		t.Errorf("a should have been evicted: %+v", st)
	}
	s.ResetStats()
	s.Get(c) // recently cached... but Get(a) above evicted b or c?
	// After Put(c): cache = {b, c}. Get(a): evicts b (LRU), cache = {c, a}.
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("c should be cached: %+v", st)
	}
	s.ResetStats()
	s.Get(b)
	if st := s.Stats(); st.Reads != 1 {
		t.Errorf("b should have been evicted: %+v", st)
	}
}

func TestBufferPoolOversizedBlob(t *testing.T) {
	s := NewStore(WithPageSize(100), WithBufferPool(2))
	big := s.Put(make([]byte, 1000)) // 10 pages: larger than the pool
	s.ResetStats()
	s.Get(big)
	s.Get(big)
	st := s.Stats()
	if st.Reads != 2 || st.CacheHits != 0 {
		t.Errorf("oversized blob must never be cached: %+v", st)
	}
}

func TestTotalPagesAndBytes(t *testing.T) {
	s := NewStore(WithPageSize(100))
	s.Put(make([]byte, 150)) // 2 pages
	s.Put(make([]byte, 100)) // 1 page
	s.Put(make([]byte, 1))   // 1 page
	if got := s.TotalPages(); got != 4 {
		t.Errorf("TotalPages = %d, want 4", got)
	}
	if got := s.TotalBytes(); got != 251 {
		t.Errorf("TotalBytes = %d, want 251", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(WithBufferPool(4))
	ids := make([]NodeID, 32)
	for i := range ids {
		ids[i] = s.Put(make([]byte, 64))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if _, err := s.Get(ids[rng.Intn(len(ids))]); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestWithPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithPageSize(0) should panic")
		}
	}()
	WithPageSize(0)
}
