package storage

import (
	"sync"
)

// Epoch-based reclamation for copy-on-write snapshots.
//
// The write path never mutates a published node: an update Puts fresh
// blobs for the copied root-to-leaf path and the superseded blobs become
// garbage — but a reader that pinned the previous snapshot may still be
// traversing them. The Reclaimer defers the actual Free until no such
// reader can exist:
//
//   - a reader calls Pin *before* loading the snapshot pointer and
//     Release when its query finishes;
//   - a writer publishes the new snapshot pointer first, then hands the
//     superseded NodeIDs to Retire, which tags them with the current
//     epoch and advances it;
//   - a retired batch is freed once every reader pinned at-or-before the
//     batch's epoch has released.
//
// The ordering argument: a batch retired at epoch E contains only nodes
// unreachable from the snapshot published before the Retire call. Any
// reader pinned after that publication loads the new pointer (Pin
// happens-before the pointer load), so it never visits the batch; any
// reader that might visit it pinned at an epoch <= E and blocks the free
// until it releases. Epochs only advance, so the minimum pinned epoch is
// a safe frontier.

// PinToken identifies one reader's pinned epoch; pass it back to
// Release.
type PinToken struct {
	epoch int64
}

// ReclaimStats describes the reclamation state of a Reclaimer.
type ReclaimStats struct {
	// Pending is the number of retired nodes awaiting a safe Free.
	Pending int
	// Freed is the total number of nodes reclaimed so far.
	Freed int64
	// Pins is the number of currently pinned readers.
	Pins int
}

// Reclaimer defers Free of retired nodes until no pinned reader can
// reference them. All methods are safe for concurrent use; Retire calls
// are typically serialized by the caller's writer lock but do not have
// to be.
type Reclaimer struct {
	store Blobs

	mu      sync.Mutex
	epoch   int64
	pins    map[int64]int // epoch -> active readers pinned at it
	batches []retiredBatch
	pending int
	freed   int64
	onFree  func(NodeID)
}

type retiredBatch struct {
	epoch int64
	ids   []NodeID
}

// NewReclaimer returns a Reclaimer freeing into the given store.
func NewReclaimer(store Blobs) *Reclaimer {
	return &Reclaimer{store: store, pins: make(map[int64]int)}
}

// SetOnFree installs a hook invoked for every node just before it is
// freed — the engine uses it to drop decoded-node cache entries so a
// recycled NodeID can never serve a stale decode. Call it before any
// concurrent use.
func (r *Reclaimer) SetOnFree(hook func(NodeID)) {
	r.mu.Lock()
	r.onFree = hook
	r.mu.Unlock()
}

// Pin registers a reader at the current epoch. It must be called BEFORE
// the reader loads the snapshot pointer; the returned token goes to
// Release when the reader is done.
func (r *Reclaimer) Pin() PinToken {
	r.mu.Lock()
	e := r.epoch
	r.pins[e]++
	r.mu.Unlock()
	return PinToken{epoch: e}
}

// Release ends a reader's pin and frees any batches that became safe.
func (r *Reclaimer) Release(t PinToken) {
	r.mu.Lock()
	if n := r.pins[t.epoch]; n <= 1 {
		delete(r.pins, t.epoch)
	} else {
		r.pins[t.epoch] = n - 1
	}
	freeable := r.collectLocked()
	r.mu.Unlock()
	r.freeBatches(freeable)
}

// Retire queues the superseded nodes for reclamation, tagging them with
// the current epoch and advancing it. Call it only AFTER the snapshot
// that no longer references the nodes has been published.
//
//rstknn:allow retirepub this IS the retire primitive; the publish-before-retire obligation sits on its callers, which retirepub checks at every call site by name
func (r *Reclaimer) Retire(ids []NodeID) {
	if len(ids) == 0 {
		return
	}
	for _, id := range ids {
		r.store.Retire(id)
	}
	r.mu.Lock()
	r.batches = append(r.batches, retiredBatch{epoch: r.epoch, ids: ids})
	r.pending += len(ids)
	r.epoch++
	freeable := r.collectLocked()
	r.mu.Unlock()
	r.freeBatches(freeable)
}

// TryFree frees every batch that is already safe (e.g. from a
// maintenance path) and returns the number of nodes reclaimed.
func (r *Reclaimer) TryFree() int {
	r.mu.Lock()
	freeable := r.collectLocked()
	r.mu.Unlock()
	n := 0
	for _, b := range freeable {
		n += len(b.ids)
	}
	r.freeBatches(freeable)
	return n
}

// Stats returns a snapshot of the reclamation counters.
func (r *Reclaimer) Stats() ReclaimStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	pins := 0
	for _, n := range r.pins {
		pins += n
	}
	return ReclaimStats{Pending: r.pending, Freed: r.freed, Pins: pins}
}

// collectLocked detaches every batch older than the minimum pinned
// epoch. Caller holds r.mu; the actual Free happens outside the lock so
// the store and cache hooks never nest under it.
func (r *Reclaimer) collectLocked() []retiredBatch {
	min := r.epoch // no pins: everything retired so far is safe
	for e := range r.pins {
		if e < min {
			min = e
		}
	}
	cut := 0
	for cut < len(r.batches) && r.batches[cut].epoch < min {
		cut++
	}
	if cut == 0 {
		return nil
	}
	freeable := r.batches[:cut:cut]
	r.batches = r.batches[cut:]
	for _, b := range freeable {
		r.pending -= len(b.ids)
		r.freed += int64(len(b.ids))
	}
	return freeable
}

// freeBatches drops cache entries and frees the slots of the detached
// batches. Double frees cannot happen: collectLocked hands each batch
// out exactly once.
func (r *Reclaimer) freeBatches(batches []retiredBatch) {
	if len(batches) == 0 {
		return
	}
	r.mu.Lock()
	hook := r.onFree
	r.mu.Unlock()
	for _, b := range batches {
		for _, id := range b.ids {
			if hook != nil {
				hook(id)
			}
			// Free only fails on a double free, which collectLocked's
			// hand-out-once contract rules out.
			_ = r.store.Free(id) //rstknn:allow errlost double free is structurally impossible here
		}
	}
}
