package storage

import (
	"errors"
	"testing"
)

// putN fills the store with n one-page blobs and returns their IDs.
func putN(t *testing.T, s *Store, n int) []NodeID {
	t.Helper()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = s.Put([]byte{byte(i), 1, 2, 3})
	}
	return ids
}

// TestReclaimerFreesImmediatelyWithoutPins pins the fast path: with no
// readers, Retire itself frees the batch.
func TestReclaimerFreesImmediatelyWithoutPins(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 3)
	r := NewReclaimer(s)

	r.Retire(ids[:2])
	st := r.Stats()
	if st.Pending != 0 || st.Freed != 2 {
		t.Fatalf("after unpinned retire: %+v, want pending 0 freed 2", st)
	}
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrFreed) {
		t.Fatalf("read of freed node: %v, want ErrFreed", err)
	}
	if _, err := s.Get(ids[2]); err != nil {
		t.Fatalf("live node unreadable: %v", err)
	}
}

// TestReclaimerPinBlocksFree is the core safety property: a reader
// pinned before the retire keeps the batch alive until it releases.
func TestReclaimerPinBlocksFree(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 4)
	r := NewReclaimer(s)

	tok := r.Pin()
	r.Retire(ids[:2])
	if n := r.TryFree(); n != 0 {
		t.Fatalf("TryFree freed %d nodes under an older pin", n)
	}
	if st := r.Stats(); st.Pending != 2 || st.Pins != 1 {
		t.Fatalf("pinned stats %+v, want pending 2 pins 1", st)
	}
	// Retired-but-not-freed nodes must still be readable: the pinned
	// snapshot may traverse them.
	if _, err := s.Get(ids[0]); err != nil {
		t.Fatalf("retired node unreadable while pinned: %v", err)
	}

	r.Release(tok)
	if st := r.Stats(); st.Pending != 0 || st.Freed != 2 {
		t.Fatalf("after release: %+v, want pending 0 freed 2", st)
	}
	if _, err := s.Get(ids[0]); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after release: %v, want ErrFreed", err)
	}
}

// TestReclaimerEpochOrdering checks the frontier math with overlapping
// pins: a batch is freed exactly when every reader pinned at-or-before
// its epoch has released, independent of release order.
func TestReclaimerEpochOrdering(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 6)
	r := NewReclaimer(s)

	early := r.Pin()   // epoch 0
	r.Retire(ids[0:2]) // batch at epoch 0
	late := r.Pin()    // epoch 1: after the first retire
	r.Retire(ids[2:4]) // batch at epoch 1
	if st := r.Stats(); st.Pending != 4 {
		t.Fatalf("pending = %d, want 4", st.Pending)
	}

	// Releasing the late pin frees nothing: the early pin still guards
	// both batches.
	r.Release(late)
	if st := r.Stats(); st.Pending != 4 {
		t.Fatalf("after late release: pending = %d, want 4", st.Pending)
	}

	// Releasing the early pin unblocks both.
	r.Release(early)
	if st := r.Stats(); st.Pending != 0 || st.Freed != 4 {
		t.Fatalf("after early release: %+v, want pending 0 freed 4", st)
	}
	for _, id := range ids[:4] {
		if _, err := s.Get(id); !errors.Is(err, ErrFreed) {
			t.Fatalf("node %d: %v, want ErrFreed", id, err)
		}
	}
	if _, err := s.Get(ids[4]); err != nil {
		t.Fatalf("untouched node unreadable: %v", err)
	}
}

// TestReclaimerSamEpochPinsCounted checks that multiple readers pinned
// at the same epoch are reference-counted, not collapsed.
func TestReclaimerSameEpochPinsCounted(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 2)
	r := NewReclaimer(s)

	a, b := r.Pin(), r.Pin()
	r.Retire(ids[:1])
	r.Release(a)
	if st := r.Stats(); st.Pending != 1 || st.Pins != 1 {
		t.Fatalf("after first release: %+v, want pending 1 pins 1", st)
	}
	r.Release(b)
	if st := r.Stats(); st.Pending != 0 || st.Freed != 1 {
		t.Fatalf("after second release: %+v, want pending 0 freed 1", st)
	}
}

// TestReclaimerOnFreeHook checks the cache-invalidation hook fires once
// per node, before the slot is freed.
func TestReclaimerOnFreeHook(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 3)
	r := NewReclaimer(s)
	seen := map[NodeID]int{}
	r.SetOnFree(func(id NodeID) {
		seen[id]++
		// The hook runs just before Free: the slot is retired but the
		// payload must still be present.
		if _, err := s.Get(id); err != nil {
			t.Errorf("hook for %d: payload already gone: %v", id, err)
		}
	})
	r.Retire(ids)
	r.TryFree()
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("hook for node %d fired %d times, want 1", id, seen[id])
		}
	}
}

// TestFreeSlotReuse pins the free-list contract: a freed slot is
// recycled by the next Put, Len does not grow, and the recycled slot
// serves the new payload.
func TestFreeSlotReuse(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 3)
	n := s.Len()

	s.Retire(ids[1])
	if err := s.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len after free = %d, want %d (slot retained)", got, n)
	}

	reused := s.Put([]byte("recycled"))
	if reused != ids[1] {
		t.Fatalf("Put reused slot %d, want freed slot %d", reused, ids[1])
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len after reuse = %d, want %d", got, n)
	}
	data, err := s.Get(reused)
	if err != nil || string(data) != "recycled" {
		t.Fatalf("recycled slot read = %q, %v", data, err)
	}

	// Exhausted free list: the next Put appends a fresh slot.
	fresh := s.Put([]byte("fresh"))
	if int(fresh) != n {
		t.Fatalf("fresh Put got slot %d, want %d", fresh, n)
	}
}

// TestLiveVersusTotalAccounting checks that retiring and freeing move
// bytes out of the live counters while Put brings them back.
func TestLiveVersusTotalAccounting(t *testing.T) {
	s := NewStore()
	ids := putN(t, s, 4)
	total, live := s.TotalBytes(), s.LiveBytes()
	if total != live || total <= 0 {
		t.Fatalf("fresh store: total %d live %d, want equal and positive", total, live)
	}

	s.Retire(ids[0])
	if s.TotalBytes() != total {
		t.Errorf("retire changed TotalBytes: %d != %d", s.TotalBytes(), total)
	}
	if got := s.LiveBytes(); got >= live {
		t.Errorf("retire did not shrink LiveBytes: %d >= %d", got, live)
	}
	if err := s.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	afterFree := s.LiveBytes()
	if afterFree >= live {
		t.Errorf("free did not shrink LiveBytes: %d >= %d", afterFree, live)
	}
	if s.LivePages() >= 4 {
		t.Errorf("LivePages = %d, want < 4 after free", s.LivePages())
	}

	// Double free is an error.
	if err := s.Free(ids[0]); !errors.Is(err, ErrFreed) {
		t.Errorf("double free: %v, want ErrFreed", err)
	}

	// Reusing the slot restores the live accounting.
	s.Put([]byte{9, 9, 9, 9})
	if got := s.LiveBytes(); got <= afterFree {
		t.Errorf("reuse did not grow LiveBytes: %d <= %d", got, afterFree)
	}
}

// TestChargeWrite checks the write-side I/O attribution on both the
// tracker and the store-global counters.
func TestChargeWrite(t *testing.T) {
	s := NewStore()
	var tr Tracker
	s.PutTracked(make([]byte, s.PageSize()+1), &tr)
	if tr.Writes() != 1 || tr.PagesWritten() != 2 {
		t.Errorf("tracker writes %d pages %d, want 1 and 2", tr.Writes(), tr.PagesWritten())
	}
	st := s.Stats()
	if st.Writes != 1 || st.PagesWritten != 2 {
		t.Errorf("store stats writes %d pages %d, want 1 and 2", st.Writes, st.PagesWritten)
	}
	// Nil tracker still feeds the store-global counters.
	s.PutTracked([]byte{1}, nil)
	if got := s.Stats().Writes; got != 2 {
		t.Errorf("store writes = %d, want 2", got)
	}
}
