package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.ChargeRead(3)
	tr.ChargeCacheHit()
	tr.Reset()
	if tr.Reads() != 0 || tr.PagesRead() != 0 || tr.CacheHits() != 0 {
		t.Error("nil tracker must report zero")
	}
	if tr.Stats() != (Stats{}) {
		t.Error("nil tracker Stats must be zero")
	}
}

func TestTrackerAttribution(t *testing.T) {
	s := NewStore(WithPageSize(16))
	a := s.Put(make([]byte, 40)) // 3 pages
	b := s.Put(make([]byte, 10)) // 1 page
	s.ResetStats()

	var t1, t2 Tracker
	if _, err := s.GetTracked(a, &t1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTracked(b, &t2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetTracked(b, &t2); err != nil {
		t.Fatal(err)
	}
	if t1.Reads() != 1 || t1.PagesRead() != 3 {
		t.Errorf("t1 = %d reads / %d pages, want 1/3", t1.Reads(), t1.PagesRead())
	}
	if t2.Reads() != 2 || t2.PagesRead() != 2 {
		t.Errorf("t2 = %d reads / %d pages, want 2/2", t2.Reads(), t2.PagesRead())
	}
	// The global counters carry the sum of both queries.
	global := s.Stats()
	if global.Reads != 3 || global.PagesRead != 5 {
		t.Errorf("global = %d reads / %d pages, want 3/5", global.Reads, global.PagesRead)
	}

	t1.Reset()
	if t1.Stats() != (Stats{}) {
		t.Error("Reset must zero the tracker")
	}
}

func TestTrackerCountsPoolHits(t *testing.T) {
	s := NewStore(WithBufferPool(8))
	id := s.Put([]byte("cached"))
	s.DropCache()
	s.ResetStats()

	var tr Tracker
	s.GetTracked(id, &tr) // cold: charged as a read
	s.GetTracked(id, &tr) // warm: charged as a hit
	if tr.Reads() != 1 || tr.CacheHits() != 1 {
		t.Errorf("tracker = %d reads / %d hits, want 1/1", tr.Reads(), tr.CacheHits())
	}
}

// TestTrackerSharedReads pins the batch-attribution counter: shared
// reads are bookkeeping on the side (a query's logical reads served from
// a batch-shared node), never part of the I/O Stats, and Reset clears
// them with everything else.
func TestTrackerSharedReads(t *testing.T) {
	var nilTr *Tracker
	nilTr.ChargeSharedRead()
	if nilTr.SharedReads() != 0 {
		t.Error("nil tracker must report zero shared reads")
	}

	var tr Tracker
	tr.ChargeRead(2)
	tr.ChargeSharedRead()
	tr.ChargeSharedRead()
	if tr.SharedReads() != 2 {
		t.Errorf("SharedReads = %d, want 2", tr.SharedReads())
	}
	if s := tr.Stats(); s.Reads != 1 || s.PagesRead != 2 {
		t.Errorf("Stats = %+v; shared reads must not leak into I/O stats", s)
	}
	tr.Reset()
	if tr.SharedReads() != 0 {
		t.Errorf("SharedReads = %d after Reset, want 0", tr.SharedReads())
	}
}

func TestPoolSharding(t *testing.T) {
	// Tiny pools stay single-sharded (exact LRU); big pools shard up to
	// the cap, and the per-shard budgets sum to the requested capacity.
	cases := []struct {
		capacity   int
		wantShards int
	}{
		{1, 1},
		{64, 1},
		{127, 1},
		{128, 2},
		{1 << 20, maxPoolShards},
	}
	for _, tc := range cases {
		p := newPool(tc.capacity)
		if len(p.shards) != tc.wantShards {
			t.Errorf("newPool(%d): %d shards, want %d", tc.capacity, len(p.shards), tc.wantShards)
		}
		total := 0
		for i := range p.shards {
			total += p.shards[i].lru.capacity
		}
		if total != tc.capacity {
			t.Errorf("newPool(%d): shard budgets sum to %d", tc.capacity, total)
		}
	}
}

func TestShardedPoolServesAllIDs(t *testing.T) {
	s := NewStore(WithPageSize(64), WithBufferPool(4096)) // sharded pool
	const n = 200
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = s.Put([]byte(fmt.Sprintf("blob-%03d", i)))
	}
	s.DropCache()
	s.ResetStats()
	for _, id := range ids { // cold pass fills every shard
		if _, err := s.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	var tr Tracker
	for i, id := range ids { // warm pass must hit across shards
		b, err := s.GetTracked(id, &tr)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("blob-%03d", i); !bytes.Equal(b, []byte(want)) {
			t.Fatalf("id %d returned %q, want %q", id, b, want)
		}
	}
	if tr.CacheHits() != n || tr.Reads() != 0 {
		t.Errorf("warm pass: %d hits / %d reads, want %d/0", tr.CacheHits(), tr.Reads(), n)
	}
}

func TestConcurrentTrackedReads(t *testing.T) {
	s := NewStore(WithPageSize(32), WithBufferPool(2048))
	const n = 128
	for i := 0; i < n; i++ {
		s.Put(make([]byte, 48)) // 2 pages each
	}
	s.DropCache()
	s.ResetStats()

	const goroutines = 8
	const rounds = 50
	trackers := make([]Tracker, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < n; i++ {
					id := NodeID((i*7 + g) % n)
					if _, err := s.GetTracked(id, &trackers[g]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Conservation: global totals equal the sum over trackers, and every
	// access is accounted exactly once (read or hit).
	var sum Stats
	for g := range trackers {
		sum = sum.Add(trackers[g].Stats())
	}
	global := s.Stats()
	if global.Reads != sum.Reads || global.PagesRead != sum.PagesRead || global.CacheHits != sum.CacheHits {
		t.Errorf("global %+v != tracker sum %+v", global, sum)
	}
	if total := sum.Reads + sum.CacheHits; total != goroutines*rounds*n {
		t.Errorf("accesses accounted = %d, want %d", total, goroutines*rounds*n)
	}
}
