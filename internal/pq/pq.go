// Package pq provides small typed priority queues keyed by float64
// priorities. Every algorithm in this library (branch-and-bound traversal,
// best-first refinement, top-k maintenance) keeps one or more of these, so
// they live in a shared package instead of being re-implemented against
// container/heap at each call site.
package pq

import "math"

// Queue is a binary-heap priority queue of values of type T. The zero
// Queue is an empty min-queue; use NewMax for a max-queue.
type Queue[T any] struct {
	values     []T
	priorities []float64
	max        bool
}

// NewMin returns an empty queue that pops the smallest priority first.
func NewMin[T any]() *Queue[T] { return &Queue[T]{} }

// NewMax returns an empty queue that pops the largest priority first.
func NewMax[T any]() *Queue[T] { return &Queue[T]{max: true} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.values) }

// Empty reports whether the queue has no items.
func (q *Queue[T]) Empty() bool { return len(q.values) == 0 }

// Push adds a value with the given priority.
func (q *Queue[T]) Push(v T, priority float64) {
	q.values = append(q.values, v)
	q.priorities = append(q.priorities, priority)
	q.up(len(q.values) - 1)
}

// Peek returns the value and priority at the head without removing it.
// It panics on an empty queue.
func (q *Queue[T]) Peek() (T, float64) {
	return q.values[0], q.priorities[0]
}

// Pop removes and returns the head value and its priority.
// It panics on an empty queue.
func (q *Queue[T]) Pop() (T, float64) {
	v, p := q.values[0], q.priorities[0]
	last := len(q.values) - 1
	q.values[0], q.priorities[0] = q.values[last], q.priorities[last]
	var zero T
	q.values[last] = zero // release reference for GC
	q.values = q.values[:last]
	q.priorities = q.priorities[:last]
	if last > 0 {
		q.down(0)
	}
	return v, p
}

// Clear removes all items, keeping the allocated capacity.
func (q *Queue[T]) Clear() {
	var zero T
	for i := range q.values {
		q.values[i] = zero
	}
	q.values = q.values[:0]
	q.priorities = q.priorities[:0]
}

// Items returns the queued values in heap order (not sorted). Useful for
// iterating over all pending items without destroying the queue.
func (q *Queue[T]) Items() []T {
	out := make([]T, len(q.values))
	copy(out, q.values)
	return out
}

// before reports whether priority a should pop before b.
func (q *Queue[T]) before(a, b float64) bool {
	if q.max {
		return a > b
	}
	return a < b
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.priorities[i], q.priorities[parent]) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.values)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.before(q.priorities[l], q.priorities[best]) {
			best = l
		}
		if r < n && q.before(q.priorities[r], q.priorities[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.swap(i, best)
		i = best
	}
}

func (q *Queue[T]) swap(i, j int) {
	q.values[i], q.values[j] = q.values[j], q.values[i]
	q.priorities[i], q.priorities[j] = q.priorities[j], q.priorities[i]
}

// TopK maintains the k largest-priority values seen so far, backed by a
// min-queue of size at most k. It is the standard structure for top-k
// result lists: Threshold is the k-th best priority.
type TopK[T any] struct {
	k int
	q Queue[T]
}

// NewTopK returns a TopK keeping the k best (largest priority) values.
// k must be positive.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pq: TopK requires k > 0")
	}
	return &TopK[T]{k: k}
}

// Len returns the number of values currently kept (at most k).
func (t *TopK[T]) Len() int { return t.q.Len() }

// Full reports whether k values have been collected.
func (t *TopK[T]) Full() bool { return t.q.Len() >= t.k }

// Threshold returns the k-th best priority seen so far, or -Inf while
// fewer than k values have been offered.
func (t *TopK[T]) Threshold() float64 {
	if !t.Full() {
		return negInf
	}
	_, p := t.q.Peek()
	return p
}

// Offer considers a value: it is kept if fewer than k values are stored or
// its priority beats the current threshold. Returns true when kept.
// Ties with the threshold are rejected, matching "strictly better than the
// current k-th" semantics; the caller owns tie policy beyond that.
func (t *TopK[T]) Offer(v T, priority float64) bool {
	if t.q.Len() < t.k {
		t.q.Push(v, priority)
		return true
	}
	if _, worst := t.q.Peek(); priority > worst {
		t.q.Pop()
		t.q.Push(v, priority)
		return true
	}
	return false
}

// Drain removes and returns all kept values sorted by descending priority.
func (t *TopK[T]) Drain() ([]T, []float64) {
	n := t.q.Len()
	vs := make([]T, n)
	ps := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		vs[i], ps[i] = t.q.Pop()
	}
	return vs, ps
}

var negInf = math.Inf(-1)
