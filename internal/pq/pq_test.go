package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinQueueOrder(t *testing.T) {
	q := NewMin[string]()
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("b", 2)
	var got []string
	for !q.Empty() {
		v, _ := q.Pop()
		got = append(got, v)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("min order = %v", got)
	}
}

func TestMaxQueueOrder(t *testing.T) {
	q := NewMax[int]()
	for i, p := range []float64{0.3, 0.9, 0.1, 0.5} {
		q.Push(i, p)
	}
	v, p := q.Pop()
	if v != 1 || p != 0.9 {
		t.Errorf("Pop = (%d, %g), want (1, 0.9)", v, p)
	}
	if v, _ := q.Peek(); v != 3 {
		t.Errorf("Peek = %d, want 3", v)
	}
}

func TestQueueRandomizedHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		q := NewMin[int]()
		var ps []float64
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			p := rng.Float64()
			ps = append(ps, p)
			q.Push(i, p)
		}
		sort.Float64s(ps)
		for i := 0; i < n; i++ {
			_, p := q.Pop()
			if p != ps[i] {
				t.Fatalf("trial %d: popped %g, want %g", trial, p, ps[i])
			}
		}
		if !q.Empty() {
			t.Fatal("queue should be empty")
		}
	}
}

func TestQueueInterleavedOps(t *testing.T) {
	q := NewMax[int]()
	q.Push(1, 1)
	q.Push(2, 2)
	if v, _ := q.Pop(); v != 2 {
		t.Fatal("expected 2 first")
	}
	q.Push(3, 3)
	q.Push(0, 0.5)
	if v, _ := q.Pop(); v != 3 {
		t.Fatal("expected 3")
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatal("expected 1")
	}
	if v, _ := q.Pop(); v != 0 {
		t.Fatal("expected 0")
	}
}

func TestQueueClearAndItems(t *testing.T) {
	q := NewMin[int]()
	for i := 0; i < 5; i++ {
		q.Push(i, float64(i))
	}
	if len(q.Items()) != 5 {
		t.Error("Items should return all values")
	}
	q.Clear()
	if !q.Empty() || q.Len() != 0 {
		t.Error("Clear should empty the queue")
	}
	q.Push(9, 9)
	if v, _ := q.Pop(); v != 9 {
		t.Error("queue unusable after Clear")
	}
}

func TestTopKBasics(t *testing.T) {
	tk := NewTopK[string](2)
	if !math.IsInf(tk.Threshold(), -1) {
		t.Error("threshold before full should be -Inf")
	}
	tk.Offer("a", 0.1)
	tk.Offer("b", 0.5)
	if !tk.Full() || tk.Threshold() != 0.1 {
		t.Errorf("threshold = %g, want 0.1", tk.Threshold())
	}
	if tk.Offer("c", 0.05) {
		t.Error("worse value should be rejected")
	}
	if !tk.Offer("d", 0.3) {
		t.Error("better value should be kept")
	}
	vs, ps := tk.Drain()
	if vs[0] != "b" || vs[1] != "d" || ps[0] != 0.5 || ps[1] != 0.3 {
		t.Errorf("Drain = %v %v", vs, ps)
	}
}

func TestTopKTieRejected(t *testing.T) {
	tk := NewTopK[int](1)
	tk.Offer(1, 0.5)
	if tk.Offer(2, 0.5) {
		t.Error("tie with threshold should be rejected")
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) should panic")
		}
	}()
	NewTopK[int](0)
}

func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		tk := NewTopK[int](k)
		var all []float64
		for i := 0; i < n; i++ {
			p := rng.Float64()
			all = append(all, p)
			tk.Offer(i, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		_, ps := tk.Drain()
		want := k
		if n < k {
			want = n
		}
		if len(ps) != want {
			t.Fatalf("kept %d, want %d", len(ps), want)
		}
		for i, p := range ps {
			if p != all[i] {
				t.Fatalf("trial %d: rank %d = %g, want %g", trial, i, p, all[i])
			}
		}
	}
}

// TestMinQueueSortsQuick is the testing/quick form of the heap property:
// pushing arbitrary priorities and popping must yield ascending order.
func TestMinQueueSortsQuick(t *testing.T) {
	f := func(ps []float64) bool {
		q := NewMin[int]()
		clean := ps[:0:0]
		for _, p := range ps {
			if !math.IsNaN(p) {
				clean = append(clean, p)
			}
		}
		for i, p := range clean {
			q.Push(i, p)
		}
		prev := math.Inf(-1)
		for !q.Empty() {
			_, p := q.Pop()
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTopKThresholdQuick: the TopK threshold equals the k-th largest of
// the offered priorities for arbitrary inputs.
func TestTopKThresholdQuick(t *testing.T) {
	f := func(ps []float64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		clean := ps[:0:0]
		for _, p := range ps {
			if !math.IsNaN(p) {
				clean = append(clean, p)
			}
		}
		tk := NewTopK[int](k)
		for i, p := range clean {
			tk.Offer(i, p)
		}
		if len(clean) < k {
			return math.IsInf(tk.Threshold(), -1)
		}
		sorted := append([]float64(nil), clean...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		return tk.Threshold() == sorted[k-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
