# Development entry points. `make check` is what CI runs (minus the
# pinned golangci-lint job, which needs the binary on PATH).

GOLANGCI_LINT ?= golangci-lint
LINT_TOOL     := $(or $(TMPDIR),/tmp)/rstknn-lint
LINT_REPORT   ?= lint-report.json
FUZZTIME      ?= 10s

.PHONY: all build test race race-stress lint lint-json lint-selftest golangci fmt fuzz bench-baseline bench-views bench-mutate bench-batch check clean

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Hammer the copy-on-write snapshot machinery: concurrent readers
# against live Insert/Delete/Apply writers, tree invariants checked
# after every snapshot swap, repeated for extra interleavings.
race-stress:
	go test -race -run 'TestConcurrentQueryMutateRace|TestPinnedSnapshotSurvivesDelete' -count=3 .

# Domain-specific analyzers (trackedio, ctxflow, locksafe, floatcmp,
# hotalloc, sharedmut, errlost, pinsafe, retirepub, lockorder,
# untrustedlen) driven through the go vet vettool protocol with
# cross-package fact propagation, plus standard go vet. The ./...
# pattern spans every package — the root engine, internal/...,
# cmd/..., and examples/... — so the CLIs and examples are held to the
# same lifecycle rules as the engine.
lint:
	go vet ./...
	go build -o $(LINT_TOOL) ./cmd/rstknn-lint
	go vet -vettool=$(LINT_TOOL) ./...

# Machine-readable lint report (one JSON object per package,
# schema_version 2) with per-analyzer finding counts and elapsed-time
# breakdowns — zeroes included, so a clean run still proves
# pinsafe/retirepub/untrustedlen executed; CI uploads this as a build
# artifact. The go command relays the vettool's stdout onto its own
# stderr with `# package` header lines, so the report is carved out of
# stderr with the headers stripped. The target is gating: any finding
# in the report (a "posn" entry — the counts keys are all zero on a
# clean run) fails the build, the same zero-findings bar as `make
# lint`, with no baseline file to go stale.
lint-json:
	go build -o $(LINT_TOOL) ./cmd/rstknn-lint
	go vet -vettool=$(LINT_TOOL) -json ./... 2>&1 | grep -v '^#' > $(LINT_REPORT) || true
	@cat $(LINT_REPORT)
	@if grep -q '"posn"' $(LINT_REPORT); then \
		echo 'lint-json: findings present in $(LINT_REPORT)' >&2; \
		exit 1; \
	fi

# The analyzer corpus: fixture-driven tests of every analyzer (including
# the path-sensitive pinsafe/retirepub/lockorder suites and their
# cross-package fixture packages), the CFG/dataflow unit tests, the fact
# codec round-trip, and the cross-package propagation fixture that fails
# if fact flow is disabled. Run after touching internal/analysis.
lint-selftest:
	go test ./internal/analysis/...

# General-purpose linters; requires golangci-lint on PATH (CI pins its
# version in .github/workflows/ci.yml).
golangci:
	$(GOLANGCI_LINT) run

fmt:
	gofmt -w .

# Short fuzzing pass over every fuzz target; seed corpora live in each
# package's testdata/fuzz directory.
fuzz:
	go test ./internal/vector/  -run '^$$' -fuzz FuzzVectorRoundTrip -fuzztime $(FUZZTIME)
	go test ./internal/iurtree/ -run '^$$' -fuzz FuzzNodeRoundTrip   -fuzztime $(FUZZTIME)
	go test ./internal/iurtree/ -run '^$$' -fuzz FuzzNodeView        -fuzztime $(FUZZTIME)
	go test ./internal/textual/ -run '^$$' -fuzz FuzzTextualPersist  -fuzztime $(FUZZTIME)
	go test .                   -run '^$$' -fuzz FuzzLoad            -fuzztime $(FUZZTIME)

# Regenerate the checked-in benchmark-regression baseline. The seed and
# workload are pinned so diffs reflect code changes, not input drift;
# wall-clock columns are machine-dependent (see the machine block in the
# JSON), allocs/op and nodes-read are comparable across machines.
bench-baseline:
	go run ./cmd/rstknn-bench -json baseline -seed 7 -scale 0.25 -queries 16 -workers 1,2,4,8 -benchiters 3

# Regenerate BENCH_views.json, the zero-copy view + bound cache evidence
# record: the same pinned workload as bench-baseline, so
# `rstknn-bench -compare BENCH_baseline.json BENCH_views.json` shows the
# allocation and wall-clock deltas row by row.
bench-views:
	go run ./cmd/rstknn-bench -json views -seed 7 -scale 0.25 -queries 16 -workers 1,2,4,8 -benchiters 3

# Regenerate the copy-on-write mutation baseline (insert/delete write
# amplification and reclamation footprint). Same pinning rules as
# bench-baseline: counters are cross-machine comparable, ns/op is not.
bench-mutate:
	go run ./cmd/rstknn-bench -mutate baseline -seed 7 -scale 0.25 -churn 2000

# Regenerate BENCH_batch.json, the shared-traversal batch execution
# evidence record (DESIGN.md §11): the pinned workload answered
# independently and via MultiRSTkNN at several batch sizes. nodes/query,
# shared-hits/query, and the reduction factor are deterministic and
# cross-machine comparable; ns/query is not.
bench-batch:
	go run ./cmd/rstknn-bench -batch batch -seed 7 -scale 0.25 -queries 64 -batchsizes 1,4,16,64 -benchiters 3

check: lint build test race race-stress fuzz

clean:
	rm -f $(LINT_TOOL)
	go clean ./...
